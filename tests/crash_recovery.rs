//! Crash-restart recovery battery: churn as a first-class fault axis.
//!
//! A crashed node loses every bit of volatile state — engine, driver,
//! timers, in-flight frames — and keeps only its durable block journal.
//! On restart it must (a) replay the journal into the exact committed
//! prefix it had, (b) catch up the commits it missed through the
//! anti-entropy sync channel, and (c) end byte-identical to the survivors'
//! chains. `wbft_consensus::testbed` enforces (a)–(c) with hard asserts on
//! every crash run (prefix agreement always, level chains on completion,
//! and a post-run journal replay check against the agreed chain), so these
//! tests drive whole scenarios through `run` / `run_case` and would panic
//! on any recovery bug.
//!
//! The canonical churn scenario is pinned as replayable fixtures
//! (`tests/fixtures/fuzz/crash-restart.{beat,hb-sc}.json`) that
//! `fuzz_regressions.rs` replays with the rest of the set; the encoding
//! drift guard here keeps those files coupled to the fuzzer's own
//! `crash_restart_case`.

use std::path::{Path, PathBuf};
use wbft_consensus::fuzz::{
    crash_restart_case, fixture_string, run_case, FuzzVerdict, DEFAULT_EVENT_BUDGET,
};
use wbft_consensus::{run, CrashEvent, CrashPlan, Protocol, TestbedConfig};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fuzz")
}

fn churn_cfg(protocol: Protocol, node: usize) -> TestbedConfig {
    let mut cfg = TestbedConfig::single_hop(protocol);
    cfg.epochs = 2;
    cfg.workload.batch_size = 8;
    cfg.crash = Some(CrashPlan {
        crashes: vec![CrashEvent { node, at_us: 5_000_000, restart_us: 30_000_000 }],
    });
    cfg
}

#[test]
fn restarted_node_recovers_journal_and_converges() {
    // run() asserts prefix agreement for every honest node, level chains
    // on completion, and that the crashed node's durable journal replays
    // to the agreed chain — completing at all means recovery worked.
    let report = run(&churn_cfg(Protocol::Beat, 2));
    assert!(report.completed, "crash-restart run must converge");
    assert_eq!(report.epoch_latencies.len(), 2);
    assert!(report.total_txs > 0);
}

#[test]
fn churn_tolerates_a_concurrent_byzantine_free_axis_mix() {
    // The crash axis composes with loss: recovery must not depend on a
    // clean channel. (Byzantine + crash together would exceed f at n = 4
    // and is rejected by validation — see the unit battery.)
    let mut cfg = churn_cfg(Protocol::HoneyBadgerSc, 1);
    cfg.loss = wbft_wireless::LossModel::Uniform { p: 0.05 };
    let report = run(&cfg);
    assert!(report.completed, "churn under loss must still converge");
}

#[test]
fn crash_case_is_deterministic_across_replays() {
    for p in [Protocol::Beat, Protocol::HoneyBadgerSc] {
        let case = crash_restart_case(p, DEFAULT_EVENT_BUDGET);
        let a = run_case(&case);
        let b = run_case(&case);
        assert_eq!(a, b, "{}: crash replay diverged", case.label);
        assert_eq!(a.verdict, FuzzVerdict::Ok, "{}: events={}", case.label, a.events);
        assert_eq!(a.blocks, 2, "{}: both epochs must commit", case.label);
    }
}

#[test]
fn crash_fixtures_match_the_canonical_encoding() {
    // The committed files are exactly what `fixture_string` produces for
    // the canonical crash-restart cases, so encoder drift (which would
    // silently decouple the fixtures from the fuzzer) fails loudly. The
    // replay itself happens in fuzz_regressions.rs with the full set.
    for p in [Protocol::Beat, Protocol::HoneyBadgerSc] {
        let case = crash_restart_case(p, DEFAULT_EVENT_BUDGET);
        let disk =
            std::fs::read_to_string(fixture_dir().join(format!("{}.json", case.label))).unwrap();
        assert_eq!(fixture_string(&case, FuzzVerdict::Ok), disk, "{} drifted", case.label);
        assert!(disk.contains("\"crash\""), "{}: plan must be encoded", case.label);
    }
}

/// Regenerates the pinned crash fixtures. Run explicitly after an
/// intentional encoding change:
/// `cargo test --test crash_recovery regen_crash_fixtures -- --ignored`
#[test]
#[ignore]
fn regen_crash_fixtures() {
    for p in [Protocol::Beat, Protocol::HoneyBadgerSc] {
        let case = crash_restart_case(p, DEFAULT_EVENT_BUDGET);
        let path = fixture_dir().join(format!("{}.json", case.label));
        std::fs::write(&path, fixture_string(&case, FuzzVerdict::Ok)).unwrap();
        println!("wrote {}", path.display());
    }
}
