//! Smoke test: every `Protocol` variant runs one epoch end-to-end on the
//! wireless testbed and commits transactions.
//!
//! Before this existed, the three baseline deployments were exercised only
//! by the (slow, manually-run) fig13 bench, so a refactor could break one
//! without any test noticing. This keeps the config tiny — 1 epoch, small
//! batches — so the whole sweep stays CI-fast while still driving each
//! engine through dealing, broadcast, agreement, and commit.

use wbft_consensus::testbed::{run, TestbedConfig};
use wbft_consensus::Protocol;
use wbft_wireless::SimDuration;

#[test]
fn every_protocol_variant_completes_one_epoch() {
    for protocol in Protocol::ALL {
        let mut cfg = TestbedConfig::single_hop(protocol);
        cfg.epochs = 1;
        cfg.workload.batch_size = 4;
        // Aggressive simulated-time budget: generous enough for the
        // unbatched baselines on the shared channel, tight enough that a
        // refactor which stalls a deployment (livelock, lost quorum) fails
        // here instead of timing out CI.
        cfg.deadline = SimDuration::from_secs(if protocol.is_batched() {
            3_600
        } else {
            14_400
        });
        let report = run(&cfg);
        assert!(
            report.completed,
            "{protocol} did not complete 1 epoch within {:?} of simulated time",
            cfg.deadline
        );
        assert!(report.total_txs > 0, "{protocol} committed no transactions");
        assert_eq!(
            report.epoch_latencies.len(),
            1,
            "{protocol} reported {} epoch latencies for 1 epoch",
            report.epoch_latencies.len()
        );
        assert!(
            report.channel_accesses_per_node > 0.0,
            "{protocol} recorded no channel accesses — simulator not engaged?"
        );
    }
}
