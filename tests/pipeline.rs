//! Epoch-pipelining properties at W ∈ {1, 2, 4}.
//!
//! The pipelined engines keep up to `W` epochs' dissemination in flight
//! while earlier epochs finish agreement, buffer decided blocks, and
//! finalize strictly in epoch order. These tests pin the end-to-end
//! contract over full testbed runs:
//!
//! * no transaction commits twice and none is lost across overlapping
//!   epochs (the chain carries exactly the admitted set);
//! * honest digest chains stay a common prefix — `testbed::run` asserts
//!   block-level prefix agreement (and, on completed runs, level chains)
//!   internally for every honest node, so any violation panics the run;
//! * pipelined service runs at matched arrival rates commit the same
//!   client transactions the sequential engine commits.

use proptest::prelude::*;
use wbft_consensus::testbed::{run, TestbedConfig};
use wbft_consensus::{ArrivalSpec, Protocol, ServiceConfig};

const DEPTHS: [u64; 3] = [1, 2, 4];

fn pipelined_service_cfg(protocol: Protocol, seed: u64, depth: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::single_hop(protocol);
    cfg.seed = seed;
    cfg.pipeline_depth = depth;
    cfg.workload.batch_size = 4;
    cfg.service = Some(ServiceConfig {
        // Arrivals faster than the epoch cadence, so several epochs' worth
        // of load is pending at once and depths > 1 genuinely overlap.
        arrivals: ArrivalSpec { per_node: 6, interval_us: 400_000, tx_bytes: 32, seed: 13 },
        mempool_capacity: 64,
        max_epochs: 64,
    });
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Across W ∈ {1, 2, 4}: every admitted client transaction commits
    /// exactly once (none lost across overlapping epochs, none duplicated
    /// on the chain), and all depths commit the same transaction count at
    /// the same offered load.
    #[test]
    fn pipelined_runs_commit_each_tx_exactly_once(
        seed in 1u64..1000,
        protocol_idx in 0usize..2,
    ) {
        let protocol = [Protocol::HoneyBadgerSc, Protocol::DumboSc][protocol_idx];
        let expected = 4 * 6; // n nodes × per_node arrivals, all unique
        for depth in DEPTHS {
            let cfg = pipelined_service_cfg(protocol, seed, depth);
            // `run` asserts honest prefix agreement internally; a
            // divergence panics here with the offending node named.
            let report = run(&cfg);
            prop_assert!(report.completed, "{protocol} W={depth} seed={seed}: must drain");
            let service = report.service.expect("service member present");
            prop_assert_eq!(service.admitted, expected, "{} W={}", protocol, depth);
            // None lost: every admitted tx reached a committed block.
            prop_assert_eq!(
                service.committed_client_txs, expected,
                "{} W={} seed={}: lost transactions", protocol, depth, seed
            );
            prop_assert_eq!(service.pending_at_stop, 0, "{} W={}", protocol, depth);
            // None duplicated: the chain carries exactly the admitted set
            // (all transactions are globally unique, so any double commit
            // inflates total_txs past the admitted count).
            prop_assert_eq!(
                report.total_txs, expected,
                "{} W={} seed={}: chain must carry each tx exactly once",
                protocol, depth, seed
            );
        }
    }
}

/// Fixed-epoch (pre-seeded workload) runs terminate with full agreement at
/// every depth, for an HB-family and a Dumbo-family engine.
#[test]
fn fixed_epoch_runs_agree_at_every_depth() {
    for protocol in [Protocol::Beat, Protocol::DumboSc] {
        for depth in DEPTHS {
            let mut cfg = TestbedConfig::single_hop(protocol);
            cfg.seed = 7;
            cfg.epochs = 3;
            cfg.workload.batch_size = 8;
            cfg.pipeline_depth = depth;
            // Internal assert: all honest nodes committed identical chains.
            let report = run(&cfg);
            assert!(report.completed, "{protocol} W={depth}: must complete");
            assert!(report.total_txs > 0, "{protocol} W={depth}: must commit");
        }
    }
}

/// A pipelined run under frame loss still terminates and keeps the
/// exactly-once property — re-queues from lost proposals interleave with
/// overlapping open epochs, which is precisely where the mempool's
/// admission-order requeue matters.
#[test]
fn pipelined_service_run_survives_loss() {
    let mut cfg = pipelined_service_cfg(Protocol::HoneyBadgerSc, 23, 2);
    cfg.loss = wbft_wireless::LossModel::Uniform { p: 0.05 };
    let report = run(&cfg);
    assert!(report.completed, "lossy pipelined run must still drain");
    let service = report.service.expect("service member present");
    assert_eq!(service.committed_client_txs, service.admitted);
    assert_eq!(report.total_txs, service.admitted);
    assert_eq!(service.pending_at_stop, 0);
}

/// Depth 0 is rejected loudly rather than silently treated as sequential.
#[test]
#[should_panic(expected = "invalid pipeline depth")]
fn zero_depth_is_rejected() {
    let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
    cfg.pipeline_depth = 0;
    run(&cfg);
}

/// Pipelining is single-hop only (clustered pipelining is a follow-on).
#[test]
#[should_panic(expected = "single-hop only")]
fn pipelined_multihop_is_rejected() {
    let mut cfg = TestbedConfig::multi_hop(Protocol::Beat);
    cfg.pipeline_depth = 2;
    run(&cfg);
}
