//! Dynamic-membership integration battery: the churn-sweep byte-identity
//! fixture and cross-protocol committee changes on the simulator.
//!
//! The fixture half pins the *exact report bytes* of the canonical churn
//! sweep point (`--churn join4+leave0@1`), the same way the pre-redesign
//! fixtures pin the churn-free grid: dynamic membership must never perturb
//! what a given seed produces. The live half runs committee growth and a
//! swap under the other HoneyBadger-family engines, so churn coverage is
//! not Beat-only.

use std::path::{Path, PathBuf};
use wbft_consensus::fuzz::{
    fixture_string, membership_churn_case, FuzzVerdict, DEFAULT_EVENT_BUDGET,
};
use wbft_consensus::report::scenario_string;
use wbft_consensus::sweep::SweepSpec;
use wbft_consensus::testbed::{run, ChurnPlan, TestbedConfig};
use wbft_consensus::Protocol;
use wbft_membership::MembershipOp;

fn fuzz_fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fuzz")
}

/// The churn sweep point `examples/sweep.rs --epochs 5 --churn
/// join4+leave0@1` produced when the feature landed; the fixture holds the
/// full report it printed. Reruns must reproduce it byte for byte.
#[test]
fn churn_sweep_report_matches_pinned_fixture() {
    let mut spec = SweepSpec::new("regress-churn");
    spec.epochs = 5;
    spec.churns = vec![Some(ChurnPlan {
        from_epoch: 1,
        ops: vec![MembershipOp::Join(4), MembershipOp::Leave(0)],
    })];
    let scenarios = spec.expand();
    assert_eq!(scenarios.len(), 1);
    let golden = include_str!("fixtures/membership_beat_churn_seed7.json");
    let report = run(&scenarios[0].cfg);
    let text = scenario_string(&scenarios[0].label, &scenarios[0].cfg, &report);
    assert_eq!(
        text, golden,
        "{}: churn report diverged from the pinned fixture",
        scenarios[0].label
    );
}

fn churn_run(protocol: Protocol, plan: ChurnPlan) {
    let mut cfg = TestbedConfig::single_hop(protocol);
    cfg.epochs = 5;
    cfg.workload.batch_size = 8;
    cfg.churn = Some(plan);
    let report = run(&cfg);
    assert!(report.completed, "{protocol:?} churn run must converge");
    assert_eq!(report.epoch_latencies.len(), 5);
    assert!(report.total_txs > 0);
}

/// Committee growth 4 → 7: three joiners, nobody leaves, quorum math
/// moves from f = 1 to f = 2 at activation.
#[test]
fn hb_lc_grows_the_committee() {
    churn_run(
        Protocol::HoneyBadgerLc,
        ChurnPlan {
            from_epoch: 1,
            ops: vec![
                MembershipOp::Join(4),
                MembershipOp::Join(5),
                MembershipOp::Join(6),
            ],
        },
    );
}

/// The headline swap (join 4, leave 0) under the slow-combine engine.
#[test]
fn hb_sc_swaps_a_member() {
    churn_run(
        Protocol::HoneyBadgerSc,
        ChurnPlan {
            from_epoch: 1,
            ops: vec![MembershipOp::Join(4), MembershipOp::Leave(0)],
        },
    );
}

/// Drift guard for the seeded membership fuzz fixtures (replayed by
/// `fuzz_regressions.rs`): the committed files are exactly what
/// `fixture_string` produces for the canonical membership-swap cases, and
/// the churn plan is present in the encoding.
#[test]
fn membership_fixtures_match_the_canonical_encoding() {
    for p in [Protocol::Beat, Protocol::HoneyBadgerSc] {
        let case = membership_churn_case(p, DEFAULT_EVENT_BUDGET);
        let disk = std::fs::read_to_string(fuzz_fixture_dir().join(format!("{}.json", case.label)))
            .unwrap();
        assert_eq!(fixture_string(&case, FuzzVerdict::Ok), disk, "{} drifted", case.label);
        assert!(disk.contains("\"churn\""), "{}: plan must be encoded", case.label);
    }
}

/// Regenerates the pinned membership fixtures. Run explicitly after an
/// intentional encoding change:
/// `cargo test --test membership regen_membership_fixtures -- --ignored`
#[test]
#[ignore]
fn regen_membership_fixtures() {
    for p in [Protocol::Beat, Protocol::HoneyBadgerSc] {
        let case = membership_churn_case(p, DEFAULT_EVENT_BUDGET);
        let path = fuzz_fixture_dir().join(format!("{}.json", case.label));
        std::fs::write(&path, fixture_string(&case, FuzzVerdict::Ok)).unwrap();
        println!("wrote {}", path.display());
    }
}
