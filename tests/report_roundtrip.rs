//! Property tests for the serialization layer: batch encoding and the JSON
//! report codec.
//!
//! * `encode_batch`/`decode_batch` round-trip on arbitrary transaction
//!   vectors (including empty and max-size transactions), and `decode_batch`
//!   returns `None` — never panics — on truncated or garbage input.
//! * JSON: `encode → decode → encode` is a fixpoint for `RunReport` and
//!   `TestbedConfig`, and the parser never panics on arbitrary input.

use bytes::Bytes;
use proptest::prelude::*;
use wbft_consensus::testbed::{RunReport, TestbedConfig};
use wbft_consensus::workload::{decode_batch, encode_batch};
use wbft_consensus::{ByzantineMode, Protocol};
use wbft_report::{parse, FromJson, Json, ToJson};
use wbft_wireless::{LossModel, Metrics, NodeId, NodeMetrics, SimDuration};

fn arb_txs() -> impl Strategy<Value = Vec<Bytes>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200).prop_map(Bytes::from),
        0..20,
    )
}

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    (0usize..Protocol::ALL.len()).prop_map(|i| Protocol::ALL[i])
}

fn arb_byzantine() -> impl Strategy<Value = Vec<(usize, ByzantineMode)>> {
    proptest::collection::vec(
        (0usize..4, 0usize..4, any::<u64>()).prop_map(|(node, mode, epoch)| {
            let mode = match mode {
                0 => ByzantineMode::Silent,
                1 => ByzantineMode::Crash { after_epoch: epoch % 8 },
                2 => ByzantineMode::FlipVotes,
                _ => ByzantineMode::CorruptProposals,
            };
            (node, mode)
        }),
        0..3,
    )
}

fn arb_config() -> impl Strategy<Value = TestbedConfig> {
    (arb_protocol(), any::<u64>(), 0u64..1_000, arb_byzantine(), any::<f64>(), any::<bool>())
        .prop_map(|(protocol, seed, epochs, byzantine, p, multihop)| {
            let mut cfg = if multihop {
                TestbedConfig::multi_hop(protocol)
            } else {
                TestbedConfig::single_hop(protocol)
            };
            cfg.seed = seed;
            cfg.epochs = epochs;
            cfg.byzantine = byzantine;
            cfg.loss = if p < 0.5 { LossModel::None } else { LossModel::Uniform { p } };
            cfg
        })
}

fn arb_metrics() -> impl Strategy<Value = Metrics> {
    proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..8).prop_map(|rows| {
        let n = rows.len();
        let mut m = Metrics::new(n);
        for (i, (accesses, bytes, airtime)) in rows.into_iter().enumerate() {
            let node = m.node_mut(NodeId(i as u16));
            *node = NodeMetrics {
                channel_accesses: accesses,
                bytes_sent: bytes,
                airtime: SimDuration::from_micros(airtime),
                frames_received: accesses ^ bytes,
                lost_collision: accesses % 7,
                lost_noise: bytes % 5,
                lost_half_duplex: airtime % 3,
                cpu_time: SimDuration::from_micros(bytes.wrapping_mul(3)),
            };
        }
        m.collisions = n as u64 * 2;
        m
    })
}

fn arb_report() -> impl Strategy<Value = RunReport> {
    (
        any::<bool>(),
        any::<u64>(),
        proptest::collection::vec(any::<u64>(), 0..6),
        any::<f64>(),
        any::<f64>(),
        any::<u64>(),
        arb_metrics(),
    )
        .prop_map(|(completed, elapsed, lats, mean, tpm, txs, metrics)| RunReport {
            completed,
            elapsed: SimDuration::from_micros(elapsed),
            epoch_latencies: lats.into_iter().map(SimDuration::from_micros).collect(),
            // Exercise the NaN-as-null path on a slice of cases.
            mean_latency_s: if mean < 0.1 { f64::NAN } else { mean },
            throughput_tpm: tpm,
            total_txs: txs,
            channel_accesses_per_node: tpm * 3.0,
            bytes_on_air: txs.wrapping_mul(17),
            collisions: txs % 11,
            metrics,
            service: None,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_roundtrip(txs in arb_txs()) {
        let enc = encode_batch(&txs);
        prop_assert_eq!(decode_batch(&enc), Some(txs));
    }

    #[test]
    fn batch_decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_batch(&data); // must return, never panic
    }

    #[test]
    fn batch_decode_rejects_any_truncation(txs in arb_txs()) {
        prop_assume!(!txs.is_empty());
        let enc = encode_batch(&txs);
        // Every strict prefix is malformed: the count header promises more
        // bytes than remain, so decode must refuse (never panic).
        for cut in 0..enc.len() {
            prop_assert_eq!(decode_batch(&enc[..cut]), None, "prefix of {} bytes", cut);
        }
    }

    #[test]
    fn batch_decode_rejects_trailing_garbage(txs in arb_txs(), extra in 1usize..8) {
        let mut enc = encode_batch(&txs).to_vec();
        enc.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert_eq!(decode_batch(&enc), None);
    }

    #[test]
    fn run_report_json_is_a_fixpoint(report in arb_report()) {
        let once = report.to_json().pretty();
        let decoded = RunReport::from_json(&parse(&once).unwrap()).unwrap();
        prop_assert_eq!(decoded.to_json().pretty(), once);
    }

    #[test]
    fn testbed_config_json_is_a_fixpoint(cfg in arb_config()) {
        let once = cfg.to_json().pretty();
        let decoded = TestbedConfig::from_json(&parse(&once).unwrap()).unwrap();
        prop_assert_eq!(decoded.to_json().pretty(), once);
    }

    #[test]
    fn json_parser_never_panics(text in any::<String>()) {
        let _ = parse(&text); // must return, never panic
    }

    #[test]
    fn json_parser_never_panics_on_bytes(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(text) = std::str::from_utf8(&data) {
            let _ = parse(text);
        }
    }

    #[test]
    fn json_scalars_round_trip(u in any::<u64>(), f in any::<f64>(), s in any::<String>()) {
        let doc = Json::obj([
            ("u", Json::u64(u)),
            ("f", Json::f64(f)),
            ("s", Json::str(s.clone())),
        ]);
        let back = parse(&doc.pretty()).unwrap();
        prop_assert_eq!(back.get("u").and_then(Json::as_u64), Some(u));
        prop_assert_eq!(back.get("f").and_then(Json::as_f64), Some(f));
        prop_assert_eq!(back.get("s").and_then(Json::as_str), Some(s.as_str()));
    }
}

/// The format's largest transaction: a u16 length prefix caps one tx at
/// 65535 bytes; such a batch must round-trip exactly.
#[test]
fn max_size_transaction_roundtrip() {
    let txs = vec![Bytes::from(vec![0x5A; u16::MAX as usize]), Bytes::new()];
    let enc = encode_batch(&txs);
    assert_eq!(decode_batch(&enc), Some(txs));
}

/// NaN means "no epochs decided"; it crosses JSON as null and comes back
/// as NaN, and the encoding stays a fixpoint.
#[test]
fn nan_mean_latency_crosses_json() {
    let report = RunReport {
        completed: false,
        elapsed: SimDuration::ZERO,
        epoch_latencies: vec![],
        mean_latency_s: f64::NAN,
        throughput_tpm: 0.0,
        total_txs: 0,
        channel_accesses_per_node: 0.0,
        bytes_on_air: 0,
        collisions: 0,
        metrics: Metrics::new(0),
        service: None,
    };
    let text = report.to_json().pretty();
    let decoded = RunReport::from_json(&parse(&text).unwrap()).unwrap();
    assert!(decoded.mean_latency_s.is_nan());
    assert_eq!(decoded.to_json().pretty(), text);
}
