//! The consensus-service API battery: mempool semantics, the fixed-epoch
//! byte-identity regression, live-submission scenarios on the simulator,
//! the sweep-axis determinism guarantee, and the full UDP path — external
//! client process semantics (submission over the client channel, streamed
//! commits, graceful stop) against in-process `UdpRuntime` nodes.

use bytes::Bytes;
use proptest::prelude::*;
use std::time::Duration;
use wbft_consensus::netrun::{run_udp_service_node, ServiceNodeOpts};
use wbft_consensus::report::scenario_string;
use wbft_consensus::service::{block_digests, tx_digest, LatencySummary, Mempool};
use wbft_consensus::sweep::{run_scenarios, SweepSpec};
use wbft_consensus::testbed::{run, TestbedConfig};
use wbft_consensus::{
    AdmitOutcome, ArrivalSpec, Block, Protocol, ServiceConfig, StopCondition,
};
use wbft_transport::{ClientMsg, PeerTable, CLIENT_CHANNEL, CLIENT_SRC};
use wbft_wireless::SimTime;

// ------------------------------------------------------------------
// Byte-identity regression against pre-redesign fixtures.

/// The exact grid `examples/sweep.rs --protocols beat,dumbo-sc --seeds 7`
/// ran *before* the service redesign; the fixture files under
/// `tests/fixtures/` hold the reports that build produced. The redesigned
/// engines (StopCondition::Epochs compatibility mode) must reproduce them
/// byte for byte.
#[test]
fn fixed_epoch_reports_match_pre_redesign_fixtures() {
    let mut spec = SweepSpec::new("regress");
    spec.protocols = vec![Protocol::Beat, Protocol::DumboSc];
    let scenarios = spec.expand();
    let goldens = [
        include_str!("fixtures/pre_redesign_beat_sh_seed7.json"),
        include_str!("fixtures/pre_redesign_dumbo-sc_sh_seed7.json"),
    ];
    assert_eq!(scenarios.len(), goldens.len());
    for (scenario, golden) in scenarios.iter().zip(goldens) {
        let report = run(&scenario.cfg);
        let text = scenario_string(&scenario.label, &scenario.cfg, &report);
        assert_eq!(
            text, golden,
            "{}: fixed-epoch report diverged from the pre-redesign bytes",
            scenario.label
        );
    }
}

// ------------------------------------------------------------------
// Mempool property tests.

fn tx_of(tag: u64) -> Bytes {
    Bytes::from(tag.to_le_bytes().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A transaction submitted any number of times is admitted exactly once
    /// and, after commit, rejected forever (committed-once semantics).
    #[test]
    fn dedup_admits_each_tx_once(tags in proptest::collection::vec(0u64..32, 1..40)) {
        let mut pool = Mempool::new(1024);
        let mut admitted = std::collections::BTreeSet::new();
        for &tag in &tags {
            let outcome = pool.admit(tx_of(tag), SimTime::ZERO);
            if admitted.insert(tag) {
                prop_assert_eq!(outcome, AdmitOutcome::Admitted);
            } else {
                prop_assert_eq!(outcome, AdmitOutcome::Duplicate);
            }
        }
        // Propose + commit everything, then resubmit: all duplicates.
        let batch = pool.next_batch(0, usize::MAX);
        prop_assert_eq!(batch.len(), admitted.len());
        pool.record_commit(&Block { epoch: 0, txs: batch }, SimTime::from_micros(1));
        for &tag in &tags {
            prop_assert_eq!(pool.admit(tx_of(tag), SimTime::ZERO), AdmitOutcome::Duplicate);
        }
        prop_assert_eq!(pool.stats().committed, admitted.len() as u64);
    }

    /// Batches preserve exact FIFO admission order across arbitrary
    /// batch-size splits.
    #[test]
    fn batches_preserve_fifo_order(
        count in 1usize..48,
        pulls in proptest::collection::vec(1usize..8, 1..24),
    ) {
        let mut pool = Mempool::new(1024);
        for tag in 0..count as u64 {
            pool.admit(tx_of(tag ^ 0x5a5a_0000), SimTime::ZERO);
        }
        let mut drained = Vec::new();
        for (epoch, max) in pulls.into_iter().enumerate() {
            drained.extend(pool.next_batch(epoch as u64, max));
        }
        let expected: Vec<Bytes> =
            (0..drained.len() as u64).map(|t| tx_of(t ^ 0x5a5a_0000)).collect();
        prop_assert_eq!(drained, expected);
    }

    /// Reject-at-capacity never panics, never exceeds the bound, and frees
    /// space once transactions move on.
    #[test]
    fn capacity_rejects_without_panicking(
        capacity in 0usize..6,
        offered in 0usize..24,
    ) {
        let mut pool = Mempool::new(capacity);
        let mut admitted = 0u64;
        for tag in 0..offered as u64 {
            match pool.admit(tx_of(tag), SimTime::ZERO) {
                AdmitOutcome::Admitted => admitted += 1,
                AdmitOutcome::Full => {}
                AdmitOutcome::Duplicate => prop_assert!(false, "all txs distinct"),
            }
            prop_assert!(pool.pending() <= capacity);
        }
        prop_assert_eq!(admitted as usize, offered.min(capacity));
        let stats = pool.stats();
        prop_assert_eq!(stats.rejected_full as usize, offered.saturating_sub(capacity));
        // Proposing frees pending space for a previously rejected tx.
        let batch = pool.next_batch(0, usize::MAX);
        prop_assert_eq!(batch.len(), admitted as usize);
        if offered > capacity && capacity > 0 {
            prop_assert_eq!(
                pool.admit(tx_of(capacity as u64), SimTime::ZERO),
                AdmitOutcome::Admitted
            );
        }
    }

    /// Latency summaries never panic — not on empty streams, not on a
    /// single sample, not on arbitrary ones — and the percentile chain
    /// stays ordered (these once carried `expect("non-empty")` panics).
    #[test]
    fn latency_summary_never_panics(
        samples in proptest::collection::vec(0u64..1_000_000, 0..24),
    ) {
        let s = LatencySummary::from_samples(&samples);
        prop_assert_eq!(s.count as usize, samples.len());
        if samples.is_empty() {
            prop_assert_eq!((s.p50_us, s.p90_us, s.p99_us, s.max_us), (0, 0, 0, 0));
            prop_assert_eq!(s.mean_us, 0.0);
        } else {
            prop_assert!(s.p50_us <= s.p90_us);
            prop_assert!(s.p90_us <= s.p99_us);
            prop_assert!(s.p99_us <= s.max_us);
            prop_assert_eq!(s.max_us, *samples.iter().max().unwrap());
        }
    }

    /// Arrival schedules never panic, including the degenerate zero
    /// interval (the jitter modulus guard) and zero-length transactions.
    #[test]
    fn arrival_schedule_never_panics(
        per_node in 0u64..6,
        interval_us in 0u64..3,
        tx_bytes in 0usize..40,
        seed in 0u64..64,
    ) {
        let spec = ArrivalSpec { per_node, interval_us, tx_bytes, seed };
        for node in 0..3 {
            let schedule = spec.schedule(node);
            prop_assert_eq!(schedule.len() as u64, per_node);
            prop_assert!(schedule.iter().all(|(_, tx)| tx.len() == tx_bytes));
            prop_assert!(schedule.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }
}

// ------------------------------------------------------------------
// Live-submission scenarios on the simulator.

fn service_cfg(protocol: Protocol, seed: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::single_hop(protocol);
    cfg.seed = seed;
    cfg.workload.batch_size = 16;
    cfg.service = Some(ServiceConfig {
        arrivals: ArrivalSpec { per_node: 5, interval_us: 3_000_000, tx_bytes: 32, seed: 11 },
        mempool_capacity: 64,
        max_epochs: 64,
    });
    cfg
}

/// A live-submission run commits every client transaction exactly once and
/// reports per-tx latency percentiles and backpressure counters.
#[test]
fn simulator_service_run_commits_all_client_txs() {
    for protocol in [Protocol::HoneyBadgerSc, Protocol::DumboSc] {
        let cfg = service_cfg(protocol, 9);
        let report = run(&cfg);
        assert!(report.completed, "{protocol}: service run must drain before the deadline");
        let service = report.service.expect("service member present");
        let expected = 4 * 5; // n nodes × per_node arrivals, all unique
        assert_eq!(service.submitted, expected, "{protocol}");
        assert_eq!(service.admitted, expected, "{protocol}");
        assert_eq!(service.committed_client_txs, expected, "{protocol}");
        assert_eq!(service.pending_at_stop, 0, "{protocol}");
        assert_eq!(report.total_txs, expected, "{protocol}: chain carries each tx once");
        assert_eq!(service.latency.count, expected, "{protocol}");
        assert!(service.latency.p50_us > 0, "{protocol}: latencies must be measured");
        assert!(service.latency.p50_us <= service.latency.p90_us);
        assert!(service.latency.p90_us <= service.latency.p99_us);
        assert!(service.latency.p99_us <= service.latency.max_us);
        assert!(service.peak_occupancy > 0, "{protocol}");
        assert_eq!(service.rejected_dup + service.rejected_full, 0, "{protocol}");
    }
}

/// A capacity-starved pool sheds load: rejections are counted, nothing
/// panics, and the admitted subset still commits.
#[test]
fn simulator_service_run_sheds_load_at_capacity() {
    let mut cfg = service_cfg(Protocol::HoneyBadgerSc, 21);
    let svc = cfg.service.as_mut().expect("service configured");
    // A burst far faster than the epoch cadence, into a 2-slot pool, with
    // one tx pulled per epoch so the queue stays saturated.
    svc.arrivals = ArrivalSpec { per_node: 12, interval_us: 200_000, tx_bytes: 32, seed: 5 };
    svc.mempool_capacity = 2;
    cfg.workload.batch_size = 1;
    let report = run(&cfg);
    assert!(report.completed, "admitted txs must still drain");
    let service = report.service.expect("service member present");
    assert!(service.rejected_full > 0, "a 2-slot pool under burst must shed load");
    assert_eq!(service.admitted, service.committed_client_txs, "admitted txs all commit");
    assert!(service.peak_occupancy >= 2, "the pool must have saturated: {service:?}");
    assert_eq!(service.admitted + service.rejected_full, service.submitted);
}

/// Service scenarios inherit the sweep harness's parallel == serial
/// byte-identity guarantee.
#[test]
fn service_sweep_is_parallel_deterministic() {
    let mut spec = SweepSpec::new("svc-det");
    spec.protocols = vec![Protocol::HoneyBadgerSc];
    spec.services = vec![
        None,
        Some(ServiceConfig {
            arrivals: ArrivalSpec { per_node: 4, interval_us: 2_500_000, tx_bytes: 24, seed: 3 },
            mempool_capacity: 32,
            max_epochs: 32,
        }),
    ];
    spec.seeds = vec![7, 8];
    let scenarios = spec.expand();
    assert_eq!(scenarios.len(), 4);
    // Fixed-epoch labels keep their pre-service shape; service points are
    // suffixed.
    assert!(scenarios.iter().any(|s| s.label.ends_with(".seed7")));
    assert!(scenarios.iter().any(|s| s.label.ends_with(".svc-ia2500x4c32")));
    let parallel = run_scenarios(&scenarios, 4);
    let serial = run_scenarios(&scenarios, 1);
    for (p, s) in parallel.iter().zip(&serial) {
        let pt = scenario_string(&p.scenario.label, &p.scenario.cfg, &p.report);
        let st = scenario_string(&s.scenario.label, &s.scenario.cfg, &s.report);
        assert_eq!(pt, st, "parallel and serial service reports must be byte-identical");
    }
}

/// The graceful stop: a stop requested before start yields an immediately
/// done engine that opens no epochs.
#[test]
fn service_stop_condition_halts_engine() {
    use rand::SeedableRng;
    use wbft_consensus::{ConsensusHandle, Engine, EngineOut};
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let crypto = wbft_components::deal_node_crypto(4, wbft_crypto::CryptoSuite::light(), &mut rng)
        .remove(0);
    let handle = ConsensusHandle::new(16);
    handle.stop();
    let mut engine = Protocol::HoneyBadgerSc.service_engine(crypto, handle.clone(), 8, 64);
    assert!(engine.is_done(), "stopped before start = nothing to do");
    let mut out = EngineOut::new();
    engine.start(&mut out);
    assert!(out.sends.is_empty(), "a stopped engine opens no epoch");
    assert!(engine.is_done());
}

// ------------------------------------------------------------------
// The UDP service path: external client, streamed commits, graceful stop.

fn client_send(socket: &std::net::UdpSocket, addr: std::net::SocketAddr, msg: &ClientMsg) {
    let datagram = wbft_net::datagram::Datagram {
        src: CLIENT_SRC,
        channel: CLIENT_CHANNEL,
        nominal_len: 0,
        payload: msg.encode().expect("client messages fit"),
    };
    socket.send_to(&datagram.encode().expect("client frames fit"), addr).expect("send");
}

/// Four in-process UDP service nodes; an external client socket submits
/// transactions mid-run, reads the commit stream, and stops the cluster.
/// Every node must commit the client's transactions with recorded latency,
/// and the digest chains must agree on a common prefix.
#[test]
fn udp_service_nodes_serve_live_submissions() {
    let n = 4;
    let sockets: Vec<std::net::UdpSocket> =
        (0..n).map(|_| std::net::UdpSocket::bind("127.0.0.1:0").unwrap()).collect();
    let ports: Vec<u16> = sockets.iter().map(|s| s.local_addr().unwrap().port()).collect();
    drop(sockets);
    let table = PeerTable::loopback(&ports);
    let addrs: Vec<std::net::SocketAddr> =
        (0..n as u16).map(|i| table.addr_of(i).unwrap()).collect();

    let mut cfg = TestbedConfig::single_hop(Protocol::HoneyBadgerSc);
    cfg.workload.batch_size = 8;
    let opts = ServiceNodeOpts {
        wall: Duration::from_secs(120),
        linger: Duration::from_secs(2),
        max_epochs: 100_000,
        mempool_capacity: 64,
        journal: None,
        late_peers: Vec::new(),
    };
    let handles: Vec<_> = (0..n)
        .map(|me| {
            let cfg = cfg.clone();
            let table = table.clone();
            let opts = opts.clone();
            std::thread::spawn(move || {
                run_udp_service_node(&cfg, table, me, &opts).unwrap()
            })
        })
        .collect();

    // The external client: subscribe everywhere, submit 3 txs to every
    // node (exercising cross-proposer dedup), read the streams. The first
    // subscribes may hit not-yet-bound sockets, so they are re-sent below
    // (subscription is idempotent and replays the stream from the start).
    let client = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    client.set_read_timeout(Some(Duration::from_millis(25))).unwrap();
    let txs: Vec<Bytes> = (0..3u64)
        .map(|i| Bytes::from(format!("udp-service-tx-{i}-{:016x}", i.wrapping_mul(0x9e37))))
        .collect();
    let digests: Vec<[u8; 32]> = txs.iter().map(|t| tx_digest(t).0).collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(90);
    let mut submitted = false;
    let mut seen = vec![std::collections::BTreeSet::new(); n];
    let mut buf = [0u8; 65536];
    let mut last_nudge = std::time::Instant::now() - Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        // Periodically (re-)subscribe and (re-)submit: UDP is lossy and
        // the first datagrams may predate the nodes' socket binds. Both
        // operations are idempotent — subscription replays the stream,
        // resubmission is deduplicated by the mempool.
        if last_nudge.elapsed() >= Duration::from_millis(500) {
            last_nudge = std::time::Instant::now();
            for &addr in &addrs {
                client_send(&client, addr, &ClientMsg::Subscribe);
            }
            if submitted {
                for tx in &txs {
                    for &addr in &addrs {
                        client_send(&client, addr, &ClientMsg::Submit { tx: tx.clone() });
                    }
                }
            }
        }
        if !submitted {
            // Mid-run live submission: the nodes are already consensus-ing
            // (empty epochs) by the time these arrive.
            std::thread::sleep(Duration::from_millis(400));
            for tx in &txs {
                for &addr in &addrs {
                    client_send(&client, addr, &ClientMsg::Submit { tx: tx.clone() });
                }
            }
            submitted = true;
        }
        if let Ok((len, from)) = client.recv_from(&mut buf) {
            if let Ok(datagram) = wbft_net::datagram::Datagram::decode(&buf[..len]) {
                if let Some(ClientMsg::Block { digests: got, .. }) =
                    ClientMsg::decode(&datagram.payload)
                {
                    if let Some(node) = addrs.iter().position(|a| *a == from) {
                        for d in got {
                            if digests.contains(&d) {
                                seen[node].insert(d);
                            }
                        }
                    }
                }
            }
        }
        if seen.iter().all(|s| s.len() == txs.len()) {
            break;
        }
    }
    assert!(
        seen.iter().all(|s| s.len() == txs.len()),
        "every node must stream every client tx back; saw {:?}",
        seen.iter().map(|s| s.len()).collect::<Vec<_>>()
    );
    // Graceful stop (repeated against UDP loss).
    for _ in 0..5 {
        for &addr in &addrs {
            client_send(&client, addr, &ClientMsg::Stop);
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (me, out) in outcomes.iter().enumerate() {
        let service = out.report.service.as_ref().expect("service stats present");
        assert_eq!(
            service.committed_client_txs, 3,
            "node {me} must commit the client's txs exactly once"
        );
        assert_eq!(service.latency.count, 3, "node {me} latency samples");
        assert!(service.latency.p50_us > 0, "node {me} latency measured");
        assert!(out.stats.client_datagrams > 0, "node {me} saw client traffic");
    }
    // Content agreement on the common digest-chain prefix.
    let min_len = outcomes.iter().map(|o| o.block_digests.len()).min().unwrap();
    assert!(min_len > 0);
    for o in &outcomes[1..] {
        assert_eq!(
            &o.block_digests[..min_len],
            &outcomes[0].block_digests[..min_len],
            "digest chains diverged"
        );
    }
}

/// `block_digests` distinguishes same-count different-content chains — the
/// property the udp_cluster cross-check now relies on.
#[test]
fn block_digest_chains_detect_content_divergence() {
    let a = vec![Block { epoch: 0, txs: vec![Bytes::from_static(b"alpha")] }];
    let b = vec![Block { epoch: 0, txs: vec![Bytes::from_static(b"bravo")] }];
    assert_eq!(a[0].txs.len(), b[0].txs.len(), "equal tx counts...");
    assert_ne!(block_digests(&a), block_digests(&b), "...but different digests");
}

/// Fixed-epoch mode through the new explicit API equals the compatibility
/// path: `StopCondition::Epochs` is the old `target_epochs`.
#[test]
fn explicit_stop_condition_equals_compat_engine_path() {
    let cfg = TestbedConfig::single_hop(Protocol::Beat);
    let r1 = run(&cfg);
    let r2 = run(&cfg);
    // Determinism sanity of the refactored engines.
    assert_eq!(
        scenario_string("a", &cfg, &r1),
        scenario_string("a", &cfg, &r2),
        "fixed-epoch runs must stay deterministic"
    );
    let _ = StopCondition::Epochs(cfg.epochs); // the compat mode is public API
}
