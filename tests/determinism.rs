//! Integration: the simulator + protocol stack is bit-for-bit deterministic
//! for a fixed seed — the property every experiment in EXPERIMENTS.md
//! relies on for reproducibility.

use wbft_consensus::testbed::{run, TestbedConfig};
use wbft_consensus::Protocol;

fn cfg(seed: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
    cfg.epochs = 1;
    cfg.workload.batch_size = 8;
    cfg.seed = seed;
    cfg
}

#[test]
fn identical_seeds_identical_reports() {
    let a = run(&cfg(1234));
    let b = run(&cfg(1234));
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.epoch_latencies, b.epoch_latencies);
    assert_eq!(a.total_txs, b.total_txs);
    assert_eq!(a.channel_accesses_per_node, b.channel_accesses_per_node);
    assert_eq!(a.bytes_on_air, b.bytes_on_air);
    assert_eq!(a.collisions, b.collisions);
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = run(&cfg(1));
    let b = run(&cfg(2));
    // Same workload, different CSMA/backoff schedules: timings must differ.
    assert_ne!(
        (a.elapsed, a.bytes_on_air),
        (b.elapsed, b.bytes_on_air),
        "different seeds produced identical traces — RNG not wired through?"
    );
    // Committed counts may legitimately differ: the ACS accepts the 2f+1
    // fastest proposals plus whatever else raced in, which is
    // schedule-dependent. Both must accept at least a quorum's worth.
    assert!(a.total_txs >= 3 * 8 && b.total_txs >= 3 * 8);
}

#[test]
fn multihop_runs_are_deterministic_too() {
    let make = || {
        let mut c = TestbedConfig::multi_hop(Protocol::HoneyBadgerSc);
        c.epochs = 1;
        c.workload.batch_size = 8;
        c.seed = 77;
        c
    };
    let a = run(&make());
    let b = run(&make());
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.total_txs, b.total_txs);
}
