//! Integration: Byzantine fault tolerance — f = 1 adversarial node out of
//! n = 4 in every corruption mode, across protocol families.

use wbft_consensus::testbed::{run, TestbedConfig};
use wbft_consensus::{ByzantineMode, Protocol};
use wbft_wireless::SimDuration;

fn cfg_with(protocol: Protocol, node: usize, mode: ByzantineMode) -> TestbedConfig {
    let mut cfg = TestbedConfig::single_hop(protocol);
    cfg.epochs = 1;
    cfg.workload.batch_size = 8;
    cfg.byzantine = vec![(node, mode)];
    cfg.deadline = SimDuration::from_secs(7_200);
    cfg
}

#[test]
fn honeybadger_survives_silent_node() {
    let report = run(&cfg_with(Protocol::HoneyBadgerSc, 1, ByzantineMode::Silent));
    assert!(report.completed, "HB-SC with a silent node must still commit");
    // The silent node's proposal cannot be included; the other three can.
    assert!(report.total_txs >= 2 * 8, "got {}", report.total_txs);
}

#[test]
fn honeybadger_survives_vote_flipper() {
    let report = run(&cfg_with(Protocol::HoneyBadgerSc, 0, ByzantineMode::FlipVotes));
    assert!(report.completed, "HB-SC with a vote flipper must still commit");
    // Flipped votes can exclude proposals but honest ones must get through.
    assert!(report.total_txs > 0, "vote flipper starved the epoch entirely");
}

#[test]
fn beat_survives_vote_flipper() {
    let report = run(&cfg_with(Protocol::Beat, 2, ByzantineMode::FlipVotes));
    assert!(report.completed, "BEAT with a vote flipper must still commit");
    assert!(report.total_txs > 0, "vote flipper starved the epoch entirely");
}

#[test]
fn dumbo_survives_silent_node() {
    let report = run(&cfg_with(Protocol::DumboSc, 3, ByzantineMode::Silent));
    assert!(report.completed, "Dumbo-SC with a silent node must still commit");
    // The ACS guarantees at least n-f decided instances, of which at most f
    // are Byzantine: at least n-2f = 2 honest proposals must be included.
    assert!(report.total_txs >= 2 * 8, "got {}", report.total_txs);
}

#[test]
fn honeybadger_survives_proposal_corrupter() {
    // Corrupted proposals fail their digest check and the instance simply
    // fails to deliver (ABA decides 0 for it) — or decrypts to garbage that
    // decodes to an empty batch. Either way: progress + agreement.
    let report = run(&cfg_with(Protocol::HoneyBadgerSc, 1, ByzantineMode::CorruptProposals));
    assert!(report.completed, "HB-SC with corrupted proposals must still commit");
    // Three honest proposals survive; only the corrupter's can be lost.
    assert!(report.total_txs > 0, "proposal corrupter starved the epoch entirely");
}

#[test]
fn crash_after_first_epoch_does_not_block_progress() {
    let mut cfg = cfg_with(Protocol::HoneyBadgerSc, 2, ByzantineMode::Crash { after_epoch: 1 });
    cfg.epochs = 2;
    let report = run(&cfg);
    assert!(report.completed, "epoch 2 must complete without the crashed node");
    assert_eq!(report.epoch_latencies.len(), 2);
}

/// The full corruption matrix: every `ByzantineMode` × {HoneyBadger, Dumbo}
/// with f = 1 of n = 4 still commits non-empty quorum blocks within the
/// deadline. `Crash { after_epoch: 1 }` needs two epochs so the crash lands
/// mid-run; the other modes are active from epoch one.
#[test]
fn byzantine_matrix_every_mode_hb_and_dumbo() {
    let batch = 8;
    for protocol in [Protocol::HoneyBadgerSc, Protocol::DumboSc] {
        for mode in ByzantineMode::ALL {
            let mut cfg = cfg_with(protocol, 1, mode);
            if let ByzantineMode::Crash { after_epoch } = mode {
                cfg.epochs = after_epoch + 1;
            }
            let report = run(&cfg);
            assert!(
                report.completed,
                "{protocol} with byzantine mode {mode:?} must commit within deadline"
            );
            assert_eq!(
                report.epoch_latencies.len() as u64,
                cfg.epochs,
                "{protocol}/{mode:?}: every epoch must decide"
            );
            // Fail-silent modes can only suppress the faulty node's own
            // proposal: at least n-2f honest proposals land per epoch. The
            // active corruptions can additionally get honest proposals
            // excluded by the ACS, but never starve an epoch entirely.
            let floor = match mode {
                ByzantineMode::Silent | ByzantineMode::Crash { .. } => {
                    2 * batch as u64 * cfg.epochs
                }
                ByzantineMode::FlipVotes | ByzantineMode::CorruptProposals => 1,
            };
            assert!(
                report.total_txs >= floor,
                "{protocol}/{mode:?}: committed {} txs, need >= {floor}",
                report.total_txs
            );
        }
    }
}

#[test]
fn local_coin_variant_survives_byzantine_node() {
    let report = run(&cfg_with(Protocol::HoneyBadgerLc, 1, ByzantineMode::FlipVotes));
    assert!(report.completed, "HB-LC with a vote flipper must still commit");
    assert!(report.total_txs > 0, "vote flipper starved the epoch entirely");
}
