//! Integration: Byzantine fault tolerance — f = 1 adversarial node out of
//! n = 4 in every corruption mode, across protocol families.

use wbft_consensus::testbed::{run, TestbedConfig};
use wbft_consensus::{ByzantineMode, Protocol};
use wbft_wireless::SimDuration;

fn cfg_with(protocol: Protocol, node: usize, mode: ByzantineMode) -> TestbedConfig {
    let mut cfg = TestbedConfig::single_hop(protocol);
    cfg.epochs = 1;
    cfg.workload.batch_size = 8;
    cfg.byzantine = vec![(node, mode)];
    cfg.deadline = SimDuration::from_secs(7_200);
    cfg
}

#[test]
fn honeybadger_survives_silent_node() {
    let report = run(&cfg_with(Protocol::HoneyBadgerSc, 1, ByzantineMode::Silent));
    assert!(report.completed, "HB-SC with a silent node must still commit");
    // The silent node's proposal cannot be included; the other three can.
    assert!(report.total_txs >= 2 * 8, "got {}", report.total_txs);
}

#[test]
fn honeybadger_survives_vote_flipper() {
    let report = run(&cfg_with(Protocol::HoneyBadgerSc, 0, ByzantineMode::FlipVotes));
    assert!(report.completed, "HB-SC with a vote flipper must still commit");
    // Flipped votes can exclude proposals but honest ones must get through.
    assert!(report.total_txs > 0, "vote flipper starved the epoch entirely");
}

#[test]
fn beat_survives_vote_flipper() {
    let report = run(&cfg_with(Protocol::Beat, 2, ByzantineMode::FlipVotes));
    assert!(report.completed, "BEAT with a vote flipper must still commit");
    assert!(report.total_txs > 0, "vote flipper starved the epoch entirely");
}

#[test]
fn dumbo_survives_silent_node() {
    let report = run(&cfg_with(Protocol::DumboSc, 3, ByzantineMode::Silent));
    assert!(report.completed, "Dumbo-SC with a silent node must still commit");
    // The ACS guarantees at least n-f decided instances, of which at most f
    // are Byzantine: at least n-2f = 2 honest proposals must be included.
    assert!(report.total_txs >= 2 * 8, "got {}", report.total_txs);
}

#[test]
fn honeybadger_survives_proposal_corrupter() {
    // Corrupted proposals fail their digest check and the instance simply
    // fails to deliver (ABA decides 0 for it) — or decrypts to garbage that
    // decodes to an empty batch. Either way: progress + agreement.
    let report = run(&cfg_with(Protocol::HoneyBadgerSc, 1, ByzantineMode::CorruptProposals));
    assert!(report.completed, "HB-SC with corrupted proposals must still commit");
    // Three honest proposals survive; only the corrupter's can be lost.
    assert!(report.total_txs > 0, "proposal corrupter starved the epoch entirely");
}

#[test]
fn crash_after_first_epoch_does_not_block_progress() {
    let mut cfg = cfg_with(Protocol::HoneyBadgerSc, 2, ByzantineMode::Crash { after_epoch: 1 });
    cfg.epochs = 2;
    let report = run(&cfg);
    assert!(report.completed, "epoch 2 must complete without the crashed node");
    assert_eq!(report.epoch_latencies.len(), 2);
}

#[test]
fn local_coin_variant_survives_byzantine_node() {
    let report = run(&cfg_with(Protocol::HoneyBadgerLc, 1, ByzantineMode::FlipVotes));
    assert!(report.completed, "HB-LC with a vote flipper must still commit");
    assert!(report.total_txs > 0, "vote flipper starved the epoch entirely");
}
