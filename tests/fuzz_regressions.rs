//! Replays every fuzz fixture under `tests/fixtures/fuzz/`.
//!
//! Each fixture is a minimized scenario the fuzzer (`wbft_consensus::fuzz`)
//! once flagged — or a canonical adversarial schedule worth pinning — plus
//! the verdict the current code must produce. `replay_fixture` runs each
//! case twice and checks both determinism (byte-identical outcome
//! encodings) and the expected verdict, so a regression of any fixed
//! liveness bug (or a new nondeterminism) fails here with the offending
//! file named.
//!
//! The seeded fixtures:
//! * `coin-quorum-starvation.{beat,hb-sc}` — the protocol-aware CoinStarve
//!   schedule holds back every common-coin share after the first, per
//!   receiver and round, for the full 20 s budget; shared-coin protocols
//!   must still terminate (liveness under bounded delays).
//! * `dumbo-sc-corrupt-proposer-deadlock` — a corrupt proposer once drove
//!   every honest node to elect a candidate whose CBC_value is permanently
//!   unrecoverable (the commit CBC, a plain bitmap, survives corruption
//!   while the value CBC does not); fixed by requiring the candidate's
//!   CBC_value locally before voting 1 in the election ABA (dumbo.rs).
//! * `hb-lc-flip-votes-unjustified-phase2` — a vote-flipping node once
//!   broke local-coin ABA agreement by injecting a phase-2 vote with no
//!   phase-1 justification, denying both values the strict majority and
//!   coin-flipping honest nodes away from a decided value; fixed by
//!   Bracha message validation in aba_lc.rs.
//! * `pipelined-w{2,4}.*` — the base scenario at pipeline depths 2 and 4
//!   (dissemination of future epochs in flight while earlier epochs finish
//!   agreement); pins determinism and liveness of the decided-block
//!   buffering, in-order finalization, and early-decryption paths. The
//!   fuzzer also mutates `pipeline_depth` ∈ {1, 2, 4}, so new pipelined
//!   failures land here as minimized fixtures.
//! * `crash-restart.{beat,hb-sc}` — one node dies five seconds in and
//!   restarts after a 25 s outage, replaying its durable journal and
//!   catching up over the anti-entropy sync channel; pins determinism and
//!   convergence of the whole crash/recovery path (see
//!   `crash_recovery.rs` for the drift guard and the testbed-level
//!   battery). The fuzzer also mutates crash plans, so new churn failures
//!   land here as minimized fixtures.
//! * `membership-swap.{beat,hb-sc}` — node 4 joins and node 0 leaves via
//!   consensus-ordered membership ops; the committee swaps mid-run after a
//!   dealerless resharing ceremony, and the final epoch commits under the
//!   new quorum math (see `membership.rs` for the drift guard and the
//!   byte-identity fixture). The fuzzer also mutates membership plans, so
//!   new dynamic-membership failures land here as minimized fixtures.

use std::path::{Path, PathBuf};
use wbft_consensus::fuzz::{
    coin_starvation_case, fixture_string, pipelined_case, replay_fixture, FuzzVerdict,
    DEFAULT_EVENT_BUDGET,
};
use wbft_consensus::Protocol;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fuzz")
}

#[test]
fn every_fixture_replays_deterministically_with_its_expected_verdict() {
    let mut replayed = 0;
    for entry in std::fs::read_dir(fixture_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            replay_fixture(&path).unwrap_or_else(|e| panic!("{e}"));
            replayed += 1;
        }
    }
    assert!(replayed >= 11, "expected the seeded fixture set, found {replayed}");
}

#[test]
fn pipelined_fixtures_match_the_canonical_encoding() {
    // Same drift guard as the coin-starvation pair, for the pipelined
    // cases — and it pins that `pipeline_depth` is *present* in the config
    // encoding whenever it is not the default 1.
    for (p, depth) in
        [(Protocol::Beat, 2u64), (Protocol::HoneyBadgerSc, 4), (Protocol::DumboSc, 2)]
    {
        let case = pipelined_case(p, depth, DEFAULT_EVENT_BUDGET);
        let disk =
            std::fs::read_to_string(fixture_dir().join(format!("{}.json", case.label))).unwrap();
        assert_eq!(fixture_string(&case, FuzzVerdict::Ok), disk, "{} drifted", case.label);
        assert!(
            disk.contains("\"pipeline_depth\""),
            "{}: depth must be encoded when non-default",
            case.label
        );
    }
}

#[test]
fn coin_starvation_fixtures_match_the_canonical_encoding() {
    // The committed files are exactly what `fixture_string` produces for
    // the canonical coin-quorum-starvation cases, so encoder drift (which
    // would silently decouple the fixtures from the fuzzer) fails loudly.
    for p in [Protocol::Beat, Protocol::HoneyBadgerSc] {
        let case = coin_starvation_case(p, DEFAULT_EVENT_BUDGET);
        let disk =
            std::fs::read_to_string(fixture_dir().join(format!("{}.json", case.label))).unwrap();
        assert_eq!(fixture_string(&case, FuzzVerdict::Ok), disk, "{} drifted", case.label);
    }
}
