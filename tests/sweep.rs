//! Integration: the parallel sweep executor — determinism (serial runs and
//! parallel runs must produce byte-identical JSON reports) and, on machines
//! with enough cores, wall-clock speedup.

use wbft_consensus::report::{decode_scenario, scenario_string};
use wbft_consensus::sweep::{run_scenarios, Scenario, SweepSpec};
use wbft_consensus::{ByzantineMode, Protocol};
use wbft_wireless::LossModel;

/// 3 protocols × {single-hop, multi-hop}, small batches so the battery
/// stays fast. Covers both engine families and both topologies.
fn battery() -> Vec<Scenario> {
    let mut spec = SweepSpec::new("determinism-battery");
    spec.protocols = vec![Protocol::Beat, Protocol::HoneyBadgerSc, Protocol::DumboSc];
    spec.topologies = vec![None, Some(4)];
    spec.seeds = vec![4242];
    spec.batch_size = 4;
    spec.expand()
}

fn report_strings(scenarios: &[Scenario], threads: usize) -> Vec<String> {
    run_scenarios(scenarios, threads)
        .iter()
        .map(|r| scenario_string(&r.scenario.label, &r.scenario.cfg, &r.report))
        .collect()
}

/// The satellite determinism regression: the same configs run twice
/// serially and once through the parallel executor yield byte-identical
/// JSON reports, for 3 protocols × single/multi-hop.
#[test]
fn serial_twice_and_parallel_are_byte_identical() {
    let scenarios = battery();
    assert_eq!(scenarios.len(), 6);
    let serial_a = report_strings(&scenarios, 1);
    let serial_b = report_strings(&scenarios, 1);
    // More workers than scenarios exercises the empty-queue path too.
    let parallel = report_strings(&scenarios, 4);
    for (i, scenario) in scenarios.iter().enumerate() {
        assert_eq!(serial_a[i], serial_b[i], "serial re-run diverged: {}", scenario.label);
        assert_eq!(serial_a[i], parallel[i], "parallel run diverged: {}", scenario.label);
        // And the bytes decode back to a completed report.
        let (label, _, report) = decode_scenario(&parallel[i]).expect("report must decode");
        assert_eq!(label, scenario.label);
        assert!(report.completed, "{label} must complete");
        assert!(report.total_txs > 0, "{label} must commit transactions");
    }
}

/// Sweeps with loss and Byzantine axes stay deterministic in parallel too
/// (these paths draw from different RNG streams than the happy path).
#[test]
fn adversarial_scenarios_are_parallel_deterministic() {
    let mut spec = SweepSpec::new("determinism-adversarial");
    spec.protocols = vec![Protocol::HoneyBadgerSc];
    spec.losses = vec![LossModel::Uniform { p: 0.05 }];
    spec.placements = vec![vec![(1, ByzantineMode::FlipVotes)]];
    spec.seeds = vec![9, 10];
    spec.batch_size = 4;
    let scenarios = spec.expand();
    assert_eq!(report_strings(&scenarios, 1), report_strings(&scenarios, 2));
}

/// Acceptance check for the parallel executor: an 8-deployment fig13-style
/// sweep must run ≥1.5× faster than the serial loop on ≥4 cores, with
/// byte-identical reports. Wall-clock sensitive, hence ignored by default;
/// CI (or `cargo test -- --ignored`) runs it and logs the speedup.
#[test]
#[ignore = "wall-clock benchmark; run explicitly with -- --ignored"]
fn fig13_style_parallel_sweep_speedup() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut spec = SweepSpec::fig13("speedup", false, 61);
    spec.batch_size = 16; // full 8-deployment grid, trimmed for test time
    let scenarios = spec.expand();
    assert_eq!(scenarios.len(), 8);

    let t0 = std::time::Instant::now();
    let serial = report_strings(&scenarios, 1);
    let serial_wall = t0.elapsed();
    let t1 = std::time::Instant::now();
    let parallel = report_strings(&scenarios, cores.min(8));
    let parallel_wall = t1.elapsed();
    assert_eq!(serial, parallel, "parallel sweep must be byte-identical to serial");

    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9);
    println!(
        "fig13-style sweep: serial {:.2}s, parallel {:.2}s on {cores} cores -> {speedup:.2}x",
        serial_wall.as_secs_f64(),
        parallel_wall.as_secs_f64(),
    );
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "parallel sweep must be >=1.5x faster on {cores} cores (got {speedup:.2}x)"
        );
    } else {
        println!("(<4 cores: speedup assertion skipped, determinism still verified)");
    }
}
