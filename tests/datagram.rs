//! Property tests for the UDP datagram framing layer (`wbft_net::datagram`)
//! and the wire writer's oversize hardening, mirroring the style of
//! `report_roundtrip.rs`:
//!
//! * encode → decode is a fixpoint over arbitrary src/channel/nominal
//!   lengths and payload sizes up to the UDP maximum;
//! * malformed, truncated, bit-flipped or garbage datagrams never panic —
//!   they return a `WireError` the transport counts as a drop;
//! * the `Sink` length-prefix checks hold at their exact boundaries under
//!   arbitrary inputs.

use bytes::Bytes;
use proptest::prelude::*;
use wbft_net::datagram::{Datagram, HEADER_BYTES, VERSION};
use wbft_net::wire::{ByteSink, CountSink, Sink, Sizing, WireError};
use wbft_net::Bitmap;

fn arb_datagram() -> impl Strategy<Value = Datagram> {
    (
        any::<u16>(),
        any::<u8>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..2_000),
    )
        .prop_map(|(src, channel, nominal_len, payload)| Datagram {
            src,
            channel,
            nominal_len,
            payload: Bytes::from(payload),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn datagram_roundtrip(d in arb_datagram()) {
        let bytes = d.encode().expect("payloads under the MTU encode");
        prop_assert_eq!(bytes.len(), HEADER_BYTES + 2 + d.payload.len());
        prop_assert_eq!(Datagram::decode(&bytes), Ok(d));
    }

    #[test]
    fn datagram_decode_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..300)
    ) {
        let _ = Datagram::decode(&data); // must return, never panic
    }

    #[test]
    fn datagram_decode_rejects_any_truncation(d in arb_datagram()) {
        let bytes = d.encode().unwrap();
        for cut in 0..bytes.len() {
            prop_assert!(Datagram::decode(&bytes[..cut]).is_err(), "prefix of {} bytes", cut);
        }
    }

    #[test]
    fn datagram_decode_rejects_trailing_bytes(d in arb_datagram(), extra in 1usize..8) {
        let mut bytes = d.encode().unwrap().to_vec();
        bytes.extend(std::iter::repeat_n(0xCD, extra));
        prop_assert_eq!(
            Datagram::decode(&bytes),
            Err(WireError::Malformed("datagram trailing bytes"))
        );
    }

    #[test]
    fn datagram_single_byte_flips_never_panic(d in arb_datagram(), pos in any::<u16>()) {
        // A flipped bit either still decodes (payload corruption is the
        // envelope signature's problem) or errors — but never panics.
        let mut bytes = d.encode().unwrap().to_vec();
        let i = pos as usize % bytes.len();
        bytes[i] ^= 0x40;
        let _ = Datagram::decode(&bytes);
    }

    #[test]
    fn wrong_version_always_rejected(d in arb_datagram(), v in any::<u8>()) {
        prop_assume!(v != VERSION);
        let mut bytes = d.encode().unwrap().to_vec();
        bytes[4] = v;
        prop_assert_eq!(
            Datagram::decode(&bytes),
            Err(WireError::Malformed("datagram version"))
        );
    }

    #[test]
    fn sink_bytes_boundary_is_exact(extra in 0usize..4) {
        // 65535 encodes on both sinks; 65536.. returns Oversize, and the
        // two sinks agree so nominal and real encodability never diverge.
        let v = vec![0u8; u16::MAX as usize + extra];
        let mut byte_sink = ByteSink::new();
        let mut count_sink = CountSink::new(Sizing::light(4));
        let a = byte_sink.bytes(&v);
        let b = count_sink.bytes(&v);
        prop_assert_eq!(a.clone(), b);
        prop_assert_eq!(a.is_ok(), extra == 0);
    }

    #[test]
    fn sink_count8_boundary_is_exact(n in 250usize..260) {
        let mut sink = ByteSink::new();
        prop_assert_eq!(sink.count8(n).is_ok(), n <= 255);
    }

    #[test]
    fn constructible_bitmaps_always_encode(len in 0usize..=64, raw in any::<u64>()) {
        let bm = Bitmap::from_raw(raw, len);
        let mut sink = ByteSink::new();
        prop_assert!(sink.bitmap(&bm).is_ok());
        let mut count_sink = CountSink::new(Sizing::light(4));
        prop_assert!(count_sink.bitmap(&bm).is_ok());
    }
}

/// The transport's drop accounting relies on decode errors covering every
/// non-frame input — spot-check the distinguished error classes.
#[test]
fn error_classes_are_distinguished() {
    assert_eq!(Datagram::decode(&[]), Err(WireError::Truncated));
    assert_eq!(
        Datagram::decode(&[0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
        Err(WireError::Malformed("datagram magic"))
    );
    let short_payload = {
        // Valid header declaring a 100-byte payload, but only 1 byte follows.
        let d = Datagram {
            src: 0,
            channel: 0,
            nominal_len: 0,
            payload: Bytes::from_static(&[0; 100]),
        };
        let mut bytes = d.encode().unwrap().to_vec();
        bytes.truncate(HEADER_BYTES + 2 + 1);
        bytes
    };
    assert_eq!(Datagram::decode(&short_payload), Err(WireError::Truncated));
}
