//! Integration: safety (agreement) and liveness of every protocol
//! deployment on the simulated wireless network.
//!
//! `testbed::run` asserts internally that all honest nodes commit identical
//! block chains, so these tests exercise that invariant end-to-end across
//! protocols and network conditions.

use wbft_consensus::testbed::{run, TestbedConfig};
use wbft_consensus::Protocol;
use wbft_wireless::{LossModel, SimDuration};

fn quick(protocol: Protocol) -> TestbedConfig {
    let mut cfg = TestbedConfig::single_hop(protocol);
    cfg.epochs = 1;
    cfg.workload.batch_size = 8;
    cfg
}

#[test]
fn all_batched_protocols_commit_and_agree() {
    for protocol in Protocol::BATCHED {
        let report = run(&quick(protocol));
        assert!(report.completed, "{protocol} did not complete");
        assert!(report.total_txs > 0, "{protocol} committed nothing");
        assert!(
            report.mean_latency_s > 1.0 && report.mean_latency_s < 300.0,
            "{protocol} latency {:.1}s out of plausible LoRa range",
            report.mean_latency_s
        );
    }
}

#[test]
fn baseline_protocols_also_commit() {
    // Baselines are slow on the shared channel; one is representative here
    // (all three run in the fig13 bench).
    let mut cfg = quick(Protocol::HoneyBadgerScBaseline);
    cfg.workload.batch_size = 4;
    cfg.deadline = SimDuration::from_secs(14_400);
    let report = run(&cfg);
    assert!(report.completed, "baseline HB-SC did not complete");
    assert!(report.total_txs > 0);
}

#[test]
fn agreement_holds_under_heavy_loss() {
    for protocol in [Protocol::HoneyBadgerSc, Protocol::Beat] {
        let mut cfg = quick(protocol);
        cfg.loss = LossModel::Uniform { p: 0.25 };
        cfg.deadline = SimDuration::from_secs(7_200);
        let report = run(&cfg);
        assert!(report.completed, "{protocol} under 25% loss did not complete");
    }
}

#[test]
fn agreement_holds_under_asymmetric_loss() {
    // One node behind a wall: 60 % of frames to it are lost; NACK-driven
    // retransmission must still carry it to the same chain.
    let mut cfg = quick(Protocol::HoneyBadgerSc);
    cfg.loss = LossModel::PerReceiver { rates: vec![(wbft_wireless::NodeId(2), 0.6)] };
    cfg.deadline = SimDuration::from_secs(7_200);
    let report = run(&cfg);
    assert!(report.completed, "asymmetric-loss run did not complete");
}

#[test]
fn agreement_holds_under_adversarial_jitter() {
    let mut cfg = quick(Protocol::DumboSc);
    cfg.adversary = wbft_wireless::AdversaryConfig::with_jitter(SimDuration::from_millis(800));
    let report = run(&cfg);
    assert!(report.completed, "jittered Dumbo-SC did not complete");
}

#[test]
fn batching_beats_baseline_on_the_same_seed() {
    let batched = run(&quick(Protocol::Beat));
    let mut base_cfg = quick(Protocol::BeatBaseline);
    base_cfg.workload.batch_size = 4;
    base_cfg.deadline = SimDuration::from_secs(14_400);
    let baseline = run(&base_cfg);
    assert!(batched.completed && baseline.completed);
    assert!(
        batched.mean_latency_s < baseline.mean_latency_s,
        "paper's headline: batching must reduce latency ({:.1} vs {:.1})",
        batched.mean_latency_s,
        baseline.mean_latency_s
    );
    assert!(
        batched.channel_accesses_per_node < baseline.channel_accesses_per_node,
        "batching must reduce channel contention"
    );
}

#[test]
fn multihop_deployment_orders_all_clusters() {
    let mut cfg = TestbedConfig::multi_hop(Protocol::HoneyBadgerSc);
    cfg.epochs = 1;
    cfg.workload.batch_size = 8;
    let report = run(&cfg);
    assert!(report.completed);
    // Global count sums the four clusters' blocks.
    assert!(report.total_txs >= 4 * 8, "expected all clusters' txs, got {}", report.total_txs);
}
