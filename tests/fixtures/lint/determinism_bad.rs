//@ path: crates/wireless/src/sim.rs
//@ expect: determinism@8 Instant::now
//@ expect: determinism@11 SystemTime
//@ expect: determinism@15 thread_rng
//@ expect: determinism@17 rand::random
//@ expect: determinism@20 set_var
//@ expect: determinism@24 remove_var
fn bad_clock() -> u128 { std::time::Instant::now().elapsed().as_micros() }

fn bad_wall() -> u64 {
    let t = std::time::SystemTime::now();
    t.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

fn bad_rng() -> u64 { rand::thread_rng().next_u64() }

fn bad_ambient() -> u8 { rand::random() }

fn bad_env_set() {
    std::env::set_var("SEED", "7");
}

fn bad_env_del() {
    std::env::remove_var("SEED");
}

fn fine_env_read() -> Option<String> {
    // Reading the environment is legal; only mutation races.
    std::env::var("WBFT_TRACE").ok()
}
