//@ path: crates/components/src/pragmas.rs
//@ expect: bad-pragma@13 bare allow: a justification after `—` is required
//@ expect: totality@14 unwrap
//@ expect: bad-pragma@16 unknown rule `totallity`
//@ expect: totality@17 unwrap
//@ expect: unused-allow@19 allow(ordered-state) suppressed nothing
fn suppressed(v: Option<u8>) -> u8 {
    // wbft-lint: allow(totality) — fixture: justified own-line allow
    v.unwrap()
}

fn bare(v: Option<u8>) -> u8 {
    // wbft-lint: allow(totality)
    v.unwrap()
}
// wbft-lint: allow(totallity) — misspelled rule name
fn misspelled(v: Option<u8>) -> u8 { v.unwrap() }

// wbft-lint: allow(ordered-state) — aimed at a line with no finding
fn stale() -> u8 {
    7
}

fn trailing_ok(v: Option<u8>) -> u8 {
    v.unwrap() // wbft-lint: allow(totality) — fixture: same-line allow
}
