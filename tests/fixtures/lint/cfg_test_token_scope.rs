//@ path: crates/components/src/buf.rs
//@ expect: totality@8 unwrap
// The #[cfg(test)] exemption is brace-aware and token-exact: it ends at
// the module's real closing brace, so a production item sharing that line
// is still linted while the test body's unwrap stays exempt.
fn shadowed(x: Option<u8>) -> u8 {
    // Outside any test scope: flagged.
    x.unwrap()
}

#[cfg(test)]
mod tests { fn t(x: Option<u8>) { x.unwrap(); } } impl Dummy { }

struct Dummy;
