//@ path: crates/components/src/dedup.rs
//@ expect: ordered-state@7 HashMap
//@ expect: ordered-state@8 HashSet
use std::collections::BTreeMap;

struct Bad {
    by_peer: std::collections::HashMap<u16, u64>,
    seen: std::collections::HashSet<[u8; 32]>,
    ordered: BTreeMap<u16, u64>,
    // wbft-lint: allow(ordered-state) — lookup-only memo, never iterated
    memo: std::collections::HashMap<u64, u64>,
}
