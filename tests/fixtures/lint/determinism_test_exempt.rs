//@ path: crates/wireless/src/sim.rs
//@ expect: none
fn production() -> u64 {
    42
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let _ = std::time::Instant::now();
        let _ = std::time::SystemTime::now();
        let _: u8 = rand::random();
    }
}
