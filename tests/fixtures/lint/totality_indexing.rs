//@ path: crates/net/src/codec.rs
//@ expect: totality@6 indexing
//@ expect: totality@7 indexing
//@ expect: totality@12 indexing
fn decode(data: &[u8], tail: Vec<u8>) -> u8 {
    let first = data[0];
    let window = &data[4..8];
    first ^ u8::from(window.len() == 4) ^ decode2(&tail)
}

fn decode2(tail: &[u8]) -> u8 {
    tail[tail.len() - 1]
}

fn fine(data: &[u8]) -> Option<u8> {
    // Checked accessors, array types, literals, and destructuring are
    // not indexing expressions.
    let buf: [u8; 4] = [0u8; 4];
    let [a, _, _, _] = buf;
    let b = *data.get(0)?;
    Some(a ^ b)
}
