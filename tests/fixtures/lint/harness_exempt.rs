//@ path: crates/core/src/sweep.rs
//@ expect: determinism@10 thread_rng
fn harness_may_panic(v: Option<u8>) -> u8 {
    // The sweep harness fails fast on bad axes: panics are fine here,
    // and so is indexing. Determinism still applies — the harness runs
    // inside the byte-identity claim.
    let first = [v.unwrap(); 4][0];
    first.checked_add(1).expect("bounded")
}
fn still_deterministic() -> u64 { rand::thread_rng().next_u64() }
