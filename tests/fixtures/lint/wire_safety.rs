//@ path: crates/transport/src/frames.rs
//@ expect: wire-safety@10 as u8
//@ expect: wire-safety@11 as u16
//@ expect: wire-safety@12 as u32
//@ expect: wire-safety@14 reserved channel byte 0xff
//@ expect: wire-safety@15 reserved channel byte 0xfe
//@ expect: wire-safety@16 reserved channel byte 0xfd
//@ expect: wire-safety@17 reserved channel byte 0xfc
fn bad_casts(len: usize) -> (u8, u16, u32) {
    let a = len as u8;
    let b = len as u16;
    (a, b, len as u32)
}
const RAW_CONTROL: u8 = 0xff;
const RAW_CLIENT: u8 = 254;
fn is_sync(c: u8) -> bool { c == 0xfd }
const RAW_MEMBERSHIP: u8 = 0xfc;

fn fine(len: usize, x: u32) -> (u64, usize, u8) {
    // Widening casts, non-reserved literals, and checked narrowing are fine.
    let w = len as u64;
    let back = x as usize;
    let c = u8::try_from(len).unwrap_or(0x20);
    (w, back, c)
}
