//@ path: crates/net/src/lib.rs
//@ crate-root
//@ expect: unsafe-code@1 missing #![forbid(unsafe_code)]
//! A crate root without the mandatory lint gate.

pub fn product() -> u8 {
    1
}
