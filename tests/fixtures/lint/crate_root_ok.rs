//@ path: crates/net/src/lib.rs
//@ crate-root
//@ expect: none
#![forbid(unsafe_code)]
//! A compliant crate root.

pub fn product() -> u8 {
    1
}
