//@ path: crates/components/src/aba.rs
//@ expect: totality@9 unwrap
//@ expect: totality@10 expect
//@ expect: totality@13 panic
//@ expect: totality@16 unreachable
//@ expect: totality@17 todo
//@ expect: totality@18 unimplemented
fn bad(v: Option<u8>, r: Result<u8, ()>) -> u8 {
    let a = v.unwrap();
    let b = r.expect("present");
    let c = match a {
        0 => b,
        _ => panic!("boom"),
    };
    match c {
        0 => unreachable!(),
        1 => todo!(),
        _ => unimplemented!(),
    }
}

fn fine(v: Option<u8>) -> u8 {
    // assert! states the invariant without hiding it inside unwrap;
    // unwrap_or is total.
    assert!(v.is_some(), "caller guarantees presence");
    debug_assert!(v.is_none() || v.is_some());
    v.unwrap_or(0)
}
