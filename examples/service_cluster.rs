//! `wbft service_cluster` — a live consensus service over loopback UDP.
//!
//! The end-to-end demonstration of the service API on real sockets: the
//! launcher spawns `n` node *processes* (each a `run_udp_service_node`
//! with an empty mempool), then acts as the **external client process**:
//! it subscribes to every node's commit stream, submits transactions over
//! UDP **mid-run** on the reserved client channel, matches the streamed
//! block digests against its submissions to measure end-to-end commit
//! latency, and finally sends a graceful `Stop`. Every node writes a
//! standard `RunReport` JSON whose `service` member carries its own
//! commit-latency percentiles and mempool backpressure counters.
//!
//! ```text
//! cargo run --release --example service_cluster -- --n 4 --protocol hb-sc \
//!     --txs 12 --interval-ms 150
//! ```
//!
//! Hard bounds (the CI guard): `--duration` caps each node's wall clock
//! and `--max-epochs` caps its epoch count, so the run terminates even if
//! the mempool never drains or the stop message is lost.
//!
//! Exit status is non-zero unless every node completes with ≥ 1 committed
//! client transaction, reports latency percentiles, and agrees with its
//! peers on the committed block *contents* (digest chains, not counts).

use std::net::{SocketAddr, UdpSocket};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

#[path = "support/mod.rs"]
mod support;
use support::{allocate_loopback_table, wait_all};
use wbft_consensus::netrun::{run_udp_service_node, ServiceNodeOpts};
use wbft_consensus::report::{report_root, scenario_json};
use wbft_consensus::service::tx_digest;
use wbft_consensus::{Protocol, TestbedConfig};
use wbft_crypto::hash::Digest32;
use wbft_report::{field, Json, ToJson};
use wbft_transport::{ClientMsg, PeerTable, SubmitVerdict, CLIENT_CHANNEL, CLIENT_SRC};

fn usage() -> ! {
    eprintln!(
        "usage: service_cluster [--n N] [--protocol SLUG] [--txs K] [--tx-bytes B]\n\
         \x20                      [--interval-ms MS] [--mempool-cap C] [--seed S]\n\
         \x20                      [--max-epochs E] [--duration SECS] [--out DIR]\n\
         \x20                      [--linger-ms MS] [--journal] [--crash-node I@T]\n\
         \x20                      [--join-node I@T]\n\
         \n\
         Spawns N node processes serving consensus over loopback UDP, then\n\
         submits K transactions per client wave from this (external) process,\n\
         reads the streamed commits, and stops the cluster. --duration and\n\
         --max-epochs are hard bounds so runs terminate even without a drain.\n\
         --journal gives each node a durable block journal in <out>/<slug>;\n\
         --crash-node I@T (implies --journal) SIGKILLs node I's process T ms\n\
         into the run and respawns it — the restart must recover its journal,\n\
         catch up over anti-entropy, and end in agreement, or the launcher\n\
         exits non-zero.\n\
         --join-node I@T spawns node I's process only T ms into the run: the\n\
         rest of the committee starts (and commits) without it, the joiner\n\
         bootstraps the missed chain over the anti-entropy sync channel, and\n\
         its digest chain must converge with the original committee's.\n\
         Reports: <out>/<slug>/node<i>.json (RunReport + service stats)"
    );
    std::process::exit(2);
}

fn fatal(msg: &str) -> ! {
    eprintln!("service_cluster: {msg}");
    std::process::exit(1);
}

/// Everything a node process needs, in one JSON document.
struct ClusterDoc {
    cfg: TestbedConfig,
    peers: PeerTable,
    wall_secs: u64,
    linger_ms: u64,
    max_epochs: u64,
    mempool_cap: u64,
    /// Each node journals committed blocks to `<out>/node<i>.journal` and
    /// recovers from it on (re)start.
    journal: bool,
    /// Designated late joiner (the `--join-node` drill): every other node
    /// excludes this id from its startup barrier, and the joiner itself is
    /// judged on chain convergence rather than fresh client commits.
    late_node: Option<usize>,
}

impl ClusterDoc {
    fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("config".into(), self.cfg.to_json()),
            ("peers".into(), self.peers.to_json()),
            ("wall_secs".into(), Json::u64(self.wall_secs)),
            ("linger_ms".into(), Json::u64(self.linger_ms)),
            ("max_epochs".into(), Json::u64(self.max_epochs)),
            ("mempool_cap".into(), Json::u64(self.mempool_cap)),
            ("journal".into(), Json::Bool(self.journal)),
        ];
        if let Some(late) = self.late_node {
            members.push(("late_node".into(), Json::u64(late as u64)));
        }
        Json::Obj(members)
    }

    fn from_json(j: &Json) -> Result<Self, wbft_report::JsonError> {
        Ok(ClusterDoc {
            cfg: field(j, "config")?,
            peers: field(j, "peers")?,
            wall_secs: field(j, "wall_secs")?,
            linger_ms: field(j, "linger_ms")?,
            max_epochs: field(j, "max_epochs")?,
            mempool_cap: field(j, "mempool_cap")?,
            journal: field(j, "journal")?,
            late_node: j.get("late_node").and_then(Json::as_u64).map(|v| v as usize),
        })
    }
}

// ------------------------------------------------------------------
// Node (child) mode.

fn child_main(me: usize, cluster_path: &Path, out_dir: &Path) -> ! {
    let doc = wbft_report::read_file(cluster_path)
        .unwrap_or_else(|e| fatal(&format!("read {}: {e}", cluster_path.display())));
    let doc = ClusterDoc::from_json(&doc)
        .unwrap_or_else(|e| fatal(&format!("parse {}: {e}", cluster_path.display())));
    let opts = ServiceNodeOpts {
        wall: Duration::from_secs(doc.wall_secs),
        linger: Duration::from_millis(doc.linger_ms),
        max_epochs: doc.max_epochs,
        mempool_capacity: doc.mempool_cap as usize,
        journal: doc.journal.then(|| out_dir.join(format!("node{me}.journal"))),
        // The on-time committee must not wait at the startup barrier for a
        // joiner whose process does not exist yet.
        late_peers: match doc.late_node {
            Some(late) if late != me => vec![late as u16],
            _ => Vec::new(),
        },
    };
    let outcome = run_udp_service_node(&doc.cfg, doc.peers, me, &opts)
        .unwrap_or_else(|e| fatal(&format!("node {me}: {e}")));
    let service = outcome.report.service.clone().expect("service node reports service stats");
    let label = format!("service.{}.node{me}", doc.cfg.protocol.slug());
    // Embed the service parameters in the written config so the report
    // artifact self-describes the pool/epoch bounds it ran under (arrivals
    // came over UDP, not a schedule — hence per_node 0).
    let mut cfg = doc.cfg.clone();
    cfg.service = Some(wbft_consensus::ServiceConfig {
        arrivals: wbft_consensus::ArrivalSpec {
            per_node: 0,
            interval_us: 0,
            tx_bytes: 0,
            seed: doc.cfg.seed,
        },
        mempool_capacity: doc.mempool_cap as usize,
        max_epochs: doc.max_epochs,
    });
    let mut scenario = scenario_json(&label, &cfg, &outcome.report);
    // Per-block content digests ride along so the launcher can check the
    // nodes agree on what they committed, not merely on how much.
    if let Json::Obj(members) = &mut scenario {
        members.push((
            "block_digests".into(),
            Json::arr(outcome.block_digests.iter().map(|d| Json::str(hex::encode(d.0)))),
        ));
    }
    let report_path = out_dir.join(format!("node{me}.json"));
    wbft_report::write_file(&report_path, &scenario)
        .unwrap_or_else(|e| fatal(&format!("write {}: {e}", report_path.display())));
    eprintln!(
        "node {me}: completed={} epochs={} client_txs={} p50={}us pending={} drops(full={})",
        outcome.report.completed,
        outcome.report.epoch_latencies.len(),
        service.committed_client_txs,
        service.latency.p50_us,
        service.pending_at_stop,
        service.rejected_full,
    );
    // The node is considered successful when it served at least one client
    // transaction to commit; the hard bounds may have cut the run short. A
    // journaled restart — or a late joiner whose whole chain arrived over
    // anti-entropy — may legitimately commit nothing new itself, so there a
    // non-empty chain counts; the launcher separately enforces that the
    // chain agrees with and keeps up with the peers'.
    let lenient = doc.journal || doc.late_node == Some(me);
    let ok = service.committed_client_txs >= 1
        || (lenient && !outcome.block_digests.is_empty());
    std::process::exit(if ok { 0 } else { 3 });
}

// ------------------------------------------------------------------
// Client side (runs in the launcher process — external to every node).

struct ClientOutcome {
    /// Digest → submit instant of every admitted transaction.
    submitted: Vec<(Digest32, Instant)>,
    /// Per-node count of our digests seen on that node's commit stream.
    seen_per_node: Vec<usize>,
    /// End-to-end latency samples (submit → first commit notification).
    latencies_ms: Vec<u64>,
    rejected: usize,
}

/// Submits `txs` transactions to every node (paced at `interval`), reading
/// the commit streams until every submission is acknowledged by every node
/// or `deadline` passes.
fn run_client(
    addrs: &[SocketAddr],
    txs: usize,
    tx_bytes: usize,
    seed: u64,
    interval: Duration,
    deadline: Duration,
) -> ClientOutcome {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind client socket");
    socket.set_read_timeout(Some(Duration::from_millis(20))).expect("set timeout");
    let send = |addr: SocketAddr, msg: &ClientMsg| {
        let datagram = wbft_net::datagram::Datagram {
            src: CLIENT_SRC,
            channel: CLIENT_CHANNEL,
            nominal_len: 0,
            payload: msg.encode().expect("client messages fit"),
        };
        let _ = socket.send_to(&datagram.encode().expect("client frames fit"), addr);
    };
    let mut out = ClientOutcome {
        submitted: Vec::new(),
        seen_per_node: vec![0; addrs.len()],
        latencies_ms: Vec::new(),
        rejected: 0,
    };
    let start = Instant::now();
    let mut next_submit = Instant::now();
    let mut submitted = 0usize;
    let mut first_commit: Vec<Option<Instant>> = Vec::new();
    let mut buf = [0u8; 65536];
    let mut tx_bodies: Vec<bytes::Bytes> = Vec::new();
    let mut last_nudge = Instant::now() - Duration::from_secs(10);
    loop {
        // Periodically (re-)subscribe and re-send unacknowledged
        // submissions: the first datagrams race the nodes' socket binds
        // and UDP is lossy. Both are idempotent — a repeat Subscribe to an
        // already-subscribed node is ignored, and resubmission is
        // deduplicated by the mempool.
        if last_nudge.elapsed() >= Duration::from_millis(500) {
            last_nudge = Instant::now();
            for &addr in addrs {
                send(addr, &ClientMsg::Subscribe);
            }
            for (i, (_, _)) in out.submitted.iter().enumerate() {
                if first_commit[i].is_none() {
                    for &addr in addrs {
                        send(addr, &ClientMsg::Submit { tx: tx_bodies[i].clone() });
                    }
                }
            }
        }
        // Pace the open-loop submissions; each tx goes to *every* node, so
        // the run also exercises cross-proposer dedup.
        if submitted < txs && Instant::now() >= next_submit {
            let tag = Digest32::of_parts(
                "wbft/service-cluster/tx",
                &[&seed.to_le_bytes(), &(submitted as u64).to_le_bytes()],
            );
            let mut tx = Vec::with_capacity(tx_bytes);
            while tx.len() < tx_bytes {
                let take = (tx_bytes - tx.len()).min(32);
                tx.extend_from_slice(&tag.as_bytes()[..take]);
            }
            let tx = bytes::Bytes::from(tx);
            out.submitted.push((tx_digest(&tx), Instant::now()));
            first_commit.push(None);
            for &addr in addrs {
                send(addr, &ClientMsg::Submit { tx: tx.clone() });
            }
            tx_bodies.push(tx);
            submitted += 1;
            next_submit += interval;
        }
        // Drain the streams.
        if let Ok((n, from)) = socket.recv_from(&mut buf) {
            if let Ok(datagram) = wbft_net::datagram::Datagram::decode(&buf[..n]) {
                if datagram.channel == CLIENT_CHANNEL {
                    match ClientMsg::decode(&datagram.payload) {
                        Some(ClientMsg::Block { digests, .. }) => {
                            let node = addrs.iter().position(|a| *a == from);
                            for d in digests {
                                if let Some(i) =
                                    out.submitted.iter().position(|(s, _)| s.0 == d)
                                {
                                    if let Some(node) = node {
                                        out.seen_per_node[node] += 1;
                                    }
                                    if first_commit[i].is_none() {
                                        first_commit[i] = Some(Instant::now());
                                        let lat = first_commit[i]
                                            .expect("just set")
                                            .duration_since(out.submitted[i].1);
                                        out.latencies_ms.push(lat.as_millis() as u64);
                                    }
                                }
                            }
                        }
                        // Duplicate replies are expected (same tx to n
                        // nodes is admitted once per node); Full means
                        // real backpressure.
                        Some(ClientMsg::SubmitReply {
                            verdict: SubmitVerdict::Full, ..
                        }) => out.rejected += 1,
                        _ => {}
                    }
                }
            }
        }
        let all_seen = submitted == txs
            && out.seen_per_node.iter().all(|&seen| seen >= txs);
        if all_seen || start.elapsed() >= deadline {
            break;
        }
    }
    // Graceful stop — best-effort (x3 against UDP loss); the nodes' own
    // --duration/--max-epochs guards bound the run if all three are lost.
    for _ in 0..3 {
        for &addr in addrs {
            send(addr, &ClientMsg::Stop);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    out
}

// ------------------------------------------------------------------
// Launcher.

/// Parses `I@T`: node `I` at `T` milliseconds into the run (SIGKILL for
/// `--crash-node`, first spawn for `--join-node`).
fn parse_node_at(spec: &str) -> Option<(usize, u64)> {
    let (node, at) = spec.split_once('@')?;
    Some((node.parse().ok()?, at.parse().ok()?))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p * (sorted.len() - 1) as f64).round()) as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Node mode: --node I --cluster PATH --out DIR.
    if args.first().map(String::as_str) == Some("--node") {
        let mut me = None;
        let mut cluster = None;
        let mut out = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
            match flag.as_str() {
                "--node" => me = value().parse().ok(),
                "--cluster" => cluster = Some(PathBuf::from(value())),
                "--out" => out = Some(PathBuf::from(value())),
                _ => usage(),
            }
        }
        match (me, cluster, out) {
            (Some(me), Some(cluster), Some(out)) => child_main(me, &cluster, &out),
            _ => usage(),
        }
    }

    let mut n = 4usize;
    let mut protocol = Protocol::HoneyBadgerSc;
    let mut txs = 12usize;
    let mut tx_bytes = 32usize;
    let mut interval_ms = 150u64;
    let mut mempool_cap = 256u64;
    let mut seed = 7u64;
    let mut max_epochs = 100_000u64;
    let mut duration_secs = 90u64;
    let mut linger_ms = 2_000u64;
    let mut journal = false;
    let mut crash: Option<(usize, u64)> = None;
    let mut join: Option<(usize, u64)> = None;
    let mut out = report_root().join("service");
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match flag.as_str() {
            "--n" => n = value().parse().unwrap_or_else(|_| usage()),
            "--protocol" => {
                protocol = Protocol::from_slug(value()).unwrap_or_else(|| usage())
            }
            "--txs" => txs = value().parse().unwrap_or_else(|_| usage()),
            "--tx-bytes" => tx_bytes = value().parse().unwrap_or_else(|_| usage()),
            "--interval-ms" => interval_ms = value().parse().unwrap_or_else(|_| usage()),
            "--mempool-cap" => mempool_cap = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--max-epochs" => max_epochs = value().parse().unwrap_or_else(|_| usage()),
            "--duration" => duration_secs = value().parse().unwrap_or_else(|_| usage()),
            "--linger-ms" => linger_ms = value().parse().unwrap_or_else(|_| usage()),
            "--journal" => journal = true,
            "--crash-node" => crash = Some(parse_node_at(value()).unwrap_or_else(|| usage())),
            "--join-node" => join = Some(parse_node_at(value()).unwrap_or_else(|| usage())),
            "--out" => out = value().into(),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if n < 4 || !(n - 1).is_multiple_of(3) {
        eprintln!("--n must satisfy n = 3f+1 >= 4 (4, 7, 10, ...)");
        std::process::exit(2);
    }
    if let Some((idx, _)) = crash {
        if idx >= n {
            eprintln!("--crash-node index {idx} out of range for n={n}");
            std::process::exit(2);
        }
        // A crash-restart run without a journal would restart from genesis
        // and only converge by luck; durability is the point of the drill.
        journal = true;
    }
    if let Some((idx, _)) = join {
        if idx >= n {
            eprintln!("--join-node index {idx} out of range for n={n}");
            std::process::exit(2);
        }
        if crash.is_some() {
            eprintln!("--join-node and --crash-node are separate drills; run them separately");
            std::process::exit(2);
        }
    }

    let mut cfg = TestbedConfig::single_hop(protocol);
    cfg.n = n;
    cfg.seed = seed;
    // batch_size is the per-epoch mempool pull cap in service mode.
    cfg.workload.batch_size = 16;
    let peers = allocate_loopback_table(n);
    let addrs: Vec<SocketAddr> =
        (0..n as u16).map(|i| peers.addr_of(i).expect("dense table")).collect();

    let dir = out.join(protocol.slug());
    std::fs::create_dir_all(&dir).expect("create out dir");
    if journal {
        // A journal left over from a previous invocation would make the
        // fresh run recover a stale chain and immediately diverge.
        for me in 0..n {
            let _ = std::fs::remove_file(dir.join(format!("node{me}.journal")));
        }
    }
    let doc = ClusterDoc {
        cfg: cfg.clone(),
        peers,
        wall_secs: duration_secs,
        linger_ms,
        max_epochs,
        mempool_cap,
        journal,
        late_node: join.map(|(idx, _)| idx),
    };
    let cluster_path = dir.join("cluster.json");
    wbft_report::write_file(&cluster_path, &doc.to_json()).expect("write cluster doc");

    let exe = std::env::current_exe().expect("current exe");
    let spawn_node = |me: usize| -> Child {
        Command::new(&exe)
            .arg("--node")
            .arg(me.to_string())
            .arg("--cluster")
            .arg(&cluster_path)
            .arg("--out")
            .arg(&dir)
            .spawn()
            .unwrap_or_else(|e| fatal(&format!("spawn node {me}: {e}")))
    };
    // The late joiner (if any) is spawned by the drill schedule below, not
    // here — the point is that its process does not exist at cluster start.
    let mut children: Vec<(usize, Child)> = (0..n)
        .filter(|&me| join.map(|(idx, _)| idx) != Some(me))
        .map(|me| (me, spawn_node(me)))
        .collect();

    // Give the cluster a moment to pass its startup barrier, then drive
    // live traffic from a client thread while this thread runs the crash
    // schedule (if any).
    std::thread::sleep(Duration::from_millis(300));
    let run_started = Instant::now();
    let client_deadline = Duration::from_secs(duration_secs.saturating_sub(5).max(5));
    let client = {
        let addrs = addrs.clone();
        let interval = Duration::from_millis(interval_ms);
        std::thread::spawn(move || {
            run_client(&addrs, txs, tx_bytes, seed, interval, client_deadline)
        })
    };
    if let Some((idx, at_ms)) = crash {
        let at = Duration::from_millis(at_ms);
        std::thread::sleep(at.saturating_sub(run_started.elapsed()));
        let child = &mut children[idx].1;
        // SIGKILL, not a graceful stop: the journal's torn-tail recovery is
        // exactly the artifact a hard kill leaves behind.
        let _ = child.kill();
        let _ = child.wait();
        eprintln!("launcher: killed node {idx} at {:?}; respawning", run_started.elapsed());
        std::thread::sleep(Duration::from_millis(500));
        children[idx].1 = spawn_node(idx);
    }
    if let Some((idx, at_ms)) = join {
        let at = Duration::from_millis(at_ms);
        std::thread::sleep(at.saturating_sub(run_started.elapsed()));
        eprintln!("launcher: spawning late joiner node {idx} at {:?}", run_started.elapsed());
        children.push((idx, spawn_node(idx)));
        // Restore position == node id for the per-node bookkeeping below.
        children.sort_by_key(|&(me, _)| me);
    }
    let client = client.join().expect("client thread");
    let mut lat = client.latencies_ms.clone();
    lat.sort_unstable();
    println!(
        "client: {} submitted, {} committed (p50 {}ms, p90 {}ms, max {}ms), {} full-rejections",
        client.submitted.len(),
        lat.len(),
        percentile(&lat, 0.50),
        percentile(&lat, 0.90),
        lat.last().copied().unwrap_or(0),
        client.rejected,
    );

    let ok = wait_all(&mut children, Duration::from_secs(duration_secs + 15));
    let mut success = true;
    for (me, child_ok) in ok.iter().enumerate() {
        if !child_ok {
            eprintln!("{}: node {me} failed or committed no client txs", protocol.slug());
            success = false;
        }
    }
    if lat.len() < txs {
        eprintln!(
            "client saw only {}/{} transactions committed before the deadline",
            lat.len(),
            txs
        );
        success = false;
    }

    // Cross-check node reports: committed client txs, latency percentiles
    // present, and digest-chain prefix agreement.
    let mut chains: Vec<Vec<String>> = vec![Vec::new(); n];
    for (me, chain) in chains.iter_mut().enumerate() {
        let path = dir.join(format!("node{me}.json"));
        let doc = match wbft_report::read_file(&path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("unreadable report {}: {e}", path.display());
                success = false;
                continue;
            }
        };
        let report: Result<wbft_consensus::RunReport, _> = field(&doc, "report");
        match report {
            Ok(report) => {
                let Some(service) = report.service else {
                    eprintln!("node {me}: report has no service member");
                    success = false;
                    continue;
                };
                println!(
                    "node {me}: epochs={} client_txs={} latency p50/p90/p99 = {}/{}/{} ms, \
                     peak_occupancy={} drops(full={}, dup={})",
                    report.epoch_latencies.len(),
                    service.committed_client_txs,
                    service.latency.p50_us / 1_000,
                    service.latency.p90_us / 1_000,
                    service.latency.p99_us / 1_000,
                    service.peak_occupancy,
                    service.rejected_full,
                    service.rejected_dup,
                );
                // The late joiner's chain may be all anti-entropy catch-up
                // (no fresh commits of its own); the join drill judges it
                // on chain convergence below instead.
                let is_joiner = join.map(|(idx, _)| idx) == Some(me);
                if (service.committed_client_txs == 0 || service.latency.count == 0)
                    && !is_joiner
                {
                    eprintln!("node {me}: no committed client transactions");
                    success = false;
                }
            }
            Err(e) => {
                eprintln!("node {me}: bad report: {e}");
                success = false;
            }
        }
        match doc.get("block_digests").and_then(Json::as_arr) {
            Some(arr) => {
                *chain = arr.iter().map(|d| d.as_str().unwrap_or_default().to_string()).collect()
            }
            None => {
                eprintln!("node {me}: report missing block_digests");
                success = false;
            }
        }
    }
    // Digest-chain prefix agreement: nodes may stop one epoch apart (the
    // stop races the last commit), but the common prefix must be identical.
    for a in 0..n {
        for b in a + 1..n {
            let common = chains[a].len().min(chains[b].len());
            if common == 0 || chains[a][..common] != chains[b][..common] {
                eprintln!(
                    "AGREEMENT VIOLATION — digest chains of nodes {a}/{b} diverge: \
                     {:?} vs {:?}",
                    &chains[a][..common.min(4)],
                    &chains[b][..common.min(4)]
                );
                success = false;
            }
        }
    }
    // Convergence after the crash drill: the restarted node must have
    // recovered its journal and caught up over anti-entropy — its chain may
    // not lag behind the shortest surviving peer's.
    if let Some((idx, _)) = crash {
        let others_min = chains
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != idx)
            .map(|(_, c)| c.len())
            .min()
            .unwrap_or(0);
        if chains[idx].len() < others_min {
            eprintln!(
                "CATCH-UP FAILURE — restarted node {idx} holds {} blocks, shortest \
                 surviving peer holds {others_min}",
                chains[idx].len()
            );
            success = false;
        } else {
            println!(
                "crash drill: node {idx} restarted with {} blocks, peers hold >= {others_min}",
                chains[idx].len()
            );
        }
    }
    // Convergence after the join drill: the late joiner must have
    // bootstrapped the chain it missed over anti-entropy — its digest chain
    // may not lag behind the shortest on-time peer's (prefix agreement
    // above already proved the contents identical).
    if let Some((idx, _)) = join {
        let others_min = chains
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != idx)
            .map(|(_, c)| c.len())
            .min()
            .unwrap_or(0);
        if chains[idx].len() < others_min {
            eprintln!(
                "JOIN CATCH-UP FAILURE — late joiner {idx} holds {} blocks, shortest \
                 on-time peer holds {others_min}",
                chains[idx].len()
            );
            success = false;
        } else {
            println!(
                "join drill: node {idx} joined late with {} blocks, peers hold >= {others_min}",
                chains[idx].len()
            );
        }
    }
    if success {
        println!(
            "{}: {} nodes served {} live client txs over loopback UDP and agreed on contents",
            protocol.slug(),
            n,
            txs
        );
    }
    std::process::exit(if success { 0 } else { 1 });
}
