//! Quickstart: run wireless HoneyBadgerBFT-SC on a simulated 4-node
//! LoRa-class single-hop network and print the committed blocks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use wbft_components::deal_node_crypto;
use wbft_consensus::driver::ProtocolNode;
use wbft_consensus::honeybadger::hb_sc;
use wbft_consensus::{StopCondition, Workload};
use wbft_crypto::CryptoSuite;
use wbft_wireless::{ChannelId, SimConfig, SimTime, Simulator, Topology};

fn main() {
    let n = 4;
    let epochs = 2;

    // Trusted-dealer setup: packet keys + threshold key sets for N nodes.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2025);
    let crypto = deal_node_crypto(n, CryptoSuite::light(), &mut rng);

    // Each node proposes a batch of 32 × 16-byte transactions per epoch.
    let workload = Workload { batch_size: 32, tx_bytes: 16, seed: 7 };

    // One HoneyBadgerBFT-SC engine per node, bound to radio channel 0.
    let behaviors: Vec<_> = crypto
        .into_iter()
        .map(|c| ProtocolNode::new(hb_sc(c.clone(), workload.clone(), StopCondition::Epochs(epochs)), c, ChannelId(0)))
        .collect();

    // A LoRa-class shared channel with CSMA/CA (SimConfig::default()).
    let cfg = SimConfig { seed: 42, ..SimConfig::default() };
    let mut sim = Simulator::new(cfg, Topology::single_hop(n), behaviors);

    let deadline = SimTime::from_micros(3_600_000_000); // one simulated hour
    let done = sim.run_until_pred(deadline, |s| s.behaviors().all(|(_, b)| b.is_done()));
    assert!(done, "consensus did not finish before the deadline");

    println!("== wireless HoneyBadgerBFT-SC, {n} nodes, {epochs} epochs ==");
    println!("simulated completion time: {}", sim.now());
    println!(
        "channel accesses/node: {:.1}   collisions: {}   bytes on air: {}",
        sim.metrics().mean_channel_accesses(),
        sim.metrics().collisions,
        sim.metrics().total_bytes_sent(),
    );
    for (id, node) in sim.behaviors() {
        let times: Vec<String> =
            node.clock().completed.iter().map(|t| format!("{t}")).collect();
        println!("{id}: epochs decided at {}", times.join(", "));
    }
    let reference = sim.behavior(wbft_wireless::NodeId(0)).blocks();
    for block in reference {
        println!("block {}: {} transactions", block.epoch, block.txs.len());
    }
    // Every node commits the identical chain.
    for (_, node) in sim.behaviors() {
        assert_eq!(node.blocks(), reference);
    }
    println!("all nodes committed identical blocks ✓");
}
