//! Workspace static analysis from the facade: `cargo run --example lint`.
//!
//! Thin delegate to the `wbft-lint` CLI (same as `cargo run -p wbft-lint`);
//! see `--help`, `--list-rules`, and `--explain <rule>` for what it checks.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(wbft_lint::cli_main(&args));
}
