//! Dynamic task allocation in a UAV swarm — the paper's opening motivation:
//! "wireless applications that rely on reaching consensus as a prerequisite
//! for initiating follow-up tasks include dynamic task allocation …".
//!
//! Four UAVs each observe a set of tasks (search sectors) and propose their
//! claims; one round of wireless BEAT orders all claims so every UAV ends
//! up with the identical, conflict-free assignment before flying off.
//!
//! ```text
//! cargo run --release --example uav_task_allocation
//! ```

use bytes::Bytes;
use rand::SeedableRng;
use wbft_components::deal_node_crypto;
use wbft_consensus::driver::ProtocolNode;
use wbft_consensus::honeybadger::beat;
use wbft_consensus::{BatchSource, StopCondition, Workload};
use wbft_crypto::CryptoSuite;
use wbft_wireless::{ChannelId, LossModel, NodeId, SimConfig, SimTime, Simulator, Topology};

/// A task claim: `(uav, sector, priority)` packed into a small transaction.
fn claim(uav: usize, sector: u8, priority: u8) -> Bytes {
    Bytes::from(vec![b'T', uav as u8, sector, priority])
}

fn main() {
    let n = 4;
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let crypto = deal_node_crypto(n, CryptoSuite::light(), &mut rng);

    // Each UAV proposes claims for the sectors it can see.
    let claims_of = |uav: usize| -> Vec<Bytes> {
        (0..3u8).map(|k| claim(uav, (uav as u8 * 2 + k) % 8, k)).collect()
    };

    let behaviors: Vec<_> = crypto
        .into_iter()
        .map(|c| {
            let me = c.me;
            let mut engine = beat(c.clone(), Workload::small(), StopCondition::Epochs(1));
            // Replace the synthetic workload with the UAV's real claims.
            let mut source = BatchSource::Fixed(Vec::new());
            // One proposal (the claim bundle) for epoch 0: encode each claim
            // as its own transaction by proposing them via the fixed slot.
            let bundle = wbft_consensus::workload::encode_batch(&claims_of(me));
            source.set_fixed(0, bundle);
            // The fixed source yields one tx = the encoded bundle; decode on
            // commit below.
            *engine.source_mut() = source;
            ProtocolNode::new(engine, c, ChannelId(0))
        })
        .collect();

    // A lossy sky: 10 % of frames vanish; consensus still terminates.
    let cfg = SimConfig {
        seed: 3,
        loss: LossModel::Uniform { p: 0.10 },
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(cfg, Topology::single_hop(n), behaviors);
    let done = sim.run_until_pred(SimTime::from_micros(3_600_000_000), |s| {
        s.behaviors().all(|(_, b)| b.is_done())
    });
    assert!(done, "allocation round did not finish");

    println!("== UAV task allocation via wireless BEAT ({n} UAVs, 10% frame loss) ==");
    println!("agreed at {}", sim.now());

    // Decode the agreed claim set (identical on every UAV).
    let reference = sim.behavior(NodeId(0)).blocks().to_vec();
    for (_, node) in sim.behaviors() {
        assert_eq!(node.blocks(), &reference[..], "divergent assignment!");
    }
    let mut assignment: Vec<(u8, u8, u8)> = Vec::new();
    for bundle in &reference[0].txs {
        for c in wbft_consensus::workload::decode_batch(bundle).unwrap_or_default() {
            if c.len() == 4 && c[0] == b'T' {
                assignment.push((c[1], c[2], c[3]));
            }
        }
    }
    // First claim per sector wins (the agreed order is the tie-breaker).
    let mut taken = [false; 8];
    println!("sector assignments (agreed order, first claim wins):");
    for (uav, sector, prio) in assignment {
        if !taken[sector as usize] {
            taken[sector as usize] = true;
            println!("  sector {sector} -> UAV {uav} (priority {prio})");
        }
    }
    println!("all UAVs hold the identical assignment ✓");
}
