//! Command-line front-end for the testbed: pick any of the eight protocol
//! deployments and network settings, get the paper's metrics.
//!
//! ```text
//! cargo run --release --example testbed_cli -- beat --epochs 2 --batch 32
//! cargo run --release --example testbed_cli -- dumbo-sc --multihop
//! cargo run --release --example testbed_cli -- hb-sc-baseline --loss 0.1
//! ```

use wbft_consensus::testbed::{run, TestbedConfig};
use wbft_consensus::Protocol;
use wbft_wireless::LossModel;

fn usage() -> ! {
    eprintln!(
        "usage: testbed_cli <protocol> [--epochs E] [--batch B] [--seed S] \
         [--loss P] [--multihop]\n\
         protocols: hb-lc hb-sc beat dumbo-lc dumbo-sc \
         hb-sc-baseline beat-baseline dumbo-sc-baseline"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let protocol = Protocol::from_slug(&args[0]).unwrap_or_else(|| usage());
    let mut cfg = TestbedConfig::single_hop(protocol);
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--epochs" => cfg.epochs = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--batch" => {
                cfg.workload.batch_size =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--seed" => cfg.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--loss" => {
                let p: f64 = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                cfg.loss = LossModel::Uniform { p };
            }
            "--multihop" => cfg.clusters = Some(4),
            _ => usage(),
        }
    }

    println!("running {} ({} epochs, batch {}, seed {}{})…",
        protocol,
        cfg.epochs,
        cfg.workload.batch_size,
        cfg.seed,
        if cfg.clusters.is_some() { ", multi-hop 4x4" } else { ", single-hop n=4" },
    );
    let report = run(&cfg);
    println!("completed:            {}", report.completed);
    println!("elapsed (simulated):  {:.1}s", report.elapsed.as_secs_f64());
    println!("mean epoch latency:   {:.1}s", report.mean_latency_s);
    println!("throughput:           {:.1} TPM ({} txs)", report.throughput_tpm, report.total_txs);
    println!("channel accesses:     {:.1} per node", report.channel_accesses_per_node);
    println!("bytes on air:         {}", report.bytes_on_air);
    println!("collisions:           {}", report.collisions);
    for (e, lat) in report.epoch_latencies.iter().enumerate() {
        println!("  epoch {e}: {:.1}s", lat.as_secs_f64());
    }
}
