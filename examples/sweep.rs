//! `wbft sweep` — the user-facing scenario-sweep front-end.
//!
//! Expands a cartesian grid of testbed experiments, fans it across worker
//! threads, writes one JSON report per scenario, and prints a results
//! table. With `--verify-serial` it re-runs the whole grid on one thread
//! and byte-compares every report against the parallel run — the CI
//! `sweep-smoke` step drives exactly that.
//!
//! ```text
//! cargo run --release --example sweep -- --protocols beat,hb-sc --seeds 7,8
//! cargo run --release --example sweep -- --protocols all --both --threads 4
//! cargo run --release --example sweep -- --loss 0.0,0.1 --byz silent@1 --verify-serial
//! ```

use std::time::Instant;
use wbft_consensus::fuzz::{campaign, fixture_string, FuzzConfig};
use wbft_consensus::report::{report_root, scenario_string, write_reports};
use wbft_consensus::sweep::{resolve_threads, run_scenarios, SweepSpec};
use wbft_consensus::testbed::{ChurnPlan, CrashEvent, CrashPlan};
use wbft_consensus::{ArrivalSpec, ByzantineMode, Protocol, ServiceConfig};
use wbft_membership::MembershipOp;
use wbft_wireless::LossModel;

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--protocols LIST|all|batched|baselines] [--multihop | --both]\n\
         \x20            [--seeds S1,S2,...] [--epochs E] [--batch B] [--n N]\n\
         \x20            [--loss P1,P2,...] [--byz MODE@NODE,...] [--suites light,medium]\n\
         \x20            [--service IAMSxCOUNT[@CAP]] [--depths W1,W2,...]\n\
         \x20            [--crash NODE@T1-T2,...] [--churn OPS@EPOCH] [--threads T]\n\
         \x20            [--out DIR] [--verify-serial]\n\
         \x20      sweep --fuzz SCENARIOS [--seeds CAMPAIGN_SEED] [--protocols LIST]\n\
         \x20            [--out DIR]\n\
         \n\
         fuzz:      coverage-guided scenario campaign hunting liveness stalls and\n\
         \x20          agreement violations; minimized failures land as replayable\n\
         \x20          fixtures under --out (default target/reports/fuzz) and the\n\
         \x20          exit code is non-zero when any scenario fails\n\
         protocols: hb-lc hb-sc beat dumbo-lc dumbo-sc hb-sc-baseline beat-baseline\n\
         \x20          dumbo-sc-baseline\n\
         byz modes: silent flip corrupt crashN (e.g. crash1@2 = node 2 crashes after\n\
         \x20          1 decided block); each --byz entry is a separate sweep axis value\n\
         service:   adds a live-submission axis next to the fixed-epoch run, e.g.\n\
         \x20          --service 2000x8@64 = one tx every 2000ms per node, 8 per node,\n\
         \x20          mempool capacity 64 (single-hop only; per-tx latency percentiles\n\
         \x20          and mempool drop counts land in the report's \"service\" member)\n\
         depths:    pipeline depths W as a sweep axis, e.g. --depths 1,2,4; W epochs\n\
         \x20          keep their dissemination in flight while earlier epochs finish\n\
         \x20          agreement (W=1 = sequential; single-hop only)\n\
         crash:     adds a crash/churn axis next to the churn-free run, e.g.\n\
         \x20          --crash 2@5-30 = node 2 dies 5s in and restarts at 30s,\n\
         \x20          recovering its journal and catching up via anti-entropy\n\
         \x20          (seconds of simulated time; single-hop, non-service only)\n\
         churn:     adds a dynamic-membership axis next to the static-committee\n\
         \x20          run, e.g. --churn join4+leave0@1 = from epoch 1 the genesis\n\
         \x20          members propose admitting node 4 and retiring node 0; the\n\
         \x20          ops commit on-chain, threshold keys are reshared dealerlessly,\n\
         \x20          and the new committee takes over two epochs after the commit\n\
         \x20          (single-hop, honest, sequential, HoneyBadger-family only)\n\
         reports:   one <label>.json per scenario under --out\n\
         \x20          (default target/reports/sweep); WBFT_SWEEP_THREADS sets the\n\
         \x20          default worker count"
    );
    std::process::exit(2);
}

/// Parses `IAMSxCOUNT[@CAP]` into a service load on the spec's defaults.
fn parse_service(arg: &str) -> ServiceConfig {
    let (rate, cap) = match arg.split_once('@') {
        Some((rate, cap)) => (rate, cap.parse().unwrap_or_else(|_| usage())),
        None => (arg, 256),
    };
    let (interval_ms, count) = rate.split_once('x').unwrap_or_else(|| usage());
    let interval_ms: u64 = interval_ms.parse().unwrap_or_else(|_| usage());
    let per_node: u64 = count.parse().unwrap_or_else(|_| usage());
    ServiceConfig {
        arrivals: ArrivalSpec {
            per_node,
            interval_us: interval_ms * 1_000,
            tx_bytes: 32,
            seed: 1,
        },
        mempool_capacity: cap,
        max_epochs: 256,
    }
}

fn parse_protocols(arg: &str) -> Vec<Protocol> {
    match arg {
        "all" => Protocol::ALL.to_vec(),
        "batched" => Protocol::BATCHED.to_vec(),
        "baselines" => Protocol::BASELINES.to_vec(),
        list => list
            .split(',')
            .map(|slug| Protocol::from_slug(slug).unwrap_or_else(|| usage()))
            .collect(),
    }
}

fn parse_byz(entry: &str) -> (usize, ByzantineMode) {
    let (mode, node) = entry.split_once('@').unwrap_or_else(|| usage());
    let node: usize = node.parse().unwrap_or_else(|_| usage());
    let mode = match mode {
        "silent" => ByzantineMode::Silent,
        "flip" => ByzantineMode::FlipVotes,
        "corrupt" => ByzantineMode::CorruptProposals,
        m => match m.strip_prefix("crash").and_then(|e| e.parse().ok()) {
            Some(after_epoch) => ByzantineMode::Crash { after_epoch },
            None => usage(),
        },
    };
    (node, mode)
}

fn parse_list<T: std::str::FromStr>(arg: &str) -> Vec<T> {
    arg.split(',').map(|v| v.parse().unwrap_or_else(|_| usage())).collect()
}

/// Parses `OPS@EPOCH` (e.g. `join4+leave0@1`): the listed membership ops
/// enter proposals from the given epoch and commit as one change.
fn parse_churn(arg: &str) -> ChurnPlan {
    let (ops, epoch) = arg.rsplit_once('@').unwrap_or_else(|| usage());
    let from_epoch: u64 = epoch.parse().unwrap_or_else(|_| usage());
    let ops = ops
        .split('+')
        .map(|op| {
            if let Some(id) = op.strip_prefix("join") {
                MembershipOp::Join(id.parse().unwrap_or_else(|_| usage()))
            } else if let Some(id) = op.strip_prefix("leave") {
                MembershipOp::Leave(id.parse().unwrap_or_else(|_| usage()))
            } else {
                usage()
            }
        })
        .collect();
    ChurnPlan { from_epoch, ops }
}

/// Parses one `NODE@T1-T2` crash event (seconds of simulated time).
fn parse_crash(entry: &str) -> CrashEvent {
    let (node, window) = entry.split_once('@').unwrap_or_else(|| usage());
    let (at_s, restart_s) = window.split_once('-').unwrap_or_else(|| usage());
    let node: usize = node.parse().unwrap_or_else(|_| usage());
    let at_s: u64 = at_s.parse().unwrap_or_else(|_| usage());
    let restart_s: u64 = restart_s.parse().unwrap_or_else(|_| usage());
    CrashEvent { node, at_us: at_s * 1_000_000, restart_us: restart_s * 1_000_000 }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = SweepSpec::new("sweep");
    spec.protocols = Protocol::ALL.to_vec();
    let mut threads: Option<usize> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut verify_serial = false;
    let mut fuzz_scenarios: Option<u32> = None;
    let mut protocols_set = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match flag.as_str() {
            "--protocols" => {
                spec.protocols = parse_protocols(value());
                protocols_set = true;
            }
            "--fuzz" => fuzz_scenarios = Some(value().parse().unwrap_or_else(|_| usage())),
            "--multihop" => spec.topologies = vec![Some(4)],
            "--both" => spec.topologies = vec![None, Some(4)],
            "--seeds" => spec.seeds = parse_list(value()),
            "--epochs" => spec.epochs = value().parse().unwrap_or_else(|_| usage()),
            "--batch" => spec.batch_size = value().parse().unwrap_or_else(|_| usage()),
            "--n" => spec.n = value().parse().unwrap_or_else(|_| usage()),
            "--loss" => {
                spec.losses = parse_list::<f64>(value())
                    .into_iter()
                    .map(|p| if p == 0.0 { LossModel::None } else { LossModel::Uniform { p } })
                    .collect()
            }
            "--byz" => {
                // Each entry is one placement (one sweep-axis value), next
                // to the all-honest placement.
                let mut placements = vec![Vec::new()];
                placements.extend(value().split(',').map(|e| vec![parse_byz(e)]));
                spec.placements = placements;
            }
            "--suites" => {
                spec.suites = value()
                    .split(',')
                    .map(|s| match s {
                        "light" => wbft_crypto::CryptoSuite::light(),
                        "medium" => wbft_crypto::CryptoSuite::medium(),
                        _ => usage(),
                    })
                    .collect()
            }
            "--service" => {
                // The live-submission load runs next to the fixed-epoch
                // run (each --service value is one extra axis point).
                spec.services = vec![None, Some(parse_service(value()))];
            }
            "--depths" => spec.pipeline_depths = parse_list(value()),
            "--crash" => {
                // One plan with all listed events, next to the churn-free
                // run (the crash axis point mirrors --service's shape).
                let events: Vec<CrashEvent> = value().split(',').map(parse_crash).collect();
                spec.crashes = vec![None, Some(CrashPlan { crashes: events })];
            }
            "--churn" => {
                // The reconfiguring run sits next to the static-committee
                // run (mirrors --service's and --crash's axis shape).
                spec.churns = vec![None, Some(parse_churn(value()))];
            }
            "--threads" => threads = Some(value().parse().unwrap_or_else(|_| usage())),
            "--out" => out = Some(value().into()),
            "--verify-serial" => verify_serial = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    if let Some(scenarios) = fuzz_scenarios {
        let out = out.unwrap_or_else(|| report_root().join("fuzz"));
        let mut cfg = FuzzConfig::smoke(scenarios);
        if let Some(&seed) = spec.seeds.first() {
            cfg.seed = seed;
        }
        if protocols_set {
            cfg.protocols = spec.protocols.clone();
        }
        run_fuzz(&cfg, &out);
        return;
    }

    let out = out.unwrap_or_else(|| report_root().join("sweep"));
    if spec.is_empty() {
        usage();
    }

    // Contradictory axes are configuration bugs, not scenarios — reject
    // them here with the offending axis value's index, like the loss-model
    // validation inside expand(), instead of panicking in a worker thread.
    for (ci, churn) in spec.churns.iter().enumerate() {
        let Some(plan) = churn else { continue };
        for (ti, topo) in spec.topologies.iter().enumerate() {
            if topo.is_some() {
                eprintln!(
                    "sweep: churn axis value #{ci} contradicts topology axis value #{ti} \
                     (clustered) — membership churn is single-hop only"
                );
                std::process::exit(2);
            }
        }
        for (ki, crash) in spec.crashes.iter().enumerate() {
            let Some(crash_plan) = crash else { continue };
            // A crash of a node scheduled to leave is doubly contradictory
            // — name it specifically before the generic rejection.
            for ev in &crash_plan.crashes {
                if plan.ops.contains(&MembershipOp::Leave(ev.node as u16)) {
                    eprintln!(
                        "sweep: churn axis value #{ci} schedules node {} to leave the \
                         committee while crash axis value #{ki} crash-restarts it — \
                         drop one of the two",
                        ev.node
                    );
                    std::process::exit(2);
                }
            }
            eprintln!(
                "sweep: churn axis value #{ci} contradicts crash axis value #{ki} — \
                 membership churn and crash plans do not compose yet"
            );
            std::process::exit(2);
        }
    }

    // Precedence: --threads > WBFT_SWEEP_THREADS > available parallelism
    // (a zero at either level falls through to the next).
    let threads = resolve_threads(threads, |key| std::env::var(key).ok());
    let scenarios = spec.expand();
    println!(
        "sweep: {} scenarios ({} protocols x {} topologies x {} suites x {} loss x {} placements x {} depths x {} crash x {} churn x {} seeds), {} threads",
        scenarios.len(),
        spec.protocols.len(),
        spec.topologies.len(),
        spec.suites.len(),
        spec.losses.len(),
        spec.placements.len(),
        spec.pipeline_depths.len(),
        spec.crashes.len(),
        spec.churns.len(),
        spec.seeds.len(),
        threads,
    );

    let t0 = Instant::now();
    let runs = run_scenarios(&scenarios, threads);
    let parallel_wall = t0.elapsed();
    let paths = write_reports(&out, &runs).unwrap_or_else(|e| {
        eprintln!("cannot write reports to {}: {e}", out.display());
        std::process::exit(1);
    });

    let widths = [46usize, 6, 12, 10, 12];
    println!(
        "\n{}",
        fmt_row(
            &["scenario".into(), "done".into(), "latency (s)".into(), "TPM".into(), "txs".into()],
            &widths
        )
    );
    for run in &runs {
        println!(
            "{}",
            fmt_row(
                &[
                    run.scenario.label.clone(),
                    if run.report.completed { "yes".into() } else { "NO".into() },
                    format!("{:.1}", run.report.mean_latency_s),
                    format!("{:.1}", run.report.throughput_tpm),
                    run.report.total_txs.to_string(),
                ],
                &widths
            )
        );
    }
    println!(
        "\n{} reports written to {} in {:.2}s wall-clock",
        paths.len(),
        out.display(),
        parallel_wall.as_secs_f64()
    );

    if verify_serial {
        println!("verify-serial: re-running all {} scenarios on 1 thread…", scenarios.len());
        let t1 = Instant::now();
        let serial = run_scenarios(&scenarios, 1);
        let serial_wall = t1.elapsed();
        let mut mismatches = 0;
        for (p, s) in runs.iter().zip(&serial) {
            let parallel_text =
                scenario_string(&p.scenario.label, &p.scenario.cfg, &p.report);
            let serial_text = scenario_string(&s.scenario.label, &s.scenario.cfg, &s.report);
            // Also re-read the file: the on-disk bytes must match too.
            let disk = std::fs::read_to_string(out.join(format!("{}.json", p.scenario.label)))
                .unwrap_or_default();
            if parallel_text != serial_text || disk != serial_text {
                eprintln!("MISMATCH: {}", p.scenario.label);
                mismatches += 1;
            } else if wbft_consensus::report::decode_scenario(&disk).is_err() {
                eprintln!("UNPARSEABLE: {}", p.scenario.label);
                mismatches += 1;
            }
        }
        println!(
            "verify-serial: {}/{} reports byte-identical; serial {:.2}s vs parallel {:.2}s ({:.2}x)",
            runs.len() - mismatches,
            runs.len(),
            serial_wall.as_secs_f64(),
            parallel_wall.as_secs_f64(),
            serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9),
        );
        if mismatches > 0 {
            eprintln!("verify-serial FAILED: parallel and serial runs diverged");
            std::process::exit(1);
        }
    }
}

/// Runs a fuzz campaign, writes every minimized failure as a replayable
/// fixture under `out`, and exits non-zero when anything failed.
fn run_fuzz(cfg: &FuzzConfig, out: &std::path::Path) {
    let protocols: Vec<&str> = cfg.protocols.iter().map(|p| p.slug()).collect();
    println!(
        "fuzz: {} scenarios, campaign seed {}, protocols [{}]",
        cfg.scenarios,
        cfg.seed,
        protocols.join(", ")
    );
    let t0 = Instant::now();
    let report = campaign(cfg);
    println!(
        "fuzz: {} executed, {} coverage keys, corpus {}, {} failure(s) in {:.2}s",
        report.executed,
        report.coverage,
        report.corpus,
        report.failures.len(),
        t0.elapsed().as_secs_f64()
    );
    if report.failures.is_empty() {
        return;
    }
    std::fs::create_dir_all(out).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", out.display());
        std::process::exit(1);
    });
    for f in &report.failures {
        let path = out.join(format!("{}.json", f.case.label));
        let text = fixture_string(&f.case, f.outcome.verdict);
        std::fs::write(&path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        eprintln!(
            "FAILURE: {} -> {} (events {}, blocks {}) fixture {}",
            f.case.label,
            f.outcome.verdict.name(),
            f.outcome.events,
            f.outcome.blocks,
            path.display()
        );
    }
    eprintln!(
        "fuzz FAILED: {} scenario(s) stalled or diverged; fixtures in {}",
        report.failures.len(),
        out.display()
    );
    std::process::exit(1);
}

/// Left-align the first column, right-align the rest.
fn fmt_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .enumerate()
        .map(|(i, (c, w))| {
            if i == 0 { format!("{c:<w$}", w = w) } else { format!("{c:>w$}", w = w) }
        })
        .collect::<Vec<_>>()
        .join("  ")
}
