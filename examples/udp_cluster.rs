//! `wbft udp_cluster` — multi-process consensus over loopback UDP.
//!
//! The launcher (default mode) allocates loopback ports, writes one
//! cluster document (testbed config + peer table) per protocol, spawns
//! `n` child *processes* of this same binary, and waits for them. Each
//! child binds its UDP socket, deals the shared deterministic key material
//! from the config seed, and runs the **unmodified** `NodeBehavior`
//! protocol code over real sockets via `wbft_consensus::netrun` /
//! `wbft-transport`, writing one `RunReport` JSON per node. The launcher
//! then cross-checks the reports: every node must complete and commit the
//! same transaction count.
//!
//! ```text
//! cargo run --release --example udp_cluster -- --n 4 --protocols hb-sc,dumbo-sc
//! cargo run --release --example udp_cluster -- --protocols beat --epochs 2 --batch 16
//! ```
//!
//! Reports land under `--out` (default `target/reports/udp/`), one
//! `<slug>/node<i>.json` per node, in the same schema sweep reports use.
//! Exit status is non-zero on any missing/empty report, child failure,
//! disagreement, or timeout — the CI loopback smoke step relies on that.

use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::Duration;

#[path = "support/mod.rs"]
mod support;
use support::{allocate_loopback_table, wait_all};
use wbft_consensus::netrun::run_udp_node;
use wbft_consensus::report::{report_root, scenario_json};
use wbft_consensus::{Protocol, TestbedConfig};
use wbft_report::{field, Json, ToJson};
use wbft_transport::PeerTable;

fn usage() -> ! {
    eprintln!(
        "usage: udp_cluster [--n N] [--protocols LIST] [--epochs E] [--batch B]\n\
         \x20                  [--seed S] [--out DIR] [--wall-secs W]\n\
         \n\
         Spawns N local processes per protocol and runs consensus over\n\
         loopback UDP. N must satisfy n = 3f+1 (4, 7, 10, ...). Default\n\
         protocols: hb-sc,dumbo-sc. Reports: <out>/<slug>/node<i>.json"
    );
    std::process::exit(2);
}

/// Everything a child process needs, in one JSON document.
struct ClusterDoc {
    cfg: TestbedConfig,
    peers: PeerTable,
    wall_secs: u64,
    linger_ms: u64,
}

impl ClusterDoc {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", self.cfg.to_json()),
            ("peers", self.peers.to_json()),
            ("wall_secs", Json::u64(self.wall_secs)),
            ("linger_ms", Json::u64(self.linger_ms)),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, wbft_report::JsonError> {
        Ok(ClusterDoc {
            cfg: field(j, "config")?,
            peers: field(j, "peers")?,
            wall_secs: field(j, "wall_secs")?,
            linger_ms: field(j, "linger_ms")?,
        })
    }
}

fn child_main(me: usize, cluster_path: &Path, out_dir: &Path) -> ! {
    let doc = wbft_report::read_file(cluster_path)
        .unwrap_or_else(|e| fatal(&format!("read {}: {e}", cluster_path.display())));
    let doc = ClusterDoc::from_json(&doc)
        .unwrap_or_else(|e| fatal(&format!("parse {}: {e}", cluster_path.display())));
    let outcome = run_udp_node(
        &doc.cfg,
        doc.peers,
        me,
        Duration::from_secs(doc.wall_secs),
        Duration::from_millis(doc.linger_ms),
    )
    .unwrap_or_else(|e| fatal(&format!("node {me}: {e}")));
    let label = format!("udp.{}.node{me}", doc.cfg.protocol.slug());
    let report_path = out_dir.join(format!("node{me}.json"));
    let mut scenario = scenario_json(&label, &doc.cfg, &outcome.report);
    // Per-block content digests: the launcher compares these across nodes,
    // so divergent-but-equal-sized commits fail loudly.
    if let Json::Obj(members) = &mut scenario {
        members.push((
            "block_digests".into(),
            Json::arr(outcome.block_digests.iter().map(|d| Json::str(hex::encode(d.0)))),
        ));
    }
    wbft_report::write_file(&report_path, &scenario)
        .unwrap_or_else(|e| fatal(&format!("write {}: {e}", report_path.display())));
    eprintln!(
        "node {me}: completed={} txs={} accesses={} drops(malformed={}, foreign={})",
        outcome.report.completed,
        outcome.report.total_txs,
        outcome.report.metrics.total_channel_accesses(),
        outcome.stats.drops_malformed,
        outcome.stats.drops_foreign,
    );
    // Report written either way; the exit code tells the launcher whether
    // this node finished its epochs.
    std::process::exit(if outcome.report.completed { 0 } else { 3 });
}

fn fatal(msg: &str) -> ! {
    eprintln!("udp_cluster: {msg}");
    std::process::exit(1);
}

/// Runs one protocol's cluster; returns `true` on full success.
fn run_cluster(cfg: &TestbedConfig, out_dir: &Path, wall_secs: u64) -> bool {
    let slug = cfg.protocol.slug();
    let peers = allocate_loopback_table(cfg.n);
    let doc = ClusterDoc { cfg: cfg.clone(), peers, wall_secs, linger_ms: 3_000 };
    std::fs::create_dir_all(out_dir).expect("create out dir");
    let cluster_path = out_dir.join("cluster.json");
    wbft_report::write_file(&cluster_path, &doc.to_json()).expect("write cluster doc");

    let exe = std::env::current_exe().expect("current exe");
    let mut children: Vec<(usize, Child)> = (0..cfg.n)
        .map(|me| {
            let child = Command::new(&exe)
                .arg("--node")
                .arg(me.to_string())
                .arg("--cluster")
                .arg(&cluster_path)
                .arg("--out")
                .arg(out_dir)
                .spawn()
                .unwrap_or_else(|e| fatal(&format!("spawn node {me}: {e}")));
            (me, child)
        })
        .collect();
    // Children stop on their own wall deadline; give them a little extra
    // before the launcher starts killing.
    let ok = wait_all(&mut children, Duration::from_secs(wall_secs + 15));

    let mut success = true;
    for (me, child_ok) in ok.iter().enumerate() {
        if !child_ok {
            eprintln!("{slug}: node {me} failed or timed out");
            success = false;
        }
    }
    // Cross-check the per-node reports even when some child failed — the
    // report files are the artifact CI asserts on.
    let mut txs = Vec::new();
    let mut chains: Vec<Vec<String>> = Vec::new();
    for me in 0..cfg.n {
        let path = out_dir.join(format!("node{me}.json"));
        match std::fs::metadata(&path) {
            Ok(m) if m.len() > 0 => {}
            _ => {
                eprintln!("{slug}: missing or empty report {}", path.display());
                success = false;
                continue;
            }
        }
        match wbft_report::read_file(&path) {
            Ok(doc) => match doc.get("block_digests").and_then(Json::as_arr) {
                Some(arr) => chains.push(
                    arr.iter().map(|d| d.as_str().unwrap_or_default().to_string()).collect(),
                ),
                None => {
                    eprintln!("{slug}: report {} lacks block_digests", path.display());
                    success = false;
                }
            },
            Err(e) => {
                eprintln!("{slug}: unreadable report {}: {e}", path.display());
                success = false;
            }
        }
        match wbft_consensus::report::read_report(&path) {
            Ok((label, _cfg, report)) => {
                println!(
                    "{label}: completed={} elapsed={:.1}s txs={} accesses/node={:.1} \
                     bytes_on_air={}",
                    report.completed,
                    report.elapsed.as_secs_f64(),
                    report.total_txs,
                    report.channel_accesses_per_node,
                    report.bytes_on_air,
                );
                if !report.completed || report.total_txs == 0 {
                    success = false;
                }
                txs.push(report.total_txs);
            }
            Err(e) => {
                eprintln!("{slug}: unreadable report {}: {e}", path.display());
                success = false;
            }
        }
    }
    if !txs.is_empty() && !txs.windows(2).all(|w| w[0] == w[1]) {
        eprintln!("{slug}: AGREEMENT VIOLATION — per-node commit counts {txs:?}");
        success = false;
    }
    // Content agreement: equal tx counts are not enough — the per-block
    // digest chains must be identical (fixed-epoch runs end level, so this
    // is full equality, not merely a common prefix).
    for (me, chain) in chains.iter().enumerate().skip(1) {
        if *chain != chains[0] {
            eprintln!(
                "{slug}: AGREEMENT VIOLATION — node {me}'s block contents diverge \
                 (digest chain {:?}... vs node 0's {:?}...)",
                &chain[..chain.len().min(2)],
                &chains[0][..chains[0].len().min(2)],
            );
            success = false;
        }
    }
    if chains.iter().any(|c| c.is_empty()) {
        eprintln!("{slug}: a node committed no blocks");
        success = false;
    }
    if success {
        println!(
            "{slug}: {} nodes agreed on {} txs ({} blocks, identical contents) over loopback UDP",
            cfg.n,
            txs[0],
            chains[0].len()
        );
    }
    success
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Child mode: --node I --cluster PATH --out DIR.
    if args.first().map(String::as_str) == Some("--node") {
        let mut me = None;
        let mut cluster = None;
        let mut out = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
            match flag.as_str() {
                "--node" => me = value().parse().ok(),
                "--cluster" => cluster = Some(PathBuf::from(value())),
                "--out" => out = Some(PathBuf::from(value())),
                _ => usage(),
            }
        }
        match (me, cluster, out) {
            (Some(me), Some(cluster), Some(out)) => child_main(me, &cluster, &out),
            _ => usage(),
        }
    }

    // Launcher mode.
    let mut n = 4usize;
    let mut protocols = vec![Protocol::HoneyBadgerSc, Protocol::DumboSc];
    let mut epochs = 1u64;
    let mut batch = 8usize;
    let mut seed = 7u64;
    let mut wall_secs = 120u64;
    let mut out = report_root().join("udp");
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match flag.as_str() {
            "--n" => n = value().parse().unwrap_or_else(|_| usage()),
            "--protocols" => {
                protocols = value()
                    .split(',')
                    .map(|slug| Protocol::from_slug(slug).unwrap_or_else(|| usage()))
                    .collect()
            }
            "--epochs" => epochs = value().parse().unwrap_or_else(|_| usage()),
            "--batch" => batch = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--wall-secs" => wall_secs = value().parse().unwrap_or_else(|_| usage()),
            "--out" => out = value().into(),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if n < 4 || !(n - 1).is_multiple_of(3) {
        eprintln!("--n must satisfy n = 3f+1 >= 4 (4, 7, 10, ...)");
        std::process::exit(2);
    }

    let mut all_ok = true;
    for protocol in protocols {
        let mut cfg = TestbedConfig::single_hop(protocol);
        cfg.n = n;
        cfg.epochs = epochs;
        cfg.workload.batch_size = batch;
        cfg.seed = seed;
        let dir = out.join(protocol.slug());
        if !run_cluster(&cfg, &dir, wall_secs) {
            all_ok = false;
        }
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
