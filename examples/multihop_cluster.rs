//! Multi-hop clustered consensus (paper §V-B, Fig. 8): sixteen smart cars
//! in four clusters, each cluster a single-hop network on its own channel;
//! rotating cluster leaders carry local decisions onto a routed global
//! overlay where a second consensus instance orders all clusters' blocks.
//!
//! ```text
//! cargo run --release --example multihop_cluster
//! ```

use wbft_consensus::testbed::{run, TestbedConfig};
use wbft_consensus::Protocol;

fn main() {
    let mut cfg = TestbedConfig::multi_hop(Protocol::Beat);
    cfg.epochs = 1;
    cfg.workload.batch_size = 16;
    cfg.seed = 5;
    let report = run(&cfg);
    assert!(report.completed, "multi-hop consensus must finish");

    println!("== multi-hop wireless BEAT: 4 clusters x 4 nodes ==");
    println!("local consensus per cluster, global consensus among rotating leaders");
    println!(
        "epoch latency {:.1}s (local + global tiers), {} txs ordered globally",
        report.mean_latency_s, report.total_txs
    );
    println!(
        "throughput {:.1} TPM across the whole deployment; {:.1} channel accesses/node",
        report.throughput_tpm, report.channel_accesses_per_node
    );
    println!("(single-hop comparison: run `--example quickstart`)");
}
