//! Collective map construction — robots agreeing on merged feature updates
//! (paper intro: "collective map construction").
//!
//! Seven ground robots (n = 3f+1 with f = 2) run wireless
//! HoneyBadgerBFT-SC for two epochs; each epoch every robot proposes the
//! map cells it newly observed, and the agreed blocks define the canonical
//! shared map that all robots apply in the same order.
//!
//! ```text
//! cargo run --release --example map_merge_swarm
//! ```

use rand::SeedableRng;
use std::collections::BTreeMap;
use wbft_components::deal_node_crypto;
use wbft_consensus::driver::ProtocolNode;
use wbft_consensus::honeybadger::hb_sc;
use wbft_consensus::{StopCondition, Workload};
use wbft_crypto::CryptoSuite;
use wbft_wireless::{ChannelId, NodeId, RadioParams, SimConfig, SimTime, Simulator, Topology};

fn main() {
    let n = 7; // f = 2
    let epochs = 2;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2030);
    let crypto = deal_node_crypto(n, CryptoSuite::light(), &mut rng);

    // Map updates ride as the synthetic workload: each "transaction" is one
    // observed cell update, deterministic per (robot, epoch).
    let workload = Workload { batch_size: 6, tx_bytes: 12, seed: 99 };

    let behaviors: Vec<_> = crypto
        .into_iter()
        .map(|c| ProtocolNode::new(hb_sc(c.clone(), workload.clone(), StopCondition::Epochs(epochs)), c, ChannelId(0)))
        .collect();

    // A faster (BLE-class) radio: seven nodes on LoRa would crawl.
    let cfg = SimConfig { seed: 11, radio: RadioParams::ble_class(), ..SimConfig::default() };
    let mut sim = Simulator::new(cfg, Topology::single_hop(n), behaviors);
    let done = sim.run_until_pred(SimTime::from_micros(3_600_000_000), |s| {
        s.behaviors().all(|(_, b)| b.is_done())
    });
    assert!(done, "map merge did not finish");

    println!("== collective map construction: {n} robots, {epochs} epochs (HB-SC) ==");
    println!("completed at {}", sim.now());

    // Apply the agreed update stream into a shared map; every robot gets
    // the identical result because blocks are identical.
    let reference = sim.behavior(NodeId(0)).blocks().to_vec();
    for (_, node) in sim.behaviors() {
        assert_eq!(node.blocks(), &reference[..]);
    }
    let mut map: BTreeMap<(u8, u8), u8> = BTreeMap::new();
    let mut updates = 0;
    for block in &reference {
        for tx in &block.txs {
            // Interpret the first three bytes as (x, y, value).
            if tx.len() >= 3 {
                map.insert((tx[0] % 16, tx[1] % 16), tx[2]);
                updates += 1;
            }
        }
    }
    println!("applied {updates} cell updates -> {} distinct cells", map.len());
    println!("every robot holds the identical map ✓");
    for (id, node) in sim.behaviors().take(3) {
        let t = node.clock().completed.last().copied().unwrap_or(SimTime::ZERO);
        println!("  {id}: final epoch decided at {t}");
    }
}
