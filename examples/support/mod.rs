//! Shared scaffolding for the multi-process cluster examples
//! (`udp_cluster`, `service_cluster`). Not an example itself — each
//! launcher pulls it in with `#[path = "support/mod.rs"] mod support;`.

use std::process::Child;
use std::time::{Duration, Instant};
use wbft_transport::PeerTable;

/// Binds `n` ephemeral loopback ports and releases them for the children.
/// (The small bind/re-bind race window is acceptable on a lab loopback.)
pub fn allocate_loopback_table(n: usize) -> PeerTable {
    let sockets: Vec<std::net::UdpSocket> = (0..n)
        .map(|_| std::net::UdpSocket::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    let ports: Vec<u16> =
        sockets.iter().map(|s| s.local_addr().expect("local addr").port()).collect();
    drop(sockets);
    PeerTable::loopback(&ports)
}

/// Waits for all children within `deadline`; kills stragglers. Returns the
/// per-child success flags.
pub fn wait_all(children: &mut [(usize, Child)], deadline: Duration) -> Vec<bool> {
    let start = Instant::now();
    let mut done = vec![None; children.len()];
    while done.iter().any(Option::is_none) && start.elapsed() < deadline {
        for (slot, (_, child)) in done.iter_mut().zip(children.iter_mut()) {
            if slot.is_none() {
                if let Ok(Some(status)) = child.try_wait() {
                    *slot = Some(status.success());
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    for (slot, (me, child)) in done.iter_mut().zip(children.iter_mut()) {
        if slot.is_none() {
            eprintln!("node {me}: wall-clock timeout — killing");
            let _ = child.kill();
            let _ = child.wait();
            *slot = Some(false);
        }
    }
    done.into_iter().map(|s| s.unwrap_or(false)).collect()
}
