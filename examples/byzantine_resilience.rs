//! Byzantine resilience: one of four nodes actively misbehaves — flipping
//! every binary vote it sends — and the three honest nodes still commit
//! identical blocks (the f = 1 tolerance of n = 3f + 1 = 4).
//!
//! ```text
//! cargo run --release --example byzantine_resilience
//! ```

use wbft_consensus::testbed::{run, TestbedConfig};
use wbft_consensus::{ByzantineMode, Protocol};
use wbft_wireless::LossModel;

fn main() {
    println!("== Byzantine resilience: HoneyBadgerBFT-SC, 4 nodes, node 3 adversarial ==");
    for (label, mode) in [
        ("vote flipper", ByzantineMode::FlipVotes),
        ("fail-silent", ByzantineMode::Silent),
        ("proposal corrupter", ByzantineMode::CorruptProposals),
    ] {
        let mut cfg = TestbedConfig::single_hop(Protocol::HoneyBadgerSc);
        cfg.epochs = 1;
        cfg.workload.batch_size = 8;
        cfg.byzantine = vec![(3, mode)];
        cfg.loss = LossModel::Uniform { p: 0.05 };
        cfg.seed = 17;
        let report = run(&cfg); // run() asserts honest-node agreement
        assert!(report.completed, "{label}: honest nodes must still commit");
        println!(
            "  {label:<18} -> committed {} txs in {:.1}s (honest nodes agree ✓)",
            report.total_txs, report.mean_latency_s
        );
    }
    println!("safety and liveness hold with f = 1 Byzantine node under 5% frame loss ✓");
}
