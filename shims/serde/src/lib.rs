#![forbid(unsafe_code)]
//! Offline stand-in for `serde`.
//!
//! See the `serde_derive` shim for rationale: the derives are no-ops and
//! these traits are blanket-implemented markers, so `#[derive(Serialize)]`
//! annotations compile and express intent without pulling in real serde.
//! Replace this shim with the real crate when the build environment has
//! registry access and serialization is actually needed.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}
