#![forbid(unsafe_code)]
//! Offline stand-in for the `bytes` crate: cheaply-cloneable immutable
//! [`Bytes`] (an `Arc<[u8]>` window), a growable [`BytesMut`], and the
//! [`Buf`] / [`BufMut`] traits. Only the subset this workspace uses is
//! implemented; semantics match upstream for that subset.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, reference-counted byte buffer. `clone` and `slice` are O(1)
/// and share the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(slice);
        Bytes { start: 0, end: data.len(), data }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-window sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes { start: 0, end: data.len(), data }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src)
    }

    pub fn clear(&mut self) {
        self.inner.clear()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.inner).fmt(f)
    }
}

/// Write-side trait. `put_slice` is the only required method; everything
/// else has a default in terms of it, so external sinks (e.g. the
/// byte-counting `Sizing` sink in `wbft-net`) only implement one method.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.put_slice(&vec![val; cnt]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src)
    }
}

/// Read-side trait over a byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_ref(), &[3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bytes_mut_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16_le(0x0102);
        m.put_u64_le(0x1122334455667788);
        m.put_slice(b"xy");
        let frozen = m.freeze();
        assert_eq!(
            frozen.as_ref(),
            &[7, 0x02, 0x01, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, b'x', b'y']
        );
    }

    #[test]
    fn buf_cursor_reads() {
        let data = [1u8, 0x34, 0x12, 9];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.get_u8(), 1);
        assert_eq!(cur.get_u16_le(), 0x1234);
        assert_eq!(cur.remaining(), 1);
    }

    #[test]
    fn equality_across_forms() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_eq!(Bytes::from("abc".to_string()), Bytes::from_static(b"abc"));
    }
}
