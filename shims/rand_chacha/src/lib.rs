#![forbid(unsafe_code)]
//! Offline stand-in for the `rand_chacha` crate: a ChaCha12 RNG over the
//! shared ChaCha core in the `rand` shim. Deterministic and self-consistent;
//! not bit-compatible with upstream `rand_chacha` (nothing in this workspace
//! relies on upstream streams).

use rand::chacha::ChaChaCore;
use rand::{RngCore, SeedableRng};

/// ChaCha with 12 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng(ChaChaCore<12>);

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha12Rng(ChaChaCore::from_seed(seed))
    }
}

/// ChaCha with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng(ChaChaCore<8>);

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha8Rng(ChaChaCore::from_seed(seed))
    }
}

/// ChaCha with 20 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha20Rng(ChaChaCore<20>);

impl RngCore for ChaCha20Rng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

impl SeedableRng for ChaCha20Rng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha20Rng(ChaChaCore::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn round_counts_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(1);
        let mut c = ChaCha20Rng::seed_from_u64(1);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert!(x != y && y != z && x != z);
    }
}
