#![forbid(unsafe_code)]
//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates wire/config types with
//! `#[derive(serde::Serialize, serde::Deserialize)]` so a future PR can turn
//! on real serialization, but nothing currently serializes through serde (the
//! wire format is hand-rolled in `wbft-net::wire`). These derives therefore
//! expand to nothing; the marker traits live in the `serde` shim and are
//! blanket-implemented.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
