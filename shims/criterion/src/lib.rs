#![forbid(unsafe_code)]
//! Offline stand-in for `criterion`.
//!
//! The five paper-figure benches in `wbft-bench` are plain `fn main`
//! programs (`harness = false`) and do not use criterion today; this shim
//! exists so future statistical microbenchmarks can be written against the
//! familiar API (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `iter`, `black_box`) and upgraded in place once registry access exists.
//! It reports a simple mean over a fixed iteration count — no warmup,
//! outlier analysis, or HTML reports.

use std::time::Instant;

pub struct Criterion {
    iterations: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iterations: 100 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iterations: self.iterations, total_ns: 0, iters_run: 0 };
        f(&mut b);
        let mean = if b.iters_run > 0 { b.total_ns / b.iters_run as u128 } else { 0 };
        println!("{name:<40} {mean:>12} ns/iter ({} iters)", b.iters_run);
        self
    }
}

pub struct Bencher {
    iterations: u32,
    total_ns: u128,
    iters_run: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.iterations {
            let t = Instant::now();
            black_box(f());
            self.total_ns += t.elapsed().as_nanos();
            self.iters_run += 1;
        }
    }
}

/// Identity function that defeats constant-propagation of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_closure() {
        let mut c = super::Criterion { iterations: 3 };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| ran += 1);
        });
        assert_eq!(ran, 3);
    }
}
