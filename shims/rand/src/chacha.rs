//! ChaCha block function used by [`crate::rngs::StdRng`] and the
//! `rand_chacha` shim, plus the SplitMix64 seed expander.
//!
//! The permutation is the standard ChaCha quarter-round network (RFC 8439
//! layout, 64-bit block counter, zero nonce). Output is consumed as a byte
//! stream, so interleaving `next_u32` / `next_u64` / `fill_bytes` calls in
//! any split yields the same bytes.

/// SplitMix64 — used only to expand a `u64` seed into key material.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// ChaCha stream generator with `R` rounds (R = 8, 12 or 20).
#[derive(Clone, Debug)]
pub struct ChaChaCore<const R: usize> {
    key: [u32; 8],
    counter: u64,
    buf: [u8; 64],
    /// Next unread byte in `buf`; 64 means "refill before reading".
    pos: usize,
}

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const R: usize> ChaChaCore<R> {
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaChaCore { key, counter: 0, buf: [0u8; 64], pos: 64 }
    }

    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[0] = 0x6170_7865; // "expa"
        s[1] = 0x3320_646e; // "nd 3"
        s[2] = 0x7962_2d32; // "2-by"
        s[3] = 0x6b20_6574; // "te k"
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let input = s;
        for _ in 0..R / 2 {
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            let word = s[i].wrapping_add(input[i]);
            self.buf[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.pos = 0;
    }

    fn take(&mut self, out: &mut [u8]) {
        let mut filled = 0;
        while filled < out.len() {
            if self.pos == 64 {
                self.refill();
            }
            let n = (out.len() - filled).min(64 - self.pos);
            out[filled..filled + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            filled += n;
        }
    }

    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.take(&mut b);
        u32::from_le_bytes(b)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.take(&mut b);
        u64::from_le_bytes(b)
    }

    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.take(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_differ_and_stream_is_stable() {
        let mut a = ChaChaCore::<12>::from_seed([1u8; 32]);
        let mut b = ChaChaCore::<12>::from_seed([1u8; 32]);
        let first = a.next_u64();
        // 16 more words crosses the block boundary.
        let later: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        assert_eq!(first, b.next_u64());
        assert_eq!(later, (0..16).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert!(later.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn key_separation() {
        let mut a = ChaChaCore::<12>::from_seed([1u8; 32]);
        let mut b = ChaChaCore::<12>::from_seed([2u8; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
