#![forbid(unsafe_code)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this API-compatible subset of rand 0.9: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits, a ChaCha-backed [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. Streams are deterministic and self-consistent but
//! are **not** bit-compatible with upstream rand; all determinism tests in
//! this workspace compare runs against each other, never against external
//! vectors, so that is sufficient.

pub mod chacha;

/// Low-level uniform bit generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can serve as the uniform-sampling output of [`Rng::random_range`].
pub trait SampleUniform: Sized {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => { $(impl SampleUniform for $t {})* };
}
impl_sample_uniform!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 uniform mantissa bits, the usual open-interval construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Helper for [`Rng::random`].
pub trait Random: Sized {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = crate::chacha::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (ChaCha12-backed).
    #[derive(Clone, Debug)]
    pub struct StdRng(crate::chacha::ChaChaCore<12>);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(crate::chacha::ChaChaCore::from_seed(seed))
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling / choosing, as in `rand::seq`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }

    impl<T> SliceRandom for Vec<T> {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            self.as_mut_slice().shuffle(rng)
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            self.as_slice().choose(rng)
        }
    }

    // Silence "unused import" if only one of Rng/RngCore ends up used here.
    const _: fn(&mut dyn RngCore) = |_| {};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_streams_consistently() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 37];
        a.fill_bytes(&mut buf);
        let mut expect = [0u8; 37];
        b.fill_bytes(&mut expect[..16]);
        b.fill_bytes(&mut expect[16..]);
        assert_eq!(buf, expect);
    }
}
