#![forbid(unsafe_code)]
//! Offline stand-in for the `hex` crate.

/// Lower-case hex encoding.
pub fn encode(data: impl AsRef<[u8]>) -> String {
    let mut out = String::with_capacity(data.as_ref().len() * 2);
    for b in data.as_ref() {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

/// Hex decoding (accepts upper or lower case).
pub fn decode(s: impl AsRef<[u8]>) -> Result<Vec<u8>, FromHexError> {
    let s = s.as_ref();
    if s.len() % 2 != 0 {
        return Err(FromHexError::OddLength);
    }
    s.chunks(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16).ok_or(FromHexError::InvalidHexCharacter)?;
            let lo = (pair[1] as char).to_digit(16).ok_or(FromHexError::InvalidHexCharacter)?;
            Ok((hi << 4 | lo) as u8)
        })
        .collect()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FromHexError {
    InvalidHexCharacter,
    OddLength,
}

impl std::fmt::Display for FromHexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FromHexError::InvalidHexCharacter => write!(f, "invalid hex character"),
            FromHexError::OddLength => write!(f, "odd number of hex digits"),
        }
    }
}

impl std::error::Error for FromHexError {}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        assert_eq!(super::encode([0xde, 0xad, 0xbe, 0xef]), "deadbeef");
        assert_eq!(super::decode("DeadBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert!(super::decode("abc").is_err());
        assert!(super::decode("zz").is_err());
    }
}
