#![forbid(unsafe_code)]
//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, `any::<T>()`,
//! integer-range and tuple strategies, [`collection::vec`],
//! [`prop_oneof!`], `prop_assert*` / `prop_assume!`, and
//! [`ProptestConfig::with_cases`] (overridable via the `PROPTEST_CASES`
//! environment variable).
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its inputs and seed, unshrunk;
//! * case generation is a fixed deterministic schedule per test name, so
//!   failures always reproduce (print `PROPTEST_CASES`-independent seeds).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Error signalling inside a generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not a failure.
    Reject,
    /// `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values. Unlike real proptest there is no value tree:
/// `new_value` produces the final value directly.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
    }
}

/// Boxed strategy (object-safe form).
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_filter`]. Rejection loops (bounded) instead of
/// discarding the whole case.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// An erased strategy arm inside a [`Union`].
type ArmFn<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between strategies of a common value type; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<ArmFn<T>>,
}

impl<T> Union<T> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    pub fn arm(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
        self.arms.push(Box::new(move |rng| s.new_value(rng)));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Types with a canonical strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly unit-interval values; enough for probabilities.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = (rng.next_u64() % 65) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = (rng.next_u64() % 33) as usize;
        (0..len)
            .map(|_| char::from_u32(0x20 + (rng.next_u64() % 0x5f) as u32).unwrap())
            .collect()
    }
}

// Integer ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies are strategies over tuples of values.
macro_rules! impl_tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S1);
impl_tuple_strategy!(S1, S2);
impl_tuple_strategy!(S1, S2, S3);
impl_tuple_strategy!(S1, S2, S3, S4);
impl_tuple_strategy!(S1, S2, S3, S4, S5);
impl_tuple_strategy!(S1, S2, S3, S4, S5, S6);
impl_tuple_strategy!(S1, S2, S3, S4, S5, S6, S7);
impl_tuple_strategy!(S1, S2, S3, S4, S5, S6, S7, S8);

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Length specification for [`vec`]: a fixed length or a range.
    pub trait IntoLen {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + (rng.next_u64() as usize % (self.end - self.start))
        }
    }

    impl IntoLen for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start() + (rng.next_u64() as usize % (self.end() - self.start() + 1))
        }
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.sample_len(rng);
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Strategy for vectors of `elem`-generated values.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// `proptest::collection::vec(strategy, len_or_range)`.
    pub fn vec<S: Strategy, L: IntoLen>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

/// Drives one generated test; used by the [`proptest!`] expansion.
pub fn run_cases<F>(test_name: &str, config: ProptestConfig, body: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases)
        .max(1);
    // Stable per-test seed: same schedule on every run and every machine.
    let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        name_hash ^= b as u64;
        name_hash = name_hash.wrapping_mul(0x1000_0000_01b3);
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = cases.saturating_mul(16).max(1024);
    let mut case_index = 0u64;
    while passed < cases {
        let seed = name_hash ^ case_index;
        case_index += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{test_name}: too many prop_assume! rejections \
                         ({rejected} rejects for {passed}/{cases} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed at case #{} (seed {seed:#x}):\n{msg}",
                    passed + 1
                );
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new()$(.arm($arm))+
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), $cfg, |__proptest_rng| {
                $(let $pat = $crate::Strategy::new_value(&($strat), __proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    /// `prop::collection::...` paths used in some idioms.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn ranges_in_bounds(x in 3u8..9, v in crate::collection::vec(0usize..5, 0..7)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 7);
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn oneof_and_map(y in prop_oneof![(0u8..1).prop_map(|_| 10u8), (0u8..1).prop_map(|_| 20u8)]) {
            prop_assert!(y == 10 || y == 20);
        }

        #[test]
        fn assume_discards(n in any::<u8>()) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        crate::run_cases("failures_panic", ProptestConfig::with_cases(4), |rng| {
            let v = crate::Strategy::new_value(&(0u8..3), rng);
            crate::prop_assert!(v > 200, "deliberately false, v={}", v);
            Ok(())
        });
    }
}
