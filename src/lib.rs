#![forbid(unsafe_code)]
//! # wbft — reproduction of *Asynchronous BFT Consensus Made Wireless*
//!
//! Facade crate re-exporting the workspace layers under one roof:
//!
//! * [`crypto`] — threshold signatures / coins / encryption, Schnorr,
//!   Merkle, and the paper's calibrated curve cost profiles;
//! * [`net`] — ConsensusBatcher packet layouts, NACK bitmaps,
//!   retransmission policy, Table I overhead closed forms;
//! * [`wireless`] — deterministic LoRa-style single-channel simulator
//!   (CSMA/CA, capture, loss models, adversaries);
//! * [`components`] — batched RBC / CBC / PRBC / ABA and their
//!   per-instance baselines;
//! * [`consensus`] — HoneyBadger / BEAT / Dumbo deployments, Byzantine
//!   behaviours, multi-hop clustering, the [`consensus::testbed`], the
//!   parallel scenario-sweep harness ([`consensus::sweep`]), and the
//!   client-facing service API ([`consensus::service`]: bounded mempool,
//!   consensus handles, streaming commits);
//! * [`transport`] — real UDP runtime for the same sans-io protocol code,
//!   plus the client-submission channel external processes use;
//! * [`report`] — minimal JSON codec behind the machine-readable
//!   `target/reports/*.json` sweep reports.
//!
//! The repository-level integration tests and examples are built against
//! this crate; see the individual crates for the real API surface.

pub use wbft_components as components;
pub use wbft_consensus as consensus;
pub use wbft_crypto as crypto;
pub use wbft_net as net;
pub use wbft_report as report;
pub use wbft_transport as transport;
pub use wbft_wireless as wireless;
