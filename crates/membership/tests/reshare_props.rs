//! Property tests for the dealerless resharing ceremony and the key-epoch
//! hygiene of the share buffers.
//!
//! The ceremony's whole contract is "the group secret never moves": for
//! *any* supported committee change and *any* quorum-sized subset of the
//! rolled shares, signatures and coins combined by the new committee must
//! verify under the genesis public keys, while shares from the superseded
//! sharing must die at the door. Unit tests pin one swap; these tests walk
//! random committee sizes, random leave/join sets, random deal-absorption
//! orders and random combine subsets.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use wbft_components::{deal_node_crypto, CoinShareBuf, NodeCrypto, SigShareBuf};
use wbft_crypto::profile::CryptoSuite;
use wbft_crypto::thresh_coin::CoinName;
use wbft_crypto::{thresh_coin, thresh_sig, ThresholdCurve};
use wbft_membership::{CommitteeLog, DealSet, MembershipOp, ReshareCeremony};

/// Fisher–Yates over a copy; the shim's `StdRng` is deterministic per seed
/// so every failing case replays exactly.
fn shuffled<T: Copy>(items: &[T], rng: &mut impl RngCore) -> Vec<T> {
    let mut v = items.to_vec();
    for i in (1..v.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// A random supported change from a genesis committee of `n_old` to some
/// committee of `n_new`: a random leave set topped up with fresh joiner
/// ids. Guaranteed non-no-op, so `CommitteeLog::on_commit` accepts it.
fn random_ops(n_old: usize, n_new: usize, rng: &mut impl RngCore) -> Vec<MembershipOp> {
    let min_leaves = n_old.saturating_sub(n_new);
    let mut leaves = min_leaves + (rng.next_u64() as usize) % (n_old - min_leaves + 1);
    if n_old == n_new && leaves == 0 {
        leaves = 1; // pure no-op sets are rejected by the log
    }
    let old_ids: Vec<u16> = (0..n_old as u16).collect();
    let leaving = &shuffled(&old_ids, rng)[..leaves];
    let joins = n_new - (n_old - leaves);
    let mut ops: Vec<MembershipOp> = leaving.iter().map(|&l| MembershipOp::Leave(l)).collect();
    ops.extend((0..joins as u16).map(|j| MembershipOp::Join(n_old as u16 + j)));
    ops
}

/// Runs the full ceremony for the change and rolls every new member's
/// bundle. Deals are wire-roundtripped and absorbed in a random order.
fn roll_committee(
    genesis: &[NodeCrypto],
    ops: &[MembershipOp],
    rng: &mut impl RngCore,
) -> (ReshareCeremony, Vec<NodeCrypto>) {
    let mut log = CommitteeLog::new(genesis.len());
    let new = log.on_commit(1, ops).cloned().expect("random ops form a valid change");
    let mut ceremony = ReshareCeremony::new(log.config_at(0).clone(), new.clone());
    for d in shuffled(ceremony.dealers(), rng) {
        let deal = ceremony.make_deal(&genesis[d as usize], d, rng).expect("dealer has shares");
        let deal = DealSet::decode(&deal.encode()).expect("encode/decode is total");
        assert!(ceremony.absorb(deal, &genesis[0]));
    }
    assert!(ceremony.complete());
    let rolled = new
        .members
        .iter()
        .map(|&g| {
            // Joiners hold only genesis *public* material; any old bundle
            // stands in for that.
            let old = &genesis[(g as usize).min(genesis.len() - 1)];
            ceremony.rolled_crypto(old, g).expect("new member rolls")
        })
        .collect();
    (ceremony, rolled)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For random committee sizes, random leave/join sets, random deal
    /// order and random quorum subsets: the rolled shares combine into
    /// signatures and coins the *genesis* public sets accept, and every
    /// new member derives byte-identical public sets.
    #[test]
    fn rolled_quorums_verify_under_genesis_keys(
        seed in any::<u64>(),
        n_old_sel in 0usize..2,
        n_new_sel in 0usize..2,
    ) {
        let (n_old, n_new) = ([4, 7][n_old_sel], [4, 7][n_new_sel]);
        let mut rng = StdRng::seed_from_u64(seed);
        let genesis = deal_node_crypto(n_old, CryptoSuite::light(), &mut rng);
        let ops = random_ops(n_old, n_new, &mut rng);
        let (ceremony, rolled) = roll_committee(&genesis, &ops, &mut rng);
        let f_new = ceremony.target().f();
        prop_assert_eq!(ceremony.target().n(), n_new);

        for c in &rolled {
            prop_assert_eq!(c.key_epoch, 1);
            prop_assert_eq!(c.prbc_pub.share_keys(), rolled[0].prbc_pub.share_keys());
            prop_assert_eq!(c.cbc_pub.share_keys(), rolled[0].cbc_pub.share_keys());
        }

        // A random (f+1)-subset of new-committee PRBC shares combines into
        // a signature the genesis set verifies; same for a (2f+1)-subset
        // of CBC shares.
        let msg = seed.to_le_bytes();
        let slots: Vec<usize> = (0..n_new).collect();
        let prbc_quorum = &shuffled(&slots, &mut rng)[..f_new + 1];
        let shares: Vec<_> =
            prbc_quorum.iter().map(|&s| rolled[s].prbc_sec.sign_share(&msg)).collect();
        let sig = rolled[0].prbc_pub.combine(&shares).unwrap();
        prop_assert!(genesis[0].prbc_pub.verify(&msg, &sig).is_ok());
        let cbc_quorum = &shuffled(&slots, &mut rng)[..2 * f_new + 1];
        let cbc_shares: Vec<_> =
            cbc_quorum.iter().map(|&s| rolled[s].cbc_sec.sign_share(&msg)).collect();
        let cbc_sig = rolled[0].cbc_pub.combine(&cbc_shares).unwrap();
        prop_assert!(genesis[0].cbc_pub.verify(&msg, &cbc_sig).is_ok());

        // The coin is a pure function of the fixed group secret: old and
        // new committees flip the same coin, from random quorum subsets.
        let name = CoinName {
            session: rng.next_u64() % 1024,
            round: (rng.next_u64() % 64) as u32,
            domain: (rng.next_u64() % 8) as u32,
        };
        let old_slots: Vec<usize> = (0..n_old).collect();
        let old_quorum = &shuffled(&old_slots, &mut rng)[..genesis.len() / 3 + 1];
        let old_shares: Vec<_> =
            old_quorum.iter().map(|&s| genesis[s].coin_sec.coin_share(name)).collect();
        let new_quorum = &shuffled(&slots, &mut rng)[..f_new + 1];
        let new_shares: Vec<_> =
            new_quorum.iter().map(|&s| rolled[s].coin_sec.coin_share(name)).collect();
        prop_assert_eq!(
            genesis[0].coin_pub.combine(name, &old_shares).unwrap(),
            rolled[0].coin_pub.combine(name, &new_shares).unwrap(),
        );
    }

    /// Across the key-epoch boundary the *old* shares are dead: a leaver
    /// gets no rolled bundle, and a genesis share fails verification under
    /// the rolled public set even though the group key is unchanged.
    #[test]
    fn stale_shares_die_at_the_boundary(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let genesis = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        // Force at least one leaver so the leaver property always fires.
        let leaver = (rng.next_u64() % 4) as u16;
        let ops = [MembershipOp::Leave(leaver), MembershipOp::Join(4)];
        let (ceremony, rolled) = roll_committee(&genesis, &ops, &mut rng);
        prop_assert!(ceremony.rolled_crypto(&genesis[leaver as usize], leaver).is_none());

        // Same group key before and after the roll...
        prop_assert_eq!(rolled[0].prbc_pub.group_key(), genesis[0].prbc_pub.group_key());
        // ...yet every genesis share is rejected by the rolled set: the
        // share polynomial moved even where a survivor kept its slot.
        let msg = b"stale";
        for g in &genesis {
            let stale = g.prbc_sec.sign_share(msg);
            prop_assert!(rolled[0].prbc_pub.verify_share(msg, &stale).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Share buffers enforce the key epoch at the door: a mistagged share
    /// never buffers, and rolling the buffer evicts everything — including
    /// the reporter bits, so the same indices can report again under the
    /// new epoch.
    #[test]
    fn share_bufs_reject_mistagged_and_evict_on_roll(
        seed in any::<u64>(),
        epoch in 1u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (pks, sks) = thresh_sig::deal(4, 1, ThresholdCurve::Bn158, &mut rng);
        let msg = b"tagged";

        let mut buf = SigShareBuf::default();
        prop_assert_eq!(buf.key_epoch(), 0);
        // Wrong tag (future epoch): rejected, nothing buffered.
        prop_assert!(!buf.insert_tagged(sks[0].sign_share(msg), 4, epoch));
        prop_assert_eq!(buf.reporters(), 0);
        // Right tag: buffered.
        prop_assert!(buf.insert_tagged(sks[0].sign_share(msg), 4, 0));
        prop_assert!(buf.insert_tagged(sks[1].sign_share(msg), 4, 0));
        prop_assert!(buf.settle(&pks, msg, 2));
        // Roll: everything evicted, reporter bits freed.
        buf.roll_key_epoch(epoch);
        prop_assert_eq!(buf.key_epoch(), epoch);
        prop_assert!(buf.shares().is_empty());
        prop_assert_eq!(buf.reporters(), 0);
        // Old-tag shares are now the stale ones; new-tag shares reuse the
        // freed slots.
        prop_assert!(!buf.insert_tagged(sks[0].sign_share(msg), 4, 0));
        prop_assert!(buf.insert_tagged(sks[0].sign_share(msg), 4, epoch));

        let (cpub, csec) = thresh_coin::deal_coin(4, 1, ThresholdCurve::Bn158, &mut rng);
        let name = CoinName { session: epoch, round: 0, domain: 0 };
        let mut cbuf = CoinShareBuf::default();
        prop_assert!(!cbuf.insert_tagged(csec[2].coin_share(name), 4, epoch));
        prop_assert!(cbuf.insert_tagged(csec[2].coin_share(name), 4, 0));
        prop_assert!(cbuf.insert_tagged(csec[0].coin_share(name), 4, 0));
        prop_assert!(cbuf.settle(&cpub, name, 2));
        cbuf.roll_key_epoch(epoch);
        prop_assert!(cbuf.shares().is_empty());
        prop_assert_eq!(cbuf.reporters(), 0);
        prop_assert!(cbuf.insert_tagged(csec[2].coin_share(name), 4, epoch));
    }
}
