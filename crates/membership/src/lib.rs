#![forbid(unsafe_code)]
//! # wbft-membership — consensus-ordered dynamic membership
//!
//! Dynamic committee membership for the wireless BFT stack: join/leave
//! operations ride the ordered transaction path as a reserved transaction
//! class, every honest node folds the committed chain prefix into the same
//! [`CommitteeLog`], and a committed change activates a fixed number of
//! epochs later — leaving a window for the old committee to rehand its
//! threshold keys to the new one with a dealerless resharing ceremony
//! ([`ReshareCeremony`]) that keeps the *group* keys (and therefore every
//! previously combined signature and coin) stable while rolling all
//! per-node shares to a fresh key epoch.
//!
//! The crate is engine-agnostic: it knows nothing about sessions, wires or
//! simulators. Engines feed it committed ops and verified deal sets; it
//! hands back deterministic [`CommitteeView`]s and rolled
//! [`NodeCrypto`](wbft_components::NodeCrypto) bundles.

pub mod ceremony;
pub mod op;
pub mod view;

pub use ceremony::{canonical_dealers, DealSet, ReshareCeremony};
pub use op::{decode_op, encode_op, MembershipOp, MEMBERSHIP_TX_MAGIC};
pub use view::{CommitteeConfig, CommitteeLog, CommitteeView, ACTIVATION_DELAY};
