//! The dealerless resharing ceremony between commit and activation.
//!
//! When a membership change commits, the *old* committee re-hands all four
//! threshold key sets (PRBC signatures, CBC signatures, common coin,
//! threshold encryption) to the *new* committee without any trusted
//! dealer: every canonical dealer broadcasts one [`DealSet`] — a
//! [`ReshareDealing`] per scheme — and every node (old member, survivor,
//! or fresh joiner) verifies the dealings against the old published
//! verification key shares and interpolates its own new shares. The group
//! keys never move, so threshold signatures and coins combined by the new
//! committee keep verifying under the genesis keys.
//!
//! **Canonical dealer set.** Interpolating a degree-`t` polynomial through
//! more than `t + 1` points is exact, so one dealer set serves all four
//! schemes: the `2·f_old + 1` lowest-indexed old members that survive into
//! the new committee (topped up with the lowest leaving members when fewer
//! survive). `2·f_old + 1` is exactly what the highest-threshold scheme
//! (CBC, `t = 2f`) needs. The set is a pure function of the two
//! configurations, so every node waits for the *same* deals and derives
//! the *same* shares; a canonical dealer that never deals stalls the
//! ceremony (crash/Byzantine-dealer fallback is tracked as a follow-on,
//! and the testbed refuses plans that crash a scheduled dealer).
//!
//! Subshares travel in the clear — see `wbft_crypto::reshare` for why that
//! is acceptable in this simulation substrate.

use std::collections::BTreeMap;

use bytes::Bytes;
use rand::RngCore;
use wbft_components::NodeCrypto;
use wbft_crypto::reshare::{self, ReshareDealing};
use wbft_crypto::thresh_coin::{CoinPublicSet, CoinSecretShare};
use wbft_crypto::thresh_enc::{EncPublicSet, EncSecretShare};
use wbft_crypto::thresh_sig::{PublicKeySet, SecretKeyShare};
use wbft_crypto::{GroupElem, Scalar, ShareIndex};

use crate::view::CommitteeConfig;

/// The canonical dealer set for a configuration change: the lowest
/// `2·f_old + 1` old-committee global ids, preferring members that survive
/// into the new committee.
pub fn canonical_dealers(old: &CommitteeConfig, new: &CommitteeConfig) -> Vec<u16> {
    let need = 2 * old.f() + 1;
    let mut dealers: Vec<u16> =
        old.members.iter().copied().filter(|m| new.contains(*m)).take(need).collect();
    for m in &old.members {
        if dealers.len() >= need {
            break;
        }
        if !dealers.contains(m) {
            dealers.push(*m);
        }
    }
    dealers.sort_unstable();
    dealers
}

/// One dealer's resharing of all four threshold schemes, broadcast as a
/// single opaque payload on the reshare session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DealSet {
    /// The dealer's *global* id.
    pub dealer: u16,
    /// `(f, n)` PRBC-signature resharing.
    pub prbc: ReshareDealing,
    /// `(2f, n)` CBC-signature resharing.
    pub cbc: ReshareDealing,
    /// `(f, n)` common-coin resharing.
    pub coin: ReshareDealing,
    /// `(f, n)` threshold-encryption resharing.
    pub enc: ReshareDealing,
}

fn encode_dealing(v: &mut Vec<u8>, d: &ReshareDealing) {
    v.extend_from_slice(&d.dealer.value().to_le_bytes());
    v.extend_from_slice(&(d.commitments.len() as u16).to_le_bytes());
    for c in &d.commitments {
        v.extend_from_slice(&c.to_bytes());
    }
    v.extend_from_slice(&(d.subshares.len() as u16).to_le_bytes());
    for (i, s) in &d.subshares {
        v.extend_from_slice(&i.value().to_le_bytes());
        v.extend_from_slice(&s.to_bytes());
    }
}

struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn u16(&mut self) -> Option<u16> {
        let (head, rest) = self.0.split_first_chunk::<2>()?;
        self.0 = rest;
        Some(u16::from_le_bytes(*head))
    }

    fn arr32(&mut self) -> Option<[u8; 32]> {
        let (head, rest) = self.0.split_first_chunk::<32>()?;
        self.0 = rest;
        Some(*head)
    }
}

fn decode_dealing(c: &mut Cursor<'_>) -> Option<ReshareDealing> {
    let dealer = ShareIndex::new(c.u16()?).ok()?;
    let n_commit = c.u16()? as usize;
    let mut commitments = Vec::with_capacity(n_commit.min(64));
    for _ in 0..n_commit {
        commitments.push(GroupElem::from_bytes(&c.arr32()?).ok()?);
    }
    let n_sub = c.u16()? as usize;
    let mut subshares = Vec::with_capacity(n_sub.min(64));
    for _ in 0..n_sub {
        let i = ShareIndex::new(c.u16()?).ok()?;
        let s = Scalar::from_bytes_reduced(&c.arr32()?);
        subshares.push((i, s));
    }
    Some(ReshareDealing { dealer, commitments, subshares })
}

impl DealSet {
    /// Serializes for the wire (the net layer carries this as opaque bytes
    /// so it stays independent of membership types).
    pub fn encode(&self) -> Bytes {
        let mut v = Vec::new();
        v.extend_from_slice(&self.dealer.to_le_bytes());
        for d in [&self.prbc, &self.cbc, &self.coin, &self.enc] {
            encode_dealing(&mut v, d);
        }
        Bytes::from(v)
    }

    /// Total inverse of [`DealSet::encode`]: `None` on any malformed input.
    pub fn decode(bytes: &[u8]) -> Option<DealSet> {
        let mut c = Cursor(bytes);
        let dealer = c.u16()?;
        let prbc = decode_dealing(&mut c)?;
        let cbc = decode_dealing(&mut c)?;
        let coin = decode_dealing(&mut c)?;
        let enc = decode_dealing(&mut c)?;
        if !c.0.is_empty() {
            return None;
        }
        Some(DealSet { dealer, prbc, cbc, coin, enc })
    }
}

/// State machine of one resharing ceremony: collects verified [`DealSet`]s
/// from the canonical dealers and, once all are in, rolls a node's
/// [`NodeCrypto`] to the new key epoch.
#[derive(Clone, Debug)]
pub struct ReshareCeremony {
    old: CommitteeConfig,
    new: CommitteeConfig,
    dealers: Vec<u16>,
    deals: BTreeMap<u16, DealSet>,
}

impl ReshareCeremony {
    /// Starts a ceremony for the change `old → new`.
    pub fn new(old: CommitteeConfig, new: CommitteeConfig) -> Self {
        let dealers = canonical_dealers(&old, &new);
        ReshareCeremony { old, new, dealers, deals: BTreeMap::new() }
    }

    /// The configuration this ceremony produces keys for.
    pub fn target(&self) -> &CommitteeConfig {
        &self.new
    }

    /// The canonical dealer set (sorted global ids).
    pub fn dealers(&self) -> &[u16] {
        &self.dealers
    }

    /// `true` iff `node` must publish a deal set.
    pub fn is_dealer(&self, node: u16) -> bool {
        self.dealers.binary_search(&node).is_ok()
    }

    /// Produces this node's deal set from its current shares, or `None`
    /// when it is not a canonical dealer.
    pub fn make_deal(&self, crypto: &NodeCrypto, me: u16, rng: &mut impl RngCore) -> Option<DealSet> {
        if !self.is_dealer(me) {
            return None;
        }
        let slot = self.old.slot_of(me)?;
        let dealer = ShareIndex::for_node(slot);
        let idx: Vec<ShareIndex> = (0..self.new.n()).map(ShareIndex::for_node).collect();
        let f = self.new.f();
        Some(DealSet {
            dealer: me,
            prbc: ReshareDealing::deal(crypto.prbc_sec.secret_scalar(), dealer, &idx, f, rng),
            cbc: ReshareDealing::deal(crypto.cbc_sec.secret_scalar(), dealer, &idx, 2 * f, rng),
            coin: ReshareDealing::deal(crypto.coin_sec.secret_scalar(), dealer, &idx, f, rng),
            enc: ReshareDealing::deal(crypto.enc_sec.secret_scalar(), dealer, &idx, f, rng),
        })
    }

    /// Verifies one dealing against the dealer's published old key share
    /// and the expected polynomial shape.
    fn dealing_ok(
        &self,
        d: &ReshareDealing,
        old_slot: usize,
        old_vk_share: &GroupElem,
        threshold: usize,
    ) -> bool {
        d.dealer == ShareIndex::for_node(old_slot)
            && d.commitments.len() == threshold + 1
            && d.subshares.len() == self.new.n()
            && (0..self.new.n()).all(|j| d.subshares[j].0 == ShareIndex::for_node(j))
            && d.verify(old_vk_share).is_ok()
    }

    /// Verifies and stores a deal set. Returns `true` when the set was
    /// newly accepted; duplicates, non-canonical dealers and any dealing
    /// that fails verification are dropped (`false`).
    pub fn absorb(&mut self, deal: DealSet, old_crypto: &NodeCrypto) -> bool {
        if !self.is_dealer(deal.dealer) || self.deals.contains_key(&deal.dealer) {
            return false;
        }
        let Some(slot) = self.old.slot_of(deal.dealer) else { return false };
        let f = self.new.f();
        let ok = self.dealing_ok(&deal.prbc, slot, &old_crypto.prbc_pub.share_keys()[slot], f)
            && self.dealing_ok(&deal.cbc, slot, &old_crypto.cbc_pub.share_keys()[slot], 2 * f)
            && self.dealing_ok(&deal.coin, slot, &old_crypto.coin_pub.share_keys()[slot], f)
            && self.dealing_ok(&deal.enc, slot, &old_crypto.enc_pub.share_keys()[slot], f);
        if !ok {
            return false;
        }
        self.deals.insert(deal.dealer, deal);
        true
    }

    /// `true` once every canonical dealer's deal set is verified and
    /// stored — shares for *any* new index are now derivable.
    pub fn complete(&self) -> bool {
        self.deals.len() == self.dealers.len()
    }

    /// Dealings of one scheme in canonical dealer order.
    fn scheme<'a>(&'a self, pick: impl Fn(&'a DealSet) -> &'a ReshareDealing) -> Vec<&'a ReshareDealing> {
        self.dealers.iter().map(|d| pick(&self.deals[d])).collect()
    }

    /// Rolls `old_crypto` to the new key epoch for global id `me`. Returns
    /// `None` while incomplete or when `me` is not a new-committee member
    /// (a leaver keeps its old bundle and simply stops participating).
    ///
    /// The group keys of the rolled public sets are *copied from the old
    /// sets* — resharing preserves them by construction, and the per-node
    /// share keys are derived publicly from the commitment vectors, so
    /// every node (including a fresh joiner holding only public material)
    /// computes byte-identical public sets.
    pub fn rolled_crypto(&self, old_crypto: &NodeCrypto, me: u16) -> Option<NodeCrypto> {
        if !self.complete() {
            return None;
        }
        let my_slot = self.new.slot_of(me)?;
        let my_index = ShareIndex::for_node(my_slot);
        let curve = old_crypto.prbc_pub.curve();
        let f = self.new.f();
        let n = self.new.n();

        let share_keys = |deals: &[&ReshareDealing]| -> Option<Vec<GroupElem>> {
            (0..n)
                .map(|j| reshare::derive_vk_share(deals, ShareIndex::for_node(j)).ok())
                .collect()
        };

        let prbc = self.scheme(|d| &d.prbc);
        let cbc = self.scheme(|d| &d.cbc);
        let coin = self.scheme(|d| &d.coin);
        let enc = self.scheme(|d| &d.enc);

        // Whole-ceremony sanity: the dealings must re-encode the *same*
        // group secrets the old sets publish. Any mismatch means a bug or
        // an inconsistent deal collection — refuse to roll.
        if reshare::derive_group_key(&prbc).ok()? != old_crypto.prbc_pub.group_key()
            || reshare::derive_group_key(&cbc).ok()? != old_crypto.cbc_pub.group_key()
            || reshare::derive_group_key(&enc).ok()? != old_crypto.enc_pub.group_key()
        {
            return None;
        }

        let prbc_pub = PublicKeySet::from_parts(
            curve,
            f,
            old_crypto.prbc_pub.group_key(),
            share_keys(&prbc)?,
        );
        let cbc_pub = PublicKeySet::from_parts(
            curve,
            2 * f,
            old_crypto.cbc_pub.group_key(),
            share_keys(&cbc)?,
        );
        let coin_pub = CoinPublicSet::from_parts(curve, f, share_keys(&coin)?);
        let enc_pub = EncPublicSet::from_parts(
            curve,
            f,
            old_crypto.enc_pub.group_key(),
            share_keys(&enc)?,
        );

        Some(NodeCrypto {
            me: my_slot,
            suite: old_crypto.suite,
            keypair: old_crypto.keypair.clone(),
            peer_keys: old_crypto.peer_keys.clone(),
            key_epoch: self.new.key_epoch,
            prbc_sec: SecretKeyShare::from_parts(
                my_index,
                reshare::combine_subshares(&prbc, my_index).ok()?,
                curve,
            ),
            prbc_pub,
            cbc_sec: SecretKeyShare::from_parts(
                my_index,
                reshare::combine_subshares(&cbc, my_index).ok()?,
                curve,
            ),
            cbc_pub,
            coin_sec: CoinSecretShare::from_parts(
                my_index,
                reshare::combine_subshares(&coin, my_index).ok()?,
            ),
            coin_pub,
            enc_sec: EncSecretShare::from_parts(
                my_index,
                reshare::combine_subshares(&enc, my_index).ok()?,
            ),
            enc_pub,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::CommitteeLog;
    use crate::MembershipOp;
    use rand::SeedableRng;
    use wbft_components::deal_node_crypto;
    use wbft_crypto::profile::CryptoSuite;

    fn swap_configs() -> (CommitteeConfig, CommitteeConfig) {
        let mut log = CommitteeLog::new(4);
        let new = log
            .on_commit(1, &[MembershipOp::Join(4), MembershipOp::Leave(0)])
            .cloned()
            .unwrap();
        (log.config_at(0).clone(), new)
    }

    fn run_ceremony() -> (Vec<NodeCrypto>, ReshareCeremony) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let genesis = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        let (old, new) = swap_configs();
        let mut ceremony = ReshareCeremony::new(old, new);
        let dealers = ceremony.dealers().to_vec();
        for d in dealers {
            let deal = ceremony.make_deal(&genesis[d as usize], d, &mut rng).unwrap();
            // Wire roundtrip on the way in, like the engine sees it.
            let deal = DealSet::decode(&deal.encode()).unwrap();
            assert!(ceremony.absorb(deal, &genesis[0]));
        }
        assert!(ceremony.complete());
        (genesis, ceremony)
    }

    #[test]
    fn canonical_dealers_prefer_survivors() {
        let (old, new) = swap_configs();
        // Old {0,1,2,3}, new {1,2,3,4}: survivors 1,2,3 cover 2f+1 = 3.
        assert_eq!(canonical_dealers(&old, &new), vec![1, 2, 3]);
    }

    #[test]
    fn leavers_top_up_a_short_survivor_set() {
        let mut old = CommitteeConfig {
            activation_epoch: 0,
            key_epoch: 0,
            members: vec![0, 1, 2, 3],
        };
        let new = CommitteeConfig {
            activation_epoch: 2,
            key_epoch: 1,
            members: vec![2, 3, 4, 5],
        };
        assert_eq!(canonical_dealers(&old, &new), vec![0, 2, 3]);
        old.members = vec![0, 1, 2, 3];
        let disjoint = CommitteeConfig {
            activation_epoch: 2,
            key_epoch: 1,
            members: vec![4, 5, 6, 7],
        };
        assert_eq!(canonical_dealers(&old, &disjoint), vec![0, 1, 2]);
    }

    #[test]
    fn deal_sets_roundtrip_and_reject_garbage() {
        let (_, ceremony) = run_ceremony();
        let deal = ceremony.deals.values().next().unwrap();
        let bytes = deal.encode();
        assert_eq!(DealSet::decode(&bytes), Some(deal.clone()));
        assert_eq!(DealSet::decode(&bytes[..bytes.len() - 1]), None);
        let mut extra = bytes.to_vec();
        extra.push(0);
        assert_eq!(DealSet::decode(&extra), None);
        assert_eq!(DealSet::decode(b""), None);
    }

    #[test]
    fn rolled_signatures_verify_under_the_genesis_group_key() {
        let (genesis, ceremony) = run_ceremony();
        let new_members = ceremony.target().members.clone();
        let rolled: Vec<NodeCrypto> = new_members
            .iter()
            .map(|&g| {
                // The joiner (global 4) holds only genesis *public* sets;
                // node 1's bundle stands in for "any old public material".
                let old = &genesis[(g as usize).min(3)];
                ceremony.rolled_crypto(old, g).unwrap()
            })
            .collect();
        // Every node derives identical public sets.
        for c in &rolled[1..] {
            assert_eq!(c.prbc_pub.share_keys(), rolled[0].prbc_pub.share_keys());
            assert_eq!(c.cbc_pub.share_keys(), rolled[0].cbc_pub.share_keys());
        }
        assert_eq!(rolled[0].key_epoch, 1);
        // New-committee shares combine into signatures the *genesis*
        // public set accepts.
        let msg = b"post-roll";
        let shares: Vec<_> = rolled.iter().map(|c| c.prbc_sec.sign_share(msg)).collect();
        let sig = rolled[0].prbc_pub.combine(&shares[..2]).unwrap();
        genesis[0].prbc_pub.verify(msg, &sig).unwrap();
        let cbc_shares: Vec<_> = rolled.iter().map(|c| c.cbc_sec.sign_share(msg)).collect();
        let cbc_sig = rolled[1].cbc_pub.combine(&cbc_shares[..3]).unwrap();
        genesis[2].cbc_pub.verify(msg, &cbc_sig).unwrap();
        // Coin values are a function of the fixed group secret: unchanged.
        let name = wbft_crypto::thresh_coin::CoinName { session: 9, round: 3, domain: 1 };
        let old_shares: Vec<_> = genesis.iter().map(|c| c.coin_sec.coin_share(name)).collect();
        let new_shares: Vec<_> = rolled.iter().map(|c| c.coin_sec.coin_share(name)).collect();
        assert_eq!(
            genesis[0].coin_pub.combine(name, &old_shares[..2]).unwrap(),
            rolled[0].coin_pub.combine(name, &new_shares[..2]).unwrap(),
        );
    }

    #[test]
    fn leaver_gets_no_rolled_bundle_and_old_shares_are_rejected() {
        let (genesis, ceremony) = run_ceremony();
        assert!(ceremony.rolled_crypto(&genesis[0], 0).is_none());
        let rolled = ceremony.rolled_crypto(&genesis[1], 1).unwrap();
        // A stale (key-epoch-0) share fails verification under the rolled
        // public set: same index, different share polynomial.
        let msg = b"stale";
        let stale = genesis[0].prbc_sec.sign_share(msg);
        assert!(rolled.prbc_pub.verify_share(msg, &stale).is_err());
    }

    #[test]
    fn tampered_and_duplicate_deals_are_dropped() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let genesis = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        let (old, new) = swap_configs();
        let mut ceremony = ReshareCeremony::new(old, new);
        let mut deal = ceremony.make_deal(&genesis[1], 1, &mut rng).unwrap();
        assert!(ceremony.absorb(deal.clone(), &genesis[0]));
        assert!(!ceremony.absorb(deal.clone(), &genesis[0]), "duplicate");
        deal.dealer = 2; // claims to be dealer 2 but carries 1's dealings
        assert!(!ceremony.absorb(deal, &genesis[0]));
        let mut forged = ceremony.make_deal(&genesis[2], 2, &mut rng).unwrap();
        forged.cbc.subshares[0].1 = forged.cbc.subshares[0].1.add(&Scalar::ONE);
        assert!(!ceremony.absorb(forged, &genesis[0]));
        // Non-dealer global id.
        assert!(ceremony.make_deal(&genesis[0], 0, &mut rng).is_none());
        assert!(!ceremony.complete());
    }
}
