//! Membership operations as a reserved transaction class.
//!
//! Join/leave requests travel the ordinary mempool → batch → consensus
//! path, so the chain itself is the single ordered record of membership
//! changes: whatever epoch a [`MembershipOp`] commits in, every honest
//! node sees it at the same chain position and derives the same committee
//! schedule. The ops are distinguished from client payloads by a magic
//! prefix no sane client payload starts with; [`decode_op`] is total over
//! arbitrary bytes and simply returns `None` for client transactions.

use bytes::Bytes;

/// Magic prefix reserving the membership transaction class.
pub const MEMBERSHIP_TX_MAGIC: &[u8; 8] = b"WBFT/MEM";

/// A membership change request, identified by the node's *global* id (its
/// simulator/transport identity, stable across committee reconfigurations
/// — committee slots are derived, never carried on the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MembershipOp {
    /// Admit `0` as a validator.
    Join(u16),
    /// Retire `0` from the validator set.
    Leave(u16),
}

impl MembershipOp {
    /// The global node id the op concerns.
    pub fn node(&self) -> u16 {
        match self {
            MembershipOp::Join(n) | MembershipOp::Leave(n) => *n,
        }
    }
}

impl core::fmt::Display for MembershipOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MembershipOp::Join(n) => write!(f, "join({n})"),
            MembershipOp::Leave(n) => write!(f, "leave({n})"),
        }
    }
}

/// Encodes an op as a reserved-class transaction: magic, kind byte, node id.
pub fn encode_op(op: MembershipOp) -> Bytes {
    let mut v = Vec::with_capacity(11);
    v.extend_from_slice(MEMBERSHIP_TX_MAGIC);
    let (kind, node) = match op {
        MembershipOp::Join(n) => (0u8, n),
        MembershipOp::Leave(n) => (1u8, n),
    };
    v.push(kind);
    v.extend_from_slice(&node.to_le_bytes());
    Bytes::from(v)
}

/// Decodes a reserved-class transaction back into an op. Returns `None`
/// for anything that is not an exactly well-formed membership tx — client
/// payloads, truncated bytes, unknown kinds, trailing garbage.
pub fn decode_op(tx: &[u8]) -> Option<MembershipOp> {
    let rest = tx.strip_prefix(MEMBERSHIP_TX_MAGIC.as_slice())?;
    if rest.len() != 3 {
        return None;
    }
    let node = u16::from_le_bytes([rest[1], rest[2]]);
    match rest[0] {
        0 => Some(MembershipOp::Join(node)),
        1 => Some(MembershipOp::Leave(node)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_roundtrip() {
        for op in [MembershipOp::Join(0), MembershipOp::Leave(4), MembershipOp::Join(u16::MAX)] {
            assert_eq!(decode_op(&encode_op(op)), Some(op));
        }
    }

    #[test]
    fn client_payloads_and_malformed_bytes_decode_to_none() {
        assert_eq!(decode_op(b"tx-0001"), None);
        assert_eq!(decode_op(b""), None);
        assert_eq!(decode_op(MEMBERSHIP_TX_MAGIC), None); // truncated
        let mut long = encode_op(MembershipOp::Join(1)).to_vec();
        long.push(0);
        assert_eq!(decode_op(&long), None); // trailing garbage
        let mut bad_kind = encode_op(MembershipOp::Join(1)).to_vec();
        bad_kind[8] = 7;
        assert_eq!(decode_op(&bad_kind), None);
    }
}
