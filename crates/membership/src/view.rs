//! Chain-derived committee configurations.
//!
//! A [`CommitteeLog`] is a pure fold over the committed chain: feed it the
//! membership ops of every committed epoch, in epoch order, and it yields
//! the full schedule of committee configurations — each one activating a
//! fixed [`ACTIVATION_DELAY`] epochs after the commit that created it, so
//! the old committee has a deterministic window to run the resharing
//! ceremony before the new one takes over. Two honest nodes with the same
//! chain prefix hold byte-identical logs; there is no other input.
//!
//! Invalid change sets are *rejected deterministically*, never partially
//! applied: an op set that would produce an unsupported committee size
//! (`n < 4` or `n ≢ 1 (mod 3)`), a no-op set, or a set committed while an
//! earlier change has not yet activated (overlapping change windows would
//! force two concurrent ceremonies over different source committees) is
//! dropped by every node alike.

use crate::op::MembershipOp;

/// Epochs between an op's commit and its activation. Two epochs keep one
/// full epoch of slack for the resharing ceremony: deals broadcast when
/// epoch `e` commits can settle while epoch `e + 1` runs under the old
/// keys.
pub const ACTIVATION_DELAY: u64 = 2;

/// `true` iff the engine/Params layer supports a committee of `n` nodes
/// (`n = 3f + 1` for some `f ≥ 1`).
pub fn valid_committee_size(n: usize) -> bool {
    n >= 4 && (n - 1).is_multiple_of(3)
}

/// One scheduled committee configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitteeConfig {
    /// First epoch this configuration is in effect for.
    pub activation_epoch: u64,
    /// Monotone key-epoch counter: 0 for genesis, +1 per resharing roll.
    pub key_epoch: u64,
    /// Member *global* ids, sorted ascending. A member's committee slot is
    /// its position here — slots are derived, never carried on the wire.
    pub members: Vec<u16>,
}

impl CommitteeConfig {
    /// Committee size.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// Fault budget `f = (n - 1) / 3`.
    pub fn f(&self) -> usize {
        (self.members.len() - 1) / 3
    }

    /// The committee slot of global id `node`, if it is a member.
    pub fn slot_of(&self, node: u16) -> Option<usize> {
        self.members.binary_search(&node).ok()
    }

    /// The global id seated in `slot`, if in range.
    pub fn global_of(&self, slot: usize) -> Option<u16> {
        self.members.get(slot).copied()
    }

    /// `true` iff `node` is a member.
    pub fn contains(&self, node: u16) -> bool {
        self.slot_of(node).is_some()
    }
}

/// The committee in effect at one epoch, as engines consume it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitteeView {
    /// Activation epoch of the configuration in effect.
    pub cfg_epoch: u64,
    /// Member global ids, sorted (slot = position).
    pub members: Vec<u16>,
    /// Fault budget of this configuration.
    pub f: usize,
    /// Key epoch whose threshold shares sign in this configuration.
    pub key_epoch: u64,
}

/// Deterministic fold of committed membership ops into a configuration
/// schedule.
#[derive(Clone, Debug)]
pub struct CommitteeLog {
    /// Scheduled configurations, ascending activation; `configs[0]` is
    /// genesis (activation 0, key epoch 0).
    configs: Vec<CommitteeConfig>,
    /// Highest epoch already folded (commits must arrive in epoch order;
    /// replays are ignored).
    scanned: Option<u64>,
}

impl CommitteeLog {
    /// A log rooted at the genesis committee of global ids `0..n`.
    pub fn new(genesis_n: usize) -> Self {
        assert!(valid_committee_size(genesis_n), "genesis committee size {genesis_n}");
        CommitteeLog {
            configs: vec![CommitteeConfig {
                activation_epoch: 0,
                key_epoch: 0,
                members: (0..genesis_n as u16).collect(),
            }],
            scanned: None,
        }
    }

    /// All scheduled configurations, ascending activation epoch.
    pub fn configs(&self) -> &[CommitteeConfig] {
        &self.configs
    }

    /// The configuration in effect at `epoch`.
    pub fn config_at(&self, epoch: u64) -> &CommitteeConfig {
        self.configs
            .iter()
            .rev()
            .find(|c| c.activation_epoch <= epoch)
            .expect("genesis config activates at epoch 0")
    }

    /// The engine-facing view of the committee at `epoch`.
    pub fn view_at(&self, epoch: u64) -> CommitteeView {
        let c = self.config_at(epoch);
        CommitteeView {
            cfg_epoch: c.activation_epoch,
            members: c.members.clone(),
            f: c.f(),
            key_epoch: c.key_epoch,
        }
    }

    /// The most recently scheduled configuration (may not be active yet).
    pub fn latest(&self) -> &CommitteeConfig {
        self.configs.last().expect("log always holds genesis")
    }

    /// The configuration scheduled to activate *after* `epoch`, if any —
    /// i.e. the change whose ceremony should be running at `epoch`.
    pub fn pending_after(&self, epoch: u64) -> Option<&CommitteeConfig> {
        self.configs.iter().find(|c| c.activation_epoch > epoch)
    }

    /// Folds the membership ops committed in `epoch` into the schedule.
    /// Returns the newly scheduled configuration when the set is accepted.
    ///
    /// Epochs must be fed in order; an epoch at or below one already
    /// scanned is a replay (journal restore, anti-entropy adoption) and is
    /// ignored. An op set is rejected as a whole — deterministically, on
    /// every honest node — when a prior change has not yet activated, when
    /// applying it is a net no-op, or when the resulting size is
    /// unsupported.
    pub fn on_commit(&mut self, epoch: u64, ops: &[MembershipOp]) -> Option<&CommitteeConfig> {
        if self.scanned.is_some_and(|s| epoch <= s) {
            return None;
        }
        self.scanned = Some(epoch);
        if ops.is_empty() {
            return None;
        }
        // Non-overlapping change windows: while a scheduled change awaits
        // activation, further ops are dropped (clients resubmit later).
        if self.latest().activation_epoch > epoch {
            return None;
        }
        let current = self.config_at(epoch);
        let mut members = current.members.clone();
        for op in ops {
            match op {
                MembershipOp::Join(n) => {
                    if let Err(pos) = members.binary_search(n) {
                        members.insert(pos, *n);
                    }
                }
                MembershipOp::Leave(n) => {
                    if let Ok(pos) = members.binary_search(n) {
                        members.remove(pos);
                    }
                }
            }
        }
        if members == current.members || !valid_committee_size(members.len()) {
            return None;
        }
        let key_epoch = self.latest().key_epoch + 1;
        self.configs.push(CommitteeConfig {
            activation_epoch: epoch + ACTIVATION_DELAY,
            key_epoch,
            members,
        });
        self.configs.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join(n: u16) -> MembershipOp {
        MembershipOp::Join(n)
    }
    fn leave(n: u16) -> MembershipOp {
        MembershipOp::Leave(n)
    }

    #[test]
    fn genesis_view_covers_all_epochs_until_a_change() {
        let log = CommitteeLog::new(4);
        for e in [0, 5, 1000] {
            let v = log.view_at(e);
            assert_eq!(v.members, vec![0, 1, 2, 3]);
            assert_eq!((v.cfg_epoch, v.f, v.key_epoch), (0, 1, 0));
        }
    }

    #[test]
    fn swap_activates_after_the_delay() {
        let mut log = CommitteeLog::new(4);
        let cfg = log.on_commit(3, &[join(4), leave(0)]).cloned().unwrap();
        assert_eq!(cfg.activation_epoch, 3 + ACTIVATION_DELAY);
        assert_eq!(cfg.members, vec![1, 2, 3, 4]);
        assert_eq!(cfg.key_epoch, 1);
        // Old config until activation, new from it.
        assert_eq!(log.view_at(cfg.activation_epoch - 1).members, vec![0, 1, 2, 3]);
        let v = log.view_at(cfg.activation_epoch);
        assert_eq!(v.members, vec![1, 2, 3, 4]);
        assert_eq!(v.key_epoch, 1);
        assert_eq!(log.config_at(cfg.activation_epoch).slot_of(4), Some(3));
        assert_eq!(log.config_at(cfg.activation_epoch).slot_of(0), None);
    }

    #[test]
    fn invalid_sizes_and_noops_are_rejected_whole() {
        let mut log = CommitteeLog::new(4);
        // n=5 is not 3f+1.
        assert!(log.on_commit(0, &[join(9)]).is_none());
        // Leaving below n=4.
        assert!(log.on_commit(1, &[leave(3)]).is_none());
        // Join of an existing member + leave of a stranger: net no-op.
        assert!(log.on_commit(2, &[join(2), leave(77)]).is_none());
        assert_eq!(log.configs().len(), 1);
        // A later valid swap still lands.
        assert!(log.on_commit(3, &[join(7), leave(1)]).is_some());
    }

    #[test]
    fn overlapping_change_windows_are_refused() {
        let mut log = CommitteeLog::new(4);
        assert!(log.on_commit(0, &[join(4), leave(0)]).is_some());
        // Second change commits before the first activates: dropped.
        assert!(log.on_commit(1, &[join(5), leave(1)]).is_none());
        // After activation the window reopens.
        assert!(log.on_commit(ACTIVATION_DELAY, &[join(5), leave(1)]).is_some());
        assert_eq!(log.latest().key_epoch, 2);
    }

    #[test]
    fn replayed_epochs_are_ignored() {
        let mut log = CommitteeLog::new(4);
        assert!(log.on_commit(2, &[join(4), leave(0)]).is_some());
        assert!(log.on_commit(2, &[join(4), leave(0)]).is_none());
        assert!(log.on_commit(1, &[join(5), leave(1)]).is_none());
        assert_eq!(log.configs().len(), 2);
    }

    #[test]
    fn grow_and_shrink_hit_the_next_valid_sizes() {
        let mut log = CommitteeLog::new(4);
        let cfg = log.on_commit(0, &[join(4), join(5), join(6)]).cloned().unwrap();
        assert_eq!(cfg.n(), 7);
        assert_eq!(cfg.f(), 2);
        let e = cfg.activation_epoch;
        let back = log.on_commit(e, &[leave(4), leave(5), leave(6)]).cloned().unwrap();
        assert_eq!(back.members, vec![0, 1, 2, 3]);
        assert_eq!(back.key_epoch, 2);
    }
}
