//! Batched provable reliable broadcast (PRBC) — RBC plus a DONE phase that
//! produces a threshold-signature *delivery proof* per instance (paper
//! Fig. 4a blue phase / Fig. 4c packet).
//!
//! After delivering instance `j`, a node signs a `(f, n)`-threshold share
//! over `(session, j, root)`; any `f+1` shares combine into a proof that at
//! least one honest node delivered `j` — the precondition Dumbo needs
//! before an instance's value may be referenced by the agreement phase.
//! DONE shares are batched into their own packet type because threshold
//! material dominates packet space (§IV-C1).

use crate::context::{Actions, Broadcaster, Params, RetxState};
use crate::rbc::RbcBatch;
use crate::share_buf::SigShareBuf;
use bytes::Bytes;
use wbft_crypto::hash::Digest32;
use wbft_crypto::thresh_sig::{PublicKeySet, SecretKeyShare, SigShare, ThresholdSignature};
use wbft_net::{Bitmap, Body, RetransmitPolicy};

/// Timer ids: 0 is used by the inner RBC; the DONE stage uses 1.
const TIMER_DONE_RETX: u32 = 1;

/// The message a DONE share signs.
fn done_msg(session: u64, instance: usize, root: &Digest32) -> Vec<u8> {
    let mut m = Vec::with_capacity(64);
    m.extend_from_slice(b"wbft/prbc/done");
    m.extend_from_slice(&session.to_le_bytes());
    m.extend_from_slice(&(instance as u64).to_le_bytes());
    m.extend_from_slice(root.as_bytes());
    m
}

#[derive(Debug, Default)]
struct DoneInst {
    my_share_sent: bool,
    /// Buffered DONE shares, batch-verified at quorum (see `share_buf`).
    shares: SigShareBuf,
    proof: Option<ThresholdSignature>,
}

/// N parallel PRBC instances under ConsensusBatcher.
#[derive(Debug)]
pub struct PrbcBatch {
    rbc: RbcBatch,
    keys: PublicKeySet,
    secret: SecretKeyShare,
    done: Vec<DoneInst>,
    dirty: bool,
    timer_armed: bool,
    retx: RetxState,
}

impl PrbcBatch {
    /// Creates the batch over the `(f, n)` PRBC proof key set.
    pub fn new(p: Params, keys: PublicKeySet, secret: SecretKeyShare) -> Self {
        // Window tables are shared by every clone of the dealt key set, so
        // this builds them once per deployment, not once per node.
        keys.precompute();
        PrbcBatch {
            rbc: RbcBatch::new(p),
            done: (0..p.n).map(|_| DoneInst::default()).collect(),
            dirty: false,
            timer_armed: false,
            retx: RetxState::new(RetransmitPolicy::lora_class(), &p),
            keys,
            secret,
        }
    }

    fn p(&self) -> &Params {
        self.rbc.params()
    }

    /// The delivery proof of an instance, once `f+1` DONE shares combined.
    pub fn proof(&self, instance: usize) -> Option<&ThresholdSignature> {
        self.done.get(instance).and_then(|d| d.proof.as_ref())
    }

    /// Instances with a completed proof.
    pub fn proven_count(&self) -> usize {
        self.done.iter().filter(|d| d.proof.is_some()).count()
    }

    /// Verifies a proof produced elsewhere (Dumbo's CBC values carry them).
    pub fn verify_proof(
        session: u64,
        keys: &PublicKeySet,
        instance: usize,
        root: &Digest32,
        proof: &ThresholdSignature,
    ) -> bool {
        keys.verify(&done_msg(session, instance, root), proof).is_ok()
    }

    /// Signs DONE shares for instances the inner RBC has newly delivered.
    fn sign_new_done(&mut self, acts: &mut Actions) {
        for j in 0..self.p().n {
            if self.done[j].my_share_sent || self.rbc.delivered(j).is_none() {
                continue;
            }
            let Some(root) = self.rbc.delivered_root(j) else { continue };
            self.done[j].my_share_sent = true;
            acts.charge(self.keys.profile().sign_share_us);
            let share = self.secret.sign_share(&done_msg(self.p().session, j, &root));
            self.record_share(j, share, acts, true);
            self.dirty = true;
        }
    }

    fn record_share(&mut self, instance: usize, share: SigShare, acts: &mut Actions, own: bool) {
        if instance >= self.p().n || self.done[instance].proof.is_some() {
            return;
        }
        let Some(root) = self.rbc.delivered_root(instance) else {
            // Can't validate a share against an unknown root yet; our RBC
            // NACK machinery will fetch the value first.
            return;
        };
        // Buffer now, batch-verify at quorum; the virtual verify cost is
        // still charged per accepted share, as before.
        let n = self.p().n;
        if !self.done[instance].shares.insert(share, n) {
            return;
        }
        if !own {
            acts.charge(self.keys.profile().verify_share_us);
        }
        let need = self.p().f + 1;
        let combine_cost = self.keys.profile().combine_us;
        let msg = done_msg(self.p().session, instance, &root);
        if self.done[instance].shares.settle(&self.keys, &msg, need) {
            acts.charge(combine_cost);
            if let Ok(sig) = self.keys.combine(self.done[instance].shares.shares()) {
                self.done[instance].proof = Some(sig);
                self.dirty = true;
            }
        }
    }

    fn record_proof(&mut self, instance: usize, sig: ThresholdSignature, acts: &mut Actions) {
        if instance >= self.p().n || self.done[instance].proof.is_some() {
            return;
        }
        let Some(root) = self.rbc.delivered_root(instance) else { return };
        acts.charge(self.keys.profile().verify_signature_us);
        if self.keys.verify(&done_msg(self.p().session, instance, &root), &sig).is_ok() {
            self.done[instance].proof = Some(sig);
            self.dirty = true;
        }
    }

    fn build_done(&self) -> Body {
        let n = self.p().n;
        let mut roots = vec![Digest32::zero(); n];
        let mut shares = Vec::new();
        let mut proofs = Vec::new();
        let mut sig_nack = Bitmap::new(n);
        for (j, root_slot) in roots.iter_mut().enumerate() {
            if let Some(root) = self.rbc.delivered_root(j) {
                *root_slot = root;
                if self.done[j].my_share_sent {
                    let share = self.secret.sign_share(&done_msg(self.p().session, j, &root));
                    shares.push((j as u8, share));
                }
            }
            match &self.done[j].proof {
                Some(p) => proofs.push((j as u8, *p)),
                None => sig_nack.set(j, true),
            }
        }
        Body::PrbcDone { roots, shares, proofs, sig_nack }
    }

    fn flush(&mut self, acts: &mut Actions) {
        self.sign_new_done(acts);
        if self.dirty {
            acts.send(self.build_done());
            self.dirty = false;
            self.retx.reset();
        }
        if !self.timer_armed {
            self.timer_armed = true;
            let d = self.retx.next_delay();
            acts.timer(d, TIMER_DONE_RETX);
        }
    }

    fn is_complete(&self) -> bool {
        self.done.iter().all(|d| d.proof.is_some())
    }
}

impl Broadcaster for PrbcBatch {
    fn start(&mut self, my_value: Bytes, acts: &mut Actions) {
        self.rbc.start(my_value, acts);
        self.flush(acts);
    }

    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        match body {
            Body::PrbcDone { shares, proofs, sig_nack, .. } => {
                for (j, share) in shares {
                    self.record_share(*j as usize, *share, acts, false);
                }
                for (j, sig) in proofs {
                    self.record_proof(*j as usize, *sig, acts);
                }
                if sig_nack.len() == self.p().n
                    && sig_nack.iter_set().any(|j| self.done[j].proof.is_some())
                {
                    self.retx.peer_behind = true;
                }
            }
            _ => self.rbc.handle(from, body, acts),
        }
        self.flush(acts);
    }

    fn on_timer(&mut self, local_id: u32, acts: &mut Actions) {
        if local_id == TIMER_DONE_RETX {
            if self.retx.should_send(self.is_complete()) {
                acts.send(self.build_done());
                self.retx.peer_behind = false;
            }
            let d = self.retx.next_delay();
            acts.timer(d, TIMER_DONE_RETX);
        } else {
            self.rbc.on_timer(local_id, acts);
            self.flush(acts);
        }
    }

    fn delivered(&self, instance: usize) -> Option<&Bytes> {
        self.rbc.delivered(instance)
    }

    fn delivered_count(&self) -> usize {
        self.rbc.delivered_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::deal_node_crypto;
    use crate::rbc::tests::run_mesh;
    use rand::SeedableRng;
    use wbft_crypto::CryptoSuite;

    fn make() -> Vec<PrbcBatch> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        deal_node_crypto(4, CryptoSuite::light(), &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, c)| PrbcBatch::new(Params::new(4, i, 8), c.prbc_pub, c.prbc_sec))
            .collect()
    }

    #[test]
    fn delivers_and_proves_all_instances() {
        let mut nodes = make();
        let vals: Vec<Bytes> = (0..4).map(|i| Bytes::from(format!("prbc-{i}"))).collect();
        let mut i = 0;
        run_mesh(
            &mut nodes,
            |n, acts| {
                n.start(vals[i].clone(), acts);
                i += 1;
            },
            |n, from, body, acts| n.handle(from, body, acts),
            |n| n.delivered_count() == 4 && n.proven_count() == 4,
        );
        for node in &nodes {
            for (j, val) in vals.iter().enumerate() {
                assert_eq!(node.delivered(j), Some(val));
                let proof = node.proof(j).unwrap();
                let root = Digest32::of(val);
                assert!(PrbcBatch::verify_proof(8, &node.keys, j, &root, proof));
                assert!(!PrbcBatch::verify_proof(8, &node.keys, (j + 1) % 4, &root, proof));
            }
        }
    }

    #[test]
    fn proof_requires_f_plus_1_shares() {
        // A single node's own share must not produce a proof (f=1 → 2).
        let mut nodes = make();
        let mut acts = Actions::new();
        nodes[0].start(Bytes::from_static(b"solo"), &mut acts);
        assert_eq!(nodes[0].proven_count(), 0);
        assert!(nodes[0].proof(0).is_none());
    }

    #[test]
    fn proofs_spread_via_gossip() {
        // Once one node holds a proof, a node that only exchanges DONE
        // packets with it obtains the proof too.
        let mut nodes = make();
        let vals: Vec<Bytes> = (0..4).map(|i| Bytes::from(format!("g-{i}"))).collect();
        let mut i = 0;
        run_mesh(
            &mut nodes,
            |n, acts| {
                n.start(vals[i].clone(), acts);
                i += 1;
            },
            |n, from, body, acts| n.handle(from, body, acts),
            |n| n.proven_count() == 4,
        );
        // Build a fresh node that only saw RBC traffic (simulate by making a
        // new node, replaying INITs + ERs from node 0's perspective is
        // overkill — instead check the gossip packet carries proofs).
        let pkt = nodes[0].build_done();
        match pkt {
            Body::PrbcDone { proofs, .. } => assert_eq!(proofs.len(), 4),
            _ => unreachable!(),
        }
    }
}
