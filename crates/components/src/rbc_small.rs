//! Batched RBC over *small* (two-bit) proposals — paper Fig. 5a.
//!
//! When proposals are tiny (the 1/0/⊥ votes inside Bracha's ABA, flags,
//! single ids), carrying a 32-byte hash per instance wastes the frame, so
//! RBC-small folds the INITIAL phase into the combined vote packet: the
//! value itself (2 bits per instance) rides next to the ECHO/READY bits and
//! identification-by-hash disappears. The horizontal batching of all three
//! phases is what Fig. 11a measures against plain RBC.

use crate::context::{Actions, Params, RetxState};
use wbft_net::{Bitmap, Body, RetransmitPolicy, Vote};

const TIMER_RETX: u32 = 0;

#[derive(Debug, Default)]
struct Inst {
    /// The proposal as first heard (directly or via votes).
    value: Vote,
    /// Per node: the value they echoed (`Unknown` = no echo seen).
    echo_votes: Vec<Vote>,
    /// Per node: the value they declared ready.
    ready_votes: Vec<Vote>,
    my_echo: Vote,
    my_ready: Vote,
    delivered: Vote,
}

impl Inst {
    fn new(n: usize) -> Self {
        Inst {
            echo_votes: vec![Vote::Unknown; n],
            ready_votes: vec![Vote::Unknown; n],
            ..Inst::default()
        }
    }
}

fn quorum_vote(votes: &[Vote], need: usize) -> Option<Vote> {
    [Vote::Zero, Vote::One, Vote::Bot].into_iter().find(|&v| votes.iter().filter(|x| **x == v).count() >= need)
}

/// N parallel small-value RBC instances under ConsensusBatcher.
#[derive(Debug)]
pub struct RbcSmallBatch {
    p: Params,
    insts: Vec<Inst>,
    dirty: bool,
    timer_armed: bool,
    retx: RetxState,
}

impl RbcSmallBatch {
    /// Creates the batch.
    pub fn new(p: Params) -> Self {
        RbcSmallBatch {
            insts: (0..p.n).map(|_| Inst::new(p.n)).collect(),
            dirty: false,
            timer_armed: false,
            retx: RetxState::new(RetransmitPolicy::lora_class(), &p),
            p,
        }
    }

    /// Starts with this node's small proposal.
    ///
    /// # Panics
    ///
    /// Panics if the vote is `Unknown` (absence is not a proposal).
    pub fn start(&mut self, my_value: Vote, acts: &mut Actions) {
        assert!(my_value.is_cast(), "cannot propose Unknown");
        let me = self.p.me;
        {
            let inst = &mut self.insts[me];
            inst.value = my_value;
            inst.my_echo = my_value;
            inst.echo_votes[me] = my_value;
        }
        self.dirty = true;
        self.flush(acts);
    }

    /// The delivered small value of an instance.
    pub fn delivered_small(&self, instance: usize) -> Option<Vote> {
        let v = self.insts[instance].delivered;
        v.is_cast().then_some(v)
    }

    /// Number of delivered instances.
    pub fn delivered_count(&self) -> usize {
        self.insts.iter().filter(|i| i.delivered.is_cast()).count()
    }

    fn advance(&mut self, j: usize) {
        let quorum = self.p.quorum();
        let f1 = self.p.f + 1;
        let me = self.p.me;
        let inst = &mut self.insts[j];
        if inst.my_echo == Vote::Unknown && inst.value.is_cast() {
            inst.my_echo = inst.value;
            inst.echo_votes[me] = inst.value;
            self.dirty = true;
        }
        let inst = &mut self.insts[j];
        if inst.my_ready == Vote::Unknown {
            if let Some(v) = quorum_vote(&inst.echo_votes, quorum) {
                inst.my_ready = v;
                inst.ready_votes[me] = v;
                self.dirty = true;
            } else if let Some(v) = quorum_vote(&inst.ready_votes, f1) {
                inst.my_ready = v;
                inst.ready_votes[me] = v;
                self.dirty = true;
            }
        }
        let inst = &mut self.insts[j];
        if inst.delivered == Vote::Unknown {
            if let Some(v) = quorum_vote(&inst.ready_votes, quorum) {
                inst.delivered = v;
                self.dirty = true;
            }
        }
    }

    fn build(&self) -> Body {
        let n = self.p.n;
        let mut values = vec![Vote::Unknown; n];
        let mut echo = Bitmap::new(n);
        let mut ready = Bitmap::new(n);
        let mut init_nack = Bitmap::new(n);
        let mut echo_nack = Bitmap::new(n);
        let mut ready_nack = Bitmap::new(n);
        for (j, inst) in self.insts.iter().enumerate() {
            // The value field carries what we vote on (echo root analogue).
            let v = if inst.my_ready.is_cast() {
                inst.my_ready
            } else if inst.my_echo.is_cast() {
                inst.my_echo
            } else {
                inst.value
            };
            values[j] = v;
            echo.set(j, inst.my_echo.is_cast() && inst.my_echo == v);
            ready.set(j, inst.my_ready.is_cast() && inst.my_ready == v);
            init_nack.set(j, !inst.value.is_cast());
            if inst.delivered == Vote::Unknown {
                echo_nack.set(j, quorum_vote(&inst.echo_votes, self.p.quorum()).is_none());
                ready_nack.set(j, quorum_vote(&inst.ready_votes, self.p.quorum()).is_none());
            }
        }
        Body::RbcSmall { values, echo, ready, init_nack, echo_nack, ready_nack }
    }

    fn flush(&mut self, acts: &mut Actions) {
        if self.dirty {
            acts.send(self.build());
            self.dirty = false;
            self.retx.reset();
        }
        if !self.timer_armed {
            self.timer_armed = true;
            let d = self.retx.next_delay();
            acts.timer(d, TIMER_RETX);
        }
    }

    /// Processes a packet for this session.
    pub fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        if from >= self.p.n {
            return;
        }
        let Body::RbcSmall { values, echo, ready, init_nack, echo_nack, ready_nack } = body
        else {
            return;
        };
        if values.len() != self.p.n || echo.len() != self.p.n {
            return;
        }
        for (j, &v) in values.iter().enumerate() {
            if v.is_cast() {
                // Learn the proposal: directly from its proposer, or by
                // adoption from any vote (the value is self-identifying).
                if !self.insts[j].value.is_cast() && (from == j || echo.get(j) || ready.get(j)) {
                    self.insts[j].value = v;
                }
                if echo.get(j) && self.insts[j].echo_votes[from] == Vote::Unknown {
                    self.insts[j].echo_votes[from] = v;
                }
                if ready.get(j) && self.insts[j].ready_votes[from] == Vote::Unknown {
                    self.insts[j].ready_votes[from] = v;
                }
            }
            if (init_nack.get(j) && self.insts[j].value.is_cast())
                || (echo_nack.get(j) && self.insts[j].my_echo.is_cast())
                || (ready_nack.get(j) && self.insts[j].my_ready.is_cast())
            {
                self.retx.peer_behind = true;
            }
            self.advance(j);
        }
        self.flush(acts);
    }

    /// Handles the retransmission tick.
    pub fn on_timer(&mut self, local_id: u32, acts: &mut Actions) {
        if local_id != TIMER_RETX {
            return;
        }
        let complete = self.delivered_count() == self.p.n;
        if self.retx.should_send(complete) {
            acts.send(self.build());
            self.retx.peer_behind = false;
        }
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_RETX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rbc::tests::run_mesh;

    fn make() -> Vec<RbcSmallBatch> {
        (0..4).map(|i| RbcSmallBatch::new(Params::new(4, i, 3))).collect()
    }

    #[test]
    fn delivers_all_small_values() {
        let mut nodes = make();
        let vals = [Vote::One, Vote::Zero, Vote::Bot, Vote::One];
        let mut i = 0;
        run_mesh(
            &mut nodes,
            |n, acts| {
                n.start(vals[i], acts);
                i += 1;
            },
            |n, from, body, acts| n.handle(from, body, acts),
            |n| n.delivered_count() == 4,
        );
        for node in &nodes {
            for (j, v) in vals.iter().enumerate() {
                assert_eq!(node.delivered_small(j), Some(*v));
            }
        }
    }

    #[test]
    fn small_packets_beat_full_rbc_packets() {
        use wbft_net::Sizing;
        let mut small = RbcSmallBatch::new(Params::new(4, 0, 1));
        let mut acts = Actions::new();
        small.start(Vote::One, &mut acts);
        let small_body = small.build();
        // A full RBC ER packet for comparison.
        let full_body = Body::RbcEchoReady {
            roots: vec![wbft_crypto::Digest32::of(b"v"); 4],
            echo: Bitmap::full(4),
            ready: Bitmap::new(4),
            echo_nack: Bitmap::new(4),
            ready_nack: Bitmap::new(4),
            init_nack: Bitmap::new(4),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let kp = wbft_crypto::schnorr::KeyPair::generate(
            wbft_crypto::EcdsaCurve::Secp160r1,
            &mut rng,
        );
        use rand::SeedableRng;
        let sizing = Sizing::light(4);
        let (_, small_len) =
            wbft_net::Envelope { src: 0, session: 1, body: small_body }.seal(&kp, &sizing).unwrap();
        let (_, full_len) =
            wbft_net::Envelope { src: 0, session: 2, body: full_body }.seal(&kp, &sizing).unwrap();
        assert!(small_len < full_len, "small {small_len} vs full {full_len}");
        // And a full RBC additionally needs INIT packets; RBC-small does not.
    }

    #[test]
    fn silent_proposer_does_not_block_others() {
        let mut nodes = make();
        let vals = [Vote::One, Vote::Zero, Vote::One];
        let mut inbox: Vec<(usize, Body)> = Vec::new();
        for i in 0..3 {
            let mut acts = Actions::new();
            nodes[i].start(vals[i], &mut acts);
            for b in acts.drain().0 {
                inbox.push((i, b));
            }
        }
        let mut steps = 0;
        while let Some((src, body)) = inbox.pop() {
            steps += 1;
            if steps > 20_000 {
                break;
            }
            for (i, node) in nodes.iter_mut().enumerate() {
                if i != src {
                    let mut acts = Actions::new();
                    node.handle(src, &body, &mut acts);
                    for b in acts.drain().0 {
                        inbox.push((i, b));
                    }
                }
            }
        }
        for node in nodes.iter().take(3) {
            assert_eq!(node.delivered_count(), 3);
            assert!(node.delivered_small(3).is_none());
        }
    }
}
