//! Shared component infrastructure: protocol parameters, the action sink
//! components emit into, per-node cryptographic material, and the
//! component-facing traits the consensus layer composes.

use bytes::Bytes;
use rand::RngCore;
use wbft_crypto::profile::CryptoSuite;
use wbft_crypto::schnorr::{KeyPair, PublicKey};
use wbft_crypto::thresh_coin::{CoinPublicSet, CoinSecretShare};
use wbft_crypto::thresh_enc::{EncPublicSet, EncSecretShare};
use wbft_crypto::thresh_sig::{PublicKeySet, SecretKeyShare};
use wbft_net::Body;
use wbft_wireless::SimDuration;

/// Core BFT parameters of one component batch.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Number of nodes (and of parallel instances), `n = 3f + 1`.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// This node's zero-based id.
    pub me: usize,
    /// Session id binding packets to this component batch.
    pub session: u64,
}

impl Params {
    /// Creates parameters, checking `n = 3f + 1` and `me < n`.
    ///
    /// # Panics
    ///
    /// Panics if the BFT bound or the id range is violated.
    pub fn new(n: usize, me: usize, session: u64) -> Self {
        assert!(n >= 4 && (n - 1).is_multiple_of(3), "need n = 3f+1 >= 4, got {n}");
        assert!(me < n, "node id {me} out of range for n = {n}");
        Params { n, f: (n - 1) / 3, me, session }
    }

    /// The Byzantine quorum `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// `n − f`, the wait threshold of the ABA phases.
    pub fn n_minus_f(&self) -> usize {
        self.n - self.f
    }
}

/// Commands a component emits during an event; the node driver turns sends
/// into sealed packets and timers into simulator timers.
#[derive(Debug, Default)]
pub struct Actions {
    /// Packet bodies to broadcast (each becomes one channel access).
    pub sends: Vec<Body>,
    /// `(delay, local timer id)` requests.
    pub timers: Vec<(SimDuration, u32)>,
    /// Virtual CPU time to charge (µs) for crypto performed in this event.
    pub charge_us: u64,
}

impl Actions {
    /// Fresh empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a broadcast.
    pub fn send(&mut self, body: Body) {
        self.sends.push(body);
    }

    /// Requests a timer.
    pub fn timer(&mut self, after: SimDuration, local_id: u32) {
        self.timers.push((after, local_id));
    }

    /// Charges virtual CPU time.
    pub fn charge(&mut self, us: u64) {
        self.charge_us += us;
    }

    /// Moves everything out (driver side).
    pub fn drain(&mut self) -> (Vec<Body>, Vec<(SimDuration, u32)>, u64) {
        (
            std::mem::take(&mut self.sends),
            std::mem::take(&mut self.timers),
            std::mem::replace(&mut self.charge_us, 0),
        )
    }
}

/// A node's full cryptographic identity: packet-signature keypair, peers'
/// verification keys, and the four threshold key sets the protocols use.
#[derive(Clone, Debug)]
pub struct NodeCrypto {
    /// This node's id.
    pub me: usize,
    /// Curve deployments (cost profiles) in effect.
    pub suite: CryptoSuite,
    /// Packet-signing keypair.
    pub keypair: KeyPair,
    /// All nodes' packet verification keys.
    pub peer_keys: Vec<PublicKey>,
    /// Key epoch these threshold shares belong to: 0 for a dealt genesis
    /// bundle, incremented by each membership resharing roll. Share-
    /// carrying wire traffic is tagged with it so stale-epoch shares are
    /// rejected instead of combined.
    pub key_epoch: u64,
    /// `(f, n)` threshold signatures — PRBC delivery proofs.
    pub prbc_pub: PublicKeySet,
    /// Secret share for `prbc_pub`.
    pub prbc_sec: SecretKeyShare,
    /// `(2f, n)` threshold signatures — CBC quorum certificates.
    pub cbc_pub: PublicKeySet,
    /// Secret share for `cbc_pub`.
    pub cbc_sec: SecretKeyShare,
    /// `(f, n)` common coin.
    pub coin_pub: CoinPublicSet,
    /// Secret share for `coin_pub`.
    pub coin_sec: CoinSecretShare,
    /// `(f, n)` threshold encryption — censorship resilience.
    pub enc_pub: EncPublicSet,
    /// Secret share for `enc_pub`.
    pub enc_sec: EncSecretShare,
}

/// Deals a full set of [`NodeCrypto`] for an `n`-node deployment (the
/// trusted-dealer setup the paper also assumes).
pub fn deal_node_crypto(n: usize, suite: CryptoSuite, rng: &mut impl RngCore) -> Vec<NodeCrypto> {
    assert!(n >= 4 && (n - 1).is_multiple_of(3), "need n = 3f+1 >= 4, got {n}");
    let f = (n - 1) / 3;
    let keypairs: Vec<KeyPair> = (0..n).map(|_| KeyPair::generate(suite.ecdsa, rng)).collect();
    let peer_keys: Vec<PublicKey> = keypairs.iter().map(|k| k.public()).collect();
    let (prbc_pub, prbc_secs) = wbft_crypto::thresh_sig::deal(n, f, suite.threshold, rng);
    let (cbc_pub, cbc_secs) = wbft_crypto::thresh_sig::deal(n, 2 * f, suite.threshold, rng);
    let (coin_pub, coin_secs) = wbft_crypto::thresh_coin::deal_coin(n, f, suite.threshold, rng);
    let (enc_pub, enc_secs) = wbft_crypto::thresh_enc::deal_enc(n, f, suite.threshold, rng);
    keypairs
        .into_iter()
        .zip(prbc_secs)
        .zip(cbc_secs)
        .zip(coin_secs)
        .zip(enc_secs)
        .enumerate()
        .map(|(me, ((((keypair, prbc_sec), cbc_sec), coin_sec), enc_sec))| NodeCrypto {
            me,
            suite,
            keypair,
            peer_keys: peer_keys.clone(),
            key_epoch: 0,
            prbc_pub: prbc_pub.clone(),
            prbc_sec,
            cbc_pub: cbc_pub.clone(),
            cbc_sec,
            coin_pub: coin_pub.clone(),
            coin_sec,
            enc_pub: enc_pub.clone(),
            enc_sec,
        })
        .collect()
}

/// Broadcast components that deliver `(instance, value)` pairs — batched
/// RBC and the per-instance baseline set implement this, so consensus
/// drivers are generic over the deployment style.
pub trait Broadcaster {
    /// Starts the component; `my_value` is this node's proposal (instance
    /// `me`).
    fn start(&mut self, my_value: Bytes, acts: &mut Actions);

    /// Processes a packet body addressed to this component's session.
    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions);

    /// Handles one of this component's timers.
    fn on_timer(&mut self, local_id: u32, acts: &mut Actions);

    /// The delivered value of an instance, if any.
    fn delivered(&self, instance: usize) -> Option<&Bytes>;

    /// How many instances have delivered.
    fn delivered_count(&self) -> usize;
}

/// Binary-agreement components over `n` parallel (or serial) instances.
pub trait BinaryAgreement {
    /// Provides this node's input for an instance, activating it.
    fn set_input(&mut self, instance: usize, value: bool, acts: &mut Actions);

    /// Processes a packet body addressed to this component's session.
    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions);

    /// Handles one of this component's timers.
    fn on_timer(&mut self, local_id: u32, acts: &mut Actions);

    /// The decision of an instance, if reached.
    fn decided(&self, instance: usize) -> Option<bool>;

    /// How many instances have decided.
    fn decided_count(&self) -> usize;
}

/// Shared retransmission driver: every component keeps one; it re-arms a
/// jittered timer while the component is live and decides whether the
/// periodic tick should actually transmit (state pending or peers behind).
#[derive(Debug)]
pub struct RetxState {
    policy: wbft_net::RetransmitPolicy,
    attempt: u32,
    /// Evidence since the last send that some peer is behind (their NACK
    /// bits, or votes they lack that we have).
    pub peer_behind: bool,
    rng: rand_chacha::ChaCha12Rng,
}

impl RetxState {
    /// Creates a retransmission driver with its own deterministic jitter
    /// stream (seeded from node id + session so nodes desynchronize).
    pub fn new(policy: wbft_net::RetransmitPolicy, params: &Params) -> Self {
        use rand::SeedableRng;
        let seed = (params.me as u64) << 32 | (params.session & 0xffff_ffff);
        RetxState { policy, attempt: 0, peer_behind: false, rng: rand_chacha::ChaCha12Rng::seed_from_u64(seed) }
    }

    /// Delay until the next tick.
    pub fn next_delay(&mut self) -> SimDuration {
        let d = self.policy.delay(self.attempt, &mut self.rng);
        self.attempt = self.attempt.saturating_add(1);
        d
    }

    /// Resets backoff (called when our own state advances — fresh
    /// information is worth sending promptly).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Whether the periodic tick should transmit: either we are not done,
    /// or a peer demonstrably needs our state.
    pub fn should_send(&self, self_complete: bool) -> bool {
        !self_complete || self.peer_behind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn params_derive_f_and_quorum() {
        let p = Params::new(4, 2, 9);
        assert_eq!(p.f, 1);
        assert_eq!(p.quorum(), 3);
        assert_eq!(p.n_minus_f(), 3);
        let p = Params::new(7, 0, 1);
        assert_eq!(p.f, 2);
        assert_eq!(p.quorum(), 5);
    }

    #[test]
    #[should_panic(expected = "3f+1")]
    fn bad_n_rejected() {
        Params::new(5, 0, 0);
    }

    #[test]
    fn actions_collects_and_drains() {
        let mut a = Actions::new();
        a.charge(100);
        a.charge(50);
        a.timer(SimDuration::from_millis(5), 1);
        let (sends, timers, charge) = a.drain();
        assert!(sends.is_empty());
        assert_eq!(timers.len(), 1);
        assert_eq!(charge, 150);
        let (_, _, charge2) = a.drain();
        assert_eq!(charge2, 0);
    }

    #[test]
    fn dealt_crypto_is_consistent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let nodes = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        assert_eq!(nodes.len(), 4);
        // PRBC set: threshold f = 1 → 2 shares combine.
        let msg = b"done";
        let s0 = nodes[0].prbc_sec.sign_share(msg);
        let s1 = nodes[1].prbc_sec.sign_share(msg);
        let sig = nodes[2].prbc_pub.combine(&[s0, s1]).unwrap();
        nodes[3].prbc_pub.verify(msg, &sig).unwrap();
        // CBC set: threshold 2f = 2 → 3 shares.
        let shares: Vec<_> = nodes.iter().take(3).map(|n| n.cbc_sec.sign_share(msg)).collect();
        let sig = nodes[0].cbc_pub.combine(&shares).unwrap();
        nodes[1].cbc_pub.verify(msg, &sig).unwrap();
        // Packet keys cross-verify.
        let sig = nodes[2].keypair.sign(b"pkt");
        nodes[0].peer_keys[2].verify(b"pkt", &sig).unwrap();
        assert!(nodes[0].peer_keys[3].verify(b"pkt", &sig).is_err());
    }

    #[test]
    fn retx_should_send_logic() {
        let params = Params::new(4, 0, 1);
        let mut r = RetxState::new(wbft_net::RetransmitPolicy::lora_class(), &params);
        assert!(r.should_send(false));
        assert!(!r.should_send(true));
        r.peer_behind = true;
        assert!(r.should_send(true));
        let d1 = r.next_delay();
        let _ = r.next_delay();
        r.reset();
        let _ = d1;
    }
}
