//! Batched Bracha (local-coin) asynchronous binary agreement — paper
//! Fig. 6a.
//!
//! Each round has three phases; each phase is a set of N vote-broadcasts
//! with Bracha-RBC semantics (a voter's phase vote is *accepted* only after
//! `2f+1` distinct nodes relay the same value, with `f+1`-relay
//! amplification), which is what makes unbatched deployment O(N³).
//! ConsensusBatcher folds all three phase lattices of all k batched
//! instances into one packet: the node's current *report matrix* — for each
//! instance, round and phase, the value it relays for every voter.
//!
//! Round structure (Bracha '84):
//! 1. broadcast `est`; on `n−f` accepted votes, take the majority `m`;
//! 2. broadcast `m`; on `n−f` accepted *justified* votes, broadcast `v`
//!    if some value holds a strict majority, else `⊥`;
//! 3. on `n−f` accepted votes: `≥ 2f+1` for `v` → **decide v**; `≥ f+1` →
//!    `est = v`; otherwise `est =` local coin flip.
//!
//! Phases 2 and 3 apply Bracha's *message validation*: a phase-2 vote for
//! `v` counts only once `v` has `f+1` accepted phase-1 supporters (so `v`
//! is the majority of some legitimate `n−f` phase-1 sample), and a non-⊥
//! phase-3 vote counts only under a justified phase-2 strict majority for
//! its value. Without validation a single vote-flipping Byzantine node can
//! deny both values the phase-2 majority, drive every honest node to ⊥,
//! and let the local coin flip est away from an already-decided value —
//! an agreement violation the scenario fuzzer reproduces.
//!
//! The local coin needs no cryptography — the trade the paper studies
//! against the shared-coin variant (O(N³) messages vs. threshold-crypto
//! cost).

use crate::context::{Actions, BinaryAgreement, Params, RetxState};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::BTreeMap;
use wbft_net::packets::AbaLcInst;
use wbft_net::{Body, RetransmitPolicy, Vote};

const TIMER_RETX: u32 = 0;

/// Rounds of report history carried per packet. Wide enough that a node
/// left out of three fast peers' quorums for several rounds still finds
/// every vote it needs in any single later packet.
const HISTORY_WINDOW: u16 = 8;

/// Per-round vote-lattice state for one instance.
#[derive(Debug, Clone)]
struct RoundState {
    /// `my_reports[phase][voter]` — the value this node relays.
    my_reports: [Vec<Vote>; 3],
    /// `reporters[phase][voter][vote code − 1]` — bitmask of relaying nodes.
    reporters: [Vec<[u64; 3]>; 3],
    /// Accepted (2f+1-relayed) vote per phase and voter.
    accepted: [Vec<Vote>; 3],
    /// Round finished (est chosen / decided).
    finished: bool,
}

impl RoundState {
    fn new(n: usize) -> Self {
        RoundState {
            my_reports: [vec![Vote::Unknown; n], vec![Vote::Unknown; n], vec![Vote::Unknown; n]],
            reporters: [vec![[0; 3]; n], vec![[0; 3]; n], vec![[0; 3]; n]],
            accepted: [vec![Vote::Unknown; n], vec![Vote::Unknown; n], vec![Vote::Unknown; n]],
            finished: false,
        }
    }

    fn accepted_count(&self, phase: usize) -> usize {
        self.accepted[phase].iter().filter(|v| v.is_cast()).count()
    }

    /// Counts accepted votes equal to `v` in a phase.
    fn accepted_votes(&self, phase: usize, v: Vote) -> usize {
        self.accepted[phase].iter().filter(|x| **x == v).count()
    }

    /// Counts accepted phase-2 votes for `v` that are *justified* in the
    /// Bracha message-validation sense: a phase-2 vote for `v` is countable
    /// only once `v` has `f+1` accepted phase-1 supporters — i.e. `v` could
    /// be the majority of some honest node's `n−f` phase-1 sample. An
    /// honest phase-2 vote always becomes justified (its caster saw `v` win
    /// a majority of its `n−f` sample, so `v` has at least `f+1` phase-1
    /// votes that every node eventually accepts); a Byzantine phase-2 vote
    /// for a value no honest node estimated never does, so it can never
    /// poison a majority computation. Justification is monotone: waiting on
    /// it preserves liveness.
    fn justified_p2_votes(&self, v: Vote, f1: usize) -> usize {
        if self.accepted_votes(0, v) >= f1 {
            self.accepted_votes(1, v)
        } else {
            0
        }
    }
}

#[derive(Debug)]
struct Inst {
    active: bool,
    est: bool,
    round: u16,
    rounds: BTreeMap<u16, RoundState>,
    decided: Option<bool>,
    claims0: u64,
    claims1: u64,
    /// Highest round observed per peer (adaptive history floor: packets
    /// carry votes back to the slowest undecided peer, so a laggard can
    /// never drift past recovery).
    peer_round: Vec<u16>,
    peer_decided: u64,
}

impl Inst {
    fn new(n: usize) -> Self {
        Inst {
            active: false,
            est: false,
            round: 0,
            rounds: BTreeMap::new(),
            decided: None,
            claims0: 0,
            claims1: 0,
            peer_round: vec![0; n],
            peer_decided: 0,
        }
    }

    /// Oldest round any undecided peer is known to need.
    fn history_floor(&self, me: usize) -> u16 {
        let mut floor = self.round;
        for (i, r) in self.peer_round.iter().enumerate() {
            if i != me && self.peer_decided & (1 << i) == 0 {
                floor = floor.min(*r);
            }
        }
        floor
    }
}

/// k parallel Bracha-ABA instances under ConsensusBatcher.
#[derive(Debug)]
pub struct AbaLcBatch {
    p: Params,
    insts: Vec<Inst>,
    rng: ChaCha12Rng,
    dirty: bool,
    timer_armed: bool,
    retx: RetxState,
}

impl AbaLcBatch {
    /// Creates the batch; the local coin is an independent deterministic
    /// stream per node and session.
    pub fn new(p: Params) -> Self {
        let seed = 0x5_eeda_ba1c ^ ((p.me as u64) << 40) ^ p.session;
        AbaLcBatch {
            insts: (0..p.n).map(|_| Inst::new(p.n)).collect(),
            rng: ChaCha12Rng::seed_from_u64(seed),
            dirty: false,
            timer_armed: false,
            retx: RetxState::new(RetransmitPolicy::lora_class(), &p),
            p,
        }
    }

    fn round_state(&mut self, instance: usize, round: u16) -> &mut RoundState {
        let n = self.p.n;
        self.insts[instance].rounds.entry(round).or_insert_with(|| RoundState::new(n))
    }

    /// Records `from`'s relay of `voter`'s `phase` vote, applying the
    /// amplification and acceptance thresholds.
    fn record_report(
        &mut self,
        instance: usize,
        round: u16,
        phase: usize,
        voter: usize,
        vote: Vote,
        from: usize,
    ) {
        if !vote.is_cast() || voter >= self.p.n {
            return;
        }
        let quorum = self.p.quorum();
        let f1 = self.p.f + 1;
        let me = self.p.me;
        let rs = self.round_state(instance, round);
        let code = (vote.code() - 1) as usize;
        rs.reporters[phase][voter][code] |= 1 << from;
        let count = rs.reporters[phase][voter][code].count_ones() as usize;
        // Echo on direct receipt from the voter; f+1 relay amplification
        // otherwise (Bracha-RBC semantics per vote).
        if (from == voter || count >= f1) && rs.my_reports[phase][voter] == Vote::Unknown {
            rs.my_reports[phase][voter] = vote;
            rs.reporters[phase][voter][code] |= 1 << me;
            self.dirty = true;
        }
        // 2f+1 acceptance.
        let rs = self.round_state(instance, round);
        let count = rs.reporters[phase][voter][code].count_ones() as usize;
        if count >= quorum && rs.accepted[phase][voter] == Vote::Unknown {
            rs.accepted[phase][voter] = vote;
        }
    }

    /// Casts this node's own `phase` vote in `(instance, round)`.
    fn cast(&mut self, instance: usize, round: u16, phase: usize, vote: Vote) {
        let me = self.p.me;
        let rs = self.round_state(instance, round);
        if rs.my_reports[phase][me].is_cast() {
            return;
        }
        rs.my_reports[phase][me] = vote;
        rs.reporters[phase][me][(vote.code() - 1) as usize] |= 1 << me;
        self.dirty = true;
    }

    fn evaluate(&mut self, instance: usize) {
        loop {
            let (active, round, decided) = {
                let i = &self.insts[instance];
                (i.active, i.round, i.decided)
            };
            if !active {
                return;
            }
            let est = self.insts[instance].est;
            // Phase 1: vote est.
            self.cast(instance, round, 0, Vote::from_bool(est));
            let n_minus_f = self.p.n_minus_f();
            let quorum = self.p.quorum();
            let f1 = self.p.f + 1;
            let me = self.p.me;

            let mut progressed = false;
            // Phase 2 on n−f accepted phase-1 votes: majority.
            let phase2_vote = {
                let rs = self.round_state(instance, round);
                if rs.accepted_count(0) >= n_minus_f && !rs.my_reports[1][me].is_cast() {
                    let ones = rs.accepted_votes(0, Vote::One);
                    let zeros = rs.accepted_votes(0, Vote::Zero);
                    Some(Vote::from_bool(ones > zeros))
                } else {
                    None
                }
            };
            if let Some(maj) = phase2_vote {
                self.cast(instance, round, 1, maj);
                progressed = true;
            }
            // Phase 3 on n−f *justified* accepted phase-2 votes: strict
            // majority or ⊥. Counting unjustified votes here is unsound: a
            // Byzantine phase-2 vote for the minority value (which no
            // honest sample can justify) would land in the n−f sample,
            // deny both values the strict majority, and push every honest
            // node to ⊥ — and from all-⊥ the round falls through to the
            // local coin, which can flip est away from a value another
            // honest node has already decided on. Justified-only counting
            // restores the Bracha argument: after a decide, every later
            // round's justified phase-2 votes are unanimous.
            let phase3_vote = {
                let n = self.p.n;
                let rs = self.round_state(instance, round);
                let ones = rs.justified_p2_votes(Vote::One, f1);
                let zeros = rs.justified_p2_votes(Vote::Zero, f1);
                if ones + zeros >= n_minus_f && !rs.my_reports[2][me].is_cast() {
                    Some(if 2 * ones > n {
                        Vote::One
                    } else if 2 * zeros > n {
                        Vote::Zero
                    } else {
                        Vote::Bot
                    })
                } else {
                    None
                }
            };
            if let Some(v) = phase3_vote {
                self.cast(instance, round, 2, v);
                progressed = true;
            }
            // Round completion on n−f *valid* accepted phase-3 votes.
            // Bracha's validation rule: a non-⊥ phase-3 value is countable
            // only if it holds a strict majority among this node's accepted
            // phase-2 votes. Without the check, a Byzantine voter can
            // smuggle an unjustified value into the n−f sample and break
            // the f+1-overlap safety argument (honest nodes could then
            // decide differently).
            {
                let n = self.p.n;
                let rs = self.round_state(instance, round);
                let one_ok = 2 * rs.justified_p2_votes(Vote::One, f1) > n;
                let zero_ok = 2 * rs.justified_p2_votes(Vote::Zero, f1) > n;
                let ones = if one_ok { rs.accepted_votes(2, Vote::One) } else { 0 };
                let zeros = if zero_ok { rs.accepted_votes(2, Vote::Zero) } else { 0 };
                let valid_count = ones + zeros + rs.accepted_votes(2, Vote::Bot);
                if valid_count >= n_minus_f && !rs.finished {
                    let (v, c) =
                        if ones >= zeros { (true, ones) } else { (false, zeros) };
                    rs.finished = true;
                    let next_est = if c >= quorum {
                        // Decide v.
                        let inst = &mut self.insts[instance];
                        if inst.decided.is_none() {
                            inst.decided = Some(v);
                            if v {
                                inst.claims1 |= 1 << me;
                            } else {
                                inst.claims0 |= 1 << me;
                            }
                        }
                        v
                    } else if c >= f1 {
                        v
                    } else {
                        self.rng.random_bool(0.5)
                    };
                    let inst = &mut self.insts[instance];
                    if let Some(d) = decided.or(inst.decided) {
                        inst.est = d; // decided nodes keep voting the decision
                    } else {
                        inst.est = next_est;
                    }
                    inst.round = round + 1;
                    self.dirty = true;
                    // Prune rounds nobody can still need: below both the
                    // static window and the slowest undecided peer.
                    let me = self.p.me;
                    let inst = &mut self.insts[instance];
                    let keep_from =
                        inst.round.saturating_sub(HISTORY_WINDOW).min(inst.history_floor(me));
                    inst.rounds.retain(|r, _| *r >= keep_from);
                    continue;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn build_packet(&self) -> Body {
        let mut insts = Vec::new();
        for (j, inst) in self.insts.iter().enumerate() {
            if !inst.active {
                continue;
            }
            let lo = inst
                .round
                .saturating_sub(HISTORY_WINDOW - 1)
                .min(inst.history_floor(self.p.me));
            for r in lo..=inst.round {
                if let Some(rs) = inst.rounds.get(&r) {
                    insts.push(AbaLcInst {
                        instance: j as u8,
                        round: r,
                        reports: rs.my_reports.clone(),
                        decided: inst.decided.map(Vote::from_bool).unwrap_or(Vote::Unknown),
                    });
                }
            }
        }
        Body::AbaLc { insts }
    }

    fn flush(&mut self, acts: &mut Actions) {
        if self.dirty {
            acts.send(self.build_packet());
            self.dirty = false;
            self.retx.reset();
        }
        if !self.timer_armed {
            self.timer_armed = true;
            let d = self.retx.next_delay();
            acts.timer(d, TIMER_RETX);
        }
    }

    fn is_complete(&self) -> bool {
        self.insts.iter().all(|i| !i.active || i.decided.is_some())
            && self.insts.iter().any(|i| i.active)
    }
}

impl BinaryAgreement for AbaLcBatch {
    fn set_input(&mut self, instance: usize, value: bool, acts: &mut Actions) {
        let inst = &mut self.insts[instance];
        if inst.active {
            return;
        }
        inst.active = true;
        inst.est = value;
        self.evaluate(instance);
        self.flush(acts);
    }

    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        if from >= self.p.n {
            return;
        }
        let Body::AbaLc { insts } = body else { return };
        for wire in insts {
            let j = wire.instance as usize;
            if j >= self.p.n {
                continue;
            }
            for (phase, reports) in wire.reports.iter().enumerate() {
                if reports.len() != self.p.n {
                    continue;
                }
                for (voter, vote) in reports.iter().enumerate() {
                    self.record_report(j, wire.round, phase, voter, *vote, from);
                }
            }
            match wire.decided {
                Vote::Zero => self.insts[j].claims0 |= 1 << from,
                Vote::One => self.insts[j].claims1 |= 1 << from,
                _ => {}
            }
            {
                let inst = &mut self.insts[j];
                if wire.round > inst.peer_round[from] {
                    inst.peer_round[from] = wire.round;
                }
                if wire.decided != Vote::Unknown {
                    inst.peer_decided |= 1 << from;
                }
                // A peer stuck behind us needs old rounds we still hold.
                if inst.peer_round[from] < inst.round && inst.decided.is_none() {
                    self.retx.peer_behind = true;
                }
            }
            let f1 = (self.p.f + 1) as u32;
            let inst = &mut self.insts[j];
            if inst.decided.is_none() {
                if inst.claims0.count_ones() >= f1 {
                    inst.decided = Some(false);
                    self.dirty = true;
                } else if inst.claims1.count_ones() >= f1 {
                    inst.decided = Some(true);
                    self.dirty = true;
                }
            }
            if inst.decided.is_some() && wire.decided == Vote::Unknown {
                self.retx.peer_behind = true;
            }
        }
        for j in 0..self.p.n {
            self.evaluate(j);
        }
        self.flush(acts);
    }

    fn on_timer(&mut self, local_id: u32, acts: &mut Actions) {
        if local_id != TIMER_RETX {
            return;
        }
        if self.retx.should_send(self.is_complete()) {
            acts.send(self.build_packet());
            self.retx.peer_behind = false;
        }
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_RETX);
    }

    fn decided(&self, instance: usize) -> Option<bool> {
        self.insts.get(instance).and_then(|i| i.decided)
    }

    fn decided_count(&self) -> usize {
        self.insts.iter().filter(|i| i.decided.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make() -> Vec<AbaLcBatch> {
        (0..4).map(|i| AbaLcBatch::new(Params::new(4, i, 13))).collect()
    }

    fn run(nodes: &mut [AbaLcBatch], inputs: Vec<Vec<bool>>) -> Vec<Vec<bool>> {
        let n_inst = inputs[0].len();
        let mut inbox: Vec<(usize, Body)> = Vec::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            let mut acts = Actions::new();
            for (j, v) in inputs[i].iter().enumerate() {
                node.set_input(j, *v, &mut acts);
            }
            for b in acts.drain().0 {
                inbox.push((i, b));
            }
        }
        let mut steps = 0;
        while let Some((src, body)) = inbox.pop() {
            steps += 1;
            assert!(steps < 400_000, "ABA-LC did not converge");
            for (i, node) in nodes.iter_mut().enumerate() {
                if i == src {
                    continue;
                }
                let mut acts = Actions::new();
                node.handle(src, &body, &mut acts);
                for b in acts.drain().0 {
                    inbox.push((i, b));
                }
            }
            if nodes.iter().all(|n| (0..n_inst).all(|j| n.decided(j).is_some())) {
                break;
            }
        }
        assert!(
            nodes.iter().all(|n| (0..n_inst).all(|j| n.decided(j).is_some())),
            "not all decided"
        );
        nodes
            .iter()
            .map(|n| (0..n_inst).map(|j| n.decided(j).unwrap()).collect())
            .collect()
    }

    #[test]
    fn unanimous_inputs_decide_in_round_one() {
        let mut nodes = make();
        let decisions = run(&mut nodes, vec![vec![true]; 4]);
        assert!(decisions.iter().all(|d| d[0]));
        // Unanimous inputs must not need the coin: round stays small.
        assert!(nodes.iter().all(|n| n.insts[0].round <= 2));
    }

    #[test]
    fn unanimous_zero_decides_zero() {
        let mut nodes = make();
        let decisions = run(&mut nodes, vec![vec![false]; 4]);
        assert!(decisions.iter().all(|d| !d[0]));
    }

    #[test]
    fn split_inputs_agree() {
        let mut nodes = make();
        let decisions = run(&mut nodes, vec![vec![true], vec![true], vec![false], vec![false]]);
        let first = decisions[0][0];
        assert!(decisions.iter().all(|d| d[0] == first), "{decisions:?}");
    }

    #[test]
    fn majority_one_decides_one() {
        // 3-of-4 voting 1: phase-2 majority forces 1 regardless of the coin.
        let mut nodes = make();
        let decisions = run(&mut nodes, vec![vec![true], vec![true], vec![true], vec![false]]);
        assert!(decisions.iter().all(|d| d[0]), "{decisions:?}");
    }

    #[test]
    fn parallel_instances_decide_independently() {
        let mut nodes = make();
        let inputs: Vec<Vec<bool>> = (0..4).map(|_| vec![true, false, true, false]).collect();
        let decisions = run(&mut nodes, inputs);
        for d in &decisions {
            assert_eq!(*d, vec![true, false, true, false]);
        }
    }

    #[test]
    fn local_coins_differ_across_nodes() {
        let mut a = AbaLcBatch::new(Params::new(4, 0, 99));
        let mut b = AbaLcBatch::new(Params::new(4, 1, 99));
        let fa: Vec<bool> = (0..64).map(|_| a.rng.random_bool(0.5)).collect();
        let fb: Vec<bool> = (0..64).map(|_| b.rng.random_bool(0.5)).collect();
        assert_ne!(fa, fb, "node coins must be independent");
    }
}
