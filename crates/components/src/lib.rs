#![forbid(unsafe_code)]
// Totality backstop (type-aware side of wbft-lint's T1 rule): protocol
// paths must not panic via unwrap/expect. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # wbft-components — consensus components for wireless asynchronous BFT
//!
//! The component layer of the ConsensusBatcher reproduction (*"Asynchronous
//! BFT Consensus Made Wireless"*, ICDCS 2025): every broadcast and
//! agreement primitive the three consensus protocols are built from, in
//! both **ConsensusBatcher-batched** form (one combined packet per channel
//! access for all N parallel instances) and **baseline** form (per-instance
//! per-phase packets, the unbatched deployment the paper compares against).
//!
//! | Component | Batched | Baseline |
//! |-----------|---------|----------|
//! | Bracha reliable broadcast | [`rbc::RbcBatch`] | [`baseline::BaselineRbcSet`] |
//! | RBC-small (2-bit values)  | [`rbc_small::RbcSmallBatch`] | — |
//! | Consistent broadcast      | [`cbc::CbcBatch`] | [`baseline::BaselineCbcSet`] |
//! | CBC-small (id lists)      | [`cbc::CbcSmallBatch`] | — |
//! | Provable RBC              | [`prbc::PrbcBatch`] | [`baseline::BaselinePrbcSet`] |
//! | Shared-coin ABA (SC / CP) | [`aba_sc::AbaScBatch`] | [`baseline::BaselineAbaSet`] |
//! | Local-coin ABA (Bracha)   | [`aba_lc::AbaLcBatch`] | (per-report packets via [`wbft_net::Body::BaseAbaLcReport`]) |
//!
//! All components are sans-io state machines: they consume packet bodies
//! and timer ticks and emit [`context::Actions`] (broadcasts, timers,
//! virtual CPU charges). The consensus layer in `wbft-consensus` seals
//! their packets, binds them to simulator nodes, and composes them into
//! HoneyBadgerBFT, BEAT and Dumbo.
//!
//! ## Example: four batched RBC nodes over an in-memory mesh
//!
//! ```rust
//! use wbft_components::{Actions, Broadcaster, Params};
//! use wbft_components::rbc::RbcBatch;
//! use bytes::Bytes;
//!
//! let mut nodes: Vec<RbcBatch> =
//!     (0..4).map(|i| RbcBatch::new(Params::new(4, i, 1))).collect();
//! let mut inbox = Vec::new();
//! for (i, node) in nodes.iter_mut().enumerate() {
//!     let mut acts = Actions::new();
//!     node.start(Bytes::from(format!("proposal-{i}")), &mut acts);
//!     inbox.extend(acts.drain().0.into_iter().map(|b| (i, b)));
//! }
//! while let Some((src, body)) = inbox.pop() {
//!     for i in 0..4 {
//!         if i == src { continue; }
//!         let mut acts = Actions::new();
//!         nodes[i].handle(src, &body, &mut acts);
//!         inbox.extend(acts.drain().0.into_iter().map(|b| (i, b)));
//!     }
//! }
//! assert!(nodes.iter().all(|n| n.delivered_count() == 4));
//! ```

pub mod aba_lc;
pub mod aba_sc;
pub mod baseline;
pub mod cbc;
pub mod context;
pub mod prbc;
pub mod rbc;
pub mod rbc_small;
pub mod share_buf;

pub use context::{deal_node_crypto, Actions, BinaryAgreement, Broadcaster, NodeCrypto, Params};
pub use share_buf::{CoinShareBuf, SigShareBuf};
