//! Buffered batch verification of threshold shares — the component-side
//! half of the crypto fast path.
//!
//! Every quorum-collecting component used to verify each arriving share
//! with its own group exponentiation. The buffers here change the *real*
//! work, not the protocol: shares are accepted into a per-instance buffer
//! (deduplicated by reporter bit, index-range checked) and only verified
//! once a quorum's worth has accumulated — with one random-linear-
//! combination batch check ([`wbft_crypto::thresh_sig::PublicKeySet::
//! verify_shares`]) instead of per-share exponentiations. When the batch
//! check fails, the per-share fallback localizes the Byzantine shares,
//! which are evicted (and their reporter bits freed, so a corrected
//! retransmission can take the slot).
//!
//! The simulator's *charged virtual costs* are unchanged: components still
//! charge `verify_share_us` per accepted share at arrival and `combine_us`
//! per combination, exactly as before — only wall-clock CPU drops.

use wbft_crypto::thresh_coin::{CoinName, CoinPublicSet, CoinShare};
use wbft_crypto::thresh_sig::{PublicKeySet, SigShare};
use wbft_crypto::ShareIndex;

/// The shared buffer core, generic over the share type. The two public
/// wrappers only differ in how a batch is verified.
#[derive(Debug, Clone)]
struct RawBuf<S> {
    shares: Vec<S>,
    /// `shares[..verified]` have passed verification.
    verified: usize,
    reporters: u64,
    /// Key epoch the buffered shares belong to. Shares from another
    /// threshold-key generation are structurally incompatible with this
    /// buffer's verification keys — see [`RawBuf::insert_tagged`].
    key_epoch: u64,
}

impl<S> Default for RawBuf<S> {
    fn default() -> Self {
        RawBuf { shares: Vec::new(), verified: 0, reporters: 0, key_epoch: 0 }
    }
}

impl<S: Copy> RawBuf<S> {
    /// Drops every buffered share and moves the buffer to `key_epoch`.
    /// Shares gathered under the old keys are useless under the new ones
    /// (same indices, different share polynomial), so a buffer that
    /// outlives a membership resharing roll must evict, not carry over.
    fn roll_key_epoch(&mut self, key_epoch: u64) {
        if key_epoch == self.key_epoch {
            return;
        }
        self.key_epoch = key_epoch;
        self.shares.clear();
        self.verified = 0;
        self.reporters = 0;
    }

    /// [`RawBuf::insert`] for a share tagged with the key epoch it was
    /// produced under: a stale (or future) tag is rejected at the door —
    /// it must never reach the batch verifier, where a whole quorum's
    /// combine would fail instead.
    fn insert_tagged(&mut self, share: S, index: ShareIndex, n: usize, tag: u64) -> bool {
        if tag != self.key_epoch {
            return false;
        }
        self.insert(share, index, n)
    }

    fn insert(&mut self, share: S, index: ShareIndex, n: usize) -> bool {
        // The reporter bitmask (like every bitmap in the wire layer) caps
        // deployments at 64 nodes; make an oversized deployment fail loudly
        // in debug builds instead of silently never settling a quorum.
        debug_assert!(n <= 64, "share buffers support at most 64 nodes, got n = {n}");
        let i = index.value() as usize;
        if i == 0 || i > n || i > 64 {
            return false;
        }
        let bit = 1u64 << (i - 1);
        if self.reporters & bit != 0 {
            return false;
        }
        self.reporters |= bit;
        self.shares.push(share);
        true
    }

    /// Once at least `need` shares are buffered, runs `invalid_positions`
    /// over the unverified suffix, evicting the reported shares (freeing
    /// their reporter bits via `index_of`). Returns `true` when `need`
    /// *verified* shares are available.
    fn settle(
        &mut self,
        need: usize,
        index_of: impl Fn(&S) -> ShareIndex,
        invalid_positions: impl FnOnce(&[S]) -> Vec<usize>,
    ) -> bool {
        if self.shares.len() < need {
            return false;
        }
        if self.verified < self.shares.len() {
            let bad = invalid_positions(&self.shares[self.verified..]);
            for &p in bad.iter().rev() {
                let evicted = self.shares.remove(self.verified + p);
                self.reporters &= !(1u64 << (index_of(&evicted).value() - 1));
            }
            self.verified = self.shares.len();
        }
        self.shares.len() >= need
    }
}

/// A buffer of unverified signature shares for one instance/message.
#[derive(Debug, Default, Clone)]
pub struct SigShareBuf(RawBuf<SigShare>);

impl SigShareBuf {
    /// Accepts a share into the buffer unless its index is out of range for
    /// an `n`-node deployment or the index already reported. Returns `true`
    /// when the share was newly buffered (callers charge the virtual verify
    /// cost exactly then).
    pub fn insert(&mut self, share: SigShare, n: usize) -> bool {
        self.0.insert(share, share.index, n)
    }

    /// Accepts a share produced under key epoch `tag`; a tag other than
    /// the buffer's current key epoch is rejected (never buffered, never
    /// batch-verified).
    pub fn insert_tagged(&mut self, share: SigShare, n: usize, tag: u64) -> bool {
        self.0.insert_tagged(share, share.index, n, tag)
    }

    /// The key epoch this buffer currently collects for.
    pub fn key_epoch(&self) -> u64 {
        self.0.key_epoch
    }

    /// Moves the buffer to `key_epoch`, evicting every buffered share
    /// (they belong to the superseded sharing). No-op for the current
    /// epoch.
    pub fn roll_key_epoch(&mut self, key_epoch: u64) {
        self.0.roll_key_epoch(key_epoch);
    }

    /// Bitmask of indices currently buffered (verified or pending).
    pub fn reporters(&self) -> u64 {
        self.0.reporters
    }

    /// The buffered shares, verified prefix first.
    pub fn shares(&self) -> &[SigShare] {
        &self.0.shares
    }

    /// Once at least `need` shares are buffered, batch-verifies the
    /// unverified suffix against `msg`, evicting invalid shares (freeing
    /// their reporter bits). Returns `true` when `need` *verified* shares
    /// are available — the signal to charge the combine cost and combine.
    pub fn settle(&mut self, keys: &PublicKeySet, msg: &[u8], need: usize) -> bool {
        self.0.settle(
            need,
            |s| s.index,
            |pending| keys.invalid_share_positions(&keys.prepare(msg), pending),
        )
    }
}

/// A buffer of unverified coin shares for one `(domain, round)` coin.
#[derive(Debug, Default, Clone)]
pub struct CoinShareBuf(RawBuf<CoinShare>);

impl CoinShareBuf {
    /// Accepts a coin share; same contract as [`SigShareBuf::insert`].
    pub fn insert(&mut self, share: CoinShare, n: usize) -> bool {
        self.0.insert(share, share.index, n)
    }

    /// Coin mirror of [`SigShareBuf::insert_tagged`].
    pub fn insert_tagged(&mut self, share: CoinShare, n: usize, tag: u64) -> bool {
        self.0.insert_tagged(share, share.index, n, tag)
    }

    /// The key epoch this buffer currently collects for.
    pub fn key_epoch(&self) -> u64 {
        self.0.key_epoch
    }

    /// Coin mirror of [`SigShareBuf::roll_key_epoch`].
    pub fn roll_key_epoch(&mut self, key_epoch: u64) {
        self.0.roll_key_epoch(key_epoch);
    }

    /// Bitmask of indices currently buffered (verified or pending).
    pub fn reporters(&self) -> u64 {
        self.0.reporters
    }

    /// The buffered shares, verified prefix first.
    pub fn shares(&self) -> &[CoinShare] {
        &self.0.shares
    }

    /// Coin mirror of [`SigShareBuf::settle`].
    pub fn settle(&mut self, keys: &CoinPublicSet, name: CoinName, need: usize) -> bool {
        self.0.settle(
            need,
            |s| s.index,
            |pending| keys.invalid_share_positions(&keys.prepare(name), pending),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wbft_crypto::{thresh_coin, thresh_sig, GroupElem, ShareIndex, ThresholdCurve};

    #[test]
    fn buffers_batch_and_evict_byzantine_shares() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let (pks, sks) = thresh_sig::deal(4, 1, ThresholdCurve::Bn158, &mut rng);
        let msg = b"buffered";
        let mut buf = SigShareBuf::default();
        let mut bad = sks[0].sign_share(msg);
        bad.value = bad.value.mul(&GroupElem::generator());
        assert!(buf.insert(bad, 4));
        // Duplicate index rejected while the bad share occupies the slot.
        assert!(!buf.insert(sks[0].sign_share(msg), 4));
        // Below quorum: nothing verified yet.
        assert!(!buf.settle(&pks, msg, 2));
        assert!(buf.insert(sks[1].sign_share(msg), 4));
        // Quorum reached, but the bad share is evicted → still short.
        assert!(!buf.settle(&pks, msg, 2));
        assert_eq!(buf.shares().len(), 1);
        // The freed slot admits the corrected share; quorum settles.
        assert!(buf.insert(sks[0].sign_share(msg), 4));
        assert!(buf.settle(&pks, msg, 2));
        let sig = pks.combine(buf.shares()).unwrap();
        pks.verify(msg, &sig).unwrap();
    }

    #[test]
    fn out_of_range_indices_never_buffer() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(67);
        let (_, sks) = thresh_sig::deal(4, 1, ThresholdCurve::Bn158, &mut rng);
        let mut share = sks[0].sign_share(b"m");
        share.index = ShareIndex::new(9).unwrap();
        let mut buf = SigShareBuf::default();
        assert!(!buf.insert(share, 4));
        // A forged giant index must not panic the reporter-bit shift.
        share.index = ShareIndex::new(u16::MAX).unwrap();
        assert!(!buf.insert(share, 4));
        assert_eq!(buf.reporters(), 0);
    }

    #[test]
    fn coin_buffer_settles_quorum() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let (cpub, csec) = thresh_coin::deal_coin(4, 1, ThresholdCurve::Bn158, &mut rng);
        let name = CoinName { session: 1, round: 0, domain: 0 };
        let mut buf = CoinShareBuf::default();
        assert!(buf.insert(csec[2].coin_share(name), 4));
        assert!(!buf.settle(&cpub, name, 2));
        assert!(buf.insert(csec[0].coin_share(name), 4));
        assert!(buf.settle(&cpub, name, 2));
        cpub.combine_value(name, buf.shares()).unwrap();
    }
}
