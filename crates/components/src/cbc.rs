//! Batched consistent broadcast (CBC) — N parallel instances sharing
//! packets (paper Fig. 4b) — and the CBC-small variant for node-id-list
//! values (Fig. 5b).
//!
//! CBC instance `j` (leader `j`): the leader broadcasts its value
//! (INITIAL); every node returns a `(2f, n)`-threshold signature share over
//! the value digest (ECHO — logically N-to-1); the leader combines `2f+1`
//! shares into a quorum certificate and broadcasts it (FINISH — 1-to-N).
//! Delivery = value + verified certificate. Unlike RBC there is no totality
//! guarantee — exactly why Dumbo can afford CBC's three message steps.
//!
//! Under ConsensusBatcher all N instances' ECHO shares and FINISH
//! certificates ride in one combined `CBC_EF` packet per channel access.

use crate::context::{Actions, Broadcaster, Params, RetxState};
use crate::share_buf::SigShareBuf;
use bytes::Bytes;
use wbft_crypto::hash::Digest32;
use wbft_crypto::thresh_sig::{PublicKeySet, SecretKeyShare, SigShare, ThresholdSignature};
use wbft_net::{Bitmap, Body, RetransmitPolicy};

/// Maximum value bytes per INITIAL fragment.
pub const FRAG_BUDGET: usize = 150;

const TIMER_RETX: u32 = 0;

/// The message an echo share signs: binds session, instance and value root.
fn echo_msg(session: u64, instance: usize, root: &Digest32) -> Vec<u8> {
    let mut m = Vec::with_capacity(64);
    m.extend_from_slice(b"wbft/cbc/echo");
    m.extend_from_slice(&session.to_le_bytes());
    m.extend_from_slice(&(instance as u64).to_le_bytes());
    m.extend_from_slice(root.as_bytes());
    m
}

#[derive(Debug, Default)]
struct Inst {
    claimed_root: Option<Digest32>,
    frags: Vec<Option<Bytes>>,
    value: Option<Bytes>,
    my_share_sent: bool,
    /// Leader only: buffered echo shares, batch-verified at quorum.
    shares: SigShareBuf,
    finish: Option<ThresholdSignature>,
    delivered: bool,
    peers_need_init: bool,
}

/// N parallel CBC instances under ConsensusBatcher.
#[derive(Debug)]
pub struct CbcBatch {
    p: Params,
    keys: PublicKeySet,
    secret: SecretKeyShare,
    insts: Vec<Inst>,
    dirty: bool,
    started: bool,
    retx: RetxState,
}

impl CbcBatch {
    /// Creates the batch over the `(2f, n)` CBC key set.
    pub fn new(p: Params, keys: PublicKeySet, secret: SecretKeyShare) -> Self {
        keys.precompute();
        let insts = (0..p.n).map(|_| Inst::default()).collect();
        CbcBatch {
            p,
            keys,
            secret,
            insts,
            dirty: false,
            started: false,
            retx: RetxState::new(RetransmitPolicy::lora_class(), &p),
        }
    }

    /// The quorum certificate of a delivered instance.
    pub fn proof(&self, instance: usize) -> Option<&ThresholdSignature> {
        self.insts.get(instance).and_then(|i| i.finish.as_ref()).filter(|_| {
            self.insts[instance].delivered
        })
    }

    fn send_init_frags(&self, instance: usize, acts: &mut Actions) {
        let inst = &self.insts[instance];
        let Some(value) = &inst.value else { return };
        let root = Digest32::of(value);
        let chunks: Vec<&[u8]> =
            if value.is_empty() { vec![&[][..]] } else { value.chunks(FRAG_BUDGET).collect() };
        let total = chunks.len() as u8;
        for (i, chunk) in chunks.iter().enumerate() {
            acts.send(Body::CbcInit {
                instance: instance as u8,
                frag: i as u8,
                frag_total: total,
                root,
                data: Bytes::copy_from_slice(chunk),
                init_nack: self.init_nack(),
            });
        }
    }

    fn init_nack(&self) -> Bitmap {
        let mut nack = Bitmap::new(self.p.n);
        for (j, inst) in self.insts.iter().enumerate() {
            if inst.value.is_none() && inst.claimed_root.is_some() {
                nack.set(j, true);
            }
        }
        nack
    }

    fn build_ef(&self) -> Body {
        let n = self.p.n;
        let mut roots = vec![Digest32::zero(); n];
        let mut echo_shares = Vec::new();
        let mut finish_sigs = Vec::new();
        let mut echo_nack = Bitmap::new(n);
        let mut finish_nack = Bitmap::new(n);
        for (j, inst) in self.insts.iter().enumerate() {
            if let Some(r) = inst.claimed_root {
                roots[j] = r;
            }
            if inst.my_share_sent {
                if let Some(root) = &inst.claimed_root {
                    let share = self.secret.sign_share(&echo_msg(self.p.session, j, root));
                    echo_shares.push((j as u8, share));
                }
            }
            if let Some(sig) = &inst.finish {
                finish_sigs.push((j as u8, *sig));
            } else {
                finish_nack.set(j, true);
            }
            if self.p.me == j && inst.finish.is_none() {
                echo_nack
                    .set(j, (inst.shares.reporters().count_ones() as usize) < self.p.quorum());
            }
        }
        Body::CbcEchoFinish {
            roots,
            echo_shares,
            finish_sigs,
            echo_nack,
            finish_nack,
            init_nack: self.init_nack(),
        }
    }

    fn handle_init(
        &mut self,
        instance: usize,
        frag: usize,
        frag_total: usize,
        root: Digest32,
        data: &Bytes,
        acts: &mut Actions,
    ) {
        if instance >= self.p.n || frag_total == 0 || frag >= frag_total || frag_total > 64 {
            return;
        }
        let inst = &mut self.insts[instance];
        if inst.value.is_some() {
            return;
        }
        if inst.claimed_root.is_none() {
            inst.claimed_root = Some(root);
        }
        if inst.claimed_root != Some(root) {
            return;
        }
        if inst.frags.len() != frag_total {
            inst.frags = vec![None; frag_total];
        }
        inst.frags[frag] = Some(data.clone());
        if inst.frags.iter().all(Option::is_some) {
            let mut value = Vec::new();
            for f in inst.frags.iter().flatten() {
                value.extend_from_slice(f);
            }
            let value = Bytes::from(value);
            if Digest32::of(&value) == root {
                inst.value = Some(value);
                if !inst.my_share_sent {
                    inst.my_share_sent = true;
                    acts.charge(self.keys.profile().sign_share_us);
                    // Own share counts toward the leader's quorum when we
                    // are the leader.
                    if instance == self.p.me {
                        let share = self.secret.sign_share(&echo_msg(self.p.session, instance, &root));
                        self.record_share(instance, share, acts);
                    }
                }
                self.dirty = true;
            } else {
                inst.frags.clear();
                inst.claimed_root = None;
            }
        }
    }

    /// Leader-side share collection: buffer now, batch-verify at quorum.
    fn record_share(&mut self, instance: usize, share: SigShare, acts: &mut Actions) {
        if instance != self.p.me {
            return; // only the leader combines
        }
        let root = match self.insts[instance].claimed_root {
            Some(r) => r,
            None => return,
        };
        if self.insts[instance].finish.is_some() {
            return;
        }
        let own = share.index.value() as usize == self.p.me + 1;
        if !self.insts[instance].shares.insert(share, self.p.n) {
            return;
        }
        if !own {
            acts.charge(self.keys.profile().verify_share_us);
        }
        let msg = echo_msg(self.p.session, instance, &root);
        if self.insts[instance].shares.settle(&self.keys, &msg, self.p.quorum()) {
            acts.charge(self.keys.profile().combine_us);
            if let Ok(sig) = self.keys.combine(self.insts[instance].shares.shares()) {
                let inst = &mut self.insts[instance];
                inst.finish = Some(sig);
                inst.delivered = true;
                self.dirty = true;
            }
        }
    }

    fn record_finish(&mut self, instance: usize, sig: ThresholdSignature, acts: &mut Actions) {
        if instance >= self.p.n {
            return;
        }
        let root = match self.insts[instance].claimed_root {
            Some(r) => r,
            None => return, // can't validate without the root; NACK the value
        };
        if self.insts[instance].finish.is_some() {
            return;
        }
        acts.charge(self.keys.profile().verify_signature_us);
        let msg = echo_msg(self.p.session, instance, &root);
        if self.keys.verify(&msg, &sig).is_ok() {
            let inst = &mut self.insts[instance];
            inst.finish = Some(sig);
            if inst.value.is_some() {
                inst.delivered = true;
            }
            self.dirty = true;
        }
    }

    fn flush(&mut self, acts: &mut Actions) {
        // Deferred delivery: FINISH may arrive before the value.
        for inst in &mut self.insts {
            if inst.finish.is_some() && inst.value.is_some() && !inst.delivered {
                inst.delivered = true;
                self.dirty = true;
            }
        }
        if self.dirty {
            acts.send(self.build_ef());
            self.dirty = false;
            self.retx.reset();
        }
    }

    fn is_complete(&self) -> bool {
        self.insts.iter().all(|i| i.delivered)
    }
}

impl Broadcaster for CbcBatch {
    fn start(&mut self, my_value: Bytes, acts: &mut Actions) {
        assert!(!self.started, "CbcBatch started twice");
        self.started = true;
        let me = self.p.me;
        let root = Digest32::of(&my_value);
        {
            let inst = &mut self.insts[me];
            inst.claimed_root = Some(root);
            inst.value = Some(my_value);
            inst.my_share_sent = true;
        }
        acts.charge(self.keys.profile().sign_share_us);
        let share = self.secret.sign_share(&echo_msg(self.p.session, me, &root));
        self.record_share(me, share, acts);
        self.send_init_frags(me, acts);
        self.dirty = true;
        self.flush(acts);
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_RETX);
    }

    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        if from >= self.p.n {
            return;
        }
        match body {
            Body::CbcInit { instance, frag, frag_total, root, data, init_nack } => {
                if init_nack.len() == self.p.n {
                    for j in init_nack.iter_set() {
                        if self.insts[j].value.is_some() {
                            self.insts[j].peers_need_init = true;
                            self.retx.peer_behind = true;
                        }
                    }
                }
                self.handle_init(
                    *instance as usize,
                    *frag as usize,
                    *frag_total as usize,
                    *root,
                    data,
                    acts,
                );
            }
            Body::CbcEchoFinish {
                roots,
                echo_shares,
                finish_sigs,
                echo_nack,
                finish_nack,
                init_nack,
            } => {
                if roots.len() != self.p.n {
                    return;
                }
                for (j, root) in roots.iter().enumerate() {
                    if !root.is_zero() && self.insts[j].claimed_root.is_none() {
                        self.insts[j].claimed_root = Some(*root);
                    }
                }
                for (j, share) in echo_shares {
                    self.record_share(*j as usize, *share, acts);
                }
                for (j, sig) in finish_sigs {
                    self.record_finish(*j as usize, *sig, acts);
                }
                // NACK evidence: peers missing what we have.
                if init_nack.len() == self.p.n {
                    for j in init_nack.iter_set() {
                        if self.insts[j].value.is_some() {
                            self.insts[j].peers_need_init = true;
                            self.retx.peer_behind = true;
                        }
                    }
                }
                if finish_nack.len() == self.p.n
                    && finish_nack.iter_set().any(|j| self.insts[j].finish.is_some())
                {
                    self.retx.peer_behind = true;
                }
                if echo_nack.len() == self.p.n
                    && echo_nack.iter_set().any(|j| self.insts[j].my_share_sent)
                {
                    self.retx.peer_behind = true;
                }
            }
            _ => {}
        }
        self.flush(acts);
    }

    fn on_timer(&mut self, local_id: u32, acts: &mut Actions) {
        if local_id != TIMER_RETX {
            return;
        }
        if self.retx.should_send(self.is_complete()) {
            for j in 0..self.p.n {
                if self.insts[j].peers_need_init {
                    self.send_init_frags(j, acts);
                    self.insts[j].peers_need_init = false;
                }
            }
            acts.send(self.build_ef());
            self.retx.peer_behind = false;
        }
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_RETX);
    }

    fn delivered(&self, instance: usize) -> Option<&Bytes> {
        let inst = self.insts.get(instance)?;
        if inst.delivered {
            inst.value.as_ref()
        } else {
            None
        }
    }

    fn delivered_count(&self) -> usize {
        self.insts.iter().filter(|i| i.delivered).count()
    }
}

/// CBC over *small* values — node-id lists carried inline as N-bit sets
/// (paper Fig. 5b): the INITIAL phase is folded into the combined packet,
/// saving one phase of channel accesses. Dumbo's `CBC_commit` uses this.
#[derive(Debug)]
pub struct CbcSmallBatch {
    p: Params,
    keys: PublicKeySet,
    secret: SecretKeyShare,
    values: Vec<Option<Bitmap>>,
    my_share_sent: Vec<bool>,
    shares: Vec<SigShareBuf>,
    finish: Vec<Option<ThresholdSignature>>,
    dirty: bool,
    timer_armed: bool,
    retx: RetxState,
}

/// Digest a small value (bitmap) for signing.
fn small_root(v: &Bitmap) -> Digest32 {
    Digest32::of_parts("wbft/cbc-small/value", &[&v.to_raw().to_le_bytes(), &[v.len() as u8]])
}

impl CbcSmallBatch {
    /// Creates the batch over the `(2f, n)` CBC key set.
    pub fn new(p: Params, keys: PublicKeySet, secret: SecretKeyShare) -> Self {
        keys.precompute();
        CbcSmallBatch {
            keys,
            secret,
            values: vec![None; p.n],
            my_share_sent: vec![false; p.n],
            shares: vec![SigShareBuf::default(); p.n],
            finish: vec![None; p.n],
            dirty: false,
            timer_armed: false,
            retx: RetxState::new(RetransmitPolicy::lora_class(), &p),
            p,
        }
    }

    /// Starts with this node's id-list value.
    pub fn start(&mut self, my_value: Bitmap, acts: &mut Actions) {
        let me = self.p.me;
        self.values[me] = Some(my_value);
        self.echo_if_needed(me, acts);
        self.dirty = true;
        self.flush(acts);
    }

    /// Delivered value of an instance.
    pub fn delivered_value(&self, instance: usize) -> Option<Bitmap> {
        if self.finish[instance].is_some() {
            self.values[instance]
        } else {
            None
        }
    }

    /// The quorum certificate of a delivered instance.
    pub fn proof(&self, instance: usize) -> Option<&ThresholdSignature> {
        self.finish[instance].as_ref()
    }

    /// Number of delivered instances.
    pub fn delivered_count(&self) -> usize {
        (0..self.p.n).filter(|&j| self.delivered_value(j).is_some()).count()
    }

    fn echo_if_needed(&mut self, instance: usize, acts: &mut Actions) {
        let Some(value) = self.values[instance] else { return };
        if self.my_share_sent[instance] {
            return;
        }
        self.my_share_sent[instance] = true;
        acts.charge(self.keys.profile().sign_share_us);
        if instance == self.p.me {
            let root = small_root(&value);
            let share = self.secret.sign_share(&echo_msg(self.p.session, instance, &root));
            self.record_share(instance, share, acts);
        }
        self.dirty = true;
    }

    fn record_share(&mut self, instance: usize, share: SigShare, acts: &mut Actions) {
        if instance != self.p.me || self.finish[instance].is_some() {
            return;
        }
        let Some(value) = self.values[instance] else { return };
        let own = share.index.value() as usize == self.p.me + 1;
        if !self.shares[instance].insert(share, self.p.n) {
            return;
        }
        if !own {
            acts.charge(self.keys.profile().verify_share_us);
        }
        let msg = echo_msg(self.p.session, instance, &small_root(&value));
        if self.shares[instance].settle(&self.keys, &msg, self.p.quorum()) {
            acts.charge(self.keys.profile().combine_us);
            if let Ok(sig) = self.keys.combine(self.shares[instance].shares()) {
                self.finish[instance] = Some(sig);
                self.dirty = true;
            }
        }
    }

    fn record_finish(&mut self, instance: usize, sig: ThresholdSignature, acts: &mut Actions) {
        if self.finish[instance].is_some() {
            return;
        }
        let Some(value) = self.values[instance] else { return };
        acts.charge(self.keys.profile().verify_signature_us);
        let msg = echo_msg(self.p.session, instance, &small_root(&value));
        if self.keys.verify(&msg, &sig).is_ok() {
            self.finish[instance] = Some(sig);
            self.dirty = true;
        }
    }

    fn build(&self) -> Body {
        let n = self.p.n;
        let mut values = Vec::with_capacity(n);
        let mut init_nack = Bitmap::new(n);
        for j in 0..n {
            match self.values[j] {
                Some(v) => values.push(v),
                None => {
                    values.push(Bitmap::new(0));
                    init_nack.set(j, true);
                }
            }
        }
        let mut echo_shares = Vec::new();
        let mut finish_sigs = Vec::new();
        let mut finish_nack = Bitmap::new(n);
        let mut echo_nack = Bitmap::new(n);
        for j in 0..n {
            if self.my_share_sent[j] {
                if let Some(v) = self.values[j] {
                    let share =
                        self.secret.sign_share(&echo_msg(self.p.session, j, &small_root(&v)));
                    echo_shares.push((j as u8, share));
                }
            }
            match &self.finish[j] {
                Some(sig) => finish_sigs.push((j as u8, *sig)),
                None => finish_nack.set(j, true),
            }
            if j == self.p.me && self.finish[j].is_none() {
                echo_nack
                    .set(j, (self.shares[j].reporters().count_ones() as usize) < self.p.quorum());
            }
        }
        Body::CbcSmall { values, echo_shares, finish_sigs, init_nack, echo_nack, finish_nack }
    }

    fn flush(&mut self, acts: &mut Actions) {
        if self.dirty {
            acts.send(self.build());
            self.dirty = false;
            self.retx.reset();
        }
        if !self.timer_armed {
            self.timer_armed = true;
            let d = self.retx.next_delay();
            acts.timer(d, TIMER_RETX);
        }
    }

    /// Processes a packet for this session.
    pub fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        if from >= self.p.n {
            return;
        }
        let Body::CbcSmall { values, echo_shares, finish_sigs, init_nack, finish_nack, .. } = body
        else {
            return;
        };
        if values.len() == self.p.n {
            for (j, v) in values.iter().enumerate() {
                if !v.is_empty() && self.values[j].is_none() {
                    self.values[j] = Some(*v);
                    self.echo_if_needed(j, acts);
                }
            }
        }
        for (j, share) in echo_shares {
            if (*j as usize) < self.p.n {
                self.record_share(*j as usize, *share, acts);
            }
        }
        for (j, sig) in finish_sigs {
            if (*j as usize) < self.p.n {
                self.record_finish(*j as usize, *sig, acts);
            }
        }
        if init_nack.len() == self.p.n
            && init_nack.iter_set().any(|j| self.values[j].is_some())
        {
            self.retx.peer_behind = true;
        }
        if finish_nack.len() == self.p.n
            && finish_nack.iter_set().any(|j| self.finish[j].is_some())
        {
            self.retx.peer_behind = true;
        }
        self.flush(acts);
    }

    /// Handles the retransmission tick.
    pub fn on_timer(&mut self, local_id: u32, acts: &mut Actions) {
        if local_id != TIMER_RETX {
            return;
        }
        let complete = self.delivered_count() == self.p.n;
        if self.retx.should_send(complete) {
            acts.send(self.build());
            self.retx.peer_behind = false;
        }
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_RETX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::deal_node_crypto;
    use crate::rbc::tests::run_mesh;
    use rand::SeedableRng;
    use wbft_crypto::CryptoSuite;

    fn make() -> Vec<CbcBatch> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        deal_node_crypto(4, CryptoSuite::light(), &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, c)| CbcBatch::new(Params::new(4, i, 5), c.cbc_pub, c.cbc_sec))
            .collect()
    }

    #[test]
    fn all_instances_deliver_with_proofs() {
        let mut nodes = make();
        let vals: Vec<Bytes> = (0..4).map(|i| Bytes::from(format!("w-{i}"))).collect();
        let mut i = 0;
        run_mesh(
            &mut nodes,
            |n, acts| {
                n.start(vals[i].clone(), acts);
                i += 1;
            },
            |n, from, body, acts| n.handle(from, body, acts),
            |n| n.delivered_count() == 4,
        );
        for node in &nodes {
            for (j, val) in vals.iter().enumerate() {
                assert_eq!(node.delivered(j), Some(val));
                assert!(node.proof(j).is_some(), "missing certificate for {j}");
            }
        }
    }

    #[test]
    fn certificates_verify_against_the_value() {
        let mut nodes = make();
        let vals: Vec<Bytes> = (0..4).map(|i| Bytes::from(format!("w-{i}"))).collect();
        let mut i = 0;
        run_mesh(
            &mut nodes,
            |n, acts| {
                n.start(vals[i].clone(), acts);
                i += 1;
            },
            |n, from, body, acts| n.handle(from, body, acts),
            |n| n.delivered_count() == 4,
        );
        let sig = nodes[0].proof(2).unwrap();
        let root = Digest32::of(&vals[2]);
        nodes[0].keys.verify(&echo_msg(5, 2, &root), sig).unwrap();
        assert!(nodes[0].keys.verify(&echo_msg(5, 3, &root), sig).is_err());
    }

    #[test]
    fn silent_leader_instance_stays_undelivered() {
        let mut nodes = make();
        let vals: Vec<Bytes> = (0..4).map(|i| Bytes::from(format!("w-{i}"))).collect();
        // Node 3 never starts.
        let mut inbox: Vec<(usize, Body)> = Vec::new();
        for i in 0..3 {
            let mut acts = Actions::new();
            nodes[i].start(vals[i].clone(), &mut acts);
            for b in acts.drain().0 {
                inbox.push((i, b));
            }
        }
        let mut steps = 0;
        while let Some((src, body)) = inbox.pop() {
            steps += 1;
            if steps > 50_000 {
                break;
            }
            for (i, node) in nodes.iter_mut().enumerate() {
                if i != src {
                    let mut acts = Actions::new();
                    node.handle(src, &body, &mut acts);
                    for b in acts.drain().0 {
                        inbox.push((i, b));
                    }
                }
            }
        }
        for node in nodes.iter().take(3) {
            assert_eq!(node.delivered_count(), 3);
            assert!(node.delivered(3).is_none());
        }
    }

    #[test]
    fn small_variant_delivers_id_lists() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let mut nodes: Vec<CbcSmallBatch> = deal_node_crypto(4, CryptoSuite::light(), &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, c)| CbcSmallBatch::new(Params::new(4, i, 6), c.cbc_pub, c.cbc_sec))
            .collect();
        let vals: Vec<Bitmap> = (0..4u64).map(|i| Bitmap::from_raw(0b0111 << (i % 2), 4)).collect();
        let mut i = 0;
        run_mesh(
            &mut nodes,
            |n, acts| {
                n.start(vals[i], acts);
                i += 1;
            },
            |n, from, body, acts| n.handle(from, body, acts),
            |n| n.delivered_count() == 4,
        );
        for node in &nodes {
            for (j, &val) in vals.iter().enumerate() {
                assert_eq!(node.delivered_value(j), Some(val));
            }
        }
    }

    #[test]
    fn small_packets_are_smaller_than_full_cbc_packets() {
        use wbft_net::Sizing;
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let crypto = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        let mut small =
            CbcSmallBatch::new(Params::new(4, 0, 1), crypto[0].cbc_pub.clone(), crypto[0].cbc_sec.clone());
        let mut acts = Actions::new();
        small.start(Bitmap::from_raw(0b0111, 4), &mut acts);
        let small_body = small.build();
        let mut full = CbcBatch::new(Params::new(4, 0, 2), crypto[0].cbc_pub.clone(), crypto[0].cbc_sec.clone());
        let mut acts = Actions::new();
        full.start(Bytes::from_static(b"0123456789abcdef"), &mut acts);
        let full_body = full.build_ef();
        let kp = &crypto[0].keypair;
        let sizing = Sizing::light(4);
        let (_, small_len) =
            wbft_net::Envelope { src: 0, session: 1, body: small_body }.seal(kp, &sizing).unwrap();
        let (_, full_len) =
            wbft_net::Envelope { src: 0, session: 2, body: full_body }.seal(kp, &sizing).unwrap();
        assert!(
            small_len < full_len,
            "CBC-small packet ({small_len}) should undercut CBC ({full_len})"
        );
    }
}
