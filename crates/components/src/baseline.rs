//! Baseline (unbatched) component deployments — the comparison points of
//! the paper's evaluation.
//!
//! Each component instance sends its own per-phase packets: an RBC echo is
//! one frame, a coin share is one frame, and N parallel instances contend
//! for the channel N separate times per phase. Protocol *logic* is
//! identical to the batched components (that is the paper's point — only
//! the packaging changes); the message overhead difference is what Table I
//! and the `*-baseline` rows of Fig. 13 measure.

use crate::aba_sc::AbaScBatch;
use crate::context::{Actions, BinaryAgreement, Broadcaster, Params, RetxState};
use crate::share_buf::SigShareBuf;
use bytes::Bytes;
use std::collections::BTreeSet;
use wbft_crypto::hash::Digest32;
use wbft_crypto::thresh_coin::{CoinPublicSet, CoinSecretShare};
use wbft_crypto::thresh_sig::{PublicKeySet, SecretKeyShare, SigShare, ThresholdSignature};
use wbft_net::packets::AbaScInst;
use wbft_net::{BinValues, Bitmap, Body, CoinFlavor, RetransmitPolicy, Vote};

const TIMER_RETX: u32 = 0;

/// Maximum proposal bytes per baseline INITIAL fragment.
const FRAG_BUDGET: usize = crate::rbc::FRAG_BUDGET;

// --------------------------------------------------------------- RBC

#[derive(Debug, Default)]
struct BInst {
    claimed_root: Option<Digest32>,
    frags: Vec<Option<Bytes>>,
    value: Option<Bytes>,
    echo_roots: Vec<Option<Digest32>>,
    ready_roots: Vec<Option<Digest32>>,
    my_echo: Option<Digest32>,
    my_ready: Option<Digest32>,
    delivered: Option<Bytes>,
}

impl BInst {
    fn new(n: usize) -> Self {
        BInst { echo_roots: vec![None; n], ready_roots: vec![None; n], ..BInst::default() }
    }
}

fn count_root_votes(votes: &[Option<Digest32>]) -> Option<(Digest32, usize)> {
    let mut best: Option<(Digest32, usize)> = None;
    for v in votes.iter().flatten() {
        let c = votes.iter().flatten().filter(|x| *x == v).count();
        if best.map(|(_, bc)| c > bc).unwrap_or(true) {
            best = Some((*v, c));
        }
    }
    best
}

/// N independent per-instance RBCs (unbatched baseline).
#[derive(Debug)]
pub struct BaselineRbcSet {
    p: Params,
    insts: Vec<BInst>,
    retx: RetxState,
    timer_armed: bool,
}

impl BaselineRbcSet {
    /// Creates the set.
    pub fn new(p: Params) -> Self {
        BaselineRbcSet {
            insts: (0..p.n).map(|_| BInst::new(p.n)).collect(),
            retx: RetxState::new(RetransmitPolicy::lora_class(), &p),
            timer_armed: false,
            p,
        }
    }

    /// Delivered root of an instance (baseline PRBC signs this).
    pub fn delivered_root(&self, instance: usize) -> Option<Digest32> {
        self.insts[instance].delivered.as_ref().map(|v| Digest32::of(v))
    }

    fn send_init(&self, instance: usize, acts: &mut Actions) {
        let inst = &self.insts[instance];
        let Some(value) = &inst.value else { return };
        let root = Digest32::of(value);
        let chunks: Vec<&[u8]> =
            if value.is_empty() { vec![&[][..]] } else { value.chunks(FRAG_BUDGET).collect() };
        let total = chunks.len() as u8;
        for (i, chunk) in chunks.iter().enumerate() {
            acts.send(Body::BaseRbcInit {
                instance: instance as u8,
                frag: i as u8,
                frag_total: total,
                root,
                data: Bytes::copy_from_slice(chunk),
            });
        }
    }

    /// Per-instance transitions; sends are per-instance packets.
    fn advance(&mut self, j: usize, acts: &mut Actions) {
        let quorum = self.p.quorum();
        let f1 = self.p.f + 1;
        let me = self.p.me;
        let inst = &mut self.insts[j];
        if inst.my_ready.is_none() {
            let from_echo = count_root_votes(&inst.echo_roots)
                .filter(|(_, c)| *c >= quorum)
                .map(|(r, _)| r);
            let from_ready = count_root_votes(&inst.ready_roots)
                .filter(|(_, c)| *c >= f1)
                .map(|(r, _)| r);
            if let Some(root) = from_echo.or(from_ready) {
                inst.my_ready = Some(root);
                inst.ready_roots[me] = Some(root);
                acts.send(Body::BaseRbcReady { instance: j as u8, root });
            }
        }
        let inst = &mut self.insts[j];
        if inst.delivered.is_none() {
            if let Some((root, c)) = count_root_votes(&inst.ready_roots) {
                if c >= quorum {
                    if let Some(v) = &inst.value {
                        if Digest32::of(v) == root {
                            inst.delivered = Some(v.clone());
                        }
                    }
                }
            }
        }
    }

    fn handle_init(
        &mut self,
        instance: usize,
        frag: usize,
        frag_total: usize,
        root: Digest32,
        data: &Bytes,
        acts: &mut Actions,
    ) {
        if instance >= self.p.n || frag_total == 0 || frag >= frag_total || frag_total > 64 {
            return;
        }
        let me = self.p.me;
        let inst = &mut self.insts[instance];
        if inst.value.is_some() {
            return;
        }
        if inst.claimed_root.is_none() {
            inst.claimed_root = Some(root);
        }
        if inst.claimed_root != Some(root) {
            return;
        }
        if inst.frags.len() != frag_total {
            inst.frags = vec![None; frag_total];
        }
        inst.frags[frag] = Some(data.clone());
        if inst.frags.iter().all(Option::is_some) {
            let mut value = Vec::new();
            for f in inst.frags.iter().flatten() {
                value.extend_from_slice(f);
            }
            let value = Bytes::from(value);
            if Digest32::of(&value) == root {
                inst.value = Some(value);
                if inst.my_echo.is_none() {
                    inst.my_echo = Some(root);
                    inst.echo_roots[me] = Some(root);
                    acts.send(Body::BaseRbcEcho { instance: instance as u8, root });
                }
            } else {
                inst.frags.clear();
                inst.claimed_root = None;
            }
        }
        self.advance(instance, acts);
    }
}

impl Broadcaster for BaselineRbcSet {
    fn start(&mut self, my_value: Bytes, acts: &mut Actions) {
        let me = self.p.me;
        let root = Digest32::of(&my_value);
        {
            let inst = &mut self.insts[me];
            inst.claimed_root = Some(root);
            inst.value = Some(my_value);
            inst.my_echo = Some(root);
            inst.echo_roots[me] = Some(root);
        }
        self.send_init(me, acts);
        acts.send(Body::BaseRbcEcho { instance: me as u8, root });
        if !self.timer_armed {
            self.timer_armed = true;
            let d = self.retx.next_delay();
            acts.timer(d, TIMER_RETX);
        }
    }

    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        if from >= self.p.n {
            return;
        }
        match body {
            Body::BaseRbcInit { instance, frag, frag_total, root, data } => {
                self.handle_init(
                    *instance as usize,
                    *frag as usize,
                    *frag_total as usize,
                    *root,
                    data,
                    acts,
                );
            }
            Body::BaseRbcEcho { instance, root } => {
                let j = *instance as usize;
                if j < self.p.n {
                    if self.insts[j].echo_roots[from].is_none() {
                        self.insts[j].echo_roots[from] = Some(*root);
                    }
                    if self.insts[j].claimed_root.is_none() {
                        self.insts[j].claimed_root = Some(*root);
                    }
                    // A redundant echo for a delivered instance = the peer
                    // is still working on it; our READY may be lost.
                    if self.insts[j].delivered.is_some() {
                        self.retx.peer_behind = true;
                    }
                    self.advance(j, acts);
                }
            }
            Body::BaseRbcReady { instance, root } => {
                let j = *instance as usize;
                if j < self.p.n {
                    if self.insts[j].ready_roots[from].is_none() {
                        self.insts[j].ready_roots[from] = Some(*root);
                    }
                    self.advance(j, acts);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, local_id: u32, acts: &mut Actions) {
        if local_id != TIMER_RETX {
            return;
        }
        let complete = self.delivered_count() == self.p.n;
        if self.retx.should_send(complete) {
            // Re-send per-instance state for everything not yet complete.
            for j in 0..self.p.n {
                let inst = &self.insts[j];
                if inst.delivered.is_some() && !self.retx.peer_behind {
                    continue;
                }
                if j == self.p.me || inst.value.is_some() {
                    self.send_init(j, acts);
                }
                if let Some(root) = inst.my_echo {
                    acts.send(Body::BaseRbcEcho { instance: j as u8, root });
                }
                if let Some(root) = inst.my_ready {
                    acts.send(Body::BaseRbcReady { instance: j as u8, root });
                }
            }
            self.retx.peer_behind = false;
        }
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_RETX);
    }

    fn delivered(&self, instance: usize) -> Option<&Bytes> {
        self.insts.get(instance).and_then(|i| i.delivered.as_ref())
    }

    fn delivered_count(&self) -> usize {
        self.insts.iter().filter(|i| i.delivered.is_some()).count()
    }
}

// --------------------------------------------------------------- CBC

/// N independent per-instance CBCs (unbatched baseline).
#[derive(Debug)]
pub struct BaselineCbcSet {
    p: Params,
    keys: PublicKeySet,
    secret: SecretKeyShare,
    insts: Vec<BCbcInst>,
    retx: RetxState,
    timer_armed: bool,
}

#[derive(Debug, Default)]
struct BCbcInst {
    claimed_root: Option<Digest32>,
    frags: Vec<Option<Bytes>>,
    value: Option<Bytes>,
    my_share_sent: bool,
    /// Buffered echo shares, batch-verified at quorum (see `share_buf`).
    shares: SigShareBuf,
    finish: Option<ThresholdSignature>,
    delivered: bool,
}

fn cbc_echo_msg(session: u64, instance: usize, root: &Digest32) -> Vec<u8> {
    let mut m = Vec::with_capacity(64);
    m.extend_from_slice(b"wbft/cbc/echo");
    m.extend_from_slice(&session.to_le_bytes());
    m.extend_from_slice(&(instance as u64).to_le_bytes());
    m.extend_from_slice(root.as_bytes());
    m
}

impl BaselineCbcSet {
    /// Creates the set over the `(2f, n)` CBC key set.
    pub fn new(p: Params, keys: PublicKeySet, secret: SecretKeyShare) -> Self {
        keys.precompute();
        BaselineCbcSet {
            insts: (0..p.n).map(|_| BCbcInst::default()).collect(),
            retx: RetxState::new(RetransmitPolicy::lora_class(), &p),
            timer_armed: false,
            p,
            keys,
            secret,
        }
    }

    /// Quorum certificate of a delivered instance.
    pub fn proof(&self, instance: usize) -> Option<&ThresholdSignature> {
        self.insts[instance].finish.as_ref().filter(|_| self.insts[instance].delivered)
    }

    fn send_init(&self, instance: usize, acts: &mut Actions) {
        let inst = &self.insts[instance];
        let Some(value) = &inst.value else { return };
        let root = Digest32::of(value);
        let chunks: Vec<&[u8]> =
            if value.is_empty() { vec![&[][..]] } else { value.chunks(FRAG_BUDGET).collect() };
        let total = chunks.len() as u8;
        for (i, chunk) in chunks.iter().enumerate() {
            acts.send(Body::BaseRbcInit {
                instance: instance as u8,
                frag: i as u8,
                frag_total: total,
                root,
                data: Bytes::copy_from_slice(chunk),
            });
        }
    }

    fn send_echo(&mut self, instance: usize, acts: &mut Actions) {
        let session = self.p.session;
        let inst = &mut self.insts[instance];
        let Some(root) = inst.claimed_root else { return };
        if inst.my_share_sent || inst.value.is_none() {
            return;
        }
        inst.my_share_sent = true;
        acts.charge(self.keys.profile().sign_share_us);
        let share = self.secret.sign_share(&cbc_echo_msg(session, instance, &root));
        acts.send(Body::BaseCbcEcho { instance: instance as u8, root, share });
        if instance == self.p.me {
            self.record_share(instance, share, acts, true);
        }
    }

    fn record_share(&mut self, instance: usize, share: SigShare, acts: &mut Actions, own: bool) {
        if instance != self.p.me || self.insts[instance].finish.is_some() {
            return;
        }
        let Some(root) = self.insts[instance].claimed_root else { return };
        if !self.insts[instance].shares.insert(share, self.p.n) {
            return;
        }
        if !own {
            acts.charge(self.keys.profile().verify_share_us);
        }
        let quorum = self.p.quorum();
        let combine_cost = self.keys.profile().combine_us;
        let msg = cbc_echo_msg(self.p.session, instance, &root);
        if self.insts[instance].shares.settle(&self.keys, &msg, quorum) {
            acts.charge(combine_cost);
            if let Ok(sig) = self.keys.combine(self.insts[instance].shares.shares()) {
                let inst = &mut self.insts[instance];
                inst.finish = Some(sig);
                inst.delivered = true;
                acts.send(Body::BaseCbcFinish { instance: instance as u8, root, sig });
            }
        }
    }
}

impl Broadcaster for BaselineCbcSet {
    fn start(&mut self, my_value: Bytes, acts: &mut Actions) {
        let me = self.p.me;
        let root = Digest32::of(&my_value);
        {
            let inst = &mut self.insts[me];
            inst.claimed_root = Some(root);
            inst.value = Some(my_value);
        }
        self.send_init(me, acts);
        self.send_echo(me, acts);
        if !self.timer_armed {
            self.timer_armed = true;
            let d = self.retx.next_delay();
            acts.timer(d, TIMER_RETX);
        }
    }

    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        if from >= self.p.n {
            return;
        }
        match body {
            Body::BaseRbcInit { instance, frag, frag_total, root, data } => {
                let j = *instance as usize;
                if j >= self.p.n
                    || *frag_total == 0
                    || frag >= frag_total
                    || *frag_total > 64
                {
                    return;
                }
                let inst = &mut self.insts[j];
                if inst.value.is_some() {
                    return;
                }
                if inst.claimed_root.is_none() {
                    inst.claimed_root = Some(*root);
                }
                if inst.claimed_root != Some(*root) {
                    return;
                }
                if inst.frags.len() != *frag_total as usize {
                    inst.frags = vec![None; *frag_total as usize];
                }
                inst.frags[*frag as usize] = Some(data.clone());
                if inst.frags.iter().all(Option::is_some) {
                    let mut value = Vec::new();
                    for f in inst.frags.iter().flatten() {
                        value.extend_from_slice(f);
                    }
                    let value = Bytes::from(value);
                    if Digest32::of(&value) == *root {
                        inst.value = Some(value);
                        self.send_echo(j, acts);
                    } else {
                        inst.frags.clear();
                        inst.claimed_root = None;
                    }
                }
            }
            Body::BaseCbcEcho { instance, root, share } => {
                let j = *instance as usize;
                if j < self.p.n {
                    if self.insts[j].claimed_root.is_none() {
                        self.insts[j].claimed_root = Some(*root);
                    }
                    self.record_share(j, *share, acts, false);
                }
            }
            Body::BaseCbcFinish { instance, root, sig } => {
                let j = *instance as usize;
                if j < self.p.n && self.insts[j].finish.is_none() {
                    acts.charge(self.keys.profile().verify_signature_us);
                    let msg = cbc_echo_msg(self.p.session, j, root);
                    if self.keys.verify(&msg, sig).is_ok() {
                        let inst = &mut self.insts[j];
                        if inst.claimed_root.is_none() {
                            inst.claimed_root = Some(*root);
                        }
                        inst.finish = Some(*sig);
                        if inst.value.is_some() {
                            inst.delivered = true;
                        }
                    }
                }
            }
            _ => {}
        }
        // Deferred delivery when FINISH preceded the value.
        for inst in &mut self.insts {
            if inst.finish.is_some() && inst.value.is_some() {
                inst.delivered = true;
            }
        }
    }

    fn on_timer(&mut self, local_id: u32, acts: &mut Actions) {
        if local_id != TIMER_RETX {
            return;
        }
        let complete = self.delivered_count() == self.p.n;
        if self.retx.should_send(complete) {
            for j in 0..self.p.n {
                let inst = &self.insts[j];
                if inst.delivered {
                    continue;
                }
                if j == self.p.me {
                    self.send_init(j, acts);
                }
                if inst.my_share_sent {
                    if let Some(root) = inst.claimed_root {
                        let share =
                            self.secret.sign_share(&cbc_echo_msg(self.p.session, j, &root));
                        acts.send(Body::BaseCbcEcho { instance: j as u8, root, share });
                    }
                }
            }
            // Re-broadcast any FINISH we hold (peers may have lost it).
            for j in 0..self.p.n {
                if let (Some(sig), Some(root)) =
                    (&self.insts[j].finish, self.insts[j].claimed_root)
                {
                    acts.send(Body::BaseCbcFinish { instance: j as u8, root, sig: *sig });
                }
            }
            self.retx.peer_behind = false;
        }
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_RETX);
    }

    fn delivered(&self, instance: usize) -> Option<&Bytes> {
        let inst = self.insts.get(instance)?;
        if inst.delivered {
            inst.value.as_ref()
        } else {
            None
        }
    }

    fn delivered_count(&self) -> usize {
        self.insts.iter().filter(|i| i.delivered).count()
    }
}

// --------------------------------------------------------------- PRBC

/// N independent per-instance PRBCs (baseline RBC + per-instance DONE).
#[derive(Debug)]
pub struct BaselinePrbcSet {
    rbc: BaselineRbcSet,
    keys: PublicKeySet,
    secret: SecretKeyShare,
    my_done: Vec<bool>,
    /// Buffered DONE shares per instance, batch-verified at quorum.
    shares: Vec<SigShareBuf>,
    proofs: Vec<Option<ThresholdSignature>>,
}

fn prbc_done_msg(session: u64, instance: usize, root: &Digest32) -> Vec<u8> {
    let mut m = Vec::with_capacity(64);
    m.extend_from_slice(b"wbft/prbc/done");
    m.extend_from_slice(&session.to_le_bytes());
    m.extend_from_slice(&(instance as u64).to_le_bytes());
    m.extend_from_slice(root.as_bytes());
    m
}

impl BaselinePrbcSet {
    /// Creates the set over the `(f, n)` proof key set.
    pub fn new(p: Params, keys: PublicKeySet, secret: SecretKeyShare) -> Self {
        keys.precompute();
        BaselinePrbcSet {
            rbc: BaselineRbcSet::new(p),
            my_done: vec![false; p.n],
            shares: vec![SigShareBuf::default(); p.n],
            proofs: vec![None; p.n],
            keys,
            secret,
        }
    }

    fn p(&self) -> &Params {
        &self.rbc.p
    }

    /// Delivery proof of an instance.
    pub fn proof(&self, instance: usize) -> Option<&ThresholdSignature> {
        self.proofs[instance].as_ref()
    }

    /// Instances with a completed proof.
    pub fn proven_count(&self) -> usize {
        self.proofs.iter().filter(|p| p.is_some()).count()
    }

    fn sign_new_done(&mut self, acts: &mut Actions) {
        for j in 0..self.p().n {
            if self.my_done[j] || self.rbc.delivered(j).is_none() {
                continue;
            }
            let Some(root) = self.rbc.delivered_root(j) else { continue };
            self.my_done[j] = true;
            acts.charge(self.keys.profile().sign_share_us);
            let share = self.secret.sign_share(&prbc_done_msg(self.p().session, j, &root));
            acts.send(Body::BasePrbcDone { instance: j as u8, root, share });
            self.record_share(j, share, acts, true);
        }
    }

    fn record_share(&mut self, instance: usize, share: SigShare, acts: &mut Actions, own: bool) {
        if instance >= self.p().n || self.proofs[instance].is_some() {
            return;
        }
        let Some(root) = self.rbc.delivered_root(instance) else { return };
        let n = self.p().n;
        if !self.shares[instance].insert(share, n) {
            return;
        }
        if !own {
            acts.charge(self.keys.profile().verify_share_us);
        }
        let need = self.p().f + 1;
        let msg = prbc_done_msg(self.p().session, instance, &root);
        if self.shares[instance].settle(&self.keys, &msg, need) {
            acts.charge(self.keys.profile().combine_us);
            if let Ok(sig) = self.keys.combine(self.shares[instance].shares()) {
                self.proofs[instance] = Some(sig);
            }
        }
    }
}

impl Broadcaster for BaselinePrbcSet {
    fn start(&mut self, my_value: Bytes, acts: &mut Actions) {
        self.rbc.start(my_value, acts);
        self.sign_new_done(acts);
    }

    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        match body {
            Body::BasePrbcDone { instance, share, .. } => {
                self.record_share(*instance as usize, *share, acts, false);
            }
            _ => self.rbc.handle(from, body, acts),
        }
        self.sign_new_done(acts);
    }

    fn on_timer(&mut self, local_id: u32, acts: &mut Actions) {
        self.rbc.on_timer(local_id, acts);
        // Piggyback DONE retransmission on the RBC tick.
        for j in 0..self.p().n {
            if self.my_done[j] && self.proofs[j].is_none() {
                if let Some(root) = self.rbc.delivered_root(j) {
                    let share =
                        self.secret.sign_share(&prbc_done_msg(self.p().session, j, &root));
                    acts.send(Body::BasePrbcDone { instance: j as u8, root, share });
                }
            }
        }
    }

    fn delivered(&self, instance: usize) -> Option<&Bytes> {
        self.rbc.delivered(instance)
    }

    fn delivered_count(&self) -> usize {
        self.rbc.delivered_count()
    }
}

// --------------------------------------------------------------- ABA

/// Baseline shared-coin ABA: the batched state machine behind a
/// packetization adapter that sends one frame per vote/share (the wired
/// deployment style, including per-instance coins — paper §IV-C2 notes
/// parallel instances cannot safely share coins without the batched vote
/// binding).
pub struct BaselineAbaSet {
    inner: AbaScBatch,
    flavor: CoinFlavor,
    n: usize,
    /// Items already emitted (dedup across flushes).
    emitted: BTreeSet<(u8, u16, u8)>,
}

impl std::fmt::Debug for BaselineAbaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineAbaSet").field("inner", &self.inner).finish()
    }
}

/// Emission item tags for the dedup set.
const TAG_BVAL0: u8 = 0;
const TAG_BVAL1: u8 = 1;
const TAG_AUX: u8 = 2;
const TAG_COIN: u8 = 3;
const TAG_DECIDED: u8 = 4;

impl BaselineAbaSet {
    /// Creates the baseline set (per-instance coin domains).
    pub fn new(
        p: Params,
        flavor: CoinFlavor,
        coin_pub: CoinPublicSet,
        coin_sec: CoinSecretShare,
    ) -> Self {
        BaselineAbaSet {
            n: p.n,
            inner: AbaScBatch::new_serial(p, flavor, coin_pub, coin_sec),
            flavor,
            emitted: BTreeSet::new(),
        }
    }

    /// Translates the inner combined packet into per-item baseline frames,
    /// deduplicating against what was already emitted.
    fn translate_out(&mut self, sends: Vec<Body>, acts: &mut Actions) {
        for body in sends {
            let Body::AbaSc { insts, coin_shares, .. } = body else {
                continue;
            };
            for inst in insts {
                let key = (inst.instance, inst.round, TAG_BVAL0);
                if inst.bval.zero && self.emitted.insert(key) {
                    acts.send(Body::BaseAbaBval {
                        instance: inst.instance,
                        round: inst.round,
                        value: false,
                    });
                }
                let key = (inst.instance, inst.round, TAG_BVAL1);
                if inst.bval.one && self.emitted.insert(key) {
                    acts.send(Body::BaseAbaBval {
                        instance: inst.instance,
                        round: inst.round,
                        value: true,
                    });
                }
                if let Some(v) = inst.aux.as_bool() {
                    let key = (inst.instance, inst.round, TAG_AUX);
                    if self.emitted.insert(key) {
                        acts.send(Body::BaseAbaAux {
                            instance: inst.instance,
                            round: inst.round,
                            value: v,
                        });
                    }
                }
                if let Some(v) = inst.decided.as_bool() {
                    let key = (inst.instance, 0, TAG_DECIDED);
                    if self.emitted.insert(key) {
                        acts.send(Body::BaseAbaDecided { instance: inst.instance, value: v });
                    }
                }
            }
            for (packed, share) in coin_shares {
                let domain = (packed >> 8) as u8;
                let round = packed & 0xff;
                let key = (domain, round, TAG_COIN);
                if self.emitted.insert(key) {
                    acts.send(Body::BaseAbaCoin {
                        instance: domain,
                        round,
                        flavor: self.flavor,
                        share,
                    });
                }
            }
        }
    }

    /// Translates an incoming baseline frame into the combined form the
    /// inner state machine consumes.
    fn translate_in(&self, body: &Body) -> Option<Body> {
        match body {
            Body::BaseAbaBval { instance, round, value } => Some(Body::AbaSc {
                flavor: self.flavor,
                insts: vec![AbaScInst {
                    instance: *instance,
                    round: *round,
                    bval: {
                        let mut b = BinValues::empty();
                        b.insert(*value);
                        b
                    },
                    aux: Vote::Unknown,
                    decided: Vote::Unknown,
                }],
                coin_shares: vec![],
                share_nack: Bitmap::new(self.n),
            }),
            Body::BaseAbaAux { instance, round, value } => Some(Body::AbaSc {
                flavor: self.flavor,
                insts: vec![AbaScInst {
                    instance: *instance,
                    round: *round,
                    bval: BinValues::empty(),
                    aux: Vote::from_bool(*value),
                    decided: Vote::Unknown,
                }],
                coin_shares: vec![],
                share_nack: Bitmap::new(self.n),
            }),
            Body::BaseAbaDecided { instance, value } => Some(Body::AbaSc {
                flavor: self.flavor,
                insts: vec![AbaScInst {
                    instance: *instance,
                    round: 0,
                    bval: BinValues::empty(),
                    aux: Vote::Unknown,
                    decided: Vote::from_bool(*value),
                }],
                coin_shares: vec![],
                share_nack: Bitmap::new(self.n),
            }),
            Body::BaseAbaCoin { instance, round, flavor, share } => Some(Body::AbaSc {
                flavor: *flavor,
                insts: vec![],
                coin_shares: vec![((*instance as u16) << 8 | (*round & 0xff), *share)],
                share_nack: Bitmap::new(self.n),
            }),
            _ => None,
        }
    }

    fn relay(&mut self, inner_acts: &mut Actions, acts: &mut Actions) {
        let (sends, timers, charge) = inner_acts.drain();
        acts.charge_us += charge;
        for t in timers {
            acts.timers.push(t);
        }
        self.translate_out(sends, acts);
    }
}

impl BinaryAgreement for BaselineAbaSet {
    fn set_input(&mut self, instance: usize, value: bool, acts: &mut Actions) {
        let mut inner_acts = Actions::new();
        self.inner.set_input(instance, value, &mut inner_acts);
        self.relay(&mut inner_acts, acts);
    }

    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        let Some(translated) = self.translate_in(body) else { return };
        let mut inner_acts = Actions::new();
        self.inner.handle(from, &translated, &mut inner_acts);
        self.relay(&mut inner_acts, acts);
    }

    fn on_timer(&mut self, local_id: u32, acts: &mut Actions) {
        // Periodic retransmission: re-emit only each instance's *current*
        // round (re-flooding the whole history window would saturate the
        // channel — stale rounds are recovered through the current ones).
        let mut inner_acts = Actions::new();
        self.inner.on_timer(local_id, &mut inner_acts);
        let (sends, timers, charge) = inner_acts.drain();
        acts.charge_us += charge;
        for t in timers {
            acts.timers.push(t);
        }
        let mut current: Vec<Body> = Vec::new();
        for body in sends {
            let Body::AbaSc { flavor, insts, coin_shares, share_nack } = body else {
                continue;
            };
            // Re-emit each instance's current round plus anything a lagging
            // undecided peer still needs (the inner machine's history
            // floor) — enough for recovery, without re-flooding the whole
            // history window every tick.
            let filtered: Vec<_> = insts
                .into_iter()
                .filter(|i| {
                    let j = i.instance as usize;
                    let cur = self.inner.round_of(j);
                    let floor = self.inner.history_floor_of(j).min(cur);
                    i.round >= cur.saturating_sub(1).min(floor)
                })
                .collect();
            for inst in &filtered {
                self.emitted.remove(&(inst.instance, inst.round, TAG_BVAL0));
                self.emitted.remove(&(inst.instance, inst.round, TAG_BVAL1));
                self.emitted.remove(&(inst.instance, inst.round, TAG_AUX));
                self.emitted.remove(&(inst.instance, 0, TAG_DECIDED));
            }
            for (packed, _) in &coin_shares {
                self.emitted.remove(&((packed >> 8) as u8, packed & 0xff, TAG_COIN));
            }
            current.push(Body::AbaSc { flavor, insts: filtered, coin_shares, share_nack });
        }
        self.translate_out(current, acts);
    }

    fn decided(&self, instance: usize) -> Option<bool> {
        self.inner.decided(instance)
    }

    fn decided_count(&self) -> usize {
        self.inner.decided_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::deal_node_crypto;
    use crate::rbc::tests::run_mesh;
    use rand::SeedableRng;
    use wbft_crypto::CryptoSuite;

    #[test]
    fn baseline_rbc_delivers_with_per_instance_packets() {
        let mut nodes: Vec<BaselineRbcSet> =
            (0..4).map(|i| BaselineRbcSet::new(Params::new(4, i, 2))).collect();
        let vals: Vec<Bytes> = (0..4).map(|i| Bytes::from(format!("b-{i}"))).collect();
        let mut i = 0;
        let sends = run_mesh(
            &mut nodes,
            |n, acts| {
                n.start(vals[i].clone(), acts);
                i += 1;
            },
            |n, from, body, acts| n.handle(from, body, acts),
            |n| n.delivered_count() == 4,
        );
        for node in &nodes {
            for (j, val) in vals.iter().enumerate() {
                assert_eq!(node.delivered(j), Some(val));
            }
        }
        // Channel-access comparison against batched RBC lives at the
        // simulator level (slot coalescing applies there); here we only
        // sanity-check the baseline's per-phase packet count: at least one
        // INIT + echo + ready per node per instance.
        assert!(sends >= 4 * (1 + 4 + 4), "suspiciously few baseline sends: {sends}");
    }

    #[test]
    fn baseline_cbc_delivers_and_proves() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let mut nodes: Vec<BaselineCbcSet> = deal_node_crypto(4, CryptoSuite::light(), &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, c)| BaselineCbcSet::new(Params::new(4, i, 3), c.cbc_pub, c.cbc_sec))
            .collect();
        let vals: Vec<Bytes> = (0..4).map(|i| Bytes::from(format!("c-{i}"))).collect();
        let mut i = 0;
        run_mesh(
            &mut nodes,
            |n, acts| {
                n.start(vals[i].clone(), acts);
                i += 1;
            },
            |n, from, body, acts| n.handle(from, body, acts),
            |n| n.delivered_count() == 4,
        );
        for node in &nodes {
            for (j, val) in vals.iter().enumerate() {
                assert_eq!(node.delivered(j), Some(val));
                assert!(node.proof(j).is_some());
            }
        }
    }

    #[test]
    fn baseline_prbc_produces_proofs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let mut nodes: Vec<BaselinePrbcSet> = deal_node_crypto(4, CryptoSuite::light(), &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, c)| BaselinePrbcSet::new(Params::new(4, i, 4), c.prbc_pub, c.prbc_sec))
            .collect();
        let vals: Vec<Bytes> = (0..4).map(|i| Bytes::from(format!("p-{i}"))).collect();
        let mut i = 0;
        run_mesh(
            &mut nodes,
            |n, acts| {
                n.start(vals[i].clone(), acts);
                i += 1;
            },
            |n, from, body, acts| n.handle(from, body, acts),
            |n| n.delivered_count() == 4 && n.proven_count() == 4,
        );
        assert!(nodes[0].proof(2).is_some());
    }

    #[test]
    fn baseline_aba_agrees_on_split_inputs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        let crypto = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        let mut nodes: Vec<BaselineAbaSet> = crypto
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                BaselineAbaSet::new(
                    Params::new(4, i, 5),
                    CoinFlavor::ThreshSig,
                    c.coin_pub,
                    c.coin_sec,
                )
            })
            .collect();
        let inputs = [true, false, true, false];
        let mut inbox: Vec<(usize, Body)> = Vec::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            let mut acts = Actions::new();
            node.set_input(0, inputs[i], &mut acts);
            for b in acts.drain().0 {
                inbox.push((i, b));
            }
        }
        let mut steps = 0;
        while let Some((src, body)) = inbox.pop() {
            steps += 1;
            assert!(steps < 200_000, "baseline ABA did not converge");
            for (i, node) in nodes.iter_mut().enumerate() {
                if i == src {
                    continue;
                }
                let mut acts = Actions::new();
                node.handle(src, &body, &mut acts);
                for b in acts.drain().0 {
                    inbox.push((i, b));
                }
            }
            if nodes.iter().all(|n| n.decided(0).is_some()) {
                break;
            }
        }
        let first = nodes[0].decided(0);
        assert!(first.is_some());
        assert!(nodes.iter().all(|n| n.decided(0) == first));
    }

    #[test]
    fn baseline_aba_emits_per_item_packets() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        let crypto = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        let c = crypto.into_iter().next().unwrap();
        let mut node = BaselineAbaSet::new(
            Params::new(4, 0, 6),
            CoinFlavor::ThreshSig,
            c.coin_pub,
            c.coin_sec,
        );
        let mut acts = Actions::new();
        node.set_input(0, true, &mut acts);
        let (sends, _, _) = acts.drain();
        assert!(
            sends.iter().all(|b| matches!(
                b,
                Body::BaseAbaBval { .. }
                    | Body::BaseAbaAux { .. }
                    | Body::BaseAbaCoin { .. }
                    | Body::BaseAbaDecided { .. }
            )),
            "baseline must emit per-item packets, got {sends:?}"
        );
        assert!(
            sends.iter().any(|b| matches!(b, Body::BaseAbaBval { value: true, .. })),
            "initial BVAL expected"
        );
    }
}
