//! Batched Bracha reliable broadcast — N parallel RBC instances sharing
//! packets (paper Fig. 4a).
//!
//! Instance `j`'s proposer is node `j`. The INITIAL phase ships the
//! proposal in fragments (`RBC_INIT` packets, one per fragment); the ECHO
//! and READY phases of *all N instances* ride in one combined `RBC_ER`
//! packet per channel access (vertical batching), with ECHO and READY
//! folded together (horizontal batching). NACK bits drive retransmission:
//! each node periodically rebroadcasts its combined packet while it is
//! behind or sees evidence a peer is, and proposal holders re-send INITIAL
//! fragments when `Initial_nack` bits implicate an instance they can serve.
//!
//! Votes are cast on the proposal digest, so equivocation by a Byzantine
//! proposer splits the vote and the instance simply never delivers (its ABA
//! then decides 0); if any honest node delivers a value, every honest node
//! eventually delivers the same value (Bracha's agreement + totality, which
//! the integration tests exercise under loss and Byzantine proposers).

use crate::context::{Actions, Broadcaster, Params, RetxState};
use bytes::Bytes;
use wbft_crypto::hash::Digest32;
use wbft_net::{Bitmap, Body, RetransmitPolicy};

/// Maximum proposal bytes carried per INITIAL fragment (fits a LoRa frame
/// after header, root, NACK and signature).
pub const FRAG_BUDGET: usize = 150;

/// Local timer id of the retransmission tick.
const TIMER_RETX: u32 = 0;

#[derive(Debug, Default)]
struct Inst {
    /// Proposal root claimed by the first INITIAL fragment seen.
    claimed_root: Option<Digest32>,
    /// Fragment buffer (sized on first fragment).
    frags: Vec<Option<Bytes>>,
    /// Assembled and digest-verified proposal.
    value: Option<Bytes>,
    /// Per node: the root they echoed (index = node id, includes self).
    echo_roots: Vec<Option<Digest32>>,
    /// Per node: the root they declared ready.
    ready_roots: Vec<Option<Digest32>>,
    /// Root this node echoes.
    my_echo: Option<Digest32>,
    /// Root this node is ready on.
    my_ready: Option<Digest32>,
    /// Delivered output.
    delivered: Option<Bytes>,
    /// A peer NACKed this instance's proposal and we can serve it.
    peers_need_init: bool,
}

impl Inst {
    fn new(n: usize) -> Self {
        Inst {
            echo_roots: vec![None; n],
            ready_roots: vec![None; n],
            ..Inst::default()
        }
    }

    /// Root with the most echoes and its count.
    fn echo_quorum(&self) -> Option<(Digest32, usize)> {
        count_votes(&self.echo_roots)
    }

    fn ready_quorum(&self) -> Option<(Digest32, usize)> {
        count_votes(&self.ready_roots)
    }

    /// The root this node's votes refer to in the combined packet.
    fn vote_root(&self) -> Option<Digest32> {
        self.my_ready.or(self.my_echo).or(self.claimed_root)
    }
}

fn count_votes(votes: &[Option<Digest32>]) -> Option<(Digest32, usize)> {
    let mut best: Option<(Digest32, usize)> = None;
    for v in votes.iter().flatten() {
        let c = votes.iter().flatten().filter(|x| *x == v).count();
        if best.map(|(_, bc)| c > bc).unwrap_or(true) {
            best = Some((*v, c));
        }
    }
    best
}

/// N parallel Bracha RBC instances under ConsensusBatcher.
#[derive(Debug)]
pub struct RbcBatch {
    p: Params,
    insts: Vec<Inst>,
    dirty: bool,
    started: bool,
    retx: RetxState,
}

impl RbcBatch {
    /// Creates the batch (call [`Broadcaster::start`] to begin).
    pub fn new(p: Params) -> Self {
        let insts = (0..p.n).map(|_| Inst::new(p.n)).collect();
        RbcBatch {
            p,
            insts,
            dirty: false,
            started: false,
            retx: RetxState::new(RetransmitPolicy::lora_class(), &p),
        }
    }

    /// The protocol parameters.
    pub fn params(&self) -> &Params {
        &self.p
    }

    /// The delivered root of an instance (PRBC signs this).
    pub fn delivered_root(&self, instance: usize) -> Option<Digest32> {
        let inst = &self.insts[instance];
        inst.delivered.as_ref().map(|v| Digest32::of(v))
    }

    fn send_init_frags(&self, instance: usize, acts: &mut Actions) {
        let inst = &self.insts[instance];
        let value = match &inst.value {
            Some(v) => v,
            None => return,
        };
        let root = Digest32::of(value);
        let chunks: Vec<&[u8]> =
            if value.is_empty() { vec![&[][..]] } else { value.chunks(FRAG_BUDGET).collect() };
        let total = chunks.len() as u8;
        for (i, chunk) in chunks.iter().enumerate() {
            acts.send(Body::RbcInit {
                instance: instance as u8,
                frag: i as u8,
                frag_total: total,
                root,
                data: Bytes::copy_from_slice(chunk),
                init_nack: self.init_nack(),
            });
        }
    }

    fn init_nack(&self) -> Bitmap {
        let mut nack = Bitmap::new(self.p.n);
        for (j, inst) in self.insts.iter().enumerate() {
            // Missing the proposal while votes (or a claimed root) prove the
            // instance exists.
            let interesting = inst.claimed_root.is_some()
                || inst.echo_roots.iter().any(Option::is_some)
                || inst.ready_roots.iter().any(Option::is_some);
            if inst.value.is_none() && interesting {
                nack.set(j, true);
            }
        }
        nack
    }

    fn build_er(&self) -> Body {
        let n = self.p.n;
        let mut roots = vec![Digest32::zero(); n];
        let mut echo = Bitmap::new(n);
        let mut ready = Bitmap::new(n);
        let mut echo_nack = Bitmap::new(n);
        let mut ready_nack = Bitmap::new(n);
        for (j, inst) in self.insts.iter().enumerate() {
            if let Some(r) = inst.vote_root() {
                roots[j] = r;
                echo.set(j, inst.my_echo == Some(r));
                ready.set(j, inst.my_ready == Some(r));
            }
            if inst.delivered.is_none() {
                let eq = inst.echo_quorum().map(|(_, c)| c).unwrap_or(0);
                let rq = inst.ready_quorum().map(|(_, c)| c).unwrap_or(0);
                echo_nack.set(j, eq < self.p.quorum());
                ready_nack.set(j, rq < self.p.quorum());
            }
        }
        Body::RbcEchoReady {
            roots,
            echo,
            ready,
            echo_nack,
            ready_nack,
            init_nack: self.init_nack(),
        }
    }

    /// Re-evaluates vote quorums for one instance, mutating local votes.
    fn advance(&mut self, j: usize) {
        let p = self.p;
        let inst = &mut self.insts[j];
        // READY on 2f+1 echoes or f+1 readies (Bracha amplification).
        if inst.my_ready.is_none() {
            if let Some((root, c)) = inst.echo_quorum() {
                if c >= p.quorum() {
                    inst.my_ready = Some(root);
                    inst.ready_roots[p.me] = Some(root);
                    self.dirty = true;
                }
            }
        }
        if inst.my_ready.is_none() {
            if let Some((root, c)) = inst.ready_quorum() {
                if c > p.f {
                    inst.my_ready = Some(root);
                    inst.ready_roots[p.me] = Some(root);
                    self.dirty = true;
                }
            }
        }
        // DELIVER on 2f+1 readies, once the matching value is held.
        if inst.delivered.is_none() {
            if let Some((root, c)) = inst.ready_quorum() {
                if c >= p.quorum() {
                    if let Some(v) = &inst.value {
                        if Digest32::of(v) == root {
                            inst.delivered = Some(v.clone());
                            self.dirty = true;
                        }
                    }
                    // Else: our init_nack bit for j is set; holders re-send.
                }
            }
        }
    }

    fn handle_init(
        &mut self,
        instance: usize,
        frag: usize,
        frag_total: usize,
        root: Digest32,
        data: &Bytes,
    ) {
        if instance >= self.p.n || frag_total == 0 || frag >= frag_total || frag_total > 64 {
            return;
        }
        let me = self.p.me;
        let inst = &mut self.insts[instance];
        if inst.value.is_some() {
            return; // already assembled
        }
        if inst.claimed_root.is_none() {
            inst.claimed_root = Some(root);
        }
        if inst.claimed_root != Some(root) {
            return; // equivocating proposer; stick with the first claim
        }
        if inst.frags.len() != frag_total {
            inst.frags = vec![None; frag_total];
        }
        inst.frags[frag] = Some(data.clone());
        if inst.frags.iter().all(Option::is_some) {
            let mut value = Vec::new();
            for f in inst.frags.iter().flatten() {
                value.extend_from_slice(f);
            }
            let value = Bytes::from(value);
            if Digest32::of(&value) == root {
                inst.value = Some(value);
                if inst.my_echo.is_none() {
                    inst.my_echo = Some(root);
                    inst.echo_roots[me] = Some(root);
                }
                self.dirty = true;
            } else {
                // Corrupt assembly (mismatched fragments from an
                // equivocator): reset and re-NACK.
                inst.frags.clear();
                inst.claimed_root = None;
            }
        }
        self.advance(instance);
    }

    // One parameter per field of the combined ER packet; bundling them
    // into a struct would just duplicate `Body::RbcEchoReady`.
    #[allow(clippy::too_many_arguments)]
    fn handle_er(
        &mut self,
        from: usize,
        roots: &[Digest32],
        echo: &Bitmap,
        ready: &Bitmap,
        echo_nack: &Bitmap,
        ready_nack: &Bitmap,
        init_nack: &Bitmap,
    ) {
        if roots.len() != self.p.n || echo.len() != self.p.n {
            return;
        }
        for (j, &root) in roots.iter().enumerate() {
            if !root.is_zero() {
                if echo.get(j) && self.insts[j].echo_roots[from].is_none() {
                    self.insts[j].echo_roots[from] = Some(root);
                }
                if ready.get(j) && self.insts[j].ready_roots[from].is_none() {
                    self.insts[j].ready_roots[from] = Some(root);
                }
                // Learning a claimed root from votes lets us NACK the value.
                if self.insts[j].claimed_root.is_none() {
                    self.insts[j].claimed_root = Some(root);
                }
            }
            // Peer lacks the proposal we hold → schedule INITIAL re-send.
            if init_nack.len() == self.p.n
                && init_nack.get(j)
                && self.insts[j].value.is_some()
            {
                self.insts[j].peers_need_init = true;
                self.retx.peer_behind = true;
            }
            // Peer lacks quorums we already have votes for → our combined
            // packet helps them; mark for retransmission.
            if (echo_nack.len() == self.p.n && echo_nack.get(j) && self.insts[j].my_echo.is_some())
                || (ready_nack.len() == self.p.n
                    && ready_nack.get(j)
                    && self.insts[j].my_ready.is_some())
            {
                self.retx.peer_behind = true;
            }
            self.advance(j);
        }
    }

    fn flush(&mut self, acts: &mut Actions) {
        if self.dirty {
            acts.send(self.build_er());
            self.dirty = false;
            self.retx.reset();
        }
    }

    fn is_complete(&self) -> bool {
        self.insts.iter().all(|i| i.delivered.is_some())
    }
}

impl Broadcaster for RbcBatch {
    fn start(&mut self, my_value: Bytes, acts: &mut Actions) {
        assert!(!self.started, "RbcBatch started twice");
        self.started = true;
        let me = self.p.me;
        let root = Digest32::of(&my_value);
        {
            let inst = &mut self.insts[me];
            inst.claimed_root = Some(root);
            inst.value = Some(my_value);
            inst.my_echo = Some(root);
            inst.echo_roots[me] = Some(root);
        }
        self.send_init_frags(me, acts);
        self.dirty = true;
        self.flush(acts);
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_RETX);
    }

    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        if from >= self.p.n {
            return;
        }
        match body {
            Body::RbcInit { instance, frag, frag_total, root, data, init_nack } => {
                if init_nack.len() == self.p.n {
                    for j in init_nack.iter_set() {
                        if self.insts[j].value.is_some() {
                            self.insts[j].peers_need_init = true;
                            self.retx.peer_behind = true;
                        }
                    }
                }
                self.handle_init(*instance as usize, *frag as usize, *frag_total as usize, *root, data);
            }
            Body::RbcEchoReady { roots, echo, ready, echo_nack, ready_nack, init_nack } => {
                self.handle_er(from, roots, echo, ready, echo_nack, ready_nack, init_nack);
            }
            _ => {}
        }
        self.flush(acts);
    }

    fn on_timer(&mut self, local_id: u32, acts: &mut Actions) {
        if local_id != TIMER_RETX {
            return;
        }
        if self.retx.should_send(self.is_complete()) {
            // Serve NACKed proposals first, then the combined vote packet.
            for j in 0..self.p.n {
                if self.insts[j].peers_need_init {
                    self.send_init_frags(j, acts);
                    self.insts[j].peers_need_init = false;
                }
            }
            acts.send(self.build_er());
            self.retx.peer_behind = false;
        }
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_RETX);
    }

    fn delivered(&self, instance: usize) -> Option<&Bytes> {
        self.insts.get(instance).and_then(|i| i.delivered.as_ref())
    }

    fn delivered_count(&self) -> usize {
        self.insts.iter().filter(|i| i.delivered.is_some()).count()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Drives a set of in-memory nodes to completion by synchronously
    /// exchanging every send with every other node (no losses). Returns the
    /// number of "channel accesses" (sends) performed.
    pub(crate) fn run_mesh<C>(
        nodes: &mut [C],
        mut start: impl FnMut(&mut C, &mut Actions),
        mut handle: impl FnMut(&mut C, usize, &Body, &mut Actions),
        mut done: impl FnMut(&C) -> bool,
    ) -> usize {
        let mut inbox: Vec<(usize, Body)> = Vec::new();
        let mut sends = 0;
        for (i, node) in nodes.iter_mut().enumerate() {
            let mut acts = Actions::new();
            start(node, &mut acts);
            for body in acts.drain().0 {
                sends += 1;
                inbox.push((i, body));
            }
        }
        let mut steps = 0;
        while let Some((src, body)) = inbox.pop() {
            steps += 1;
            assert!(steps < 100_000, "mesh did not converge");
            for (i, node) in nodes.iter_mut().enumerate() {
                if i == src {
                    continue;
                }
                let mut acts = Actions::new();
                handle(node, src, &body, &mut acts);
                for b in acts.drain().0 {
                    sends += 1;
                    inbox.push((i, b));
                }
            }
            if nodes.iter().all(&mut done) {
                break;
            }
        }
        assert!(nodes.iter().all(done), "not all nodes completed");
        sends
    }

    fn params(me: usize) -> Params {
        Params::new(4, me, 7)
    }

    fn values() -> Vec<Bytes> {
        (0..4).map(|i| Bytes::from(format!("proposal-{i}"))).collect()
    }

    #[test]
    fn all_nodes_deliver_all_instances() {
        let mut nodes: Vec<RbcBatch> = (0..4).map(|i| RbcBatch::new(params(i))).collect();
        let vals = values();
        let mut i = 0;
        run_mesh(
            &mut nodes,
            |n, acts| {
                n.start(vals[i].clone(), acts);
                i += 1;
            },
            |n, from, body, acts| n.handle(from, body, acts),
            |n| n.delivered_count() == 4,
        );
        for node in &nodes {
            for (j, v) in vals.iter().enumerate() {
                assert_eq!(node.delivered(j), Some(v));
            }
        }
    }

    #[test]
    fn multi_fragment_proposals_assemble() {
        let mut nodes: Vec<RbcBatch> = (0..4).map(|i| RbcBatch::new(params(i))).collect();
        let big: Vec<Bytes> =
            (0..4).map(|i| Bytes::from(vec![i as u8; FRAG_BUDGET * 3 + 17])).collect();
        let mut i = 0;
        run_mesh(
            &mut nodes,
            |n, acts| {
                n.start(big[i].clone(), acts);
                i += 1;
            },
            |n, from, body, acts| n.handle(from, body, acts),
            |n| n.delivered_count() == 4,
        );
        assert_eq!(nodes[2].delivered(1), Some(&big[1]));
    }

    #[test]
    fn silent_proposer_instance_does_not_deliver_but_others_do() {
        // Node 3 never starts (crashed before proposing).
        let mut nodes: Vec<RbcBatch> = (0..4).map(|i| RbcBatch::new(params(i))).collect();
        let vals = values();
        let mut inbox: Vec<(usize, Body)> = Vec::new();
        for i in 0..3 {
            let mut acts = Actions::new();
            nodes[i].start(vals[i].clone(), acts.by_ref());
            for b in acts.drain().0 {
                inbox.push((i, b));
            }
        }
        let mut steps = 0;
        while let Some((src, body)) = inbox.pop() {
            steps += 1;
            if steps > 50_000 {
                break;
            }
            for (i, node) in nodes.iter_mut().enumerate() {
                if i == src {
                    continue;
                }
                let mut acts = Actions::new();
                node.handle(src, &body, &mut acts);
                for b in acts.drain().0 {
                    inbox.push((i, b));
                }
            }
        }
        for node in nodes.iter().take(3) {
            assert_eq!(node.delivered_count(), 3, "instances 0-2 deliver");
            assert!(node.delivered(3).is_none(), "crashed proposer never delivers");
        }
    }

    #[test]
    fn retransmission_serves_nacked_proposal() {
        // Node 1 misses node 0's INIT; its ER packet NACKs instance 0 and a
        // subsequent timer tick at node 0 re-serves the fragments.
        let mut a = RbcBatch::new(params(0));
        let mut b = RbcBatch::new(params(1));
        let mut acts = Actions::new();
        a.start(Bytes::from_static(b"va"), &mut acts);
        let (_a_sends, _, _) = acts.drain(); // drop: b never sees INIT

        let mut acts = Actions::new();
        b.start(Bytes::from_static(b"vb"), &mut acts);
        let (b_sends, _, _) = acts.drain();
        // Feed b's packets (including its votes) to a.
        let mut a_acts = Actions::new();
        for body in &b_sends {
            a.handle(1, body, &mut a_acts);
        }
        // b hasn't voted on instance 0 yet (it saw nothing); now deliver
        // a's ER (which b missed INIT for) so b learns instance 0 exists.
        let er = a.build_er();
        let mut b_acts = Actions::new();
        b.handle(0, &er, &mut b_acts);
        let _ = b_acts.drain();
        // NACKs ride on the periodic tick: b's next retransmission must
        // NACK instance 0's proposal.
        let mut b_tick = Actions::new();
        b.on_timer(TIMER_RETX, &mut b_tick);
        let (b2, _, _) = b_tick.drain();
        let nacked = b2.iter().any(|body| match body {
            Body::RbcEchoReady { init_nack, .. } => init_nack.get(0),
            _ => false,
        });
        assert!(nacked, "b should NACK the missing proposal");
        // Deliver b's NACK to a, then tick a's timer: INIT must be re-sent.
        let mut a_acts = Actions::new();
        for body in &b2 {
            a.handle(1, body, &mut a_acts);
        }
        let mut tick = Actions::new();
        a.on_timer(TIMER_RETX, &mut tick);
        let (resent, _, _) = tick.drain();
        assert!(
            resent.iter().any(|b| matches!(b, Body::RbcInit { instance: 0, .. })),
            "timer tick must re-serve the NACKed INIT, got {resent:?}"
        );
    }

    #[test]
    fn delivered_count_starts_at_zero() {
        let rbc = RbcBatch::new(params(0));
        assert_eq!(rbc.delivered_count(), 0);
        assert!(rbc.delivered(0).is_none());
        assert!(rbc.delivered_root(0).is_none());
    }

    impl Actions {
        fn by_ref(&mut self) -> &mut Self {
            self
        }
    }
}
