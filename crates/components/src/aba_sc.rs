//! Batched shared-coin asynchronous binary agreement (Cachin's ABA /
//! MMR-style BVAL–AUX–COIN rounds) — paper Fig. 6b.
//!
//! One combined packet per channel access carries the BVAL/AUX vote history
//! and coin shares of *all* batched instances (vertical batching), with the
//! three phases folded together (horizontal batching). Two deployments
//! share the code path:
//!
//! * **ABA-SC** — coin from threshold signatures ([`CoinFlavor::ThreshSig`]);
//! * **ABA-CP** — coin from threshold coin flipping (BEAT,
//!   [`CoinFlavor::CoinFlip`]): cheaper operations, larger shares.
//!
//! Per the paper's Technical Challenge III, *parallel* instances in the same
//! round share one common coin (`domain 0`): over a broadcast channel with
//! votes bound into one signed packet, a Byzantine node that learns the coin
//! early cannot reorder per-receiver vote delivery, so the wired-network
//! attack does not apply. *Serial* instances (Dumbo) use per-instance coin
//! domains and are activated one at a time, which also prevents premature
//! share release for later instances (§V-A).
//!
//! Packets carry each instance's full per-round vote history within a small
//! window, so a node that lost frames reconstructs everything from any
//! single later packet — this is what makes the NACK-driven reliability
//! converge. Termination uses decided-flag gossip: `f+1` matching decided
//! claims are adopted (at least one is honest).

use crate::context::{Actions, BinaryAgreement, Params, RetxState};
use crate::share_buf::CoinShareBuf;
use std::collections::BTreeMap;
use wbft_crypto::thresh_coin::{CoinName, CoinPublicSet, CoinSecretShare, CoinShare};
use wbft_net::packets::AbaScInst;
use wbft_net::{BinValues, Bitmap, Body, CoinFlavor, RetransmitPolicy, Vote};

/// Local timer id of the retransmission tick.
const TIMER_RETX: u32 = 0;

/// How many trailing rounds of vote history each packet carries (laggard
/// catch-up window; a node can fall this many rounds behind and still
/// recover from one packet).
const HISTORY_WINDOW: u16 = 6;

/// Per-round votes this node has cast.
#[derive(Debug, Default, Clone)]
struct MyRound {
    bval: BinValues,
    aux: Option<bool>,
}

/// Per-round votes observed across nodes (bitmask per value).
#[derive(Debug, Default, Clone)]
struct SeenRound {
    bval0: u64,
    bval1: u64,
    aux0: u64,
    aux1: u64,
    bin: BinValues,
}

impl SeenRound {
    fn bval_count(&self, v: bool) -> usize {
        (if v { self.bval1 } else { self.bval0 }).count_ones() as usize
    }
    fn aux_senders_in_bin(&self) -> usize {
        let mut mask = 0u64;
        if self.bin.zero {
            mask |= self.aux0;
        }
        if self.bin.one {
            mask |= self.aux1;
        }
        mask.count_ones() as usize
    }
}

#[derive(Debug)]
struct Inst {
    active: bool,
    est: bool,
    round: u16,
    my_rounds: Vec<MyRound>,
    seen: Vec<SeenRound>,
    decided: Option<bool>,
    /// Decided-claim bitmasks per value.
    claims0: u64,
    claims1: u64,
    /// Highest round observed per peer + decided mask (adaptive history
    /// floor, see `aba_lc`).
    peer_round: Vec<u16>,
    peer_decided: u64,
}

impl Inst {
    fn new(n: usize) -> Self {
        Inst {
            active: false,
            est: false,
            round: 0,
            my_rounds: Vec::new(),
            seen: Vec::new(),
            decided: None,
            claims0: 0,
            claims1: 0,
            peer_round: vec![0; n],
            peer_decided: 0,
        }
    }

    fn history_floor(&self, me: usize) -> u16 {
        let mut floor = self.round;
        for (i, r) in self.peer_round.iter().enumerate() {
            if i != me && self.peer_decided & (1 << i) == 0 {
                floor = floor.min(*r);
            }
        }
        floor
    }

    fn ensure_round(&mut self, r: u16) {
        while self.my_rounds.len() <= r as usize {
            self.my_rounds.push(MyRound::default());
        }
        while self.seen.len() <= r as usize {
            self.seen.push(SeenRound::default());
        }
    }
}

/// State of one common coin (per domain and round).
#[derive(Debug, Default)]
struct CoinState {
    /// Buffered coin shares, batch-verified at quorum (see `share_buf`).
    shares: CoinShareBuf,
    /// This node has released its own share.
    released: bool,
    value: Option<u64>,
}

/// Batched shared-coin ABA over up to N instances.
pub struct AbaScBatch {
    p: Params,
    flavor: CoinFlavor,
    /// Parallel deployment: all instances share the round coin (domain 0).
    /// Serial deployment: per-instance domains.
    shared_coin: bool,
    coin_pub: CoinPublicSet,
    coin_sec: CoinSecretShare,
    insts: Vec<Inst>,
    coins: BTreeMap<(u8, u16), CoinState>,
    dirty: bool,
    timer_armed: bool,
    retx: RetxState,
}

impl std::fmt::Debug for AbaScBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbaScBatch")
            .field("flavor", &self.flavor)
            .field("decided", &self.decided_count())
            .finish_non_exhaustive()
    }
}

impl AbaScBatch {
    /// Creates a parallel batch: instances share the per-round coin and are
    /// expected to be activated simultaneously (wireless HoneyBadgerBFT).
    pub fn new_parallel(
        p: Params,
        flavor: CoinFlavor,
        coin_pub: CoinPublicSet,
        coin_sec: CoinSecretShare,
    ) -> Self {
        Self::new(p, flavor, true, coin_pub, coin_sec)
    }

    /// Creates a serial batch: per-instance coin domains, instances
    /// activated one at a time (wireless Dumbo).
    pub fn new_serial(
        p: Params,
        flavor: CoinFlavor,
        coin_pub: CoinPublicSet,
        coin_sec: CoinSecretShare,
    ) -> Self {
        Self::new(p, flavor, false, coin_pub, coin_sec)
    }

    fn new(
        p: Params,
        flavor: CoinFlavor,
        shared_coin: bool,
        coin_pub: CoinPublicSet,
        coin_sec: CoinSecretShare,
    ) -> Self {
        coin_pub.precompute();
        let insts = (0..p.n).map(|_| Inst::new(p.n)).collect();
        AbaScBatch {
            p,
            flavor,
            shared_coin,
            coin_pub,
            coin_sec,
            insts,
            coins: BTreeMap::new(),
            dirty: false,
            timer_armed: false,
            retx: RetxState::new(RetransmitPolicy::lora_class(), &p),
        }
    }

    /// Whether an instance has been activated with an input.
    pub fn is_active(&self, instance: usize) -> bool {
        self.insts[instance].active
    }

    /// The oldest round some undecided peer still needs for `instance`
    /// (used by the baseline adapter to bound retransmission).
    pub fn history_floor_of(&self, instance: usize) -> u16 {
        self.insts[instance].history_floor(self.p.me)
    }

    /// The instance's current round.
    pub fn round_of(&self, instance: usize) -> u16 {
        self.insts[instance].round
    }

    fn domain(&self, instance: usize) -> u8 {
        if self.shared_coin {
            0
        } else {
            instance as u8
        }
    }

    fn coin_name(&self, domain: u8, round: u16) -> CoinName {
        CoinName { session: self.p.session, round: round as u32, domain: domain as u32 }
    }

    /// Per-operation costs of this deployment's coin: ABA-SC derives its
    /// coin from *threshold signatures* (Fig. 10a costs), ABA-CP from
    /// *threshold coin flipping* (Fig. 10b costs — cheaper ops, bigger
    /// shares). The underlying simulation scheme is identical; the charged
    /// virtual CPU time is what differs.
    fn coin_costs(&self) -> (u64, u64, u64) {
        match self.flavor {
            CoinFlavor::ThreshSig => {
                let p = self.coin_pub.profile().curve.signature_profile();
                (p.sign_share_us, p.verify_share_us, p.combine_us)
            }
            CoinFlavor::CoinFlip => {
                let p = self.coin_pub.profile();
                (p.sign_share_us, p.verify_share_us, p.combine_us)
            }
        }
    }

    /// Charges and buffers a peer's coin share; the buffered quorum is
    /// batch-verified and combined in one pass.
    fn record_coin_share(
        &mut self,
        domain: u8,
        round: u16,
        share: &CoinShare,
        acts: &mut Actions,
    ) {
        let (_, verify_us, combine_us) = self.coin_costs();
        let name = self.coin_name(domain, round);
        let need = self.coin_pub.threshold() + 1;
        let n = self.p.n;
        let state = self.coins.entry((domain, round)).or_default();
        if state.value.is_some() || !state.shares.insert(*share, n) {
            return;
        }
        acts.charge(verify_us);
        if state.shares.settle(&self.coin_pub, name, need) {
            acts.charge(combine_us);
            if let Ok(v) = self.coin_pub.combine_value(name, state.shares.shares()) {
                state.value = Some(v);
            }
        }
    }

    /// Releases this node's coin share for `(domain, round)` if not yet.
    fn release_share(&mut self, domain: u8, round: u16, acts: &mut Actions) {
        let name = self.coin_name(domain, round);
        let state = self.coins.entry((domain, round)).or_default();
        if state.released {
            return;
        }
        state.released = true;
        let (sign_us, _, _) = self.coin_costs();
        acts.charge(sign_us);
        let share = self.coin_sec.coin_share(name);
        // Record our own share like any other.
        self.record_coin_share(domain, round, &share, acts);
        self.dirty = true;
    }

    fn coin_value(&self, domain: u8, round: u16) -> Option<bool> {
        self.coins.get(&(domain, round)).and_then(|c| c.value).map(|v| v & 1 == 1)
    }

    /// Casts a BVAL vote for `(instance, round, v)` from this node.
    fn cast_bval(&mut self, instance: usize, round: u16, v: bool) {
        let me = self.p.me;
        let inst = &mut self.insts[instance];
        inst.ensure_round(round);
        let my = &mut inst.my_rounds[round as usize];
        if my.bval.contains(v) {
            return;
        }
        my.bval.insert(v);
        let seen = &mut inst.seen[round as usize];
        let mask = if v { &mut seen.bval1 } else { &mut seen.bval0 };
        *mask |= 1 << me;
        self.dirty = true;
    }

    fn cast_aux(&mut self, instance: usize, round: u16, v: bool) {
        let me = self.p.me;
        let inst = &mut self.insts[instance];
        inst.ensure_round(round);
        let my = &mut inst.my_rounds[round as usize];
        if my.aux.is_some() {
            return;
        }
        my.aux = Some(v);
        let seen = &mut inst.seen[round as usize];
        let mask = if v { &mut seen.aux1 } else { &mut seen.aux0 };
        *mask |= 1 << me;
        self.dirty = true;
    }

    /// Runs the round state machine for one instance to a fixpoint.
    fn evaluate(&mut self, instance: usize, acts: &mut Actions) {
        loop {
            let (round, active) = {
                let inst = &self.insts[instance];
                (inst.round, inst.active)
            };
            if !active {
                return;
            }
            self.insts[instance].ensure_round(round);
            let me_quorum = self.p.quorum();
            let f = self.p.f;
            let n_minus_f = self.p.n_minus_f();
            let mut progressed = false;

            // BVAL relay on f+1, bin_values on 2f+1.
            for v in [false, true] {
                let (count, has_cast) = {
                    let inst = &self.insts[instance];
                    let seen = &inst.seen[round as usize];
                    (seen.bval_count(v), inst.my_rounds[round as usize].bval.contains(v))
                };
                if count > f && !has_cast {
                    self.cast_bval(instance, round, v);
                    progressed = true;
                }
                let count = self.insts[instance].seen[round as usize].bval_count(v);
                if count >= me_quorum
                    && !self.insts[instance].seen[round as usize].bin.contains(v)
                {
                    self.insts[instance].seen[round as usize].bin.insert(v);
                    progressed = true;
                }
            }

            // AUX once bin_values is non-empty.
            {
                let inst = &self.insts[instance];
                let bin = inst.seen[round as usize].bin;
                let aux_cast = inst.my_rounds[round as usize].aux.is_some();
                if !bin.is_empty() && !aux_cast {
                    let v = bin.single().unwrap_or(inst.est);
                    self.cast_aux(instance, round, v);
                    progressed = true;
                }
            }

            // Coin phase: n−f AUX votes with values inside bin_values.
            let ready_for_coin = {
                let inst = &self.insts[instance];
                let seen = &inst.seen[round as usize];
                !seen.bin.is_empty() && seen.aux_senders_in_bin() >= n_minus_f
            };
            if ready_for_coin {
                let domain = self.domain(instance);
                self.release_share(domain, round, acts);
                if let Some(coin) = self.coin_value(domain, round) {
                    // vals = values in bin carried by aux votes.
                    let (vals0, vals1, bin) = {
                        let seen = &self.insts[instance].seen[round as usize];
                        (
                            seen.bin.zero && seen.aux0 != 0,
                            seen.bin.one && seen.aux1 != 0,
                            seen.bin,
                        )
                    };
                    let _ = bin;
                    let next_est = match (vals0, vals1) {
                        (true, false) => {
                            if !coin {
                                self.try_decide(instance, false);
                            }
                            false
                        }
                        (false, true) => {
                            if coin {
                                self.try_decide(instance, true);
                            }
                            true
                        }
                        _ => coin,
                    };
                    let inst = &mut self.insts[instance];
                    if let Some(decided) = inst.decided {
                        // decided nodes keep voting their decision
                        inst.est = decided;
                    } else {
                        inst.est = next_est;
                    }
                    inst.round = round + 1;
                    let est = inst.est;
                    self.cast_bval(instance, round + 1, est);
                    progressed = true;
                }
            }

            if !progressed {
                return;
            }
        }
    }

    fn try_decide(&mut self, instance: usize, v: bool) {
        let me = self.p.me;
        let inst = &mut self.insts[instance];
        if inst.decided.is_none() {
            inst.decided = Some(v);
            if v {
                inst.claims1 |= 1 << me;
            } else {
                inst.claims0 |= 1 << me;
            }
            self.dirty = true;
        }
    }

    /// Builds the combined packet: recent-round history for every active
    /// instance plus this node's released coin shares in the window.
    fn build_packet(&self) -> Body {
        let mut insts = Vec::new();
        let mut coin_rounds: Vec<(u8, u16)> = Vec::new();
        for (j, inst) in self.insts.iter().enumerate() {
            if !inst.active {
                continue;
            }
            let lo = inst
                .round
                .saturating_sub(HISTORY_WINDOW - 1)
                .min(inst.history_floor(self.p.me));
            for r in lo..=inst.round {
                if (r as usize) < inst.my_rounds.len() {
                    let my = &inst.my_rounds[r as usize];
                    insts.push(AbaScInst {
                        instance: j as u8,
                        round: r,
                        bval: my.bval,
                        aux: my.aux.map(Vote::from_bool).unwrap_or(Vote::Unknown),
                        decided: inst.decided.map(Vote::from_bool).unwrap_or(Vote::Unknown),
                    });
                }
                let d = self.domain(j);
                if !coin_rounds.contains(&(d, r)) {
                    coin_rounds.push((d, r));
                }
            }
        }
        let mut coin_shares = Vec::new();
        for (d, r) in coin_rounds {
            if let Some(state) = self.coins.get(&(d, r)) {
                if state.released {
                    let name = self.coin_name(d, r);
                    let share = self.coin_sec.coin_share(name);
                    // Wire convention: round field packs (domain << 8) | round.
                    coin_shares.push(((d as u16) << 8 | (r & 0xff), share));
                }
            }
        }
        // share_nack: nodes whose coin share we lack for any needed coin.
        let mut share_nack = Bitmap::new(self.p.n);
        for ((_, _), state) in self.coins.iter() {
            if state.released && state.value.is_none() {
                for node in 0..self.p.n {
                    if state.shares.reporters() & (1 << node) == 0 {
                        share_nack.set(node, true);
                    }
                }
            }
        }
        Body::AbaSc { flavor: self.flavor, insts, coin_shares, share_nack }
    }

    fn flush(&mut self, acts: &mut Actions) {
        if self.dirty {
            acts.send(self.build_packet());
            self.dirty = false;
            self.retx.reset();
        }
        if !self.timer_armed {
            self.timer_armed = true;
            let d = self.retx.next_delay();
            acts.timer(d, TIMER_RETX);
        }
    }

    fn is_complete(&self) -> bool {
        self.insts.iter().all(|i| !i.active || i.decided.is_some())
            && self.insts.iter().any(|i| i.active)
    }
}

impl BinaryAgreement for AbaScBatch {
    fn set_input(&mut self, instance: usize, value: bool, acts: &mut Actions) {
        let inst = &mut self.insts[instance];
        if inst.active {
            return;
        }
        inst.active = true;
        inst.est = value;
        self.cast_bval(instance, 0, value);
        self.evaluate(instance, acts);
        self.flush(acts);
    }

    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        if from >= self.p.n {
            return;
        }
        let Body::AbaSc { flavor, insts, coin_shares, share_nack } = body else {
            return;
        };
        if *flavor != self.flavor {
            return;
        }
        let from_bit = 1u64 << from;
        for wire in insts {
            let j = wire.instance as usize;
            if j >= self.p.n {
                continue;
            }
            // Activation by observation: an instance a peer is voting on
            // exists; if our driver has not given us input yet we still
            // record votes (they are monotonic) but do not vote ourselves.
            let inst = &mut self.insts[j];
            inst.ensure_round(wire.round);
            let seen = &mut inst.seen[wire.round as usize];
            if wire.bval.zero {
                seen.bval0 |= from_bit;
            }
            if wire.bval.one {
                seen.bval1 |= from_bit;
            }
            match wire.aux {
                Vote::Zero => seen.aux0 |= from_bit,
                Vote::One => seen.aux1 |= from_bit,
                _ => {}
            }
            match wire.decided {
                Vote::Zero => inst.claims0 |= from_bit,
                Vote::One => inst.claims1 |= from_bit,
                _ => {}
            }
            if wire.round > inst.peer_round[from] {
                inst.peer_round[from] = wire.round;
            }
            if wire.decided != Vote::Unknown {
                inst.peer_decided |= from_bit;
            }
            // Adopt on f+1 matching decided claims (≥ 1 honest).
            if inst.decided.is_none() {
                let f1 = (self.p.f + 1) as u32;
                if inst.claims0.count_ones() >= f1 {
                    inst.decided = Some(false);
                    self.dirty = true;
                } else if inst.claims1.count_ones() >= f1 {
                    inst.decided = Some(true);
                    self.dirty = true;
                }
            }
            // A peer still mid-protocol where we have decided → serve state.
            if self.insts[j].decided.is_some() && wire.decided == Vote::Unknown {
                self.retx.peer_behind = true;
            }
        }
        for (packed, share) in coin_shares {
            let domain = (packed >> 8) as u8;
            let round = packed & 0xff;
            self.record_coin_share(domain, round, share, acts);
        }
        if share_nack.len() == self.p.n && share_nack.get(self.p.me) {
            self.retx.peer_behind = true;
        }
        for j in 0..self.p.n {
            self.evaluate(j, acts);
        }
        self.flush(acts);
    }

    fn on_timer(&mut self, local_id: u32, acts: &mut Actions) {
        if local_id != TIMER_RETX {
            return;
        }
        if self.retx.should_send(self.is_complete()) {
            acts.send(self.build_packet());
            self.retx.peer_behind = false;
        }
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_RETX);
    }

    fn decided(&self, instance: usize) -> Option<bool> {
        self.insts.get(instance).and_then(|i| i.decided)
    }

    fn decided_count(&self) -> usize {
        self.insts.iter().filter(|i| i.decided.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::deal_node_crypto;
    use rand::SeedableRng;
    use wbft_crypto::CryptoSuite;

    fn make_nodes(flavor: CoinFlavor, shared: bool) -> Vec<AbaScBatch> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let crypto = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        crypto
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let p = Params::new(4, i, 11);
                if shared {
                    AbaScBatch::new_parallel(p, flavor, c.coin_pub, c.coin_sec)
                } else {
                    AbaScBatch::new_serial(p, flavor, c.coin_pub, c.coin_sec)
                }
            })
            .collect()
    }

    /// Synchronous mesh exchange until all nodes decide all instances.
    fn run_to_decision(nodes: &mut [AbaScBatch], inputs: Vec<Vec<bool>>) -> Vec<Vec<bool>> {
        let n_inst = inputs[0].len();
        let mut inbox: Vec<(usize, Body)> = Vec::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            let mut acts = Actions::new();
            for (j, v) in inputs[i].iter().enumerate() {
                node.set_input(j, *v, &mut acts);
            }
            for b in acts.drain().0 {
                inbox.push((i, b));
            }
        }
        let mut steps = 0;
        while let Some((src, body)) = inbox.pop() {
            steps += 1;
            assert!(steps < 200_000, "ABA did not converge");
            for (i, node) in nodes.iter_mut().enumerate() {
                if i == src {
                    continue;
                }
                let mut acts = Actions::new();
                node.handle(src, &body, &mut acts);
                for b in acts.drain().0 {
                    inbox.push((i, b));
                }
            }
            if nodes.iter().all(|n| (0..n_inst).all(|j| n.decided(j).is_some())) {
                break;
            }
        }
        // Timer ticks to shake loose anything pending (coin share resends).
        let mut extra = 0;
        while !nodes.iter().all(|n| (0..n_inst).all(|j| n.decided(j).is_some())) {
            extra += 1;
            assert!(extra < 200, "ABA stuck after ticks");
            let mut batch: Vec<(usize, Body)> = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                let mut acts = Actions::new();
                node.on_timer(TIMER_RETX, &mut acts);
                for b in acts.drain().0 {
                    batch.push((i, b));
                }
            }
            for (src, body) in batch {
                for i in 0..nodes.len() {
                    if i == src {
                        continue;
                    }
                    let mut acts = Actions::new();
                    nodes[i].handle(src, &body, &mut acts);
                    for b in acts.drain().0 {
                        // deliver immediately
                        for (k, nk) in nodes.iter_mut().enumerate() {
                            if k != i {
                                let mut a2 = Actions::new();
                                nk.handle(i, &b, &mut a2);
                                // second-order sends dropped; ticks repeat
                            }
                        }
                    }
                }
            }
        }
        nodes
            .iter()
            .map(|n| (0..n_inst).map(|j| n.decided(j).unwrap()).collect())
            .collect()
    }

    #[test]
    fn unanimous_one_decides_one() {
        let mut nodes = make_nodes(CoinFlavor::ThreshSig, true);
        let decisions = run_to_decision(&mut nodes, vec![vec![true]; 4]);
        for d in &decisions {
            assert!(d[0], "validity: unanimous 1 must decide 1");
        }
    }

    #[test]
    fn unanimous_zero_decides_zero() {
        let mut nodes = make_nodes(CoinFlavor::ThreshSig, true);
        let decisions = run_to_decision(&mut nodes, vec![vec![false]; 4]);
        for d in &decisions {
            assert!(!d[0]);
        }
    }

    #[test]
    fn split_inputs_agree() {
        let mut nodes = make_nodes(CoinFlavor::ThreshSig, true);
        let decisions = run_to_decision(
            &mut nodes,
            vec![vec![true], vec![false], vec![true], vec![false]],
        );
        let first = decisions[0][0];
        for d in &decisions {
            assert_eq!(d[0], first, "agreement violated: {decisions:?}");
        }
    }

    #[test]
    fn parallel_instances_all_decide_and_agree() {
        let mut nodes = make_nodes(CoinFlavor::ThreshSig, true);
        // HB pattern: everyone votes 1 for instances {0,1,2}, 0 for {3}.
        let inputs: Vec<Vec<bool>> = (0..4).map(|_| vec![true, true, true, false]).collect();
        let decisions = run_to_decision(&mut nodes, inputs);
        for d in &decisions {
            assert_eq!(d[..3], [true, true, true]);
            assert!(!d[3]);
        }
    }

    #[test]
    fn coin_flip_flavor_also_terminates() {
        let mut nodes = make_nodes(CoinFlavor::CoinFlip, true);
        let decisions = run_to_decision(
            &mut nodes,
            vec![vec![false], vec![true], vec![false], vec![true]],
        );
        let first = decisions[0][0];
        assert!(decisions.iter().all(|d| d[0] == first));
    }

    #[test]
    fn serial_mode_uses_distinct_domains() {
        let nodes = make_nodes(CoinFlavor::ThreshSig, false);
        assert_eq!(nodes[0].domain(0), 0);
        assert_eq!(nodes[0].domain(2), 2);
        let shared = make_nodes(CoinFlavor::ThreshSig, true);
        assert_eq!(shared[0].domain(2), 0);
    }

    #[test]
    fn mismatched_flavor_packets_ignored() {
        let mut nodes = make_nodes(CoinFlavor::ThreshSig, true);
        let mut acts = Actions::new();
        nodes[0].set_input(0, true, &mut acts);
        let pkt = Body::AbaSc {
            flavor: CoinFlavor::CoinFlip,
            insts: vec![AbaScInst {
                instance: 0,
                round: 0,
                bval: BinValues { zero: true, one: false },
                aux: Vote::Unknown,
                decided: Vote::Unknown,
            }],
            coin_shares: vec![],
            share_nack: Bitmap::new(4),
        };
        let mut acts = Actions::new();
        nodes[0].handle(1, &pkt, &mut acts);
        assert_eq!(nodes[0].insts[0].seen[0].bval0, 0, "wrong-flavor votes must not count");
    }

    #[test]
    fn decided_claims_adoption_needs_f_plus_1() {
        let mut nodes = make_nodes(CoinFlavor::ThreshSig, true);
        let mut acts = Actions::new();
        nodes[0].set_input(0, true, &mut acts);
        // One Byzantine claim alone must not cause adoption (f=1 → need 2).
        let claim = |src: usize, nodes: &mut Vec<AbaScBatch>| {
            let pkt = Body::AbaSc {
                flavor: CoinFlavor::ThreshSig,
                insts: vec![AbaScInst {
                    instance: 0,
                    round: 0,
                    bval: BinValues::empty(),
                    aux: Vote::Unknown,
                    decided: Vote::Zero,
                }],
                coin_shares: vec![],
                share_nack: Bitmap::new(4),
            };
            let mut acts = Actions::new();
            nodes[0].handle(src, &pkt, &mut acts);
        };
        claim(1, &mut nodes);
        assert_eq!(nodes[0].decided(0), None, "single claim must not be adopted");
        claim(2, &mut nodes);
        assert_eq!(nodes[0].decided(0), Some(false), "f+1 claims adopt");
    }
}
