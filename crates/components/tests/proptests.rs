//! Property-based tests on component invariants: RBC agreement/totality and
//! ABA agreement/validity under randomized delivery orders and message
//! drops (the adversary's schedule).

use bytes::Bytes;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wbft_components::aba_sc::AbaScBatch;
use wbft_components::rbc::RbcBatch;
use wbft_components::{deal_node_crypto, Actions, BinaryAgreement, Broadcaster, Params};
use wbft_crypto::CryptoSuite;
use wbft_net::{Body, CoinFlavor};

/// Drives nodes with a randomized delivery schedule: the pending-message
/// pool is shuffled each step and a fraction of messages is dropped. Timers
/// tick when the pool drains, modelling retransmission after loss.
fn chaos_mesh<C>(
    nodes: &mut [C],
    seed: u64,
    drop_percent: u8,
    mut handle: impl FnMut(&mut C, usize, &Body, &mut Actions),
    mut tick: impl FnMut(&mut C, &mut Actions),
    mut done: impl FnMut(&C) -> bool,
    initial: Vec<(usize, Body)>,
) -> bool {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    let mut pool = initial;
    let mut rounds = 0;
    loop {
        rounds += 1;
        if rounds > 600 {
            return false;
        }
        if pool.is_empty() {
            // Quiescent: fire every node's retransmission tick.
            for (i, node) in nodes.iter_mut().enumerate() {
                let mut acts = Actions::new();
                tick(node, &mut acts);
                for b in acts.drain().0 {
                    pool.push((i, b));
                }
            }
            if pool.is_empty() {
                return nodes.iter().all(&mut done);
            }
        }
        pool.shuffle(&mut rng);
        let (src, body) = pool.pop().expect("non-empty");
        use rand::Rng as _;
        if rng.random_range(0..100) < i32::from(drop_percent) {
            continue; // adversary drops the broadcast entirely
        }
        for (i, node) in nodes.iter_mut().enumerate() {
            if i == src {
                continue;
            }
            let mut acts = Actions::new();
            handle(node, src, &body, &mut acts);
            for b in acts.drain().0 {
                pool.push((i, b));
            }
        }
        if nodes.iter().all(&mut done) {
            return true;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rbc_agreement_and_totality_under_chaos(
        seed in any::<u64>(),
        drop in 0u8..30,
        sizes in proptest::collection::vec(1usize..400, 4),
    ) {
        let mut nodes: Vec<RbcBatch> =
            (0..4).map(|i| RbcBatch::new(Params::new(4, i, 1))).collect();
        let values: Vec<Bytes> =
            sizes.iter().enumerate().map(|(i, s)| Bytes::from(vec![i as u8 + 1; *s])).collect();
        let mut initial = Vec::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            let mut acts = Actions::new();
            node.start(values[i].clone(), &mut acts);
            for b in acts.drain().0 {
                initial.push((i, b));
            }
        }
        let ok = chaos_mesh(
            &mut nodes,
            seed,
            drop,
            |n, from, body, acts| n.handle(from, body, acts),
            |n, acts| n.on_timer(0, acts),
            |n| n.delivered_count() == 4,
            initial,
        );
        prop_assert!(ok, "RBC did not complete under chaos");
        for node in &nodes {
            for (j, v) in values.iter().enumerate() {
                prop_assert_eq!(node.delivered(j), Some(v), "totality/agreement violated");
            }
        }
    }

    #[test]
    fn aba_agreement_and_validity_under_chaos(
        seed in any::<u64>(),
        drop in 0u8..25,
        inputs in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabba);
        let crypto = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        let mut nodes: Vec<AbaScBatch> = crypto
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                AbaScBatch::new_parallel(
                    Params::new(4, i, 2),
                    CoinFlavor::ThreshSig,
                    c.coin_pub,
                    c.coin_sec,
                )
            })
            .collect();
        let mut initial = Vec::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            let mut acts = Actions::new();
            node.set_input(0, inputs[i], &mut acts);
            for b in acts.drain().0 {
                initial.push((i, b));
            }
        }
        let ok = chaos_mesh(
            &mut nodes,
            seed,
            drop,
            |n, from, body, acts| n.handle(from, body, acts),
            |n, acts| n.on_timer(0, acts),
            |n| n.decided(0).is_some(),
            initial,
        );
        prop_assert!(ok, "ABA did not terminate under chaos");
        // Agreement: all nodes decide the same value.
        let first = nodes[0].decided(0).expect("decided");
        for node in &nodes {
            prop_assert_eq!(node.decided(0), Some(first));
        }
        // Validity: unanimous inputs force that output.
        if inputs.iter().all(|v| *v) {
            prop_assert!(first, "validity: unanimous 1 must decide 1");
        }
        if inputs.iter().all(|v| !*v) {
            prop_assert!(!first, "validity: unanimous 0 must decide 0");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A share buffer that rolls to a new key epoch must evict everything
    /// it held and refuse every stale-tagged share afterwards — stale
    /// shares are rejected at the door, never handed to the combiner.
    #[test]
    fn share_buf_rejects_and_evicts_stale_key_epochs(
        seed in any::<u64>(),
        buffered in 1usize..4,
        old_epoch in 0u64..3,
        bump in 1u64..4,
    ) {
        use wbft_components::share_buf::SigShareBuf;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (pks, sks) =
            wbft_crypto::thresh_sig::deal(4, 1, wbft_crypto::ThresholdCurve::Bn158, &mut rng);
        let msg = b"key-epoch-boundary";

        let mut buf = SigShareBuf::default();
        buf.roll_key_epoch(old_epoch);
        for sk in &sks[..buffered] {
            prop_assert!(buf.insert_tagged(sk.sign_share(msg), 4, old_epoch));
        }
        prop_assert_eq!(buf.shares().len(), buffered);
        // Mis-tagged shares never buffer, in either direction.
        prop_assert!(!buf.insert_tagged(sks[3].sign_share(msg), 4, old_epoch + bump));
        prop_assert_eq!(buf.shares().len(), buffered);

        // The roll evicts every share of the superseded epoch and frees
        // the reporter slots.
        let new_epoch = old_epoch + bump;
        buf.roll_key_epoch(new_epoch);
        prop_assert_eq!(buf.key_epoch(), new_epoch);
        prop_assert_eq!(buf.shares().len(), 0);
        prop_assert_eq!(buf.reporters(), 0);
        // Old-epoch tags are now stale and rejected; current-epoch shares
        // settle a quorum as usual.
        prop_assert!(!buf.insert_tagged(sks[0].sign_share(msg), 4, old_epoch));
        for sk in &sks[..2] {
            prop_assert!(buf.insert_tagged(sk.sign_share(msg), 4, new_epoch));
        }
        prop_assert!(buf.settle(&pks, msg, 2));
        let sig = pks.combine(buf.shares()).unwrap();
        pks.verify(msg, &sig).unwrap();
        // Rolling to the same epoch is a no-op.
        buf.roll_key_epoch(new_epoch);
        prop_assert_eq!(buf.shares().len(), 2);
    }
}
