//! Inline allow pragmas.
//!
//! A finding can be suppressed at its site with a justified pragma comment:
//!
//! ```text
//! // wbft-lint: allow(wire-safety) — defining constant for the reserved channel
//! pub const CONTROL_CHANNEL: u8 = 0xff;
//! ```
//!
//! or trailing on the offending line itself:
//!
//! ```text
//! Bitmap { bits: 0, len: len as u8 } // wbft-lint: allow(wire-safety) — asserted <= 64 above
//! ```
//!
//! Rules: the justification after the dash is **required** (a bare
//! `allow(rule)` is itself a `bad-pragma` finding), the rule name must be
//! one the analyzer knows, and a pragma that suppresses nothing is an
//! `unused-allow` finding — stale exemptions don't accumulate.

use crate::lexer::{Token, TokenKind};

/// One parsed `// wbft-lint:` comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pragma {
    /// Line the comment sits on.
    pub line: u32,
    /// Line whose findings it suppresses (same line if trailing, else the
    /// next line holding a significant token).
    pub target_line: u32,
    /// Rule names inside `allow(…)`, comma-separated.
    pub rules: Vec<String>,
    /// The justification text after the dash.
    pub justification: String,
}

/// A malformed `wbft-lint:` comment and why it was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PragmaError {
    /// Line the comment sits on.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Extracts pragmas (and errors) from a lexed file.
pub fn find_pragmas(tokens: &[Token<'_>]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for (idx, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let Some(rest) = comment_body(tok.text) else { continue };
        match parse_body(rest) {
            Ok((rules, justification)) => {
                let trailing = tokens[..idx]
                    .iter()
                    .any(|t| t.line == tok.line && t.is_significant());
                let target_line = if trailing {
                    tok.line
                } else {
                    tokens[idx + 1..]
                        .iter()
                        .find(|t| t.is_significant())
                        .map_or(tok.line + 1, |t| t.line)
                };
                pragmas.push(Pragma { line: tok.line, target_line, rules, justification });
            }
            Err(message) => errors.push(PragmaError { line: tok.line, message }),
        }
    }
    (pragmas, errors)
}

/// Strips `//`+ and whitespace, returning the text after a `wbft-lint:`
/// marker, or `None` for ordinary comments.
fn comment_body(text: &str) -> Option<&str> {
    let body = text.trim_start_matches('/').trim_start();
    body.strip_prefix("wbft-lint:").map(str::trim_start)
}

/// Parses `allow(rule[, rule…]) — justification`. The dash may be an em
/// dash, en dash, `--`, or `-`.
fn parse_body(body: &str) -> Result<(Vec<String>, String), String> {
    let Some(after_allow) = body.strip_prefix("allow") else {
        return Err(format!("expected `allow(<rule>) — <justification>`, got `{body}`"));
    };
    let after_allow = after_allow.trim_start();
    let Some(inner_start) = after_allow.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = inner_start.find(')') else {
        return Err("unclosed `allow(`".to_string());
    };
    let (inner, tail) = inner_start.split_at(close);
    let rules: Vec<String> = inner
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list in `allow()`".to_string());
    }
    for r in &rules {
        if crate::rules::Rule::from_name(r).is_none() {
            return Err(format!("unknown rule `{r}`"));
        }
    }
    let tail = tail.trim_start_matches(')').trim_start();
    let justification = ["—", "–", "--", "-"]
        .iter()
        .find_map(|d| tail.strip_prefix(d))
        .map(str::trim)
        .unwrap_or("");
    if justification.is_empty() {
        return Err("bare allow: a justification after `—` is required".to_string());
    }
    Ok((rules, justification.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragmas_of(src: &str) -> (Vec<Pragma>, Vec<PragmaError>) {
        find_pragmas(&lex(src))
    }

    #[test]
    fn own_line_targets_next_code_line() {
        let (p, e) = pragmas_of(
            "// wbft-lint: allow(totality) — index bounded by construction\n\nlet x = v[0];\n",
        );
        assert!(e.is_empty());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].line, 1);
        assert_eq!(p[0].target_line, 3, "skips the blank line");
        assert_eq!(p[0].rules, ["totality"]);
        assert_eq!(p[0].justification, "index bounded by construction");
    }

    #[test]
    fn trailing_targets_own_line() {
        let (p, e) = pragmas_of("let x = m.get(k); // wbft-lint: allow(ordered-state) -- never iterated\n");
        assert!(e.is_empty());
        assert_eq!(p[0].target_line, 1);
    }

    #[test]
    fn bare_allow_rejected() {
        let (p, e) = pragmas_of("// wbft-lint: allow(totality)\nlet x = v[0];\n");
        assert!(p.is_empty());
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("justification"));
    }

    #[test]
    fn empty_justification_rejected() {
        let (p, e) = pragmas_of("// wbft-lint: allow(totality) —   \nfoo();\n");
        assert!(p.is_empty());
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn unknown_rule_rejected() {
        let (p, e) = pragmas_of("// wbft-lint: allow(no-such-rule) — because\nfoo();\n");
        assert!(p.is_empty());
        assert!(e[0].message.contains("unknown rule"));
    }

    #[test]
    fn multiple_rules() {
        let (p, e) = pragmas_of("// wbft-lint: allow(totality, wire-safety) — both fine here\nfoo();\n");
        assert!(e.is_empty());
        assert_eq!(p[0].rules, ["totality", "wire-safety"]);
    }

    #[test]
    fn marker_in_string_is_not_a_pragma() {
        let (p, e) = pragmas_of("let s = \"// wbft-lint: allow(totality)\";\n");
        assert!(p.is_empty() && e.is_empty());
    }

    #[test]
    fn ordinary_comments_ignored() {
        let (p, e) = pragmas_of("// just a comment about HashMap\nfoo();\n");
        assert!(p.is_empty() && e.is_empty());
    }
}
