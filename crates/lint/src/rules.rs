//! The rule registry: names, one-line summaries, and the long-form
//! explanations behind `--explain <rule>`.

/// Every rule the analyzer can report.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Rule {
    /// D1: wall clock, ambient randomness, env mutation in deterministic crates.
    Determinism,
    /// D2: `HashMap`/`HashSet` in deterministic crates.
    OrderedState,
    /// T1: panicking calls / direct indexing on protocol and codec paths.
    Totality,
    /// W1: narrowing casts and raw reserved-channel literals in codec code.
    WireSafety,
    /// W0: crate roots must carry `#![forbid(unsafe_code)]`.
    UnsafeCode,
    /// A malformed `wbft-lint:` comment.
    BadPragma,
    /// An allow pragma that suppressed nothing.
    UnusedAllow,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 7] = [
        Rule::Determinism,
        Rule::OrderedState,
        Rule::Totality,
        Rule::WireSafety,
        Rule::UnsafeCode,
        Rule::BadPragma,
        Rule::UnusedAllow,
    ];

    /// The stable name used in pragmas, reports, and the baseline.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::OrderedState => "ordered-state",
            Rule::Totality => "totality",
            Rule::WireSafety => "wire-safety",
            Rule::UnsafeCode => "unsafe-code",
            Rule::BadPragma => "bad-pragma",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// Parses a rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line summary for the report header.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::Determinism => "no wall clock, ambient randomness, or env mutation in deterministic crates",
            Rule::OrderedState => "no HashMap/HashSet in deterministic crates (use BTreeMap/BTreeSet)",
            Rule::Totality => "no unwrap/expect/panic!/unreachable! on protocol paths; no direct indexing in codecs",
            Rule::WireSafety => "no narrowing `as` casts or raw reserved-channel literals in codec code",
            Rule::UnsafeCode => "every workspace crate root carries #![forbid(unsafe_code)]",
            Rule::BadPragma => "wbft-lint pragmas must parse and carry a justification",
            Rule::UnusedAllow => "allow pragmas must suppress at least one finding",
        }
    }

    /// Long-form rationale for `--explain`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::Determinism => "\
D1 · determinism
================
Denied in the deterministic crates (crypto, net, wireless, components,
core, journal, report), outside test code:

  Instant::now        wall-clock time
  SystemTime          wall-clock time
  thread_rng          ambient OS randomness
  rand::random        ambient OS randomness
  set_var/remove_var  process-environment mutation (racy across threads)

Everything the reproduction claims — byte-identical parallel sweeps,
replayable fuzz fixtures, deterministic crash/restart recovery — holds only
if simulation behavior is a pure function of config + seed. PR 4 removed a
real set_var race from the sweep tests; this rule keeps it out.

Clocks in these crates must be SimTime, randomness must flow from a seeded
ChaCha RNG, and environment reads (std::env::var) stay legal — only
mutation is denied. The transport and bench crates are exempt: they
genuinely need the OS clock.",
            Rule::OrderedState => "\
D2 · ordered-state
==================
Denied in the deterministic crates, outside test code: HashMap and HashSet.

std's hash maps randomize iteration order per process by design. Any such
order that reaches a message, a report, or a digest breaks byte-identity
between runs — and the leak is invisible at the use site (an innocent
`for (k, v) in map` three calls away from the wire). In a deterministic
crate the safe default is an ordered container: BTreeMap/BTreeSet.

A use that provably never iterates (pure key-lookup memo caches) may carry
a justified allow:
  // wbft-lint: allow(ordered-state) — lookup-only memo, never iterated",
            Rule::Totality => "\
T1 · totality
=============
Denied on protocol paths (components, net, journal, transport, and the
core engines/driver/service/recovery), outside test code:

  .unwrap()  .expect(…)  panic!  unreachable!  todo!  unimplemented!

Additionally, on the wire/sync codec paths that parse adversary-controlled
bytes (net, journal, transport codecs, core/recovery.rs):

  direct slice indexing  v[i]  /  v[a..b]

A panic on a protocol path aborts the node mid-epoch — PRs 4–8 each
converted panicking paths to typed errors after the fact (sink truncation
asserts, two service.rs paths, …). Decode paths must use WireReader-style
checked accessors (take/get) so truncated or hostile input yields
WireError, never an abort. assert!/debug_assert! remain legal: an assert
states an invariant loudly; an unwrap hides one.

Indexing over locally-constructed state in the protocol crates (e.g.
per-instance Vecs indexed by a bounded instance id) is deliberately out of
scope — the denial targets code that touches bytes from the network.",
            Rule::WireSafety => "\
W1 · wire-safety
================
Denied in codec/transport code (net, transport, journal, core/recovery.rs),
outside test code:

  narrowing casts      expr as u8/u16/u32/i8/i16/i32
  reserved literals    255/0xff, 254/0xfe, 253/0xfd

`len() as u8` silently truncates at 256 — PR 4 replaced exactly such a bug
with the checked Sink::count8 helper. Narrowing must go through
u8::from(bool), u16::try_from(len) + a typed error, or a checked sink
helper (count8, checked_bytes_len, checked_bitmap_len).

The reserved radio channels (CONTROL_CHANNEL 0xff, CLIENT_CHANNEL 0xfe,
SYNC_CHANNEL 0xfd) must be referenced by name; a raw byte literal that
happens to equal a reserved channel is either a magic number or a bug.
The defining constants themselves carry a justified allow.",
            Rule::UnsafeCode => "\
W0 · unsafe-code
================
Every workspace crate root (crates/*/src/lib.rs, shims/*/src/lib.rs, the
facade src/lib.rs, and any src/main.rs) must carry #![forbid(unsafe_code)].

The workspace contains no unsafe today; forbid makes that a compiler
guarantee that cannot be overridden downstream in the crate. A crate that
one day genuinely needs unsafe may use #![deny(unsafe_code)] plus a
justified `// wbft-lint: allow(unsafe-code) — …` pragma at the crate root.",
            Rule::BadPragma => "\
bad-pragma
==========
A `// wbft-lint:` comment that does not parse as
  allow(<rule>[, <rule>…]) — <justification>
with a known rule name and a non-empty justification. Bare allows are
rejected on purpose: every exemption must say why it is safe.",
            Rule::UnusedAllow => "\
unused-allow
============
An allow pragma whose target line produced no finding of the allowed rule.
Stale exemptions are removed rather than accumulated — an allow that
suppresses nothing is either left over after a fix (delete it) or aimed at
the wrong line (move it).",
        }
    }
}

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// What matched — a stable token key (`"unwrap"`, `"HashMap"`,
    /// `"as u8"`, `"0xfe"`, `"Instant::now"`, `"indexing"`, …). Baseline
    /// ratcheting keys on (rule, path, what), so `what` must not contain
    /// line-dependent text.
    pub what: String,
}

impl Finding {
    /// The ratchet key this finding counts under.
    pub fn key(&self) -> (Rule, &str, &str) {
        (self.rule, &self.path, &self.what)
    }
}

impl core::fmt::Display for Finding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule.name(), self.what)
    }
}
