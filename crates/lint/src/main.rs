#![forbid(unsafe_code)]
//! `cargo run -p wbft-lint` — the workspace static analyzer.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(wbft_lint::cli_main(&args));
}
