#![forbid(unsafe_code)]
//! `wbft-lint` — a workspace static analyzer for the invariants everything
//! else here rests on.
//!
//! Byte-identical parallel sweeps, replayable fuzz fixtures, and
//! deterministic crash/restart recovery are only as real as the code
//! properties they assume: no wall clocks or ambient randomness in the
//! deterministic crates, no unordered-map iteration reaching protocol
//! behavior, no panicking or silently-truncating paths in wire code. PRs
//! 4–8 each fixed latent violations of those rules by hand; this crate
//! machine-checks them.
//!
//! The analyzer is hand-rolled over a lossless Rust token lexer (the build
//! environment has no registry access, consistent with the hand-rolled JSON
//! codec in `wbft-report`): no type information, just careful token
//! patterns scoped by a file classifier. See [`rules::Rule::explain`] for
//! each rule's rationale, [`pragma`] for the justified-allow escape hatch,
//! and [`baseline`] for the one-way ratchet.
//!
//! Run it with `cargo run -p wbft-lint` (or `--example lint` from the
//! facade). Exit status 1 means findings not covered by
//! `lint-baseline.json`.

pub mod baseline;
pub mod classify;
pub mod lexer;
pub mod passes;
pub mod pragma;
pub mod rules;

mod cli;
pub use cli::{cli_main, CliOptions};

use classify::FileInfo;
use rules::Finding;
use std::path::{Path, PathBuf};

/// Everything one workspace scan produced.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by path, then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed and scanned.
    pub files_scanned: usize,
}

/// A scan-level failure (IO, not a finding).
#[derive(Debug)]
pub struct LintError(pub String);

impl core::fmt::Display for LintError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for LintError {}

/// Directories scanned from the workspace root.
const SCAN_ROOTS: [&str; 5] = ["crates", "shims", "src", "tests", "examples"];

/// Walks the workspace and runs every pass. `root` is the workspace root
/// (the directory holding the root `Cargo.toml`).
pub fn run_workspace(root: &Path) -> Result<LintReport, LintError> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), root, &mut files)?;
    }
    files.sort();

    let mut report = LintReport::default();
    for rel in &files {
        let info = FileInfo::classify(rel);
        let is_crate_root = is_crate_root(rel);
        if !info.any_rule_applies() && !is_crate_root && !may_hold_pragmas(&info) {
            continue;
        }
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| LintError(format!("{rel}: {e}")))?;
        report.files_scanned += 1;
        report.findings.extend(passes::check_file(&info, &src));
        if is_crate_root {
            report.findings.extend(passes::check_crate_root(rel, &src));
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// Whether a file is a crate root the W0 pass must inspect.
fn is_crate_root(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    matches!(
        parts.as_slice(),
        ["crates", _, "src", "lib.rs" | "main.rs"]
            | ["shims", _, "src", "lib.rs"]
            | ["src", "lib.rs"]
    )
}

/// Files outside every rule scope still get pragma syntax checking (a
/// malformed pragma anywhere is a lie waiting to move into scope), but only
/// where pragmas are plausible — production and test trees, not shims.
fn may_hold_pragmas(info: &FileInfo) -> bool {
    use classify::Zone;
    matches!(info.zone, Zone::CrateSrc | Zone::Tests | Zone::Facade)
}

/// Recursively collects workspace-relative `.rs` paths under `dir`,
/// skipping `target/` build output and the lint fixture corpus (whose
/// files are deliberate rule violations).
fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(()), // absent scan root (e.g. no shims/) is fine
    };
    for entry in entries {
        let entry = entry.map_err(|e| LintError(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || path.ends_with("tests/fixtures/lint") {
                continue;
            }
            collect_rs_files(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| LintError(format!("{} escapes root", path.display())))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_roots_recognized() {
        assert!(is_crate_root("crates/net/src/lib.rs"));
        assert!(is_crate_root("crates/lint/src/main.rs"));
        assert!(is_crate_root("shims/rand/src/lib.rs"));
        assert!(is_crate_root("src/lib.rs"));
        assert!(!is_crate_root("crates/net/src/wire.rs"));
        assert!(!is_crate_root("tests/agreement.rs"));
    }

    #[test]
    fn workspace_scan_runs_on_this_repo() {
        // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = run_workspace(&root).expect("scan succeeds");
        assert!(report.files_scanned > 50, "scanned {} files", report.files_scanned);
    }
}
