//! The analysis passes: token-pattern matching per file, pragma
//! suppression, and the crate-root unsafe check.

use crate::classify::{in_ranges, in_scopes, test_scopes, FileInfo};
use crate::lexer::{int_literal_value, lex, Token, TokenKind};
use crate::pragma::{find_pragmas, Pragma};
use crate::rules::{Finding, Rule};

/// Rust keywords that can directly precede a `[` without it being an index
/// expression (`let [a, b] = …`, `if let [x] = …`, `in [1, 2]`, …).
const KEYWORDS_BEFORE_BRACKET: [&str; 14] = [
    "let", "in", "if", "while", "match", "return", "mut", "ref", "as", "move", "static", "const",
    "else", "box",
];

/// Reserved radio-channel byte values (CONTROL/CLIENT/SYNC/MEMBERSHIP).
const RESERVED_CHANNEL_BYTES: [u128; 4] = [0xff, 0xfe, 0xfd, 0xfc];

/// Narrowing cast targets W1 denies.
const NARROWING_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Runs every applicable pass over one file's source, returning findings
/// with pragma suppression already applied (plus `bad-pragma` /
/// `unused-allow` findings for the pragma system itself).
pub fn check_file(info: &FileInfo, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let sig: Vec<&Token<'_>> = tokens.iter().filter(|t| t.is_significant()).collect();
    // Test exemption is token-scoped: a `#[cfg(test)]` scope ends at the
    // item's real closing brace, so production code sharing a line with a
    // test region is still linted. Pragmas live in comments (no
    // significant-token index), so they get the line-granular projection.
    let scopes = test_scopes(&sig);
    let test_ranges: Vec<(u32, u32)> = scopes
        .iter()
        .map(|&(a, b)| (sig[a].line, sig.get(b).map_or(sig[a].line, |t| t.line)))
        .collect();
    let (pragmas, pragma_errors) = find_pragmas(&tokens);

    let mut raw = Vec::new();
    scan_tokens(info, &sig, &scopes, &mut raw);

    let mut used = vec![false; pragmas.len()];
    raw.retain(|f| {
        let suppressed = pragmas.iter().enumerate().any(|(i, p)| {
            let hit = p.target_line == f.line && p.rules.iter().any(|r| r == f.rule.name());
            if hit {
                used[i] = true;
            }
            hit
        });
        !suppressed
    });

    let mut findings = raw;
    for e in pragma_errors {
        // Pragma syntax is enforced everywhere, test code included — a
        // malformed pragma in a test is still a lie waiting to move.
        findings.push(Finding {
            rule: Rule::BadPragma,
            path: info.rel_path.clone(),
            line: e.line,
            what: e.message,
        });
    }
    for (i, p) in pragmas.iter().enumerate() {
        // An allow in a test region suppresses nothing by construction;
        // only hold production pragmas to the must-be-used standard.
        if !used[i] && !in_ranges(&test_ranges, p.line) {
            findings.push(Finding {
                rule: Rule::UnusedAllow,
                path: info.rel_path.clone(),
                line: p.line,
                what: format!("allow({}) suppressed nothing", p.rules.join(", ")),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule, &a.what).cmp(&(b.line, b.rule, &b.what)));
    findings
}

/// The token-level pattern matching for D1/D2/T1/W1. Tokens inside a
/// `#[cfg(test)]` scope (indices in `scopes`) are exempt.
fn scan_tokens(
    info: &FileInfo,
    sig: &[&Token<'_>],
    scopes: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    let push = |out: &mut Vec<Finding>, rule: Rule, line: u32, what: &str| {
        out.push(Finding { rule, path: info.rel_path.clone(), line, what: what.to_string() });
    };
    // `::` lexes as two ':' puncts.
    let path_sep = |i: usize| {
        sig.get(i).and_then(|t| t.punct()) == Some(':')
            && sig.get(i + 1).and_then(|t| t.punct()) == Some(':')
    };

    for i in 0..sig.len() {
        if in_scopes(scopes, i) {
            continue;
        }
        let tok = sig[i];
        let prev = i.checked_sub(1).map(|j| sig[j]);
        let next = sig.get(i + 1).copied();

        if info.d1_applies() && tok.kind == TokenKind::Ident {
            match tok.text {
                "SystemTime" => push(out, Rule::Determinism, tok.line, "SystemTime"),
                "thread_rng" => push(out, Rule::Determinism, tok.line, "thread_rng"),
                "set_var" => push(out, Rule::Determinism, tok.line, "set_var"),
                "remove_var" => push(out, Rule::Determinism, tok.line, "remove_var"),
                "Instant"
                    if path_sep(i + 1)
                        && sig.get(i + 3).is_some_and(|t| t.text == "now") =>
                {
                    push(out, Rule::Determinism, tok.line, "Instant::now");
                }
                "random"
                    if i >= 3
                        && path_sep(i - 2)
                        && sig[i - 3].text == "rand" =>
                {
                    push(out, Rule::Determinism, tok.line, "rand::random");
                }
                _ => {}
            }
        }

        if info.d2_applies()
            && tok.kind == TokenKind::Ident
            && matches!(tok.text, "HashMap" | "HashSet")
        {
            push(out, Rule::OrderedState, tok.line, tok.text);
        }

        if info.t1_panic_applies() && tok.kind == TokenKind::Ident {
            let method_call = prev.and_then(|t| t.punct()) == Some('.')
                && next.and_then(|t| t.punct()) == Some('(');
            let macro_call = next.and_then(|t| t.punct()) == Some('!');
            match tok.text {
                "unwrap" | "expect" if method_call => {
                    push(out, Rule::Totality, tok.line, tok.text);
                }
                "panic" | "unreachable" | "todo" | "unimplemented" if macro_call => {
                    push(out, Rule::Totality, tok.line, tok.text);
                }
                _ => {}
            }
        }

        if info.t1_index_applies() && tok.punct() == Some('[') {
            let indexes = match prev {
                Some(p) if p.kind == TokenKind::Ident => {
                    !KEYWORDS_BEFORE_BRACKET.contains(&p.text)
                }
                Some(p) => matches!(p.punct(), Some(']') | Some(')') | Some('?')),
                None => false,
            };
            if indexes {
                push(out, Rule::Totality, tok.line, "indexing");
            }
        }

        if info.w1_applies() {
            if tok.kind == TokenKind::Ident && tok.text == "as" {
                if let Some(n) = next {
                    if n.kind == TokenKind::Ident && NARROWING_TARGETS.contains(&n.text) {
                        push(out, Rule::WireSafety, tok.line, &format!("as {}", n.text));
                    }
                }
            }
            if tok.kind == TokenKind::Number {
                if let Some(v) = int_literal_value(tok.text) {
                    if RESERVED_CHANNEL_BYTES.contains(&v) {
                        push(
                            out,
                            Rule::WireSafety,
                            tok.line,
                            &format!("reserved channel byte {v:#04x}"),
                        );
                    }
                }
            }
        }
    }
}

/// W0: checks one crate-root file for `#![forbid(unsafe_code)]`.
///
/// `#![deny(unsafe_code)]` also satisfies the pass, but only together with a
/// justified `allow(unsafe-code)` pragma in the same file (the escape hatch
/// for a crate that genuinely needs unsafe someday).
pub fn check_crate_root(rel_path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let sig: Vec<&Token<'_>> = tokens.iter().filter(|t| t.is_significant()).collect();
    let mut mode: Option<&str> = None;
    for w in sig.windows(7) {
        if w[0].punct() == Some('#')
            && w[1].punct() == Some('!')
            && w[2].punct() == Some('[')
            && w[3].kind == TokenKind::Ident
            && matches!(w[3].text, "forbid" | "deny")
            && w[4].punct() == Some('(')
            && w[5].text == "unsafe_code"
            && w[6].punct() == Some(')')
        {
            mode = Some(w[3].text);
            break;
        }
    }
    let (pragmas, _) = find_pragmas(&tokens);
    let has_allow = pragmas.iter().any(|p: &Pragma| p.rules.iter().any(|r| r == "unsafe-code"));
    let missing = match mode {
        Some("forbid") => None,
        Some("deny") if has_allow => None,
        Some("deny") => Some("#![deny(unsafe_code)] without a justified allow(unsafe-code) pragma"),
        _ => Some("missing #![forbid(unsafe_code)]"),
        // (deny+pragma documents *why* the weaker level is needed)
    };
    match missing {
        Some(what) => vec![Finding {
            rule: Rule::UnsafeCode,
            path: rel_path.to_string(),
            line: 1,
            what: what.to_string(),
        }],
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<(Rule, u32, String)> {
        let info = FileInfo::classify(path);
        check_file(&info, src).into_iter().map(|f| (f.rule, f.line, f.what)).collect()
    }

    #[test]
    fn d1_catches_clock_and_rng() {
        let src = "fn f() {\n    let t = Instant::now();\n    let r = thread_rng();\n    let s = SystemTime::now();\n    std::env::set_var(\"A\", \"1\");\n}\n";
        let got = check("crates/core/src/sweep.rs", src);
        let names: Vec<&str> = got.iter().map(|(_, _, w)| w.as_str()).collect();
        assert_eq!(names, ["Instant::now", "thread_rng", "SystemTime", "set_var"]);
    }

    #[test]
    fn d1_allows_env_reads_and_transport_clock() {
        let src = "fn f() { let v = std::env::var(\"X\"); }\n";
        assert!(check("crates/core/src/sweep.rs", src).is_empty());
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(check("crates/transport/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn d2_flags_hash_containers_outside_tests() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u8, u8>) {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let got = check("crates/crypto/src/group.rs", src);
        assert_eq!(got.len(), 2, "both production mentions, not the test one: {got:?}");
        assert!(got.iter().all(|(r, _, _)| *r == Rule::OrderedState));
    }

    #[test]
    fn t1_panic_family() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let a = x.unwrap();\n    let b = x.expect(\"set\");\n    if a == 0 { panic!(\"no\"); }\n    match b { 0 => unreachable!(), _ => b }\n}\n";
        let got = check("crates/components/src/cbc.rs", src);
        let names: Vec<&str> = got.iter().map(|(_, _, w)| w.as_str()).collect();
        assert_eq!(names, ["unwrap", "expect", "panic", "unreachable"]);
    }

    #[test]
    fn t1_ignores_unwrap_or_and_asserts() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    assert!(x.is_some());\n    x.unwrap_or(0)\n}\n";
        assert!(check("crates/components/src/cbc.rs", src).is_empty());
    }

    #[test]
    fn t1_indexing_only_on_codec_paths() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        assert_eq!(check("crates/net/src/wire.rs", src).len(), 1);
        assert!(check("crates/components/src/cbc.rs", src).is_empty());
    }

    #[test]
    fn t1_indexing_shapes() {
        let src = "fn f(v: Vec<Vec<u8>>, w: &[u8]) {\n    let a = v[0][1];\n    let b = f2()[2];\n    let c = w.get(0)?[3];\n    let [x, y] = [w[0], 1];\n    let t: [u8; 2] = [0, 0];\n    let s = &w[1..3];\n}\n";
        let got = check("crates/net/src/wire.rs", src);
        // v[0], [1], f2()[2], ?[3], w[0], w[1..3] — six index sites; the
        // slice pattern and array literal/type are not flagged.
        assert_eq!(got.len(), 6, "{got:?}");
    }

    #[test]
    fn w1_narrowing_and_channel_bytes() {
        let src = "fn f(n: usize, b: bool) {\n    let a = n as u8;\n    let c = n as u16;\n    let d = n as u64;\n    let e = n as usize;\n    let ch = 255;\n    let cl = 0xfe;\n    let sy = 0xFD_u8;\n    let ok = 0x20;\n}\n";
        let got = check("crates/transport/src/client.rs", src);
        let names: Vec<&str> = got.iter().map(|(_, _, w)| w.as_str()).collect();
        assert_eq!(
            names,
            [
                "as u8",
                "as u16",
                "reserved channel byte 0xff",
                "reserved channel byte 0xfe",
                "reserved channel byte 0xfd"
            ]
        );
    }

    #[test]
    fn test_exemption_is_token_scoped_not_line_scoped() {
        // Production code sharing a line with the test region's closing
        // brace must still be linted; the test-side unwrap stays exempt.
        let src = "#[cfg(test)]\nmod tests { fn t(x: Option<u8>) { x.unwrap(); } } fn prod(y: Option<u8>) -> u8 { y.unwrap() }\n";
        let got = check("crates/components/src/cbc.rs", src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0], (Rule::Totality, 2, "unwrap".to_string()));
    }

    #[test]
    fn pragma_suppresses_and_unused_is_flagged() {
        let src = "// wbft-lint: allow(ordered-state) — lookup-only memo, never iterated\nuse std::collections::HashMap;\n// wbft-lint: allow(totality) — nothing here\nfn f() {}\n";
        let got = check("crates/crypto/src/group.rs", src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, Rule::UnusedAllow);
        assert_eq!(got[0].1, 3);
    }

    #[test]
    fn trailing_pragma_suppresses_same_line() {
        let src = "fn f(n: usize) -> u8 { n as u8 } // wbft-lint: allow(wire-safety) — caller asserts n <= 64\n";
        assert!(check("crates/net/src/bitmap.rs", src).is_empty());
    }

    #[test]
    fn bad_pragma_reported_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    // wbft-lint: allow(totality)\n    fn t() {}\n}\n";
        let got = check("crates/net/src/wire.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, Rule::BadPragma);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// HashMap unwrap Instant::now 0xfe as u8\nfn f() { let s = \"HashMap.unwrap() 255 as u8\"; }\n";
        assert!(check("crates/net/src/wire.rs", src).is_empty());
    }

    #[test]
    fn crate_root_unsafe_modes() {
        assert!(check_crate_root("crates/net/src/lib.rs", "#![forbid(unsafe_code)]\npub mod x;\n")
            .is_empty());
        assert_eq!(
            check_crate_root("crates/net/src/lib.rs", "pub mod x;\n").len(),
            1,
            "missing attribute"
        );
        assert_eq!(
            check_crate_root("crates/net/src/lib.rs", "#![deny(unsafe_code)]\npub mod x;\n").len(),
            1,
            "deny needs a pragma"
        );
        let denied = "#![deny(unsafe_code)]\n// wbft-lint: allow(unsafe-code) — FFI planned for the DMA path\npub mod x;\n";
        assert!(check_crate_root("crates/net/src/lib.rs", denied).is_empty());
    }

    #[test]
    fn doc_attr_does_not_match_w0() {
        assert_eq!(check_crate_root("x/lib.rs", "#![doc = \"hi\"]\n").len(), 1);
    }
}
