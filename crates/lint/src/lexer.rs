//! A lossless Rust token lexer.
//!
//! The passes in this crate reason about *token* patterns, never raw text —
//! a `HashMap` inside a string literal or a doc comment must not trigger the
//! ordered-state rule, and `// wbft-lint:` pragmas live in comments that a
//! text grep could not reliably separate from string contents. The lexer
//! therefore understands everything that can hide bytes from a naive scan:
//! cooked and raw string literals (with any `#` count and `b`/`c` prefixes),
//! char literals vs. lifetimes, nested block comments, and numeric literals
//! with radix prefixes and suffixes.
//!
//! Two properties are load-bearing and property-tested:
//!
//! * **Total:** `lex` never panics, whatever bytes the file holds.
//! * **Lossless:** concatenating `Token::text` in order reproduces the
//!   input exactly, so lexing is a fixpoint on its own re-render.

/// Classification of one source token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// A run of whitespace.
    Whitespace,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting-aware; an unterminated comment runs to the end.
    BlockComment,
    /// An identifier or keyword.
    Ident,
    /// `'a`, `'static`, `'_`.
    Lifetime,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`, …
    Str,
    /// A char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// A numeric literal, radix prefix and suffix included.
    Number,
    /// One ASCII punctuation character.
    Punct,
    /// Anything the lexer does not recognize (kept for losslessness).
    Unknown,
}

/// One token: kind, exact source text, and 1-based start line.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    /// What the token is.
    pub kind: TokenKind,
    /// The exact bytes it covers.
    pub text: &'a str,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token<'_> {
    /// `true` for tokens the passes reason about (not whitespace/comments).
    pub fn is_significant(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }

    /// The single punctuation char, if this is a [`TokenKind::Punct`].
    pub fn punct(&self) -> Option<char> {
        match self.kind {
            TokenKind::Punct => self.text.chars().next(),
            _ => None,
        }
    }
}

/// Lexes a whole source file. Total and lossless (see module docs).
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut lx = Lexer { src, pos: 0, line: 1, tokens: Vec::new() };
    lx.run();
    lx.tokens
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    tokens: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn rest(&self) -> &'a str {
        self.src.get(self.pos..).unwrap_or("")
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.rest().chars();
        it.next();
        it.next()
    }

    /// Consumes one char, returning it.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Emits a token covering `start..self.pos`, then counts its newlines.
    fn emit(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = self.src.get(start..self.pos).unwrap_or("");
        self.tokens.push(Token { kind, text, line });
        self.line = line + text.matches('\n').count() as u32;
    }

    fn run(&mut self) {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let Some(c) = self.peek() else { break };
            let kind = if c.is_whitespace() {
                self.whitespace()
            } else if c == '/' && self.peek2() == Some('/') {
                self.line_comment()
            } else if c == '/' && self.peek2() == Some('*') {
                self.block_comment()
            } else if c == '\'' {
                self.char_or_lifetime()
            } else if c == '"' {
                self.cooked_string('"')
            } else if c.is_ascii_digit() {
                self.number()
            } else if is_ident_start(c) {
                self.ident_or_prefixed_string()
            } else if c.is_ascii() {
                self.bump();
                TokenKind::Punct
            } else {
                self.bump();
                TokenKind::Unknown
            };
            self.emit(kind, start, line);
            // Defensive: a lexer bug that consumes nothing must not loop
            // forever; swallow one char as Unknown instead.
            if self.pos == start {
                self.bump();
                self.emit(TokenKind::Unknown, start, line);
            }
        }
    }

    fn whitespace(&mut self) -> TokenKind {
        while self.peek().is_some_and(char::is_whitespace) {
            self.bump();
        }
        TokenKind::Whitespace
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(), self.peek2()) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: runs to EOF
            }
        }
        TokenKind::BlockComment
    }

    /// `'a` / `'_` lifetimes vs. `'x'` / `'\n'` char literals.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // opening quote
        match self.peek() {
            Some('\\') => {
                self.escape();
                if self.peek() == Some('\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) => {
                // Could be `'a'` (char) or `'a` / `'abc` (lifetime): consume
                // the ident run, then look for a closing quote.
                while self.peek().is_some_and(is_ident_continue) {
                    self.bump();
                }
                if self.peek() == Some('\'') {
                    self.bump();
                    TokenKind::Char
                } else {
                    TokenKind::Lifetime
                }
            }
            Some(c) if c != '\'' => {
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                    TokenKind::Char
                } else {
                    // `'(` with no closing quote — not valid Rust; keep the
                    // bytes as Unknown rather than guessing.
                    TokenKind::Unknown
                }
            }
            _ => {
                // `''` or a bare trailing quote.
                if self.peek() == Some('\'') {
                    self.bump();
                }
                TokenKind::Unknown
            }
        }
    }

    /// One escape sequence inside a char/string literal: consumes the
    /// backslash and enough of what follows (`\xNN`, `\u{…}`, `\n`, …).
    fn escape(&mut self) {
        self.bump(); // '\'
        match self.peek() {
            Some('x') => {
                self.bump();
                for _ in 0..2 {
                    if self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                        self.bump();
                    }
                }
            }
            Some('u') => {
                self.bump();
                if self.peek() == Some('{') {
                    self.bump();
                    while self.peek().is_some_and(|c| c != '}' && c != '\n') {
                        self.bump();
                    }
                    if self.peek() == Some('}') {
                        self.bump();
                    }
                }
            }
            Some(_) => {
                self.bump();
            }
            None => {}
        }
    }

    /// A cooked (escaped) string literal; the opening quote is pending.
    fn cooked_string(&mut self, quote: char) -> TokenKind {
        self.bump(); // opening quote
        loop {
            match self.peek() {
                None => break, // unterminated: runs to EOF
                Some('\\') => self.escape(),
                Some(c) if c == quote => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        TokenKind::Str
    }

    /// A raw string body: `"` already identified, `hashes` leading `#`s.
    fn raw_string(&mut self, hashes: usize) -> TokenKind {
        self.bump(); // opening quote
        'outer: loop {
            match self.bump() {
                None => break, // unterminated
                Some('"') => {
                    // Need `hashes` consecutive '#' to close.
                    let mark = self.pos;
                    for _ in 0..hashes {
                        if self.peek() == Some('#') {
                            self.bump();
                        } else {
                            self.pos = mark;
                            continue 'outer;
                        }
                    }
                    break;
                }
                Some(_) => {}
            }
        }
        TokenKind::Str
    }

    fn number(&mut self) -> TokenKind {
        let radix_prefixed = self.peek() == Some('0')
            && matches!(self.peek2(), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        // Main body: digits, hex digits, underscores, and type suffixes all
        // fall under "alphanumeric or underscore".
        while self.peek().is_some_and(is_ident_continue) {
            let last = self.bump();
            // `1e+3` / `2.5E-7`: a sign directly after the exponent marker
            // belongs to the number (never in radix-prefixed ints).
            if !radix_prefixed
                && matches!(last, Some('e' | 'E'))
                && matches!(self.peek(), Some('+' | '-'))
                && self.peek2().is_some_and(|c| c.is_ascii_digit())
            {
                self.bump();
            }
        }
        // Fractional part: only if followed by a digit (so `0..10` stays a
        // range and `x.0` tuple access never reaches here).
        if !radix_prefixed
            && self.peek() == Some('.')
            && self.peek2().is_some_and(|c| c.is_ascii_digit())
        {
            self.bump();
            while self.peek().is_some_and(is_ident_continue) {
                let last = self.bump();
                if matches!(last, Some('e' | 'E'))
                    && matches!(self.peek(), Some('+' | '-'))
                    && self.peek2().is_some_and(|c| c.is_ascii_digit())
                {
                    self.bump();
                }
            }
        }
        TokenKind::Number
    }

    /// An identifier — or, if it is a string prefix (`r`, `b`, `br`, `c`,
    /// `cr`, …) directly followed by a string opener, the whole literal.
    fn ident_or_prefixed_string(&mut self) -> TokenKind {
        let start = self.pos;
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
        let ident = self.src.get(start..self.pos).unwrap_or("");
        let is_prefix = matches!(ident, "r" | "b" | "c" | "br" | "rb" | "cr" | "rc");
        if !is_prefix {
            return TokenKind::Ident;
        }
        let raw = ident.contains('r');
        match self.peek() {
            Some('"') if raw => self.raw_string(0),
            Some('"') => self.cooked_string('"'),
            Some('\'') if ident == "b" => {
                // Byte-char literal b'…'.
                self.bump();
                match self.peek() {
                    Some('\\') => self.escape(),
                    Some(c) if c != '\'' => {
                        self.bump();
                    }
                    _ => {}
                }
                if self.peek() == Some('\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            Some('#') if raw => {
                // Count hashes; only a quote after them makes this a raw
                // string (`r#ident` rolls back to a plain ident token).
                let mark = self.pos;
                let mut hashes = 0usize;
                while self.peek() == Some('#') {
                    self.bump();
                    hashes += 1;
                }
                if self.peek() == Some('"') {
                    self.raw_string(hashes)
                } else {
                    self.pos = mark;
                    TokenKind::Ident
                }
            }
            _ => TokenKind::Ident,
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Parses an integer literal token's value, if it is one (underscores and
/// type suffixes stripped, `0x`/`0o`/`0b` radixes understood). `None` for
/// floats and out-of-range values.
pub fn int_literal_value(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = match clean.as_bytes() {
        [b'0', b'x' | b'X', rest @ ..] => (16, rest),
        [b'0', b'o' | b'O', rest @ ..] => (8, rest),
        [b'0', b'b' | b'B', rest @ ..] => (2, rest),
        _ => (10, clean.as_bytes()),
    };
    let digits = core::str::from_utf8(digits).ok()?;
    // Strip a type suffix (`u8`, `usize`, `i32`, …); for decimal ints the
    // suffix starts at the first non-digit. A `.` or exponent makes it a
    // float — not an integer literal.
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .map_or(digits.len(), |i| i);
    let (num, suffix) = digits.split_at(end);
    if num.is_empty() || suffix.starts_with('.') {
        return None;
    }
    if radix == 10 && matches!(suffix.as_bytes().first(), Some(b'e' | b'E')) {
        return None; // exponent float like 1e3
    }
    if !suffix.is_empty() && !suffix.starts_with(['u', 'i', 'f']) {
        return None; // malformed literal; refuse to guess
    }
    if suffix.starts_with('f') {
        return None;
    }
    u128::from_str_radix(num, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(tokens: &[Token<'_>]) -> String {
        tokens.iter().map(|t| t.text).collect()
    }

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .filter(Token::is_significant)
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn lossless_on_typical_source() {
        let src = r##"
            // a comment with "a string" and 'q'
            fn main() {
                let s = "escaped \" quote";
                let r = r#"raw "inner" body"#;
                let b = b"bytes";
                let c = 'x';
                let lt: &'static str = s;
                /* block /* nested */ done */
                let n = 0xff_u8 + 1_000 + 2.5e-3;
            }
        "##;
        assert_eq!(render(&lex(src)), src);
    }

    #[test]
    fn strings_hide_idents() {
        let toks = kinds(r#"let x = "HashMap unwrap"; foo();"#);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("HashMap")));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'b' }");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "'b'"));
    }

    #[test]
    fn byte_char_and_escapes() {
        let toks = kinds(r"let a = b'\n'; let c = '\u{1F600}'; let q = '\'';");
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).map(|(_, t)| t.clone()).collect();
        assert_eq!(chars, [r"b'\n'", r"'\u{1F600}'", r"'\''"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r##"has "# inside"##; next()"###;
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("inside")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "next"));
        assert_eq!(render(&lex(src)), src);
    }

    #[test]
    fn raw_ident_is_not_a_string() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "match"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* x /* y */ z */ b";
        let toks = kinds(src);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).count(),
            2,
            "only a and b are code"
        );
        assert_eq!(render(&lex(src)), src);
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Number && t == "10"));
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nbb\n\nccc");
        let sig: Vec<_> = toks.iter().filter(|t| t.is_significant()).collect();
        assert_eq!(sig[0].line, 1);
        assert_eq!(sig[1].line, 2);
        assert_eq!(sig[2].line, 4);
    }

    #[test]
    fn unterminated_tokens_run_to_eof() {
        for src in ["\"open", "r#\"open", "/* open", "'\\", "b\"open"] {
            assert_eq!(render(&lex(src)), src, "{src:?} must stay lossless");
        }
    }

    #[test]
    fn int_literal_values() {
        assert_eq!(int_literal_value("255"), Some(255));
        assert_eq!(int_literal_value("0xff"), Some(255));
        assert_eq!(int_literal_value("0xFE"), Some(254));
        assert_eq!(int_literal_value("0o375"), Some(253));
        assert_eq!(int_literal_value("0b1111_1111"), Some(255));
        assert_eq!(int_literal_value("255u8"), Some(255));
        assert_eq!(int_literal_value("1_000"), Some(1000));
        assert_eq!(int_literal_value("2.5"), None);
        assert_eq!(int_literal_value("1e3"), None);
        assert_eq!(int_literal_value("2.5f64"), None);
    }
}
