//! The committed baseline and its ratchet.
//!
//! `lint-baseline.json` grandfathers the findings that existed when a rule
//! landed. The ratchet is one-way: a (rule, path, what) key may hold at most
//! as many findings as the baseline records — new findings fail CI, and
//! after a burn-down `--write-baseline` shrinks the file (never grows it,
//! unless the change is deliberate and reviewed like any other diff).
//!
//! Keys deliberately exclude line numbers: edits above a grandfathered
//! finding must not shake the ratchet.

use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;
use wbft_report::json::{Json, JsonError};

/// Grandfathered finding counts, keyed by (rule, path, what).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(Rule, String, String), u32>,
}

/// The outcome of checking findings against a baseline.
#[derive(Clone, Debug, Default)]
pub struct RatchetDiff {
    /// Findings in excess of their baseline key's count — these fail CI.
    pub regressions: Vec<Finding>,
    /// Keys whose count dropped (or disappeared): the baseline can ratchet
    /// down via `--write-baseline`.
    pub improved: Vec<(Rule, String, String, u32, u32)>,
}

impl Baseline {
    /// A baseline over the given findings (what `--write-baseline` stores).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule, f.path.clone(), f.what.clone())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Total grandfathered findings per rule.
    pub fn rule_counts(&self) -> BTreeMap<Rule, u32> {
        let mut per_rule = BTreeMap::new();
        for ((rule, _, _), n) in &self.counts {
            *per_rule.entry(*rule).or_insert(0) += n;
        }
        per_rule
    }

    /// Checks current findings against the baseline.
    pub fn diff(&self, findings: &[Finding]) -> RatchetDiff {
        let current = Baseline::from_findings(findings);
        let mut diff = RatchetDiff::default();
        // Regressions: walk findings in order so the report points at real
        // sites; every finding beyond the grandfathered count for its key
        // is new.
        let mut seen: BTreeMap<(Rule, String, String), u32> = BTreeMap::new();
        for f in findings {
            let key = (f.rule, f.path.clone(), f.what.clone());
            let n = seen.entry(key.clone()).or_insert(0);
            *n += 1;
            if *n > self.counts.get(&key).copied().unwrap_or(0) {
                diff.regressions.push(f.clone());
            }
        }
        for (key, &base_n) in &self.counts {
            let now = current.counts.get(key).copied().unwrap_or(0);
            if now < base_n {
                diff.improved.push((key.0, key.1.clone(), key.2.clone(), base_n, now));
            }
        }
        diff
    }

    /// Encodes to the committed JSON document.
    pub fn to_json(&self) -> Json {
        let entries = self.counts.iter().map(|((rule, path, what), n)| {
            Json::obj([
                ("rule", Json::str(rule.name())),
                ("path", Json::str(path.clone())),
                ("what", Json::str(what.clone())),
                ("count", Json::u64(u64::from(*n))),
            ])
        });
        Json::obj([
            ("version", Json::u64(1)),
            ("entries", Json::Arr(entries.collect())),
        ])
    }

    /// Decodes the committed JSON document.
    pub fn from_json(j: &Json) -> Result<Baseline, JsonError> {
        let version = j.get("version").and_then(Json::as_u64);
        if version != Some(1) {
            return Err(JsonError(format!("unsupported baseline version {version:?}")));
        }
        let entries = j
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError("baseline: missing entries array".to_string()))?;
        let mut counts = BTreeMap::new();
        for e in entries {
            let rule_name = e
                .get("rule")
                .and_then(Json::as_str)
                .ok_or_else(|| JsonError("baseline entry: missing rule".to_string()))?;
            let rule = Rule::from_name(rule_name)
                .ok_or_else(|| JsonError(format!("baseline entry: unknown rule {rule_name}")))?;
            let path = e
                .get("path")
                .and_then(Json::as_str)
                .ok_or_else(|| JsonError("baseline entry: missing path".to_string()))?;
            let what = e
                .get("what")
                .and_then(Json::as_str)
                .ok_or_else(|| JsonError("baseline entry: missing what".to_string()))?;
            let count = e
                .get("count")
                .and_then(Json::as_u64)
                .filter(|&n| n > 0 && n <= u64::from(u32::MAX))
                .ok_or_else(|| JsonError("baseline entry: bad count".to_string()))?;
            let key = (rule, path.to_string(), what.to_string());
            if counts.insert(key, count as u32).is_some() {
                return Err(JsonError(format!(
                    "baseline entry duplicated: {rule_name} {path} {what}"
                )));
            }
        }
        Ok(Baseline { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, path: &str, what: &str, line: u32) -> Finding {
        Finding { rule, path: path.to_string(), line, what: what.to_string() }
    }

    #[test]
    fn empty_baseline_fails_everything() {
        let b = Baseline::default();
        let f = vec![finding(Rule::Totality, "a.rs", "unwrap", 3)];
        let d = b.diff(&f);
        assert_eq!(d.regressions.len(), 1);
        assert!(d.improved.is_empty());
    }

    #[test]
    fn grandfathered_counts_pass_excess_fails() {
        let base = Baseline::from_findings(&[
            finding(Rule::Totality, "a.rs", "unwrap", 3),
            finding(Rule::Totality, "a.rs", "unwrap", 9),
        ]);
        // Same two (lines moved): fine.
        let same = vec![
            finding(Rule::Totality, "a.rs", "unwrap", 4),
            finding(Rule::Totality, "a.rs", "unwrap", 10),
        ];
        assert!(base.diff(&same).regressions.is_empty());
        // A third unwrap in the same file: exactly one regression.
        let mut more = same.clone();
        more.push(finding(Rule::Totality, "a.rs", "unwrap", 20));
        let d = base.diff(&more);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].line, 20);
        // Same count but a different file: regression (keys are per-path).
        let moved = vec![
            finding(Rule::Totality, "a.rs", "unwrap", 4),
            finding(Rule::Totality, "b.rs", "unwrap", 10),
        ];
        assert_eq!(base.diff(&moved).regressions.len(), 1);
    }

    #[test]
    fn improvements_reported() {
        let base = Baseline::from_findings(&[
            finding(Rule::WireSafety, "a.rs", "as u8", 1),
            finding(Rule::WireSafety, "a.rs", "as u8", 2),
            finding(Rule::OrderedState, "b.rs", "HashMap", 5),
        ]);
        let now = vec![finding(Rule::WireSafety, "a.rs", "as u8", 1)];
        let d = base.diff(&now);
        assert!(d.regressions.is_empty());
        assert_eq!(d.improved.len(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let base = Baseline::from_findings(&[
            finding(Rule::Totality, "a.rs", "unwrap", 3),
            finding(Rule::Totality, "a.rs", "unwrap", 9),
            finding(Rule::Determinism, "c.rs", "Instant::now", 7),
        ]);
        let j = base.to_json();
        let back = Baseline::from_json(&j).unwrap();
        assert_eq!(back, base);
        // Canonical file encoding is deterministic.
        let text = wbft_report::json::to_file_string(&j);
        let reparsed = wbft_report::json::parse(&text).unwrap();
        assert_eq!(wbft_report::json::to_file_string(&reparsed), text);
    }

    #[test]
    fn bad_documents_rejected() {
        for text in [
            "{}",
            "{\"version\":2,\"entries\":[]}",
            "{\"version\":1}",
            "{\"version\":1,\"entries\":[{\"rule\":\"nope\",\"path\":\"a\",\"what\":\"w\",\"count\":1}]}",
            "{\"version\":1,\"entries\":[{\"rule\":\"totality\",\"path\":\"a\",\"what\":\"w\",\"count\":0}]}",
        ] {
            let j = wbft_report::json::parse(text).unwrap();
            assert!(Baseline::from_json(&j).is_err(), "{text} must be rejected");
        }
    }
}
