//! The command-line runner behind `cargo run -p wbft-lint` and the facade
//! `examples/lint.rs`.

use crate::baseline::Baseline;
use crate::rules::{Finding, Rule};
use crate::{find_workspace_root, run_workspace, LintReport};
use std::collections::BTreeMap;
use std::path::PathBuf;
use wbft_report::json::{self, Json};

/// Parsed command-line options.
#[derive(Clone, Debug, Default)]
pub struct CliOptions {
    /// Workspace root (default: found by walking up from the cwd).
    pub root: Option<PathBuf>,
    /// Baseline path (default: `<root>/lint-baseline.json`).
    pub baseline: Option<PathBuf>,
    /// Rewrite the baseline from current findings instead of checking.
    pub write_baseline: bool,
    /// Also write the full machine-readable report here.
    pub json_out: Option<PathBuf>,
    /// Print a rule's long-form rationale and exit.
    pub explain: Option<String>,
    /// List rules with one-line summaries and exit.
    pub list_rules: bool,
}

const USAGE: &str = "\
usage: wbft-lint [--root DIR] [--baseline FILE] [--write-baseline]
                 [--json FILE] [--explain RULE] [--list-rules]

Runs the workspace static analysis passes (determinism, ordered-state,
totality, wire-safety, unsafe-code) and checks findings against the
committed lint-baseline.json ratchet.

exit status: 0 = clean or fully grandfathered, 1 = new findings (or a
missing baseline with findings present), 2 = usage/IO error.";

impl CliOptions {
    /// Parses CLI arguments (without the program name).
    pub fn parse(args: &[String]) -> Result<CliOptions, String> {
        let mut opts = CliOptions::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next().cloned().ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
            };
            match arg.as_str() {
                "--root" => opts.root = Some(PathBuf::from(value("--root")?)),
                "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
                "--write-baseline" => opts.write_baseline = true,
                "--json" => opts.json_out = Some(PathBuf::from(value("--json")?)),
                "--explain" => opts.explain = Some(value("--explain")?),
                "--list-rules" => opts.list_rules = true,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
            }
        }
        Ok(opts)
    }
}

/// Runs the CLI; returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    let opts = match CliOptions::parse(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };

    if opts.list_rules {
        for rule in Rule::ALL {
            println!("{:13} {}", rule.name(), rule.summary());
        }
        return 0;
    }
    if let Some(name) = &opts.explain {
        match Rule::from_name(name) {
            Some(rule) => {
                println!("{}", rule.explain());
                return 0;
            }
            None => {
                eprintln!(
                    "unknown rule `{name}`; known rules: {}",
                    Rule::ALL.map(Rule::name).join(", ")
                );
                return 2;
            }
        }
    }

    let root = match opts
        .root
        .clone()
        .or_else(|| std::env::current_dir().ok().and_then(|d| find_workspace_root(&d)))
    {
        Some(r) => r,
        None => {
            eprintln!("could not locate the workspace root; pass --root");
            return 2;
        }
    };
    let baseline_path = opts.baseline.clone().unwrap_or_else(|| root.join("lint-baseline.json"));

    let started = std::time::Instant::now();
    let report = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan failed: {e}");
            return 2;
        }
    };
    let elapsed = started.elapsed();

    if let Some(json_path) = &opts.json_out {
        if let Err(e) = json::write_file(json_path, &report_json(&report)) {
            eprintln!("writing {}: {e}", json_path.display());
            return 2;
        }
    }

    if opts.write_baseline {
        let base = Baseline::from_findings(&report.findings);
        if let Err(e) = json::write_file(&baseline_path, &base.to_json()) {
            eprintln!("writing {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "wrote {} ({} grandfathered findings across {} files scanned)",
            baseline_path.display(),
            report.findings.len(),
            report.files_scanned
        );
        return 0;
    }

    let baseline = if baseline_path.exists() {
        match json::read_file(&baseline_path).map_err(|e| e.to_string()).and_then(|j| {
            Baseline::from_json(&j).map_err(|e| format!("{}: {e}", baseline_path.display()))
        }) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    } else {
        Baseline::default()
    };

    let diff = baseline.diff(&report.findings);
    print_summary(&report, &baseline, elapsed);

    if !diff.improved.is_empty() {
        println!("\nratchet can tighten ({} keys improved):", diff.improved.len());
        for (rule, path, what, was, now) in &diff.improved {
            println!("  {}: {} `{}` {} -> {}", rule.name(), path, what, was, now);
        }
        println!("  re-run with --write-baseline to lock in the improvement");
    }

    if diff.regressions.is_empty() {
        println!("\nlint-check: OK ({} files in {:.2?})", report.files_scanned, elapsed);
        0
    } else {
        println!("\nlint-check: {} new finding(s) not in the baseline:", diff.regressions.len());
        for f in &diff.regressions {
            println!("  {f}");
        }
        println!("\nfix the finding, or add a justified pragma:");
        println!("  // wbft-lint: allow(<rule>) — <why this site is safe>");
        println!("(see `wbft-lint --explain <rule>` for each rule's contract)");
        1
    }
}

/// Per-rule counts for the summary table.
fn rule_table(findings: &[Finding]) -> BTreeMap<Rule, u32> {
    let mut t = BTreeMap::new();
    for f in findings {
        *t.entry(f.rule).or_insert(0) += 1;
    }
    t
}

fn print_summary(report: &LintReport, baseline: &Baseline, elapsed: std::time::Duration) {
    let current = rule_table(&report.findings);
    let base = baseline.rule_counts();
    println!(
        "wbft-lint: {} files scanned in {:.2?}; findings per rule (current/baseline):",
        report.files_scanned, elapsed
    );
    for rule in Rule::ALL {
        let now = current.get(&rule).copied().unwrap_or(0);
        let was = base.get(&rule).copied().unwrap_or(0);
        let delta = i64::from(now) - i64::from(was);
        let marker = match delta {
            0 => String::new(),
            d if d > 0 => format!("  (+{d} NEW)"),
            d => format!("  ({d})"),
        };
        println!("  {:13} {:4} / {:<4}{}", rule.name(), now, was, marker);
    }
}

/// The machine-readable report document (`--json`).
fn report_json(report: &LintReport) -> Json {
    let counts = rule_table(&report.findings);
    Json::obj([
        ("files_scanned", Json::u64(report.files_scanned as u64)),
        (
            "rule_counts",
            Json::Obj(
                Rule::ALL
                    .iter()
                    .map(|r| {
                        (r.name().to_string(), Json::u64(u64::from(counts.get(r).copied().unwrap_or(0))))
                    })
                    .collect(),
            ),
        ),
        (
            "findings",
            Json::Arr(
                report
                    .findings
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("rule", Json::str(f.rule.name())),
                            ("path", Json::str(f.path.clone())),
                            ("line", Json::u64(u64::from(f.line))),
                            ("what", Json::str(f.what.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        CliOptions::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn flags_parse() {
        let o = parse(&["--root", "/x", "--write-baseline", "--json", "out.json"]).unwrap();
        assert_eq!(o.root.as_deref(), Some(std::path::Path::new("/x")));
        assert!(o.write_baseline);
        assert_eq!(o.json_out.as_deref(), Some(std::path::Path::new("out.json")));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--root"]).is_err(), "missing value");
    }

    #[test]
    fn explain_is_wired() {
        for rule in Rule::ALL {
            assert!(!rule.explain().is_empty());
            assert!(Rule::from_name(rule.name()).is_some());
        }
    }
}
