//! File and crate classification: which rules apply where.
//!
//! The workspace splits into zones with different invariant burdens:
//!
//! * **Deterministic crates** (`crypto`, `net`, `wireless`, `components`,
//!   `core`, `journal`, `report`): the simulation/verification path. Byte-
//!   identical parallel sweeps and replayable fuzz fixtures depend on these
//!   never reading wall clocks, ambient randomness, or mutating the process
//!   environment (D1), and never letting unordered-map iteration reach
//!   protocol behavior (D2).
//! * **Protocol paths** (`components`, `net`, `journal`, `transport`, and
//!   the engine/driver/service files of `core`): a panic here aborts a node
//!   mid-protocol, so `unwrap`/`expect`/`panic!` are denied (T1).
//! * **Wire/sync codec paths** (`net`, `journal`, the `transport` codecs,
//!   and the journal payload codec in `core`): these parse bytes an
//!   adversary controls, so direct slice indexing (T1) and unchecked
//!   narrowing casts or raw reserved-channel literals (W1) are denied.
//! * **Harness code** (`bench`, the sweep/fuzz/testbed files of `core`,
//!   examples, shims): exempt — benches time with real clocks, the harness
//!   deliberately panics early on bad axes, shims mirror external APIs.
//!
//! Test code (files under a `tests/` directory and `#[cfg(test)]` regions,
//! which [`test_scopes`] tracks brace-aware down to the token) is exempt
//! from everything: an `unwrap` in a test is the assertion.

use crate::lexer::{Token, TokenKind};

/// Where a file sits in the workspace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Zone {
    /// `crates/<name>/src/**` production code.
    CrateSrc,
    /// A `tests/` tree (crate-level or workspace-level).
    Tests,
    /// `crates/bench/benches/**`.
    Benches,
    /// `examples/**`.
    Examples,
    /// `shims/**`.
    Shims,
    /// The facade `src/**` at the workspace root.
    Facade,
    /// Anything else (build scripts, stray files).
    Other,
}

/// Classification of one `.rs` file, derived purely from its path.
#[derive(Clone, Debug)]
pub struct FileInfo {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Short crate id: the directory under `crates/` (`"core"`, `"net"`, …),
    /// `"wbft"` for the facade, `"shim:<name>"` for shims, `""` otherwise.
    pub crate_id: String,
    /// Which zone the file sits in.
    pub zone: Zone,
}

/// Crates whose behavior must be a pure function of config + seed.
pub const DETERMINISTIC_CRATES: [&str; 7] =
    ["crypto", "net", "wireless", "components", "core", "journal", "report"];

/// `core` files that are protocol path (engines, driver, service, recovery)
/// rather than harness (sweep, fuzz, testbed, report, netrun, …).
pub const CORE_PROTOCOL_FILES: [&str; 6] =
    ["honeybadger.rs", "dumbo.rs", "protocol.rs", "driver.rs", "recovery.rs", "service.rs"];

/// `transport` files that are wire codecs (vs. the IO runtime).
pub const TRANSPORT_CODEC_FILES: [&str; 3] = ["client.rs", "sync.rs", "config.rs"];

impl FileInfo {
    /// Classifies a workspace-relative path (`/`-separated).
    pub fn classify(rel_path: &str) -> FileInfo {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let (crate_id, zone) = match parts.as_slice() {
            ["crates", name, "src", ..] => ((*name).to_string(), Zone::CrateSrc),
            ["crates", name, "tests", ..] => ((*name).to_string(), Zone::Tests),
            ["crates", name, "benches", ..] => ((*name).to_string(), Zone::Benches),
            ["crates", name, ..] => ((*name).to_string(), Zone::Other),
            ["shims", name, ..] => (format!("shim:{name}"), Zone::Shims),
            ["src", ..] => ("wbft".to_string(), Zone::Facade),
            ["tests", ..] => ("wbft".to_string(), Zone::Tests),
            ["examples", ..] => ("wbft".to_string(), Zone::Examples),
            _ => (String::new(), Zone::Other),
        };
        FileInfo { rel_path: rel_path.to_string(), crate_id, zone }
    }

    fn file_name(&self) -> &str {
        self.rel_path.rsplit('/').next().unwrap_or(&self.rel_path)
    }

    fn in_core_protocol(&self) -> bool {
        self.crate_id == "core" && CORE_PROTOCOL_FILES.contains(&self.file_name())
    }

    /// D1 determinism: no wall clock / ambient randomness / env mutation.
    pub fn d1_applies(&self) -> bool {
        self.zone == Zone::CrateSrc && DETERMINISTIC_CRATES.contains(&self.crate_id.as_str())
    }

    /// D2 ordered-state: no `HashMap`/`HashSet` where iteration can reach
    /// protocol behavior. Same scope as D1 — in a deterministic crate any
    /// unordered container is a latent leak, and the justified-allow pragma
    /// covers the few provably iteration-free uses.
    pub fn d2_applies(&self) -> bool {
        self.d1_applies()
    }

    /// T1 (panic family): no `unwrap`/`expect`/`panic!`/`unreachable!`/
    /// `todo!`/`unimplemented!` on protocol paths.
    pub fn t1_panic_applies(&self) -> bool {
        if self.zone != Zone::CrateSrc {
            return false;
        }
        matches!(self.crate_id.as_str(), "components" | "net" | "journal" | "transport")
            || self.in_core_protocol()
    }

    /// T1 (indexing): no direct slice indexing where adversarial bytes are
    /// parsed — the wire/sync codec paths.
    pub fn t1_index_applies(&self) -> bool {
        if self.zone != Zone::CrateSrc {
            return false;
        }
        match self.crate_id.as_str() {
            "net" | "journal" => true,
            "transport" => TRANSPORT_CODEC_FILES.contains(&self.file_name()),
            "core" => self.file_name() == "recovery.rs",
            _ => false,
        }
    }

    /// W1 wire-safety: no unchecked narrowing casts, no raw reserved-channel
    /// byte literals, in codec/transport code.
    pub fn w1_applies(&self) -> bool {
        if self.zone != Zone::CrateSrc {
            return false;
        }
        matches!(self.crate_id.as_str(), "net" | "transport" | "journal")
            || (self.crate_id == "core" && self.file_name() == "recovery.rs")
    }

    /// Whether any pass reads this file at all (W0 roots are handled
    /// separately at the workspace level).
    pub fn any_rule_applies(&self) -> bool {
        self.d1_applies() || self.t1_panic_applies() || self.t1_index_applies() || self.w1_applies()
    }
}

/// Finds `#[cfg(test)]`-gated scopes in a significant-token stream, as
/// inclusive index ranges into `sig`.
///
/// Matches any `#[cfg(…)]` attribute whose argument mentions `test`, then
/// extends the scope over the following item: past any further attributes,
/// to the matching `}` of the item's first top-level brace (a `mod tests {…}`
/// or `fn …() {…}`), or to the terminating `;` for brace-less items. The
/// scope is *token-exact* — it ends at the module's real closing brace, so
/// production tokens sharing a line with a test region are still linted
/// (and test tokens sharing a line with production code stay exempt).
pub fn test_scopes(sig: &[&Token<'_>]) -> Vec<(usize, usize)> {
    let mut scopes = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].punct() == Some('#')
            && i + 1 < sig.len()
            && sig[i + 1].punct() == Some('[')
            && i + 2 < sig.len()
            && sig[i + 2].kind == TokenKind::Ident
            && (sig[i + 2].text == "cfg" || sig[i + 2].text == "cfg_attr")
        {
            let (attr_end, mentions_test) = scan_attribute(sig, i + 1);
            if mentions_test {
                let end = item_end(sig, attr_end + 1);
                scopes.push((i, end));
                i = end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    scopes
}

/// `true` if significant-token index `i` falls inside any test scope.
pub fn in_scopes(scopes: &[(usize, usize)], i: usize) -> bool {
    scopes.iter().any(|&(a, b)| (a..=b).contains(&i))
}

/// The line-granular projection of [`test_scopes`] (inclusive 1-based line
/// ranges). Only for constructs that live in comments — pragmas — which
/// have no significant-token index; token-level passes use the scopes
/// directly.
pub fn test_line_ranges(tokens: &[Token<'_>]) -> Vec<(u32, u32)> {
    let sig: Vec<&Token<'_>> = tokens.iter().filter(|t| t.is_significant()).collect();
    test_scopes(&sig)
        .into_iter()
        .map(|(a, b)| (sig[a].line, sig.get(b).map_or(sig[a].line, |t| t.line)))
        .collect()
}

/// Scans a `[` … `]` attribute starting at the `[`; returns the index of the
/// closing `]` (or the last token) and whether a bare `test` ident appears.
fn scan_attribute(sig: &[&Token<'_>], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut mentions_test = false;
    let mut i = open;
    while i < sig.len() {
        match sig[i].punct() {
            Some('[') => depth += 1,
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i, mentions_test);
                }
            }
            _ => {
                if sig[i].kind == TokenKind::Ident && sig[i].text == "test" {
                    mentions_test = true;
                }
            }
        }
        i += 1;
    }
    (sig.len().saturating_sub(1), mentions_test)
}

/// Finds the end of the item starting at `i` (after its cfg attribute):
/// skips further attributes, then runs to the matching close of the first
/// top-level `{`, or to a `;` reached before any `{`.
fn item_end(sig: &[&Token<'_>], mut i: usize) -> usize {
    // Skip stacked attributes.
    while i + 1 < sig.len() && sig[i].punct() == Some('#') && sig[i + 1].punct() == Some('[') {
        let (end, _) = scan_attribute(sig, i + 1);
        i = end + 1;
    }
    // Find the item's first `{` outside parens/brackets, or a bare `;`.
    let mut paren = 0i32;
    while i < sig.len() {
        match sig[i].punct() {
            Some('(') | Some('[') => paren += 1,
            Some(')') | Some(']') => paren -= 1,
            Some('{') if paren <= 0 => break,
            Some(';') if paren <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    // Match braces to the item's end.
    let mut depth = 0i32;
    while i < sig.len() {
        match sig[i].punct() {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    sig.len().saturating_sub(1)
}

/// `true` if `line` falls inside any of the (inclusive) ranges.
pub fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn zones_from_paths() {
        let f = FileInfo::classify("crates/components/src/cbc.rs");
        assert_eq!(f.zone, Zone::CrateSrc);
        assert_eq!(f.crate_id, "components");
        assert!(f.d1_applies() && f.t1_panic_applies());
        assert!(!f.t1_index_applies() && !f.w1_applies());

        let f = FileInfo::classify("crates/net/src/wire.rs");
        assert!(f.d1_applies() && f.t1_panic_applies() && f.t1_index_applies() && f.w1_applies());

        let f = FileInfo::classify("crates/transport/src/runtime.rs");
        assert!(!f.d1_applies(), "transport needs the real clock");
        assert!(f.t1_panic_applies() && !f.t1_index_applies() && f.w1_applies());

        let f = FileInfo::classify("crates/transport/src/client.rs");
        assert!(f.t1_index_applies());

        let f = FileInfo::classify("crates/core/src/sweep.rs");
        assert!(f.d1_applies() && !f.t1_panic_applies(), "harness may panic early");
        let f = FileInfo::classify("crates/core/src/honeybadger.rs");
        assert!(f.t1_panic_applies());
        let f = FileInfo::classify("crates/core/src/recovery.rs");
        assert!(f.t1_index_applies() && f.w1_applies());

        for p in [
            "crates/components/tests/proptests.rs",
            "tests/agreement.rs",
            "examples/sweep.rs",
            "crates/bench/benches/fig13_consensus.rs",
            "shims/rand/src/lib.rs",
        ] {
            let f = FileInfo::classify(p);
            assert!(!f.any_rule_applies(), "{p} must be exempt");
        }
    }

    #[test]
    fn cfg_test_mod_region() {
        let src = "fn prod() {}\n\n#[cfg(test)]\nmod tests {\n    fn a() {}\n    fn b() {}\n}\nfn prod2() {}\n";
        let toks = lex(src);
        let ranges = test_line_ranges(&toks);
        assert_eq!(ranges, vec![(3, 7)]);
        assert!(!in_ranges(&ranges, 1));
        assert!(in_ranges(&ranges, 5));
        assert!(!in_ranges(&ranges, 8));
    }

    #[test]
    fn cfg_test_on_statement_and_fn() {
        let src = "#[cfg(test)]\nuse foo::bar;\n#[cfg(test)]\n#[allow(dead_code)]\nfn helper(x: [u8; 2]) {\n    body();\n}\nfn prod() {}\n";
        let ranges = test_line_ranges(&lex(src));
        assert_eq!(ranges, vec![(1, 2), (3, 7)]);
        assert!(!in_ranges(&ranges, 8));
    }

    #[test]
    fn cfg_without_test_ignored() {
        let src = "#[cfg(feature = \"x\")]\nmod m {\n    fn f() {}\n}\n";
        assert!(test_line_ranges(&lex(src)).is_empty());
    }

    #[test]
    fn cfg_any_test_counts() {
        let src = "#[cfg(any(test, feature = \"slow\"))]\nmod m {\n    fn f() {}\n}\n";
        assert_eq!(test_line_ranges(&lex(src)), vec![(1, 4)]);
    }

    #[test]
    fn scopes_end_at_the_real_closing_brace() {
        // Production tokens after the test module's `}` — even on the same
        // line — are outside the scope; the line projection still covers
        // the whole line for the comment-level (pragma) consumers.
        let src = "#[cfg(test)]\nmod tests { fn f() {} } fn prod() {}\n";
        let toks = lex(src);
        let sig: Vec<_> = toks.iter().filter(|t| t.is_significant()).collect();
        let scopes = test_scopes(&sig);
        assert_eq!(scopes.len(), 1);
        let (a, b) = scopes[0];
        assert_eq!(sig[a].punct(), Some('#'));
        assert_eq!(sig[b].punct(), Some('}'));
        assert!(in_scopes(&scopes, a) && in_scopes(&scopes, b));
        assert!(!in_scopes(&scopes, b + 1), "prod tokens are outside the scope");
        assert_eq!(sig[b + 1].text, "fn");
        assert_eq!(test_line_ranges(&toks), vec![(1, 2)]);
    }

    #[test]
    fn braces_in_strings_do_not_confuse_matching() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}{{{\";\n    fn f() {}\n}\nfn prod() {}\n";
        let ranges = test_line_ranges(&lex(src));
        assert_eq!(ranges, vec![(1, 5)]);
        assert!(!in_ranges(&ranges, 6));
    }
}
