//! The repository must satisfy its own analyzer.
//!
//! `cargo test` therefore enforces the same gate as the CI lint-check
//! step: the workspace scan must produce no findings beyond the committed
//! `lint-baseline.json`, and the hard invariants (totality and wire-safety
//! in production protocol/wire code) must hold with no grandfathering at
//! all.

use wbft_lint::baseline::Baseline;
use wbft_lint::rules::Rule;

#[test]
fn repo_is_clean_against_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = wbft_lint::run_workspace(&root).expect("workspace scan succeeds");
    assert!(report.files_scanned > 50, "suspiciously small scan: {}", report.files_scanned);

    let baseline_path = root.join("lint-baseline.json");
    let baseline = if baseline_path.exists() {
        let doc = wbft_report::json::read_file(&baseline_path).expect("baseline readable");
        Baseline::from_json(&doc).expect("baseline parses")
    } else {
        Baseline::default()
    };

    let diff = baseline.diff(&report.findings);
    assert!(
        diff.regressions.is_empty(),
        "lint regressions not in baseline:\n{}",
        diff.regressions.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );

    // The ratchet floor: panics and silent truncation in production
    // protocol/wire code are fixed, never grandfathered.
    for f in &report.findings {
        assert!(
            !matches!(f.rule, Rule::Totality | Rule::WireSafety),
            "totality/wire-safety findings must be fixed, not baselined: {f}"
        );
    }
}
