//! Property tests: the analyzer must be total over arbitrary input.
//!
//! The lexer and pragma parser run over every workspace file on every CI
//! run — a panic on weird input would take the whole lint gate down, so
//! totality is load-bearing, not cosmetic.

use proptest::prelude::*;
use wbft_lint::classify::{self, FileInfo};
use wbft_lint::lexer::{int_literal_value, lex};
use wbft_lint::passes::check_file;
use wbft_lint::pragma::find_pragmas;

/// Characters that exercise every lexer mode: comment markers, string and
/// char delimiters, raw-string hashes, escapes, numbers, brackets, and the
/// pragma dashes.
const SOUP: &[char] = &[
    'a', 'z', 'A', '_', '0', '9', '"', '\'', '/', '*', '#', '[', ']', '(', ')', '{', '}', '!',
    ':', ';', ',', '.', '-', '—', ' ', '\n', '\\', 'x', 'u', 'b', 'r', 'c', '=', '<', '>', '&',
    '|', '?', 'é', '\t',
];

fn soup(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..SOUP.len(), 0..max_len)
        .prop_map(|ix| ix.into_iter().map(|i| SOUP[i]).collect())
}

/// Line-shaped source soup biased toward the constructs the pragma scanner
/// and cfg(test) range finder care about.
fn liney_soup() -> impl Strategy<Value = String> {
    let line = prop_oneof![
        Just("// wbft-lint: allow(totality) — justified\n".to_string()),
        Just("// wbft-lint: allow(bogus)\n".to_string()),
        Just("// wbft-lint: allow(\n".to_string()),
        Just("#[cfg(test)]\n".to_string()),
        Just("#[cfg(any(test, feature = \"x\"))]\n".to_string()),
        Just("mod t { fn f() {} }\n".to_string()),
        Just("fn g(v: Option<u8>) { v.unwrap(); }\n".to_string()),
        Just("let s = \"}}{{ // wbft-lint: allow(totality)\";\n".to_string()),
        soup(40).prop_map(|mut s| {
            s.push('\n');
            s
        }),
    ];
    proptest::collection::vec(line, 0..20).prop_map(|lines| lines.concat())
}

proptest! {
    /// Arbitrary bytes (lossily decoded) never panic the lexer, and the
    /// token texts always reassemble into exactly the input (lossless).
    #[test]
    fn lexer_total_and_lossless(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&src);
        let rendered: String = tokens.iter().map(|t| t.text).collect();
        prop_assert_eq!(rendered, src);
    }

    /// Character soup covering every lexer mode is also lossless, and
    /// lexing is a fixpoint: re-lexing the render yields identical tokens.
    #[test]
    fn lexing_fixpoint(src in soup(256)) {
        let tokens = lex(&src);
        let rendered: String = tokens.iter().map(|t| t.text).collect();
        prop_assert_eq!(&rendered, &src);
        let again = lex(&rendered);
        let a: Vec<(&str, u32)> = tokens.iter().map(|t| (t.text, t.line)).collect();
        let b: Vec<(&str, u32)> = again.iter().map(|t| (t.text, t.line)).collect();
        prop_assert_eq!(a, b);
    }

    /// Pragma-shaped source never panics the pragma scanner or the
    /// cfg(test) range finder.
    #[test]
    fn pragma_and_ranges_total(src in liney_soup()) {
        let tokens = lex(&src);
        let _ = find_pragmas(&tokens);
        let _ = classify::test_line_ranges(&tokens);
    }

    /// Number-literal evaluation is total (never panics, even on
    /// malformed or enormous literals lexed out of junk).
    #[test]
    fn int_literal_value_total(bytes in proptest::collection::vec(any::<u8>(), 1..24)) {
        const DIGITS: &[u8] = b"0123456789abcdefxXoObB_uisze.+-";
        let text: String =
            bytes.iter().map(|&b| DIGITS[usize::from(b) % DIGITS.len()] as char).collect();
        let _ = int_literal_value(&text);
    }

    /// The full per-file pass pipeline is total over soup for every
    /// classification zone.
    #[test]
    fn check_file_total(src in liney_soup()) {
        for path in [
            "crates/net/src/fuzzed.rs",
            "crates/components/src/fuzzed.rs",
            "crates/core/src/recovery.rs",
            "crates/transport/src/sync.rs",
            "tests/fuzzed.rs",
        ] {
            let info = FileInfo::classify(path);
            let _ = check_file(&info, &src);
            let _ = wbft_lint::passes::check_crate_root(path, &src);
        }
    }
}
