//! Exact-findings assertions over the fixture corpus in
//! `tests/fixtures/lint/` at the workspace root.
//!
//! Each fixture is a standalone `.rs` file the workspace scanner skips
//! (deliberate rule violations must not fail the real lint run). A header
//! of `//@` directives pins down the analysis:
//!
//! ```text
//! //@ path: crates/net/src/codec.rs      pretend workspace path (classification)
//! //@ crate-root                          also run the W0 crate-root pass
//! //@ expect: totality@6 indexing         one expected finding: rule@line what
//! //@ expect: none                        explicitly expect zero findings
//! ```
//!
//! Expected findings are compared exactly — extra findings, missing
//! findings, wrong lines, and wrong `what` keys all fail.

use wbft_lint::classify::FileInfo;
use wbft_lint::passes;
use wbft_lint::rules::Rule;

struct Fixture {
    name: String,
    pretend_path: String,
    crate_root: bool,
    expected: Vec<(Rule, u32, String)>,
    src: String,
}

fn parse_fixture(name: &str, src: &str) -> Fixture {
    let mut pretend_path = None;
    let mut crate_root = false;
    let mut expected = Vec::new();
    let mut saw_none = false;
    for line in src.lines() {
        let Some(directive) = line.strip_prefix("//@") else { continue };
        let directive = directive.trim();
        if let Some(p) = directive.strip_prefix("path:") {
            pretend_path = Some(p.trim().to_string());
        } else if directive == "crate-root" {
            crate_root = true;
        } else if let Some(e) = directive.strip_prefix("expect:") {
            let e = e.trim();
            if e == "none" {
                saw_none = true;
                continue;
            }
            let (rule_at_line, what) =
                e.split_once(' ').unwrap_or_else(|| panic!("{name}: bad expect `{e}`"));
            let (rule_name, line_no) = rule_at_line
                .split_once('@')
                .unwrap_or_else(|| panic!("{name}: expect needs rule@line, got `{e}`"));
            let rule = Rule::from_name(rule_name)
                .unwrap_or_else(|| panic!("{name}: unknown rule `{rule_name}`"));
            let line_no: u32 =
                line_no.parse().unwrap_or_else(|_| panic!("{name}: bad line in `{e}`"));
            expected.push((rule, line_no, what.to_string()));
        } else {
            panic!("{name}: unknown directive `//@ {directive}`");
        }
    }
    assert!(
        !saw_none || expected.is_empty(),
        "{name}: `expect: none` cannot mix with concrete expectations"
    );
    assert!(
        saw_none || !expected.is_empty(),
        "{name}: needs at least one `//@ expect:` (or `expect: none`)"
    );
    Fixture {
        name: name.to_string(),
        pretend_path: pretend_path.unwrap_or_else(|| panic!("{name}: missing `//@ path:`")),
        crate_root,
        expected,
        src: src.to_string(),
    }
}

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/lint")
}

#[test]
fn fixture_corpus_matches_exactly() {
    let dir = fixture_dir();
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixture dir exists")
        .map(|e| e.expect("readable entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(names.len() >= 8, "fixture corpus unexpectedly small: {names:?}");

    for name in names {
        let src = std::fs::read_to_string(dir.join(&name)).expect("readable fixture");
        let fx = parse_fixture(&name, &src);

        let info = FileInfo::classify(&fx.pretend_path);
        let mut findings = passes::check_file(&info, &fx.src);
        if fx.crate_root {
            findings.extend(passes::check_crate_root(&fx.pretend_path, &fx.src));
        }
        let got: Vec<(Rule, u32, String)> =
            findings.into_iter().map(|f| (f.rule, f.line, f.what)).collect();

        let mut want = fx.expected.clone();
        want.sort_by(|a, b| (a.1, a.0, &a.2).cmp(&(b.1, b.0, &b.2)));
        let mut got_sorted = got.clone();
        got_sorted.sort_by(|a, b| (a.1, a.0, &a.2).cmp(&(b.1, b.0, &b.2)));
        assert_eq!(
            got_sorted, want,
            "{}: findings diverge from the `//@ expect:` header",
            fx.name
        );
    }
}

#[test]
fn fixture_paths_are_never_scanned_in_real_runs() {
    // The workspace walker must skip the corpus — its files are deliberate
    // violations. A leak here would show up as nonzero findings in the
    // repo-wide scan (also asserted by `repo_is_clean` in clean.rs).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = wbft_lint::run_workspace(&root).expect("scan succeeds");
    for f in &report.findings {
        assert!(
            !f.path.contains("fixtures/lint"),
            "fixture leaked into the workspace scan: {f}"
        );
    }
}
