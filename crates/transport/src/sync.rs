//! The anti-entropy catch-up wire protocol: how a restarted or lagging node
//! recovers the committed-block suffix it is missing from its peers.
//!
//! Rides the reserved [`SYNC_CHANNEL`] with ordinary datagram framing. The
//! protocol is symmetric and pull-paced: every node periodically announces
//! its chain height ([`SyncMsg::HeadAnnounce`]); any peer whose chain is
//! longer answers with one bounded [`SyncMsg::BlockChunk`] starting at the
//! announced height. The next announce pulls the next chunk, so a node that
//! is far behind converges one datagram per round trip without any flow
//! control — replacing reliance on the post-completion NACK linger for tail
//! loss.
//!
//! Messages are *unsigned* (sync peers are inside the peer table, but UDP
//! sources are spoofable): a receiver MUST verify each block against its
//! own digest chain before adopting it. The per-block `digest` here is the
//! cumulative journal chain digest (`wbft_journal::chain_digest`) after the
//! block, so a chunk extends a local chain head verifiably or not at all —
//! forged payloads cannot survive the check. The block `payload` bytes are
//! opaque to the transport (the consensus layer encodes its tx batch).

use bytes::Bytes;
use wbft_net::datagram::MAX_DATAGRAM_PAYLOAD;
use wbft_net::WireError;

/// Reserved datagram channel for anti-entropy sync traffic (peer tables
/// must not assign it, like the control and client channels).
// wbft-lint: allow(wire-safety) — the defining constant for the reserved sync channel
pub const SYNC_CHANNEL: u8 = 0xfd;

/// Per-block framing cost inside a [`SyncMsg::BlockChunk`]: u16 payload
/// length + 32-byte chain digest.
pub const SYNC_BLOCK_OVERHEAD: usize = 2 + 32;

/// Chunk header cost: tag + start epoch + block count.
const CHUNK_HEADER: usize = 1 + 8 + 1;

/// Budget for the blocks of one chunk; a responder accumulates blocks while
/// their framed size fits, so every chunk is a single datagram.
pub const SYNC_CHUNK_BUDGET: usize = MAX_DATAGRAM_PAYLOAD - CHUNK_HEADER;

/// Most blocks one chunk may carry (the count is a single byte).
pub const MAX_CHUNK_BLOCKS: usize = u8::MAX as usize;

/// One committed block in flight: the consensus layer's encoded tx batch
/// plus the cumulative journal chain digest *after* this block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyncBlock {
    pub payload: Bytes,
    pub digest: [u8; 32],
}

impl SyncBlock {
    /// Framed size of this block inside a chunk.
    pub fn wire_len(&self) -> usize {
        SYNC_BLOCK_OVERHEAD + self.payload.len()
    }
}

/// One message on the sync channel (either direction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncMsg {
    /// Periodic advertisement: "my chain has `height` committed blocks".
    HeadAnnounce { height: u64 },
    /// Reply to a shorter peer: the committed blocks from `start_epoch`
    /// on, as many as fit one datagram, in epoch order.
    BlockChunk { start_epoch: u64, blocks: Vec<SyncBlock> },
}

const TAG_HEAD: u8 = 1;
const TAG_CHUNK: u8 = 2;

impl SyncMsg {
    /// Encodes the message payload (goes inside a datagram on
    /// [`SYNC_CHANNEL`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] when a chunk exceeds one datagram or the
    /// one-byte block count — refused, never truncated (responders budget
    /// with [`SYNC_CHUNK_BUDGET`] instead).
    pub fn encode(&self) -> Result<Bytes, WireError> {
        let mut out = Vec::new();
        match self {
            SyncMsg::HeadAnnounce { height } => {
                out.push(TAG_HEAD);
                out.extend_from_slice(&height.to_le_bytes());
            }
            SyncMsg::BlockChunk { start_epoch, blocks } => {
                if blocks.len() > MAX_CHUNK_BLOCKS {
                    return Err(WireError::Oversize("sync chunk block count"));
                }
                let count = u8::try_from(blocks.len())
                    .map_err(|_| WireError::Oversize("sync chunk block count"))?;
                out.push(TAG_CHUNK);
                out.extend_from_slice(&start_epoch.to_le_bytes());
                out.push(count);
                for b in blocks {
                    let len = u16::try_from(b.payload.len())
                        .map_err(|_| WireError::Oversize("sync block payload"))?;
                    out.extend_from_slice(&len.to_le_bytes());
                    out.extend_from_slice(&b.payload);
                    out.extend_from_slice(&b.digest);
                }
                if out.len() > MAX_DATAGRAM_PAYLOAD {
                    return Err(WireError::Oversize("sync chunk"));
                }
            }
        }
        Ok(Bytes::from(out))
    }

    /// Decodes one payload; `None` for anything malformed (length-checked,
    /// never a panic — sync messages are unauthenticated).
    pub fn decode(data: &[u8]) -> Option<SyncMsg> {
        let (&tag, rest) = data.split_first()?;
        match tag {
            TAG_HEAD => {
                if rest.len() != 8 {
                    return None;
                }
                Some(SyncMsg::HeadAnnounce { height: u64::from_le_bytes(rest.try_into().ok()?) })
            }
            TAG_CHUNK => {
                let start_epoch = u64::from_le_bytes(rest.get(..8)?.try_into().ok()?);
                let count = *rest.get(8)? as usize;
                let mut body = rest.get(9..)?;
                let mut blocks = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = u16::from_le_bytes(body.get(..2)?.try_into().ok()?) as usize;
                    let payload = body.get(2..2 + len)?;
                    let digest: [u8; 32] = body.get(2 + len..2 + len + 32)?.try_into().ok()?;
                    blocks.push(SyncBlock { payload: Bytes::copy_from_slice(payload), digest });
                    body = body.get(2 + len + 32..)?;
                }
                body.is_empty().then_some(SyncMsg::BlockChunk { start_epoch, blocks })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: SyncMsg) {
        let enc = msg.encode().expect("encodes");
        assert_eq!(SyncMsg::decode(&enc), Some(msg));
    }

    #[test]
    fn variants_round_trip() {
        roundtrip(SyncMsg::HeadAnnounce { height: 0 });
        roundtrip(SyncMsg::HeadAnnounce { height: u64::MAX });
        roundtrip(SyncMsg::BlockChunk { start_epoch: 3, blocks: vec![] });
        roundtrip(SyncMsg::BlockChunk {
            start_epoch: 7,
            blocks: vec![
                SyncBlock { payload: Bytes::from_static(b"batch-a"), digest: [1; 32] },
                SyncBlock { payload: Bytes::new(), digest: [2; 32] },
            ],
        });
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert_eq!(SyncMsg::decode(&[]), None);
        assert_eq!(SyncMsg::decode(&[9]), None);
        assert_eq!(SyncMsg::decode(&[TAG_HEAD, 1, 2]), None); // short height
        let good = SyncMsg::BlockChunk {
            start_epoch: 1,
            blocks: vec![SyncBlock { payload: Bytes::from_static(b"x"), digest: [3; 32] }],
        }
        .encode()
        .unwrap();
        assert_eq!(SyncMsg::decode(&good[..good.len() - 1]), None); // truncated digest
        let mut trailing = good.to_vec();
        trailing.push(0);
        assert_eq!(SyncMsg::decode(&trailing), None); // trailing junk
    }

    #[test]
    fn oversize_chunks_are_refused_not_truncated() {
        let big = SyncMsg::BlockChunk {
            start_epoch: 0,
            blocks: vec![SyncBlock {
                payload: Bytes::from(vec![0u8; MAX_DATAGRAM_PAYLOAD]),
                digest: [0; 32],
            }],
        };
        assert!(big.encode().is_err());
        // A budget-respecting chunk always encodes and fits one datagram.
        let mut blocks = Vec::new();
        let mut used = 0usize;
        while blocks.len() < MAX_CHUNK_BLOCKS {
            let b = SyncBlock { payload: Bytes::from(vec![7u8; 100]), digest: [7; 32] };
            if used + b.wire_len() > SYNC_CHUNK_BUDGET {
                break;
            }
            used += b.wire_len();
            blocks.push(b);
        }
        assert!(!blocks.is_empty());
        let msg = SyncMsg::BlockChunk { start_epoch: 2, blocks };
        let enc = msg.encode().expect("budgeted chunk fits");
        assert!(enc.len() <= MAX_DATAGRAM_PAYLOAD);
        assert_eq!(SyncMsg::decode(&enc), Some(msg));
    }
}
