//! The client-submission wire protocol: how external processes talk to a
//! consensus node over UDP.
//!
//! Clients are not consensus peers — they hold no keys, appear in no
//! [`PeerTable`](crate::PeerTable), and speak a tiny datagram protocol on
//! the reserved [`CLIENT_CHANNEL`]: submit a transaction, receive an
//! explicit admit/reject (the mempool's backpressure signal), subscribe to
//! the committed-block stream, and request a graceful stop. Messages ride
//! the standard [`Datagram`](wbft_net::datagram::Datagram) framing with
//! `src = `[`CLIENT_SRC`] (clients have no node id), so the runtime's
//! existing decode path handles them; the node side answers through a
//! [`ClientGateway`](crate::runtime::ClientGateway) implementation.
//!
//! Commit notifications carry transaction *digests*, not bodies: a client
//! matches the digests of its own submissions to measure commit latency,
//! and the block contents are already public on the consensus channel.

use bytes::Bytes;
use wbft_net::datagram::MAX_DATAGRAM_PAYLOAD;
use wbft_net::WireError;

/// Reserved datagram channel for client traffic (peer tables must not
/// assign it, like the control channel).
// wbft-lint: allow(wire-safety) — the defining constant for the reserved client channel
pub const CLIENT_CHANNEL: u8 = 0xfe;

/// Most digests one [`ClientMsg::Block`] may carry and still fit a single
/// datagram (senders chunk longer blocks into several messages with the
/// same epoch).
pub const MAX_BLOCK_DIGESTS: usize = (MAX_DATAGRAM_PAYLOAD - 11) / 32;

/// The `src` id clients stamp on their datagrams (never a valid node id —
/// tables are validated dense `0..n` with `n` far below this).
pub const CLIENT_SRC: u16 = u16::MAX;

/// The node's answer to one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitVerdict {
    /// Admitted into the mempool.
    Admitted,
    /// Dropped as a duplicate (pending, in flight, or already committed).
    Duplicate,
    /// Dropped — the mempool is full; back off and resubmit.
    Full,
}

impl SubmitVerdict {
    fn to_byte(self) -> u8 {
        match self {
            SubmitVerdict::Admitted => 0,
            SubmitVerdict::Duplicate => 1,
            SubmitVerdict::Full => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(SubmitVerdict::Admitted),
            1 => Some(SubmitVerdict::Duplicate),
            2 => Some(SubmitVerdict::Full),
            _ => None,
        }
    }
}

/// One message on the client channel (either direction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientMsg {
    /// Client → node: one transaction for the mempool.
    Submit {
        /// Transaction bytes.
        tx: Bytes,
    },
    /// Node → client: the admit/reject verdict for a submission, echoing
    /// the transaction's digest so the client can match it.
    SubmitReply {
        /// Backpressure verdict.
        verdict: SubmitVerdict,
        /// SHA-256 digest of the submitted transaction.
        digest: [u8; 32],
    },
    /// Client → node: start streaming committed blocks to this address.
    Subscribe,
    /// Node → client: one committed block, as epoch + content digests.
    Block {
        /// Epoch number.
        epoch: u64,
        /// Digest of every transaction in the block, in block order.
        digests: Vec<[u8; 32]>,
    },
    /// Client → node: request a graceful stop (finish the in-flight
    /// epoch, open no more).
    Stop,
}

const TAG_SUBMIT: u8 = 1;
const TAG_SUBMIT_REPLY: u8 = 2;
const TAG_SUBSCRIBE: u8 = 3;
const TAG_BLOCK: u8 = 4;
const TAG_STOP: u8 = 5;

impl ClientMsg {
    /// Encodes the message payload (goes inside a datagram on
    /// [`CLIENT_CHANNEL`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] for a transaction longer than a `u16` length
    /// prefix can describe or a digest list beyond [`MAX_BLOCK_DIGESTS`] —
    /// refused, never silently truncated (block senders chunk instead).
    pub fn encode(&self) -> Result<Bytes, WireError> {
        let mut out = Vec::new();
        match self {
            ClientMsg::Submit { tx } => {
                let len = u16::try_from(tx.len())
                    .map_err(|_| WireError::Oversize("client transaction"))?;
                out.push(TAG_SUBMIT);
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(tx);
            }
            ClientMsg::SubmitReply { verdict, digest } => {
                out.push(TAG_SUBMIT_REPLY);
                out.push(verdict.to_byte());
                out.extend_from_slice(digest);
            }
            ClientMsg::Subscribe => out.push(TAG_SUBSCRIBE),
            ClientMsg::Block { epoch, digests } => {
                if digests.len() > MAX_BLOCK_DIGESTS {
                    return Err(WireError::Oversize("block digest list"));
                }
                let count = u16::try_from(digests.len())
                    .map_err(|_| WireError::Oversize("block digest list"))?;
                out.push(TAG_BLOCK);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
                for d in digests {
                    out.extend_from_slice(d);
                }
            }
            ClientMsg::Stop => out.push(TAG_STOP),
        }
        Ok(Bytes::from(out))
    }

    /// Decodes one payload; `None` for anything malformed (length-checked,
    /// never a panic — clients are untrusted).
    pub fn decode(data: &[u8]) -> Option<ClientMsg> {
        let (&tag, rest) = data.split_first()?;
        match tag {
            TAG_SUBMIT => {
                let len = u16::from_le_bytes(rest.get(..2)?.try_into().ok()?) as usize;
                let tx = rest.get(2..)?;
                (tx.len() == len).then(|| ClientMsg::Submit { tx: Bytes::copy_from_slice(tx) })
            }
            TAG_SUBMIT_REPLY => {
                let (&verdict_byte, digest_bytes) = rest.split_first()?;
                Some(ClientMsg::SubmitReply {
                    verdict: SubmitVerdict::from_byte(verdict_byte)?,
                    digest: digest_bytes.try_into().ok()?,
                })
            }
            TAG_SUBSCRIBE => rest.is_empty().then_some(ClientMsg::Subscribe),
            TAG_BLOCK => {
                let epoch = u64::from_le_bytes(rest.get(..8)?.try_into().ok()?);
                let count = u16::from_le_bytes(rest.get(8..10)?.try_into().ok()?) as usize;
                let body = rest.get(10..)?;
                if body.len() != count * 32 {
                    return None;
                }
                let mut digests = Vec::with_capacity(count);
                for c in body.chunks_exact(32) {
                    digests.push(c.try_into().ok()?);
                }
                Some(ClientMsg::Block { epoch, digests })
            }
            TAG_STOP => rest.is_empty().then_some(ClientMsg::Stop),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: ClientMsg) {
        let enc = msg.encode().expect("encodes");
        assert_eq!(ClientMsg::decode(&enc), Some(msg));
    }

    #[test]
    fn all_variants_round_trip() {
        roundtrip(ClientMsg::Submit { tx: Bytes::from_static(b"pay alice 5") });
        roundtrip(ClientMsg::Submit { tx: Bytes::new() });
        roundtrip(ClientMsg::SubmitReply {
            verdict: SubmitVerdict::Admitted,
            digest: [7; 32],
        });
        roundtrip(ClientMsg::SubmitReply { verdict: SubmitVerdict::Full, digest: [0; 32] });
        roundtrip(ClientMsg::Subscribe);
        roundtrip(ClientMsg::Block { epoch: 42, digests: vec![[1; 32], [2; 32]] });
        roundtrip(ClientMsg::Block { epoch: 0, digests: vec![] });
        roundtrip(ClientMsg::Stop);
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert_eq!(ClientMsg::decode(&[]), None);
        assert_eq!(ClientMsg::decode(&[99]), None);
        assert_eq!(ClientMsg::decode(&[TAG_SUBMIT, 5, 0, b'x']), None); // short tx
        assert_eq!(ClientMsg::decode(&[TAG_SUBMIT_REPLY, 9]), None);
        assert_eq!(ClientMsg::decode(&[TAG_SUBMIT_REPLY, 3, 0]), None); // bad verdict
        assert_eq!(ClientMsg::decode(&[TAG_SUBSCRIBE, 0]), None); // trailing byte
        let mut block =
            ClientMsg::Block { epoch: 1, digests: vec![[1; 32]] }.encode().unwrap().to_vec();
        block.pop(); // truncated digest
        assert_eq!(ClientMsg::decode(&block), None);
        assert_eq!(ClientMsg::decode(&[TAG_STOP, 1]), None);
    }

    #[test]
    fn submit_tx_bytes_survive_exactly() {
        let tx = Bytes::from((0u16..300).map(|v| v as u8).collect::<Vec<u8>>());
        let enc = ClientMsg::Submit { tx: tx.clone() }.encode().expect("encodes");
        match ClientMsg::decode(&enc) {
            Some(ClientMsg::Submit { tx: got }) => assert_eq!(got, tx),
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn oversize_messages_are_refused_not_truncated() {
        let huge = ClientMsg::Submit { tx: Bytes::from(vec![0u8; u16::MAX as usize + 1]) };
        assert!(huge.encode().is_err());
        let wide = ClientMsg::Block { epoch: 0, digests: vec![[0; 32]; MAX_BLOCK_DIGESTS + 1] };
        assert!(wide.encode().is_err());
        let max = ClientMsg::Block { epoch: 0, digests: vec![[0; 32]; MAX_BLOCK_DIGESTS] };
        let enc = max.encode().expect("exact limit fits the codec");
        assert!(enc.len() <= MAX_DATAGRAM_PAYLOAD);
        assert_eq!(ClientMsg::decode(&enc), Some(max));
    }
}
