//! A single-threaded poll/timer runtime that drives one [`NodeBehavior`]
//! over a real `std::net::UdpSocket`.
//!
//! The runtime honours the full sans-io contract the simulator defines:
//!
//! * `on_start` / `on_frame` / `on_timer` callbacks run exactly as in the
//!   simulator, with a [`NodeCtx`] built via [`NodeCtx::external`];
//! * [`Command::Broadcast`] becomes one UDP datagram per member of the
//!   channel's multicast set (see [`PeerTable::multicast_set`]); `slot`
//!   coalescing is a transmit-queue concept and sends here are immediate,
//!   so slots are ignored — superseding a frame that already left the
//!   socket is impossible, exactly as on a real radio that already aired it;
//! * [`Command::SetTimer`] feeds a monotonic binary-heap timer wheel,
//!   delivered in `(fire time, issue order)` order like the simulator's
//!   event queue;
//! * [`Command::JoinChannel`]/[`Command::LeaveChannel`] edit the local
//!   receive filter (the peer table's static channel sets define where
//!   broadcasts go);
//! * real monotonic time maps onto [`SimTime`] as microseconds since
//!   [`UdpRuntime::new`], so protocol timers mean the same thing they mean
//!   in simulation.
//!
//! Malformed, truncated, version-skewed or foreign datagrams are counted
//! and dropped — never a panic, mirroring how the simulator models
//! corruption as loss. Virtual CPU charges are recorded in [`Metrics`] but
//! not slept: a real run measures real elapsed time.

use crate::client::CLIENT_CHANNEL;
use crate::config::PeerTable;
use crate::TransportStats;
use bytes::Bytes;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};
use wbft_net::datagram::Datagram;
use wbft_wireless::{ChannelId, Command, Frame, Metrics, NodeBehavior, NodeCtx, NodeId, SimTime};

/// Largest UDP datagram the receive path accepts.
const RECV_BUF_BYTES: usize = 65_536;

/// Upper bound on one blocking poll, so wall deadlines and completion
/// predicates are re-checked even on an idle socket.
const POLL_QUANTUM: Duration = Duration::from_millis(20);

/// Reserved control channel for the startup barrier; peer tables must not
/// assign it to protocol traffic.
// wbft-lint: allow(wire-safety) — the defining constant for the reserved control channel
pub const CONTROL_CHANNEL: u8 = 0xff;

/// Barrier probe: "are you bound yet?". Answered with [`READY_PAYLOAD`].
const HELLO_PAYLOAD: &[u8] = b"HELLO";

/// Barrier answer: "I hear you". Never answered (no ping-pong loops).
const READY_PAYLOAD: &[u8] = b"READY";

/// How often the barrier re-probes unready peers.
const HELLO_INTERVAL: Duration = Duration::from_millis(100);

/// Protocol frames that arrive while this node is still in its barrier are
/// buffered (the sender has already started) and delivered right after
/// `on_start`; beyond this many, the oldest are dropped and NACK recovery
/// takes over.
const MAX_BARRIER_BUFFER: usize = 4_096;

/// Handles datagrams on the reserved client channel
/// ([`CLIENT_CHANNEL`](crate::client::CLIENT_CHANNEL)) — the runtime stays
/// generic over protocol behaviors while a service layer plugs in
/// submission handling and the committed-block stream.
///
/// `on_datagram` answers one client payload (replies go back to `from`);
/// `on_tick` runs once per event-loop iteration to emit unsolicited
/// messages (commit notifications to subscribers). Outgoing payloads are
/// wrapped in client-channel datagrams by the runtime.
pub trait ClientGateway: Send {
    /// One datagram arrived on the client channel.
    fn on_datagram(
        &mut self,
        from: SocketAddr,
        payload: &Bytes,
        now: SimTime,
        out: &mut Vec<(SocketAddr, Bytes)>,
    );

    /// Called every event-loop iteration; push `(addr, payload)` messages.
    fn on_tick(&mut self, now: SimTime, out: &mut Vec<(SocketAddr, Bytes)>);

    /// A client-channel send to `addr` failed at the socket. Gateways
    /// tracking per-address state (subscriber lists) use this to notice
    /// dead peers and evict them; the default ignores it.
    fn on_send_failed(&mut self, _addr: SocketAddr) {}

    /// How many client addresses this gateway has evicted so far — the
    /// runtime mirrors it into
    /// [`TransportStats::client_evictions`](crate::TransportStats).
    fn evictions(&self) -> u64 {
        0
    }
}

/// Drives one behavior over UDP.
pub struct UdpRuntime<B: NodeBehavior> {
    me: NodeId,
    behavior: B,
    socket: UdpSocket,
    peers: PeerTable,
    /// Channels this node currently listens on (receive filter).
    joined: BTreeSet<u8>,
    /// `(fire-at µs, issue seq, timer id)` min-heap.
    timers: BinaryHeap<Reverse<(u64, u64, u64)>>,
    timer_seq: u64,
    rng: ChaCha12Rng,
    start: Instant,
    started: bool,
    /// When the completion predicate first held, if it has.
    completed_at: Option<SimTime>,
    /// Peers confirmed reachable by the startup barrier.
    ready_peers: BTreeSet<u16>,
    /// Peers the barrier does not wait for (designated late joiners that
    /// bootstrap over anti-entropy once they appear).
    late_peers: BTreeSet<u16>,
    /// Protocol frames received during the barrier, delivered after start.
    pending_frames: Vec<Frame>,
    metrics: Metrics,
    stats: TransportStats,
    client: Option<Box<dyn ClientGateway>>,
    buf: Vec<u8>,
}

impl<B: NodeBehavior> UdpRuntime<B> {
    /// Binds `me`'s address from the peer table and wraps `behavior`.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an invalid table or unknown id; socket errors
    /// from the bind.
    pub fn new(peers: PeerTable, me: u16, behavior: B, seed: u64) -> io::Result<Self> {
        let addr = peers
            .addr_of(me)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unknown node id"))?;
        let socket = UdpSocket::bind(addr)?;
        Self::from_socket(socket, peers, me, behavior, seed)
    }

    /// Wraps an already-bound socket (lets callers bind ephemeral ports
    /// first and build the peer table from the resulting addresses,
    /// avoiding the bind/re-bind race).
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the peer table fails validation or lacks `me`.
    pub fn from_socket(
        socket: UdpSocket,
        peers: PeerTable,
        me: u16,
        behavior: B,
        seed: u64,
    ) -> io::Result<Self> {
        peers.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let joined: BTreeSet<u8> = peers
            .entry(me)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unknown node id"))?
            .channels
            .iter()
            .copied()
            .collect();
        let n = peers.len();
        Ok(UdpRuntime {
            me: NodeId(me),
            behavior,
            socket,
            peers,
            joined,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            rng: ChaCha12Rng::seed_from_u64(seed),
            start: Instant::now(),
            started: false,
            completed_at: None,
            ready_peers: BTreeSet::new(),
            late_peers: BTreeSet::new(),
            pending_frames: Vec::new(),
            metrics: Metrics::new(n),
            stats: TransportStats::default(),
            client: None,
            buf: vec![0; RECV_BUF_BYTES],
        })
    }

    /// Declares peers the startup barrier must not wait for: designated
    /// late joiners whose processes start mid-run and bootstrap their
    /// chains over the anti-entropy sync channel. Waiting for an absent
    /// joiner would deadlock the whole cluster at the barrier, so the
    /// quorum of on-time peers starts without them — their datagrams are
    /// accepted whenever they do appear (the receive path never requires
    /// barrier readiness from a sender).
    pub fn set_late_peers(&mut self, peers: impl IntoIterator<Item = u16>) {
        self.late_peers = peers.into_iter().collect();
    }

    /// Installs the client-channel gateway: datagrams on
    /// [`CLIENT_CHANNEL`](crate::client::CLIENT_CHANNEL) are routed to it
    /// (they are counted foreign drops otherwise), and its tick hook runs
    /// every event-loop iteration.
    pub fn set_client_gateway(&mut self, gateway: Box<dyn ClientGateway>) {
        self.client = Some(gateway);
    }

    /// Monotonic time since construction, as [`SimTime`] microseconds.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// The driven behavior.
    pub fn behavior(&self) -> &B {
        &self.behavior
    }

    /// Per-node counters in the simulator's [`Metrics`] schema (only this
    /// node's row is populated — each process owns one node).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Transport-level datagram counters.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// Mutable access to the counters, so a driver can fold in counts the
    /// behavior tracked itself (the anti-entropy sync counters live in the
    /// protocol node — the runtime only routes its datagrams).
    pub fn stats_mut(&mut self) -> &mut TransportStats {
        &mut self.stats
    }

    /// When the completion predicate first held, if it has — the moment to
    /// measure elapsed time against (the post-completion linger spent
    /// answering peers' NACKs is service, not latency).
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }

    /// Runs until `pred` holds over the behavior, then keeps serving peers
    /// for `linger` more wall time (a finished node must keep answering
    /// NACK retransmissions so stragglers — up to `f` of which the protocol
    /// tolerates losing, but not more — can complete). Gives up after
    /// `wall_deadline`. Returns `true` iff the predicate held.
    ///
    /// # Errors
    ///
    /// Socket-level receive errors (timeouts and interrupts are handled
    /// internally).
    pub fn run_until(
        &mut self,
        wall_deadline: Duration,
        linger: Duration,
        mut pred: impl FnMut(&B) -> bool,
    ) -> io::Result<bool> {
        if !self.started {
            if !self.barrier(wall_deadline)? {
                return Ok(false);
            }
            self.started = true;
            self.callback(|b, ctx| b.on_start(ctx))?;
            // Frames buffered during the barrier, in arrival order.
            for frame in std::mem::take(&mut self.pending_frames) {
                self.metrics.node_mut(self.me).frames_received += 1;
                self.callback(|b, ctx| b.on_frame(&frame, ctx))?;
            }
        }
        let mut done_at: Option<Instant> = None;
        loop {
            if done_at.is_none() && pred(&self.behavior) {
                done_at = Some(Instant::now());
                if self.completed_at.is_none() {
                    self.completed_at = Some(self.now());
                }
            }
            if let Some(t) = done_at {
                if t.elapsed() >= linger {
                    return Ok(true);
                }
            }
            if self.start.elapsed() >= wall_deadline {
                return Ok(done_at.is_some());
            }
            self.fire_due_timers()?;
            self.client_tick();
            self.poll_socket_once()?;
        }
    }

    /// Lets the client gateway emit unsolicited messages (commit-stream
    /// notifications to subscribers).
    fn client_tick(&mut self) {
        let Some(mut gateway) = self.client.take() else { return };
        let mut out = Vec::new();
        gateway.on_tick(self.now(), &mut out);
        self.client = Some(gateway);
        self.send_client(out);
    }

    /// Sends gateway output as client-channel datagrams (best-effort —
    /// clients are external and lossy by contract). Failed destinations
    /// are reported back to the gateway so it can evict dead subscribers.
    fn send_client(&mut self, out: Vec<(SocketAddr, Bytes)>) {
        let mut failed: Vec<SocketAddr> = Vec::new();
        for (addr, payload) in out {
            let datagram = Datagram {
                src: self.me.0,
                channel: CLIENT_CHANNEL,
                nominal_len: 0,
                payload,
            };
            let Ok(bytes) = datagram.encode() else {
                self.stats.sends_rejected += 1;
                continue;
            };
            if self.socket.send_to(&bytes, addr).is_err() {
                self.stats.sends_failed += 1;
                failed.push(addr);
            } else {
                self.stats.client_sends += 1;
            }
        }
        if let Some(gateway) = self.client.as_mut() {
            for addr in failed {
                gateway.on_send_failed(addr);
            }
            self.stats.client_evictions = gateway.evictions();
        }
    }

    /// The startup barrier: `on_start` may send immediately, so a node must
    /// not start until every peer is bound and reachable — datagrams sent
    /// into an unbound port are gone, and NACK recovery of a lost *initial*
    /// burst costs seconds per round. Each node probes unready peers with
    /// HELLO every [`HELLO_INTERVAL`]; a HELLO is answered with READY (a
    /// READY is never answered, so there is no ping-pong). Both mark the
    /// sender reachable. A straggler that probes a peer which already left
    /// its barrier still gets its READY from the main receive path.
    ///
    /// Returns `false` if `wall_deadline` passed before all peers appeared.
    fn barrier(&mut self, wall_deadline: Duration) -> io::Result<bool> {
        let want: Vec<u16> = self
            .peers
            .peers
            .iter()
            .map(|p| p.node)
            .filter(|&id| id != self.me.0 && !self.late_peers.contains(&id))
            .collect();
        let mut last_hello = Instant::now() - HELLO_INTERVAL;
        while !want.iter().all(|id| self.ready_peers.contains(id)) {
            if self.start.elapsed() >= wall_deadline {
                return Ok(false);
            }
            if last_hello.elapsed() >= HELLO_INTERVAL {
                last_hello = Instant::now();
                for &id in &want {
                    if !self.ready_peers.contains(&id) {
                        self.send_control(id, HELLO_PAYLOAD);
                    }
                }
            }
            self.poll_socket_once()?;
        }
        Ok(true)
    }

    /// Sends one control datagram to `peer` (best-effort).
    fn send_control(&mut self, peer: u16, payload: &'static [u8]) {
        let Some(addr) = self.peers.addr_of(peer) else { return };
        let datagram = Datagram {
            src: self.me.0,
            channel: CONTROL_CHANNEL,
            nominal_len: 0,
            payload: Bytes::from_static(payload),
        };
        let Ok(bytes) = datagram.encode() else {
            self.stats.sends_failed += 1;
            return;
        };
        if self.socket.send_to(&bytes, addr).is_err() {
            self.stats.sends_failed += 1;
        }
    }

    /// Delivers every timer whose fire time has passed, in order.
    fn fire_due_timers(&mut self) -> io::Result<()> {
        let now_us = self.now().as_micros();
        while let Some(&Reverse((at, _, _))) = self.timers.peek() {
            if at > now_us {
                break;
            }
            let Some(Reverse((_, _, id))) = self.timers.pop() else { break };
            self.callback(|b, ctx| b.on_timer(id, ctx))?;
        }
        Ok(())
    }

    /// One bounded blocking receive; delivers at most one frame.
    fn poll_socket_once(&mut self) -> io::Result<()> {
        let now_us = self.now().as_micros();
        let until_timer = self
            .timers
            .peek()
            .map(|&Reverse((at, _, _))| Duration::from_micros(at.saturating_sub(now_us)))
            .unwrap_or(POLL_QUANTUM);
        let wait = until_timer.min(POLL_QUANTUM).max(Duration::from_millis(1));
        self.socket.set_read_timeout(Some(wait))?;
        let (n, from) = match self.socket.recv_from(&mut self.buf) {
            Ok(ok) => ok,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                        // A previous send_to an already-exited peer can
                        // surface here as a queued ICMP error on Linux.
                        | io::ErrorKind::ConnectionRefused
                ) =>
            {
                return Ok(())
            }
            Err(e) => return Err(e),
        };
        self.stats.datagrams_received += 1;
        let datagram = match Datagram::decode(&self.buf[..n]) {
            Ok(d) => d,
            Err(_) => {
                // Corruption is loss, as in the simulator's PHY model.
                self.stats.drops_malformed += 1;
                self.metrics.node_mut(self.me).lost_noise += 1;
                return Ok(());
            }
        };
        if datagram.channel == CLIENT_CHANNEL {
            // Client traffic is unauthenticated and source-anonymous; only
            // a configured gateway may consume it.
            let Some(mut gateway) = self.client.take() else {
                self.stats.drops_foreign += 1;
                return Ok(());
            };
            self.stats.client_datagrams += 1;
            let mut out = Vec::new();
            gateway.on_datagram(from, &datagram.payload, self.now(), &mut out);
            self.client = Some(gateway);
            self.send_client(out);
            return Ok(());
        }
        if datagram.channel == CONTROL_CHANNEL {
            let known = datagram.src != self.me.0 && self.peers.entry(datagram.src).is_some();
            if !known {
                self.stats.drops_foreign += 1;
            } else if datagram.payload.as_ref() == HELLO_PAYLOAD {
                self.ready_peers.insert(datagram.src);
                self.send_control(datagram.src, READY_PAYLOAD);
            } else if datagram.payload.as_ref() == READY_PAYLOAD {
                self.ready_peers.insert(datagram.src);
            } else {
                self.stats.drops_foreign += 1;
            }
            return Ok(());
        }
        // The reserved sync channel belongs to no peer-table entry: any
        // known peer may speak on it (the behavior verifies digest chains
        // itself, since sync traffic is unsigned). All other channels pass
        // the usual joined/claimed filter.
        let foreign = datagram.src == self.me.0
            || if datagram.channel == crate::sync::SYNC_CHANNEL {
                self.peers.entry(datagram.src).is_none()
            } else {
                !self.joined.contains(&datagram.channel)
                    || self
                        .peers
                        .entry(datagram.src)
                        .is_none_or(|p| !p.channels.contains(&datagram.channel))
            };
        if foreign {
            self.stats.drops_foreign += 1;
            return Ok(());
        }
        let frame = Frame {
            src: NodeId(datagram.src),
            channel: ChannelId(datagram.channel),
            payload: datagram.payload,
            nominal_len: datagram.nominal_len as usize,
        };
        if !self.started {
            // A peer that already left its barrier can legitimately send
            // protocol frames while we are still in ours; hold them for
            // delivery right after `on_start`.
            if self.pending_frames.len() < MAX_BARRIER_BUFFER {
                self.pending_frames.push(frame);
            } else {
                self.stats.drops_overflow += 1;
            }
            return Ok(());
        }
        self.metrics.node_mut(self.me).frames_received += 1;
        self.callback(|b, ctx| b.on_frame(&frame, ctx))
    }

    /// Runs one behavior callback and applies its commands.
    fn callback(&mut self, f: impl FnOnce(&mut B, &mut NodeCtx)) -> io::Result<()> {
        let now = self.now();
        let mut ctx = NodeCtx::external(now, self.me, &mut self.rng);
        f(&mut self.behavior, &mut ctx);
        let (cmds, charged) = ctx.finish();
        self.metrics.node_mut(self.me).cpu_time += charged;
        for cmd in cmds {
            match cmd {
                Command::Broadcast { channel, payload, nominal_len, slot: _ } => {
                    self.broadcast(channel, payload, nominal_len);
                }
                Command::SetTimer { after, id } => {
                    self.timer_seq += 1;
                    self.timers.push(Reverse((
                        (now + after).as_micros(),
                        self.timer_seq,
                        id,
                    )));
                }
                Command::JoinChannel(ch) => {
                    self.joined.insert(ch.0);
                }
                Command::LeaveChannel(ch) => {
                    self.joined.remove(&ch.0);
                }
            }
        }
        Ok(())
    }

    /// Sends one datagram to every member of the channel's multicast set.
    /// Send failures are counted, never fatal — UDP is lossy by contract.
    fn broadcast(&mut self, channel: ChannelId, payload: Bytes, nominal_len: usize) {
        let Ok(nominal) = u32::try_from(nominal_len) else {
            // Absurd claimed size: refuse like any other oversized send.
            self.stats.sends_rejected += 1;
            return;
        };
        let datagram = Datagram {
            src: self.me.0,
            channel: channel.0,
            nominal_len: nominal,
            payload,
        };
        let Ok(bytes) = datagram.encode() else {
            // Oversized for one UDP datagram: refuse, don't truncate.
            self.stats.sends_rejected += 1;
            return;
        };
        let m = self.metrics.node_mut(self.me);
        m.channel_accesses += 1;
        m.bytes_sent += nominal_len as u64;
        // The reserved sync channel has no claimants in the table; its
        // multicast set is every other peer.
        let targets = if channel.0 == crate::sync::SYNC_CHANNEL {
            self.peers
                .peers
                .iter()
                .filter(|p| p.node != self.me.0)
                .map(|p| p.addr)
                .collect()
        } else {
            self.peers.multicast_set(self.me.0, channel)
        };
        for addr in targets {
            if self.socket.send_to(&bytes, addr).is_err() {
                self.stats.sends_failed += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use wbft_wireless::SimDuration;

    /// Binds `n` loopback sockets and builds the matching peer table.
    fn loopback_cluster(n: usize) -> (Vec<UdpSocket>, PeerTable) {
        let sockets: Vec<UdpSocket> =
            (0..n).map(|_| UdpSocket::bind("127.0.0.1:0").unwrap()).collect();
        let ports: Vec<u16> = sockets.iter().map(|s| s.local_addr().unwrap().port()).collect();
        (sockets, PeerTable::loopback(&ports))
    }

    struct Chatter {
        to_send: usize,
        received: Vec<(NodeId, usize)>,
    }

    impl NodeBehavior for Chatter {
        fn on_start(&mut self, ctx: &mut NodeCtx) {
            for _ in 0..self.to_send {
                ctx.broadcast(ChannelId(0), Bytes::from_static(&[9; 40]), 120);
            }
        }
        fn on_frame(&mut self, frame: &Frame, _ctx: &mut NodeCtx) {
            self.received.push((frame.src, frame.nominal_len));
        }
        fn on_timer(&mut self, _id: u64, _ctx: &mut NodeCtx) {}
    }

    #[test]
    fn frames_cross_real_sockets() {
        let (mut sockets, table) = loopback_cluster(2);
        let receiver_socket = sockets.pop().unwrap();
        let sender_socket = sockets.pop().unwrap();
        let table2 = table.clone();
        let sender = std::thread::spawn(move || {
            let mut rt = UdpRuntime::from_socket(
                sender_socket,
                table2,
                0,
                Chatter { to_send: 3, received: Vec::new() },
                1,
            )
            .unwrap();
            rt.run_until(Duration::from_secs(10), Duration::from_millis(200), |_| true).unwrap();
        });
        let mut rt = UdpRuntime::from_socket(
            receiver_socket,
            table,
            1,
            Chatter { to_send: 0, received: Vec::new() },
            2,
        )
        .unwrap();
        let ok = rt
            .run_until(Duration::from_secs(10), Duration::ZERO, |b| b.received.len() == 3)
            .unwrap();
        sender.join().unwrap();
        assert!(ok, "receiver saw {:?}", rt.behavior().received);
        // The nominal length (120) survives the trip, not the payload size.
        assert!(rt.behavior().received.iter().all(|&(src, nom)| src == NodeId(0) && nom == 120));
        assert_eq!(rt.metrics().node(NodeId(1)).frames_received, 3);
    }

    #[test]
    fn timers_fire_in_order_on_real_clock() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl NodeBehavior for TimerNode {
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                ctx.set_timer(SimDuration::from_millis(60), 3);
                ctx.set_timer(SimDuration::from_millis(20), 1);
                ctx.set_timer(SimDuration::from_millis(40), 2);
            }
            fn on_frame(&mut self, _f: &Frame, _ctx: &mut NodeCtx) {}
            fn on_timer(&mut self, id: u64, _ctx: &mut NodeCtx) {
                self.fired.push(id);
            }
        }
        let (mut sockets, table) = loopback_cluster(1);
        let mut rt = UdpRuntime::from_socket(
            sockets.pop().unwrap(),
            table,
            0,
            TimerNode { fired: Vec::new() },
            3,
        )
        .unwrap();
        let ok = rt
            .run_until(Duration::from_secs(5), Duration::ZERO, |b| b.fired.len() == 3)
            .unwrap();
        assert!(ok);
        assert_eq!(rt.behavior().fired, vec![1, 2, 3]);
    }

    #[test]
    fn a_designated_late_peer_does_not_block_the_barrier() {
        // Node 0's socket stays bound but silent (it never answers HELLO).
        // Marked late, it must not hold node 1 in the barrier; unmarked, it
        // must (the deadline elapses and run_until reports failure).
        let (mut sockets, table) = loopback_cluster(2);
        let receiver_socket = sockets.pop().unwrap();
        let _absent_joiner = sockets.pop().unwrap();
        let mut rt = UdpRuntime::from_socket(
            receiver_socket.try_clone().unwrap(),
            table.clone(),
            1,
            Chatter { to_send: 0, received: Vec::new() },
            8,
        )
        .unwrap();
        rt.set_late_peers([0]);
        let ok = rt.run_until(Duration::from_secs(5), Duration::ZERO, |_| true).unwrap();
        assert!(ok, "barrier must not wait for a designated late joiner");
        let mut strict = UdpRuntime::from_socket(
            receiver_socket,
            table,
            1,
            Chatter { to_send: 0, received: Vec::new() },
            9,
        )
        .unwrap();
        let ok = strict.run_until(Duration::from_millis(200), Duration::ZERO, |_| true).unwrap();
        assert!(!ok, "without the late marking the barrier must wait for node 0");
    }

    #[test]
    fn garbage_and_foreign_datagrams_are_counted_drops() {
        let (mut sockets, mut table) = loopback_cluster(2);
        // Node 1 listens on channel 0 only; node 0 claims channel 0.
        table.peers[0].channels = vec![0];
        let receiver_socket = sockets.pop().unwrap();
        let injector = sockets.pop().unwrap();
        let addr = receiver_socket.local_addr().unwrap();
        // Satisfy the receiver's startup barrier on node 0's behalf.
        let ready = Datagram {
            src: 0,
            channel: CONTROL_CHANNEL,
            nominal_len: 0,
            payload: Bytes::from_static(READY_PAYLOAD),
        };
        injector.send_to(&ready.encode().unwrap(), addr).unwrap();
        // Raw garbage, a wrong-channel frame, and a self-sourced frame.
        injector.send_to(b"not a wbft datagram", addr).unwrap();
        let wrong_channel = Datagram {
            src: 0,
            channel: 7,
            nominal_len: 10,
            payload: Bytes::from_static(b"x"),
        };
        injector.send_to(&wrong_channel.encode().unwrap(), addr).unwrap();
        let self_sourced =
            Datagram { src: 1, channel: 0, nominal_len: 10, payload: Bytes::from_static(b"x") };
        injector.send_to(&self_sourced.encode().unwrap(), addr).unwrap();
        let mut rt = UdpRuntime::from_socket(
            receiver_socket,
            table,
            1,
            Chatter { to_send: 0, received: Vec::new() },
            4,
        )
        .unwrap();
        let _ = rt
            .run_until(Duration::from_millis(500), Duration::ZERO, |_| false)
            .unwrap();
        assert!(rt.behavior().received.is_empty());
        assert_eq!(rt.stats().drops_malformed, 1);
        assert_eq!(rt.stats().drops_foreign, 2);
        assert_eq!(rt.metrics().node(NodeId(1)).frames_received, 0);
    }

    #[test]
    fn failed_client_sends_reach_the_gateway_and_evictions_hit_stats() {
        /// Pushes one message to an unsendable address (port 0 fails at
        /// `send_to` on every platform we run), then evicts it on the
        /// failure callback.
        struct OneShotGateway {
            pushed: bool,
            evicted: u64,
        }
        impl ClientGateway for OneShotGateway {
            fn on_datagram(
                &mut self,
                _from: SocketAddr,
                _payload: &Bytes,
                _now: SimTime,
                _out: &mut Vec<(SocketAddr, Bytes)>,
            ) {
            }
            fn on_tick(&mut self, _now: SimTime, out: &mut Vec<(SocketAddr, Bytes)>) {
                if !self.pushed {
                    self.pushed = true;
                    out.push(("127.0.0.1:0".parse().unwrap(), Bytes::from_static(b"z")));
                }
            }
            fn on_send_failed(&mut self, _addr: SocketAddr) {
                self.evicted += 1;
            }
            fn evictions(&self) -> u64 {
                self.evicted
            }
        }
        let (mut sockets, table) = loopback_cluster(1);
        let mut rt = UdpRuntime::from_socket(
            sockets.pop().unwrap(),
            table,
            0,
            Chatter { to_send: 0, received: Vec::new() },
            6,
        )
        .unwrap();
        rt.set_client_gateway(Box::new(OneShotGateway { pushed: false, evicted: 0 }));
        let _ = rt.run_until(Duration::from_millis(300), Duration::ZERO, |_| false).unwrap();
        assert_eq!(rt.stats().sends_failed, 1);
        assert_eq!(rt.stats().client_evictions, 1);
    }

    #[test]
    fn join_and_leave_edit_the_receive_filter() {
        struct Joiner {
            got: Vec<u8>,
        }
        impl NodeBehavior for Joiner {
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                ctx.join_channel(ChannelId(2));
                ctx.leave_channel(ChannelId(0));
            }
            fn on_frame(&mut self, f: &Frame, _ctx: &mut NodeCtx) {
                self.got.push(f.channel.0);
            }
            fn on_timer(&mut self, _id: u64, _ctx: &mut NodeCtx) {}
        }
        let (mut sockets, mut table) = loopback_cluster(2);
        table.peers[0].channels = vec![0, 2];
        let receiver_socket = sockets.pop().unwrap();
        let injector = sockets.pop().unwrap();
        let addr = receiver_socket.local_addr().unwrap();
        let mut rt =
            UdpRuntime::from_socket(receiver_socket, table, 1, Joiner { got: Vec::new() }, 5)
                .unwrap();
        // Deliver on the joined channel 2 (accepted) and the left channel 0
        // (dropped as foreign).
        let (tx, rx) = mpsc::channel();
        let sender = std::thread::spawn(move || {
            // Release the receiver's barrier, then give on_start a moment
            // to run inside run_until before delivering frames.
            let ready = Datagram {
                src: 0,
                channel: CONTROL_CHANNEL,
                nominal_len: 0,
                payload: Bytes::from_static(READY_PAYLOAD),
            };
            injector.send_to(&ready.encode().unwrap(), addr).unwrap();
            std::thread::sleep(Duration::from_millis(200));
            for ch in [2u8, 0] {
                let d = Datagram {
                    src: 0,
                    channel: ch,
                    nominal_len: 5,
                    payload: Bytes::from_static(b"y"),
                };
                injector.send_to(&d.encode().unwrap(), addr).unwrap();
            }
            tx.send(()).unwrap();
        });
        let ok = rt
            .run_until(Duration::from_secs(5), Duration::from_millis(300), |b| {
                !b.got.is_empty()
            })
            .unwrap();
        rx.recv().unwrap();
        sender.join().unwrap();
        assert!(ok);
        assert_eq!(rt.behavior().got, vec![2]);
        assert_eq!(rt.stats().drops_foreign, 1);
    }
}
