//! The peer table: who the nodes are, where their sockets live, and which
//! logical channels each one listens on.
//!
//! This is the real-network counterpart of the simulator's `Topology`:
//! channel membership becomes a *peer-address multicast set* — broadcasting
//! on channel `c` means sending one UDP datagram to every other peer whose
//! entry lists `c`. The table serializes through `wbft-report` JSON so a
//! launcher can write one file and hand it to every process:
//!
//! ```json
//! {
//!   "peers": [
//!     {"node": 0, "addr": "127.0.0.1:47001", "channels": [0]},
//!     {"node": 1, "addr": "127.0.0.1:47002", "channels": [0]}
//!   ]
//! }
//! ```

use std::net::SocketAddr;
use wbft_report::{field, FromJson, Json, JsonError, ToJson};
use wbft_wireless::ChannelId;

/// One node's network identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerEntry {
    /// The node's id (dense, zero-based — the same ids protocol code uses).
    pub node: u16,
    /// UDP socket address the node binds and receives on.
    pub addr: SocketAddr,
    /// Logical channels the node listens on.
    pub channels: Vec<u8>,
}

impl ToJson for PeerEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("node", Json::u64(self.node as u64)),
            ("addr", Json::str(self.addr.to_string())),
            ("channels", Json::arr(self.channels.iter().map(|&c| Json::u64(c as u64)))),
        ])
    }
}

impl FromJson for PeerEntry {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let node: u64 = field(j, "node")?;
        let node =
            u16::try_from(node).map_err(|_| JsonError(format!("node id {node} out of range")))?;
        let addr: String = field(j, "addr")?;
        let addr: SocketAddr = addr
            .parse()
            .map_err(|e| JsonError(format!("bad socket address \"{addr}\": {e}")))?;
        let channels: Vec<u64> = field(j, "channels")?;
        let channels = channels
            .into_iter()
            .map(|c| u8::try_from(c).map_err(|_| JsonError(format!("channel {c} out of range"))))
            .collect::<Result<_, _>>()?;
        Ok(PeerEntry { node, addr, channels })
    }
}

/// The full deployment: one entry per node, indexed by node id.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PeerTable {
    /// All peers, in node-id order.
    pub peers: Vec<PeerEntry>,
}

impl PeerTable {
    /// A loopback deployment: node `i` at `127.0.0.1:ports[i]`, everyone on
    /// channel 0 (the single-hop topology).
    pub fn loopback(ports: &[u16]) -> PeerTable {
        PeerTable {
            peers: (0u16..)
                .zip(ports)
                .map(|(node, &port)| PeerEntry {
                    node,
                    addr: SocketAddr::from(([127, 0, 0, 1], port)),
                    channels: vec![0],
                })
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `true` when the table has no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The entry of `node`, if present.
    pub fn entry(&self, node: u16) -> Option<&PeerEntry> {
        self.peers.iter().find(|p| p.node == node)
    }

    /// The socket address of `node`, if present.
    pub fn addr_of(&self, node: u16) -> Option<SocketAddr> {
        self.entry(node).map(|p| p.addr)
    }

    /// The multicast set of `channel` as seen from `me`: the addresses of
    /// every *other* peer listening on it (a node never receives its own
    /// broadcast, matching the simulator's no-self-reception rule).
    pub fn multicast_set(&self, me: u16, channel: ChannelId) -> Vec<SocketAddr> {
        self.peers
            .iter()
            .filter(|p| p.node != me && p.channels.contains(&channel.0))
            .map(|p| p.addr)
            .collect()
    }

    /// Validates the table: ids must be dense `0..n` in order (so node ids
    /// index protocol-code peer arrays), addresses unique, and no entry may
    /// claim the transport's reserved channels — control
    /// ([`crate::runtime::CONTROL_CHANNEL`]), client submission
    /// ([`crate::client::CLIENT_CHANNEL`]) and anti-entropy sync
    /// ([`crate::sync::SYNC_CHANNEL`]).
    ///
    /// # Errors
    ///
    /// A description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (i, p) in self.peers.iter().enumerate() {
            if p.node as usize != i {
                return Err(format!("peer {i} has id {} — ids must be dense 0..n", p.node));
            }
            for reserved in [
                crate::runtime::CONTROL_CHANNEL,
                crate::client::CLIENT_CHANNEL,
                crate::sync::SYNC_CHANNEL,
            ] {
                if p.channels.contains(&reserved) {
                    return Err(format!(
                        "node {} claims channel {reserved} — reserved for the transport",
                        p.node,
                    ));
                }
            }
        }
        for (i, a) in self.peers.iter().enumerate() {
            for b in self.peers.iter().skip(i + 1) {
                if a.addr == b.addr {
                    return Err(format!("nodes {} and {} share address {}", a.node, b.node, a.addr));
                }
            }
        }
        Ok(())
    }
}

impl ToJson for PeerTable {
    fn to_json(&self) -> Json {
        Json::obj([("peers", self.peers.to_json())])
    }
}

impl FromJson for PeerTable {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(PeerTable { peers: field(j, "peers")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_table_is_valid_and_round_trips() {
        let table = PeerTable::loopback(&[47001, 47002, 47003, 47004]);
        table.validate().unwrap();
        assert_eq!(table.len(), 4);
        assert_eq!(table.addr_of(2), Some(SocketAddr::from(([127, 0, 0, 1], 47003))));
        let text = table.to_json().pretty();
        let decoded = PeerTable::from_json(&wbft_report::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded, table);
        assert_eq!(decoded.to_json().pretty(), text);
    }

    #[test]
    fn multicast_set_excludes_self_and_other_channels() {
        let mut table = PeerTable::loopback(&[1, 2, 3, 4]);
        table.peers[3].channels = vec![1];
        let set = table.multicast_set(0, ChannelId(0));
        assert_eq!(
            set,
            vec![
                SocketAddr::from(([127, 0, 0, 1], 2)),
                SocketAddr::from(([127, 0, 0, 1], 3)),
            ]
        );
        assert!(table.multicast_set(3, ChannelId(1)).is_empty());
    }

    #[test]
    fn validation_rejects_sparse_ids_and_duplicate_addrs() {
        let mut table = PeerTable::loopback(&[1, 2]);
        table.peers[1].node = 5;
        assert!(table.validate().is_err());
        let mut table = PeerTable::loopback(&[1, 2]);
        table.peers[1].addr = table.peers[0].addr;
        assert!(table.validate().is_err());
    }

    #[test]
    fn validation_rejects_the_reserved_control_channel() {
        let mut table = PeerTable::loopback(&[1, 2]);
        table.peers[0].channels.push(crate::runtime::CONTROL_CHANNEL);
        assert!(table.validate().is_err());
    }

    #[test]
    fn validation_rejects_the_reserved_client_channel() {
        let mut table = PeerTable::loopback(&[1, 2]);
        table.peers[1].channels.push(crate::client::CLIENT_CHANNEL);
        assert!(table.validate().is_err());
    }

    #[test]
    fn validation_rejects_the_reserved_sync_channel() {
        let mut table = PeerTable::loopback(&[1, 2]);
        table.peers[0].channels.push(crate::sync::SYNC_CHANNEL);
        assert!(table.validate().is_err());
    }

    #[test]
    fn bad_addresses_and_ranges_fail_decode() {
        let j = wbft_report::parse(
            r#"{"peers": [{"node": 0, "addr": "not-an-addr", "channels": [0]}]}"#,
        )
        .unwrap();
        assert!(PeerTable::from_json(&j).is_err());
        let j = wbft_report::parse(
            r#"{"peers": [{"node": 0, "addr": "127.0.0.1:1", "channels": [900]}]}"#,
        )
        .unwrap();
        assert!(PeerTable::from_json(&j).is_err());
        let j = wbft_report::parse(
            r#"{"peers": [{"node": 99999, "addr": "127.0.0.1:1", "channels": [0]}]}"#,
        )
        .unwrap();
        assert!(PeerTable::from_json(&j).is_err());
    }
}
