//! The peer table: who the nodes are, where their sockets live, and which
//! logical channels each one listens on.
//!
//! This is the real-network counterpart of the simulator's `Topology`:
//! channel membership becomes a *peer-address multicast set* — broadcasting
//! on channel `c` means sending one UDP datagram to every other peer whose
//! entry lists `c`. The table serializes through `wbft-report` JSON so a
//! launcher can write one file and hand it to every process:
//!
//! ```json
//! {
//!   "peers": [
//!     {"node": 0, "addr": "127.0.0.1:47001", "channels": [0]},
//!     {"node": 1, "addr": "127.0.0.1:47002", "channels": [0]}
//!   ]
//! }
//! ```

use std::net::SocketAddr;
use wbft_report::{field, FromJson, Json, JsonError, ToJson};
use wbft_wireless::ChannelId;

/// Decodes an *optional trailing* member: absent means `None`. The
/// version member is encoded only when non-zero, which keeps genesis
/// tables byte-identical to their pre-membership encoding.
fn opt_field<T: FromJson>(j: &Json, key: &str) -> Result<Option<T>, JsonError> {
    match j.get(key) {
        None => Ok(None),
        Some(v) => Ok(Some(T::from_json(v)?)),
    }
}

/// One node's network identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerEntry {
    /// The node's id (dense, zero-based — the same ids protocol code uses).
    pub node: u16,
    /// UDP socket address the node binds and receives on.
    pub addr: SocketAddr,
    /// Logical channels the node listens on.
    pub channels: Vec<u8>,
}

impl ToJson for PeerEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("node", Json::u64(self.node as u64)),
            ("addr", Json::str(self.addr.to_string())),
            ("channels", Json::arr(self.channels.iter().map(|&c| Json::u64(c as u64)))),
        ])
    }
}

impl FromJson for PeerEntry {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let node: u64 = field(j, "node")?;
        let node =
            u16::try_from(node).map_err(|_| JsonError(format!("node id {node} out of range")))?;
        let addr: String = field(j, "addr")?;
        let addr: SocketAddr = addr
            .parse()
            .map_err(|e| JsonError(format!("bad socket address \"{addr}\": {e}")))?;
        let channels: Vec<u64> = field(j, "channels")?;
        let channels = channels
            .into_iter()
            .map(|c| u8::try_from(c).map_err(|_| JsonError(format!("channel {c} out of range"))))
            .collect::<Result<_, _>>()?;
        Ok(PeerEntry { node, addr, channels })
    }
}

/// The full deployment: one entry per node, indexed by node id.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PeerTable {
    /// All peers, in node-id order.
    pub peers: Vec<PeerEntry>,
    /// Membership version: 0 for a launcher-written genesis table, +1 per
    /// applied [`PeerUpdate`](crate::membership::PeerUpdate). Absent from
    /// the JSON encoding when 0 so genesis tables keep their exact bytes.
    pub version: u64,
}

impl PeerTable {
    /// A loopback deployment: node `i` at `127.0.0.1:ports[i]`, everyone on
    /// channel 0 (the single-hop topology).
    pub fn loopback(ports: &[u16]) -> PeerTable {
        PeerTable {
            peers: (0u16..)
                .zip(ports)
                .map(|(node, &port)| PeerEntry {
                    node,
                    addr: SocketAddr::from(([127, 0, 0, 1], port)),
                    channels: vec![0],
                })
                .collect(),
            version: 0,
        }
    }

    /// Applies one versioned membership update. Only the exact next
    /// version is accepted: replays (`version <= self.version`) and gaps
    /// (`version > self.version + 1`) are rejected without touching the
    /// table, so updates can arrive duplicated or reordered. A join must
    /// name a fresh id at a fresh address; a leave must name a present id.
    /// Joined entries keep the table in ascending id order (ids stay
    /// *node identities*, so a post-leave table is legitimately sparse).
    ///
    /// # Errors
    ///
    /// A description of why the update was refused.
    pub fn apply(&mut self, update: &crate::membership::PeerUpdate) -> Result<(), String> {
        use crate::membership::PeerOp;
        if update.version != self.version + 1 {
            return Err(format!(
                "update to version {} does not follow table version {}",
                update.version, self.version
            ));
        }
        match &update.op {
            PeerOp::Join(entry) => {
                if self.entry(entry.node).is_some() {
                    return Err(format!("join of node {}: id already present", entry.node));
                }
                if self.peers.iter().any(|p| p.addr == entry.addr) {
                    return Err(format!("join of node {}: address {} taken", entry.node, entry.addr));
                }
                for reserved in [
                    crate::runtime::CONTROL_CHANNEL,
                    crate::client::CLIENT_CHANNEL,
                    crate::sync::SYNC_CHANNEL,
                    crate::membership::MEMBERSHIP_CHANNEL,
                ] {
                    if entry.channels.contains(&reserved) {
                        return Err(format!(
                            "join of node {}: channel {reserved} is reserved",
                            entry.node
                        ));
                    }
                }
                let pos = self.peers.partition_point(|p| p.node < entry.node);
                self.peers.insert(pos, entry.clone());
            }
            PeerOp::Leave(node) => {
                let Some(pos) = self.peers.iter().position(|p| p.node == *node) else {
                    return Err(format!("leave of node {node}: not in the table"));
                };
                self.peers.remove(pos);
            }
        }
        self.version = update.version;
        Ok(())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `true` when the table has no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The entry of `node`, if present.
    pub fn entry(&self, node: u16) -> Option<&PeerEntry> {
        self.peers.iter().find(|p| p.node == node)
    }

    /// The socket address of `node`, if present.
    pub fn addr_of(&self, node: u16) -> Option<SocketAddr> {
        self.entry(node).map(|p| p.addr)
    }

    /// The multicast set of `channel` as seen from `me`: the addresses of
    /// every *other* peer listening on it (a node never receives its own
    /// broadcast, matching the simulator's no-self-reception rule).
    pub fn multicast_set(&self, me: u16, channel: ChannelId) -> Vec<SocketAddr> {
        self.peers
            .iter()
            .filter(|p| p.node != me && p.channels.contains(&channel.0))
            .map(|p| p.addr)
            .collect()
    }

    /// Validates the table. A genesis table (version 0) must have dense
    /// ids `0..n` in order (so a launcher cannot misnumber a deployment);
    /// a churned table (version > 0) only needs strictly ascending ids —
    /// ids are stable node *identities*, so retirements leave gaps. In
    /// both cases addresses must be unique and no entry may claim the
    /// transport's reserved channels — control
    /// ([`crate::runtime::CONTROL_CHANNEL`]), client submission
    /// ([`crate::client::CLIENT_CHANNEL`]), anti-entropy sync
    /// ([`crate::sync::SYNC_CHANNEL`]) and membership control
    /// ([`crate::membership::MEMBERSHIP_CHANNEL`]).
    ///
    /// # Errors
    ///
    /// A description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev_node: Option<u16> = None;
        for (i, p) in self.peers.iter().enumerate() {
            if self.version == 0 && p.node as usize != i {
                return Err(format!("peer {i} has id {} — ids must be dense 0..n", p.node));
            }
            if prev_node.is_some_and(|prev| p.node <= prev) {
                return Err(format!("peer ids not strictly ascending at id {}", p.node));
            }
            prev_node = Some(p.node);
            for reserved in [
                crate::runtime::CONTROL_CHANNEL,
                crate::client::CLIENT_CHANNEL,
                crate::sync::SYNC_CHANNEL,
                crate::membership::MEMBERSHIP_CHANNEL,
            ] {
                if p.channels.contains(&reserved) {
                    return Err(format!(
                        "node {} claims channel {reserved} — reserved for the transport",
                        p.node,
                    ));
                }
            }
        }
        for (i, a) in self.peers.iter().enumerate() {
            for b in self.peers.iter().skip(i + 1) {
                if a.addr == b.addr {
                    return Err(format!("nodes {} and {} share address {}", a.node, b.node, a.addr));
                }
            }
        }
        Ok(())
    }
}

impl ToJson for PeerTable {
    fn to_json(&self) -> Json {
        let mut members = vec![("peers", self.peers.to_json())];
        if self.version != 0 {
            members.push(("version", Json::u64(self.version)));
        }
        Json::obj(members)
    }
}

impl FromJson for PeerTable {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(PeerTable { peers: field(j, "peers")?, version: opt_field(j, "version")?.unwrap_or(0) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_table_is_valid_and_round_trips() {
        let table = PeerTable::loopback(&[47001, 47002, 47003, 47004]);
        table.validate().unwrap();
        assert_eq!(table.len(), 4);
        assert_eq!(table.addr_of(2), Some(SocketAddr::from(([127, 0, 0, 1], 47003))));
        let text = table.to_json().pretty();
        let decoded = PeerTable::from_json(&wbft_report::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded, table);
        assert_eq!(decoded.to_json().pretty(), text);
    }

    #[test]
    fn multicast_set_excludes_self_and_other_channels() {
        let mut table = PeerTable::loopback(&[1, 2, 3, 4]);
        table.peers[3].channels = vec![1];
        let set = table.multicast_set(0, ChannelId(0));
        assert_eq!(
            set,
            vec![
                SocketAddr::from(([127, 0, 0, 1], 2)),
                SocketAddr::from(([127, 0, 0, 1], 3)),
            ]
        );
        assert!(table.multicast_set(3, ChannelId(1)).is_empty());
    }

    #[test]
    fn validation_rejects_sparse_ids_and_duplicate_addrs() {
        let mut table = PeerTable::loopback(&[1, 2]);
        table.peers[1].node = 5;
        assert!(table.validate().is_err());
        let mut table = PeerTable::loopback(&[1, 2]);
        table.peers[1].addr = table.peers[0].addr;
        assert!(table.validate().is_err());
    }

    #[test]
    fn validation_rejects_the_reserved_control_channel() {
        let mut table = PeerTable::loopback(&[1, 2]);
        table.peers[0].channels.push(crate::runtime::CONTROL_CHANNEL);
        assert!(table.validate().is_err());
    }

    #[test]
    fn validation_rejects_the_reserved_client_channel() {
        let mut table = PeerTable::loopback(&[1, 2]);
        table.peers[1].channels.push(crate::client::CLIENT_CHANNEL);
        assert!(table.validate().is_err());
    }

    #[test]
    fn validation_rejects_the_reserved_sync_channel() {
        let mut table = PeerTable::loopback(&[1, 2]);
        table.peers[0].channels.push(crate::sync::SYNC_CHANNEL);
        assert!(table.validate().is_err());
    }

    #[test]
    fn validation_rejects_the_reserved_membership_channel() {
        let mut table = PeerTable::loopback(&[1, 2]);
        table.peers[0].channels.push(crate::membership::MEMBERSHIP_CHANNEL);
        assert!(table.validate().is_err());
    }

    #[test]
    fn versioned_updates_apply_in_order_only() {
        use crate::membership::{PeerOp, PeerUpdate};
        let mut table = PeerTable::loopback(&[47001, 47002, 47003, 47004]);
        let joiner = PeerEntry {
            node: 4,
            addr: SocketAddr::from(([127, 0, 0, 1], 47005)),
            channels: vec![0],
        };
        let join = PeerUpdate { version: 1, op: PeerOp::Join(joiner.clone()) };
        // A gap (version 2 first) and a replay (version 0) are refused.
        assert!(table.apply(&PeerUpdate { version: 2, op: PeerOp::Leave(0) }).is_err());
        table.apply(&join).unwrap();
        assert!(table.apply(&join).is_err(), "replay of version 1");
        assert_eq!(table.version, 1);
        assert_eq!(table.len(), 5);
        table.apply(&PeerUpdate { version: 2, op: PeerOp::Leave(0) }).unwrap();
        // Post-leave the table is sparse but still valid, and the leaver
        // is gone from every multicast set.
        table.validate().unwrap();
        assert_eq!(table.entry(0), None);
        assert_eq!(table.multicast_set(1, ChannelId(0)).len(), 3);
        // Leaving an absent node and re-joining a taken address fail.
        assert!(table.apply(&PeerUpdate { version: 3, op: PeerOp::Leave(0) }).is_err());
        let clash = PeerEntry { node: 9, ..joiner };
        assert!(table.apply(&PeerUpdate { version: 3, op: PeerOp::Join(clash) }).is_err());
        assert_eq!(table.version, 2);
    }

    #[test]
    fn churned_tables_round_trip_and_genesis_bytes_are_stable() {
        use crate::membership::{PeerOp, PeerUpdate};
        let mut table = PeerTable::loopback(&[47001, 47002, 47003, 47004]);
        let genesis_text = table.to_json().pretty();
        assert!(!genesis_text.contains("version"), "version 0 must stay absent");
        table
            .apply(&PeerUpdate {
                version: 1,
                op: PeerOp::Join(PeerEntry {
                    node: 4,
                    addr: SocketAddr::from(([127, 0, 0, 1], 47005)),
                    channels: vec![0],
                }),
            })
            .unwrap();
        table.apply(&PeerUpdate { version: 2, op: PeerOp::Leave(0) }).unwrap();
        let text = table.to_json().pretty();
        let decoded = PeerTable::from_json(&wbft_report::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded, table);
        assert_eq!(decoded.version, 2);
        assert_eq!(decoded.to_json().pretty(), text);
    }

    #[test]
    fn bad_addresses_and_ranges_fail_decode() {
        let j = wbft_report::parse(
            r#"{"peers": [{"node": 0, "addr": "not-an-addr", "channels": [0]}]}"#,
        )
        .unwrap();
        assert!(PeerTable::from_json(&j).is_err());
        let j = wbft_report::parse(
            r#"{"peers": [{"node": 0, "addr": "127.0.0.1:1", "channels": [900]}]}"#,
        )
        .unwrap();
        assert!(PeerTable::from_json(&j).is_err());
        let j = wbft_report::parse(
            r#"{"peers": [{"node": 99999, "addr": "127.0.0.1:1", "channels": [0]}]}"#,
        )
        .unwrap();
        assert!(PeerTable::from_json(&j).is_err());
    }
}
