#![forbid(unsafe_code)]
// Totality backstop (type-aware side of wbft-lint's T1 rule): protocol
// paths must not panic via unwrap/expect. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # wbft-transport — real-network transport for sans-io protocol code
//!
//! The paper's testbed runs consensus over real radios; this crate is the
//! reproduction's first real transport: a UDP datagram carrier plus a
//! single-threaded poll/timer runtime ([`UdpRuntime`]) that drives any
//! [`NodeBehavior`](wbft_wireless::NodeBehavior) — the *same unmodified
//! protocol state machines the simulator runs* — over a
//! `std::net::UdpSocket`.
//!
//! Pieces:
//!
//! * [`PeerTable`] — the deployment map (node id → socket address →
//!   channel set), JSON-serialized through `wbft-report` so one launcher
//!   can hand it to every process. Logical radio channels become
//!   peer-address multicast sets.
//! * [`UdpRuntime`] — the event loop: real monotonic clocks mapped onto
//!   `SimTime`, a timer wheel for `SetTimer`, datagram framing via
//!   [`wbft_net::datagram`], length-checked non-panicking decode, and
//!   counters in the simulator's `Metrics` schema so real runs feed the
//!   same `RunReport` JSON the figures read.
//!
//! What this transport deliberately does **not** model: CSMA contention,
//! collisions, half-duplex radios, airtime, or stochastic loss — loopback
//! and Ethernet links have none of those. The simulator remains the
//! deterministic CI path and the fidelity reference; this crate is the
//! deployment path (and the stepping stone to serial/LoRa bridges).

pub mod client;
pub mod config;
pub mod membership;
pub mod runtime;
pub mod sync;

pub use client::{ClientMsg, SubmitVerdict, CLIENT_CHANNEL, CLIENT_SRC};
pub use config::{PeerEntry, PeerTable};
pub use membership::{MembershipMsg, PeerOp, PeerUpdate, MEMBERSHIP_CHANNEL};
pub use runtime::{ClientGateway, UdpRuntime};
pub use sync::{SyncBlock, SyncMsg, SYNC_CHANNEL, SYNC_CHUNK_BUDGET};

/// Datagram-level counters a transport keeps alongside the protocol
/// [`Metrics`](wbft_wireless::Metrics).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Datagrams received, before any validation.
    pub datagrams_received: u64,
    /// Datagrams dropped because they failed to decode (truncated, bad
    /// magic/version, garbage).
    pub drops_malformed: u64,
    /// Well-formed datagrams dropped by the receive filter (unknown or
    /// self source, channel not joined, sender not on the channel).
    pub drops_foreign: u64,
    /// Valid protocol frames dropped because the startup-barrier buffer
    /// was full (NACK retransmission recovers them).
    pub drops_overflow: u64,
    /// Broadcasts refused because the payload exceeds one UDP datagram.
    pub sends_rejected: u64,
    /// Individual `send_to` failures (UDP is lossy; never fatal).
    pub sends_failed: u64,
    /// Datagrams consumed from the client-submission channel.
    pub client_datagrams: u64,
    /// Client-channel datagrams sent (replies + commit notifications).
    pub client_sends: u64,
    /// Client subscribers evicted by the gateway (repeated send failures
    /// or LRU displacement past the subscriber cap).
    pub client_evictions: u64,
    /// Anti-entropy head announcements answered with a block chunk (this
    /// node had blocks the announcer was missing).
    pub sync_requests_served: u64,
    /// Committed blocks shipped inside anti-entropy chunks.
    pub sync_blocks_shipped: u64,
    /// Blocks that did not fit the current chunk's datagram budget and
    /// wait for the peer's next announcement round.
    pub sync_chunks_dropped: u64,
}
