//! The membership control wire protocol: how running processes keep their
//! peer tables in step with consensus-ordered committee changes.
//!
//! Rides the reserved [`MEMBERSHIP_CHANNEL`] with ordinary datagram
//! framing. When a membership op commits and activates, every node derives
//! the same committee change from its chain prefix; the transport's job is
//! only the *network* half of that change — which sockets exist and which
//! channels they listen on. A [`PeerUpdate`] carries one [`PeerOp`]
//! (admit a peer entry, retire a node id) stamped with the table version
//! it produces, and [`PeerTable::apply`](crate::PeerTable::apply) refuses
//! anything but the exact next version — updates are idempotent to replay
//! and immune to reordering, exactly like the chain they mirror.
//!
//! Messages are *unsigned* (like sync traffic, the channel is inside the
//! peer multicast fabric but UDP sources are spoofable): a receiver MUST
//! only apply updates it can derive from its own committed chain — the
//! wire message is a prompt, the chain is the authority. The codec is a
//! total inverse pair: every `encode` output decodes to the same value and
//! malformed bytes decode to `None`.

use std::net::SocketAddr;

use bytes::Bytes;

use crate::config::PeerEntry;

/// Reserved datagram channel for membership control traffic (peer tables
/// must not assign it, like the control, client and sync channels).
// wbft-lint: allow(wire-safety) — the defining constant for the reserved membership channel
pub const MEMBERSHIP_CHANNEL: u8 = 0xfc;

/// One network-level membership operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PeerOp {
    /// Admit a new peer: id, socket address, listened channels.
    Join(PeerEntry),
    /// Retire the peer with this node id.
    Leave(u16),
}

/// One versioned table change: applying `op` to a table at
/// `version - 1` yields a table at `version`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerUpdate {
    /// The table version this update produces (genesis tables are
    /// version 0, so the first update is version 1).
    pub version: u64,
    /// The operation.
    pub op: PeerOp,
}

/// One message on the membership channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MembershipMsg {
    /// "The committee changed; your table should now be at this version."
    Update(PeerUpdate),
}

const TAG_UPDATE: u8 = 1;
const OP_JOIN: u8 = 1;
const OP_LEAVE: u8 = 2;

impl MembershipMsg {
    /// Encodes the message payload (goes inside a datagram on
    /// [`MEMBERSHIP_CHANNEL`]).
    pub fn encode(&self) -> Bytes {
        let MembershipMsg::Update(u) = self;
        let mut v = Vec::new();
        v.push(TAG_UPDATE);
        v.extend_from_slice(&u.version.to_le_bytes());
        match &u.op {
            PeerOp::Join(e) => {
                v.push(OP_JOIN);
                v.extend_from_slice(&e.node.to_le_bytes());
                let addr = e.addr.to_string();
                // A SocketAddr display is at most 58 bytes ([ipv6]:port).
                v.push(addr.len() as u8); // wbft-lint: allow(wire-safety) — bounded by SocketAddr display length
                v.extend_from_slice(addr.as_bytes());
                // Channel ids are u8-valued, so a valid entry lists < 256.
                v.push(e.channels.len() as u8); // wbft-lint: allow(wire-safety) — validated tables list < 256 channels
                v.extend_from_slice(&e.channels);
            }
            PeerOp::Leave(node) => {
                v.push(OP_LEAVE);
                v.extend_from_slice(&node.to_le_bytes());
            }
        }
        Bytes::from(v)
    }

    /// Total inverse of [`MembershipMsg::encode`]: `None` on any malformed
    /// or trailing bytes.
    pub fn decode(data: &[u8]) -> Option<MembershipMsg> {
        let mut c = Cursor(data);
        if c.u8()? != TAG_UPDATE {
            return None;
        }
        let version = c.u64()?;
        let op = match c.u8()? {
            OP_JOIN => {
                let node = c.u16()?;
                let addr_len = c.u8()? as usize;
                let addr = std::str::from_utf8(c.take(addr_len)?).ok()?;
                let addr: SocketAddr = addr.parse().ok()?;
                let n_channels = c.u8()? as usize;
                let channels = c.take(n_channels)?.to_vec();
                PeerOp::Join(PeerEntry { node, addr, channels })
            }
            OP_LEAVE => PeerOp::Leave(c.u16()?),
            _ => return None,
        };
        if !c.0.is_empty() {
            return None;
        }
        Some(MembershipMsg::Update(PeerUpdate { version, op }))
    }
}

struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let (&head, rest) = self.0.split_first()?;
        self.0 = rest;
        Some(head)
    }

    fn u16(&mut self) -> Option<u16> {
        let (head, rest) = self.0.split_first_chunk::<2>()?;
        self.0 = rest;
        Some(u16::from_le_bytes(*head))
    }

    fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.0.split_first_chunk::<8>()?;
        self.0 = rest;
        Some(u64::from_le_bytes(*head))
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(node: u16, port: u16) -> PeerEntry {
        PeerEntry {
            node,
            addr: SocketAddr::from(([127, 0, 0, 1], port)),
            channels: vec![0],
        }
    }

    #[test]
    fn updates_round_trip() {
        for msg in [
            MembershipMsg::Update(PeerUpdate { version: 1, op: PeerOp::Join(entry(4, 47005)) }),
            MembershipMsg::Update(PeerUpdate { version: 2, op: PeerOp::Leave(0) }),
        ] {
            let bytes = msg.encode();
            assert_eq!(MembershipMsg::decode(&bytes), Some(msg));
        }
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert_eq!(MembershipMsg::decode(&[]), None);
        assert_eq!(MembershipMsg::decode(&[99]), None);
        let good = MembershipMsg::Update(PeerUpdate { version: 1, op: PeerOp::Leave(3) }).encode();
        assert_eq!(MembershipMsg::decode(&good[..good.len() - 1]), None);
        let mut trailing = good.to_vec();
        trailing.push(0);
        assert_eq!(MembershipMsg::decode(&trailing), None);
        // A join whose address bytes are not an address.
        let mut bad = Vec::new();
        bad.push(TAG_UPDATE);
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.push(OP_JOIN);
        bad.extend_from_slice(&4u16.to_le_bytes());
        bad.push(3);
        bad.extend_from_slice(b"zzz");
        bad.push(0);
        assert_eq!(MembershipMsg::decode(&bad), None);
    }
}
