#![forbid(unsafe_code)]
// Totality backstop (type-aware side of wbft-lint's T1 rule): protocol
// paths must not panic via unwrap/expect. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Append-only write-ahead journal of committed blocks.
//!
//! Each record is framed as
//!
//! ```text
//! [len: u32 LE] [prev_digest: 32B] [epoch: u64 LE] [payload: len-40 bytes] [checksum: 32B]
//! ```
//!
//! where `checksum = Sha256("wbft/journal/frame" || record_bytes)` covers the
//! record bytes (`prev_digest || epoch || payload`) and the cumulative chain
//! digest after a record is `Sha256("wbft/journal/chain" || prev || epoch ||
//! payload)`. The genesis predecessor digest is all-zero and epochs are
//! contiguous from 0, so a journal is a verifiable digest chain: any prefix
//! commits to every byte before it.
//!
//! Recovery is total and non-panicking. A truncated or bit-flipped *final*
//! record (a torn tail, the normal crash artifact) is dropped and the store
//! truncated back to the longest valid prefix. A checksum-*valid* record that
//! does not extend the chain (wrong predecessor digest or epoch) is a sign of
//! cross-run mixup, not a crash, and is rejected with a typed error.
//!
//! Storage is abstracted behind [`JournalStore`] so the deterministic
//! simulator can journal into memory ([`MemStore`], [`SharedMem`]) while real
//! nodes journal to disk ([`FileStore`]).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use sha2::{Digest as _, Sha256};

/// Domain-separation prefix for the per-record checksum.
const FRAME_DOMAIN: &[u8] = b"wbft/journal/frame";
/// Domain-separation prefix for the cumulative chain digest.
const CHAIN_DOMAIN: &[u8] = b"wbft/journal/chain";

/// Bytes of record header covered by the length prefix: prev digest + epoch.
const RECORD_HEADER: usize = 32 + 8;
/// Trailing checksum bytes, not covered by the length prefix.
const CHECKSUM_LEN: usize = 32;
/// Frame bytes beyond the payload: length prefix + header + checksum.
pub const FRAME_OVERHEAD: usize = 4 + RECORD_HEADER + CHECKSUM_LEN;
/// Sanity cap on a single record frame; a longer length prefix is treated as
/// corruption (torn tail), never as an allocation request.
const MAX_FRAME: usize = 64 << 20;

/// The all-zero digest that precedes the first record.
pub const GENESIS_DIGEST: [u8; 32] = [0u8; 32];

/// A decoded journal record plus the cumulative chain digest after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    pub epoch: u64,
    pub payload: Vec<u8>,
    /// Chain digest *after* appending this record.
    pub digest: [u8; 32],
}

/// Journal failure. Torn tails are not errors — they are silently recovered —
/// so this only covers I/O and genuine chain violations.
#[derive(Debug)]
pub enum JournalError {
    Io(io::Error),
    /// A checksum-valid record whose predecessor digest does not match the
    /// chain head it claims to extend.
    ChainMismatch { epoch: u64 },
    /// A checksum-valid record whose epoch is not the next expected one.
    EpochGap { expected: u64, got: u64 },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::ChainMismatch { epoch } => {
                write!(f, "journal chain mismatch at epoch {epoch}")
            }
            JournalError::EpochGap { expected, got } => {
                write!(f, "journal epoch gap: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Cumulative chain digest after appending `(epoch, payload)` to a chain
/// whose head is `prev`.
pub fn chain_digest(prev: &[u8; 32], epoch: u64, payload: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(CHAIN_DOMAIN);
    h.update(prev);
    h.update(epoch.to_le_bytes());
    h.update(payload);
    h.finalize()
}

/// Encode one framed record extending the chain head `prev`.
pub fn encode_record(prev: &[u8; 32], epoch: u64, payload: &[u8]) -> Vec<u8> {
    let record_len = RECORD_HEADER + payload.len();
    assert!(
        record_len + CHECKSUM_LEN <= MAX_FRAME,
        "journal record exceeds MAX_FRAME and could never be recovered"
    );
    let mut out = Vec::with_capacity(4 + record_len + CHECKSUM_LEN);
    // wbft-lint: allow(wire-safety) — record_len asserted ≤ MAX_FRAME above
    out.extend_from_slice(&(record_len as u32).to_le_bytes());
    out.extend_from_slice(prev);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(payload);
    let mut h = Sha256::new();
    h.update(FRAME_DOMAIN);
    h.update(out.get(4..).unwrap_or(&[]));
    let sum = h.finalize();
    out.extend_from_slice(&sum);
    out
}

/// Result of scanning raw journal bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// Records of the longest valid prefix, in order.
    pub records: Vec<JournalRecord>,
    /// Byte length of that prefix; bytes past it are a torn tail.
    pub valid_len: usize,
    /// Whether any trailing bytes were dropped.
    pub torn: bool,
}

impl Recovered {
    /// Chain head after the recovered prefix.
    pub fn head(&self) -> [u8; 32] {
        self.records.last().map(|r| r.digest).unwrap_or(GENESIS_DIGEST)
    }
}

/// Scan raw bytes into the longest valid record prefix. Never panics on any
/// input: truncation and bit corruption end the scan at the last intact
/// record (`torn = true`), while a checksum-valid record that contradicts the
/// digest chain is a typed error.
pub fn parse_records(bytes: &[u8]) -> Result<Recovered, JournalError> {
    let mut records = Vec::new();
    let mut head = GENESIS_DIGEST;
    let mut offset = 0usize;
    let mut torn = false;
    while offset < bytes.len() {
        let rest = bytes.get(offset..).unwrap_or(&[]);
        let Some(len_prefix) = rest.get(..4).and_then(|b| <[u8; 4]>::try_from(b).ok()) else {
            torn = true;
            break;
        };
        let record_len = u32::from_le_bytes(len_prefix) as usize;
        if record_len < RECORD_HEADER || record_len + CHECKSUM_LEN > MAX_FRAME {
            torn = true;
            break;
        }
        let (Some(record), Some(claimed)) = (
            rest.get(4..4 + record_len),
            rest.get(4 + record_len..4 + record_len + CHECKSUM_LEN),
        ) else {
            torn = true;
            break;
        };
        let mut h = Sha256::new();
        h.update(FRAME_DOMAIN);
        h.update(record);
        if h.finalize() != claimed {
            torn = true;
            break;
        }
        // record_len ≥ RECORD_HEADER (40) was checked above, so all three
        // sub-slices exist; a miss is still a torn tail, never a panic.
        let (Some(prev), Some(epoch_le), Some(payload)) = (
            record.get(..32).and_then(|b| <[u8; 32]>::try_from(b).ok()),
            record.get(32..RECORD_HEADER).and_then(|b| <[u8; 8]>::try_from(b).ok()),
            record.get(RECORD_HEADER..),
        ) else {
            torn = true;
            break;
        };
        let epoch = u64::from_le_bytes(epoch_le);
        if prev != head {
            return Err(JournalError::ChainMismatch { epoch });
        }
        let expected = records.len() as u64;
        if epoch != expected {
            return Err(JournalError::EpochGap { expected, got: epoch });
        }
        head = chain_digest(&head, epoch, payload);
        records.push(JournalRecord { epoch, payload: payload.to_vec(), digest: head });
        offset += 4 + record_len + CHECKSUM_LEN;
    }
    Ok(Recovered { records, valid_len: offset, torn })
}

/// Byte-level storage for a journal: a readable, appendable, truncatable blob.
pub trait JournalStore: Send {
    fn read_all(&mut self) -> io::Result<Vec<u8>>;
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

impl JournalStore for Box<dyn JournalStore + Send> {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        (**self).read_all()
    }
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        (**self).append(bytes)
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        (**self).truncate(len)
    }
}

/// Private in-memory store; cannot fail.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    bytes: Vec<u8>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl JournalStore for MemStore {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.bytes.clone())
    }
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.bytes.truncate(len as usize);
        Ok(())
    }
}

/// Shared in-memory store: the bytes outlive the journal handle, so a
/// simulated node can "crash" (drop its journal) and a restarted incarnation
/// can recover from the same blob — the sim's stand-in for a disk.
#[derive(Debug, Default, Clone)]
pub struct SharedMem {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedMem {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }
}

impl JournalStore for SharedMem {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.snapshot())
    }
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.bytes.lock().unwrap_or_else(std::sync::PoisonError::into_inner).extend_from_slice(bytes);
        Ok(())
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.bytes.lock().unwrap_or_else(std::sync::PoisonError::into_inner).truncate(len as usize);
        Ok(())
    }
}

/// File-backed store. Appends are flushed per record; truncation (torn-tail
/// repair) uses `set_len`.
#[derive(Debug)]
pub struct FileStore {
    file: File,
}

impl FileStore {
    pub fn open(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        Ok(Self { file })
    }
}

impl JournalStore for FileStore {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        Ok(bytes)
    }
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)?;
        self.file.flush()
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

/// An open journal: the chain head plus the store it appends to.
#[derive(Debug)]
pub struct Journal<S: JournalStore> {
    store: S,
    head: [u8; 32],
    next_epoch: u64,
}

impl<S: JournalStore> Journal<S> {
    /// Open a journal, recovering the longest valid record prefix. A torn
    /// tail is truncated away in the store; a chain violation is an error.
    pub fn open(mut store: S) -> Result<(Self, Vec<JournalRecord>), JournalError> {
        let bytes = store.read_all()?;
        let recovered = parse_records(&bytes)?;
        if recovered.torn {
            store.truncate(recovered.valid_len as u64)?;
        }
        let journal = Journal {
            store,
            head: recovered.head(),
            next_epoch: recovered.records.len() as u64,
        };
        Ok((journal, recovered.records))
    }

    /// Append one committed block payload; returns the new chain head.
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> Result<[u8; 32], JournalError> {
        if epoch != self.next_epoch {
            return Err(JournalError::EpochGap { expected: self.next_epoch, got: epoch });
        }
        let frame = encode_record(&self.head, epoch, payload);
        self.store.append(&frame)?;
        self.head = chain_digest(&self.head, epoch, payload);
        self.next_epoch += 1;
        Ok(self.head)
    }

    /// Cumulative chain digest after the last record.
    pub fn head(&self) -> [u8; 32] {
        self.head
    }

    /// Number of records (== next expected epoch).
    pub fn len(&self) -> u64 {
        self.next_epoch
    }

    pub fn is_empty(&self) -> bool {
        self.next_epoch == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log(payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut head = GENESIS_DIGEST;
        for (i, p) in payloads.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(&head, i as u64, p));
            head = chain_digest(&head, i as u64, p);
        }
        bytes
    }

    #[test]
    fn round_trip_and_head_chain() {
        let payloads: &[&[u8]] = &[b"alpha", b"", b"gamma-longer-payload"];
        let log = sample_log(payloads);
        let rec = parse_records(&log).unwrap();
        assert!(!rec.torn);
        assert_eq!(rec.valid_len, log.len());
        assert_eq!(rec.records.len(), 3);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.epoch, i as u64);
            assert_eq!(r.payload, payloads[i]);
        }
        assert_eq!(rec.head(), rec.records[2].digest);
    }

    #[test]
    fn torn_tail_recovers_prefix_at_every_cut() {
        let log = sample_log(&[b"one", b"two", b"six"]);
        let frame = FRAME_OVERHEAD + 3;
        for cut in 0..log.len() {
            let rec = parse_records(&log[..cut]).unwrap();
            let whole = cut / frame;
            assert_eq!(rec.records.len(), whole, "cut at {cut}");
            assert_eq!(rec.valid_len, whole * frame);
            assert_eq!(rec.torn, cut % frame != 0);
        }
    }

    #[test]
    fn corrupt_final_record_is_dropped_not_fatal() {
        let mut log = sample_log(&[b"one", b"two"]);
        let last = log.len() - 1;
        log[last] ^= 0x40;
        let rec = parse_records(&log).unwrap();
        assert!(rec.torn);
        assert_eq!(rec.records.len(), 1);
    }

    #[test]
    fn chain_mismatch_is_typed_error() {
        // Two checksum-valid genesis records: the second claims the zero
        // predecessor instead of extending the first.
        let mut log = encode_record(&GENESIS_DIGEST, 0, b"one");
        log.extend_from_slice(&encode_record(&GENESIS_DIGEST, 1, b"rogue"));
        match parse_records(&log) {
            Err(JournalError::ChainMismatch { epoch: 1 }) => {}
            other => panic!("expected ChainMismatch, got {other:?}"),
        }
    }

    #[test]
    fn epoch_gap_is_typed_error() {
        let head = chain_digest(&GENESIS_DIGEST, 0, b"one");
        let mut log = encode_record(&GENESIS_DIGEST, 0, b"one");
        log.extend_from_slice(&encode_record(&head, 5, b"skip"));
        match parse_records(&log) {
            Err(JournalError::EpochGap { expected: 1, got: 5 }) => {}
            other => panic!("expected EpochGap, got {other:?}"),
        }
    }

    #[test]
    fn journal_over_memstore_survives_reopen() {
        let shared = SharedMem::new();
        let head0 = {
            let (mut j, recovered) = Journal::open(shared.clone()).unwrap();
            assert!(recovered.is_empty());
            j.append(0, b"blk0").unwrap();
            j.append(1, b"blk1").unwrap()
        };
        // Torn tail: half a record appended raw.
        {
            let mut s = shared.clone();
            let junk = encode_record(&head0, 2, b"blk2");
            s.append(&junk[..junk.len() / 2]).unwrap();
        }
        let (mut j, recovered) = Journal::open(shared.clone()).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].digest, head0);
        assert_eq!(j.head(), head0);
        // The torn bytes were truncated away, so appending epoch 2 works.
        j.append(2, b"blk2").unwrap();
        let (_, recovered) = Journal::open(shared).unwrap();
        assert_eq!(recovered.len(), 3);
    }

    #[test]
    fn journal_rejects_out_of_order_append() {
        let (mut j, _) = Journal::open(MemStore::new()).unwrap();
        j.append(0, b"x").unwrap();
        match j.append(2, b"y") {
            Err(JournalError::EpochGap { expected: 1, got: 2 }) => {}
            other => panic!("expected EpochGap, got {other:?}"),
        }
    }

    #[test]
    fn file_store_round_trip() {
        let dir = std::env::temp_dir().join(format!("wbft-journal-test-{}", std::process::id()));
        let path = dir.join("node0.journal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, recovered) = Journal::open(FileStore::open(&path).unwrap()).unwrap();
            assert!(recovered.is_empty());
            j.append(0, b"disk0").unwrap();
            j.append(1, b"disk1").unwrap();
        }
        let (j, recovered) = Journal::open(FileStore::open(&path).unwrap()).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].payload, b"disk1");
        assert_eq!(j.len(), 2);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
