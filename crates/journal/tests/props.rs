//! Property battery for the journal codec: round-trip fixpoint, torn-tail
//! recovery at every byte boundary, total (non-panicking) parsing of
//! arbitrary garbage and bit-flipped logs, and typed rejection of
//! digest-chain violations.

use proptest::collection::vec;
use proptest::prelude::*;

use wbft_journal::{
    chain_digest, encode_record, parse_records, JournalError, GENESIS_DIGEST,
};

/// Encode a full log from payloads, returning (bytes, per-record frame ends).
fn build_log(payloads: &[Vec<u8>]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut ends = Vec::new();
    let mut head = GENESIS_DIGEST;
    for (i, p) in payloads.iter().enumerate() {
        bytes.extend_from_slice(&encode_record(&head, i as u64, p));
        head = chain_digest(&head, i as u64, p);
        ends.push(bytes.len());
    }
    (bytes, ends)
}

fn payloads_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    vec(vec(any::<u8>(), 0..40), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Round-trip fixpoint: parse(encode(payloads)) yields the payloads, and
    // re-encoding the parsed records reproduces the bytes exactly.
    #[test]
    fn round_trip_fixpoint(payloads in payloads_strategy()) {
        let (log, _) = build_log(&payloads);
        let rec = parse_records(&log).expect("valid log parses");
        prop_assert!(!rec.torn);
        prop_assert_eq!(rec.valid_len, log.len());
        prop_assert_eq!(rec.records.len(), payloads.len());
        let mut head = GENESIS_DIGEST;
        let mut reencoded = Vec::new();
        for (i, r) in rec.records.iter().enumerate() {
            prop_assert_eq!(r.epoch, i as u64);
            prop_assert_eq!(&r.payload, &payloads[i]);
            reencoded.extend_from_slice(&encode_record(&head, r.epoch, &r.payload));
            head = chain_digest(&head, r.epoch, &r.payload);
            prop_assert_eq!(r.digest, head);
        }
        prop_assert_eq!(reencoded, log);
    }

    // Truncation at EVERY byte boundary recovers exactly the records whose
    // frames are fully contained, and reports torn iff the cut is mid-frame.
    #[test]
    fn torn_tail_every_boundary(payloads in payloads_strategy()) {
        let (log, ends) = build_log(&payloads);
        for cut in 0..=log.len() {
            let rec = parse_records(&log[..cut]).expect("truncated log still parses");
            let whole = ends.iter().filter(|&&e| e <= cut).count();
            prop_assert_eq!(rec.records.len(), whole, "cut at {}", cut);
            let prefix_len = if whole == 0 { 0 } else { ends[whole - 1] };
            prop_assert_eq!(rec.valid_len, prefix_len);
            prop_assert_eq!(rec.torn, cut != prefix_len);
            for (i, r) in rec.records.iter().enumerate() {
                prop_assert_eq!(&r.payload, &payloads[i]);
            }
        }
    }

    // Totality: arbitrary bytes never panic the parser; they yield either a
    // recovered prefix or a typed chain error.
    #[test]
    fn garbage_never_panics(bytes in vec(any::<u8>(), 0..300)) {
        match parse_records(&bytes) {
            Ok(rec) => prop_assert!(rec.valid_len <= bytes.len()),
            Err(JournalError::ChainMismatch { .. }) | Err(JournalError::EpochGap { .. }) => {}
            Err(JournalError::Io(e)) => prop_assert!(false, "io error from pure parse: {}", e),
        }
    }

    // A single bit-flip anywhere in a valid log never panics, and whatever
    // prefix survives still round-trips the original payloads. (A flip in a
    // record body breaks its checksum — torn tail; a flip that somehow
    // leaves checksums intact cannot happen with one bit.)
    #[test]
    fn bit_flips_never_panic(
        payloads in payloads_strategy(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let (mut log, ends) = build_log(&payloads);
        prop_assume!(!log.is_empty());
        let pos = (pos_seed % log.len() as u64) as usize;
        log[pos] ^= 1 << bit;
        match parse_records(&log) {
            Ok(rec) => {
                // Every surviving record precedes the flipped frame.
                let intact = ends.iter().filter(|&&e| e <= pos).count();
                prop_assert!(rec.records.len() >= intact, "flip at {} lost intact prefix", pos);
                for (i, r) in rec.records.iter().enumerate().take(intact) {
                    prop_assert_eq!(&r.payload, &payloads[i]);
                }
            }
            Err(JournalError::ChainMismatch { .. }) | Err(JournalError::EpochGap { .. }) => {
                // A flip inside a length prefix can re-frame onto checksum-
                // colliding bytes only in theory; typed errors are still a
                // non-panicking outcome.
            }
            Err(JournalError::Io(e)) => prop_assert!(false, "io error from pure parse: {}", e),
        }
    }

    // A checksum-VALID record that contradicts the digest chain is rejected
    // with the typed ChainMismatch error, not recovered or panicked.
    #[test]
    fn chain_mismatch_typed(
        payloads in vec(vec(any::<u8>(), 0..20), 1..5),
        wrong in any::<[u8; 32]>(),
        tail in vec(any::<u8>(), 0..20),
    ) {
        let (mut log, _) = build_log(&payloads);
        let mut head = GENESIS_DIGEST;
        for (i, p) in payloads.iter().enumerate() {
            head = chain_digest(&head, i as u64, p);
        }
        prop_assume!(wrong != head);
        log.extend_from_slice(&encode_record(&wrong, payloads.len() as u64, &tail));
        match parse_records(&log) {
            Err(JournalError::ChainMismatch { epoch }) => {
                prop_assert_eq!(epoch, payloads.len() as u64);
            }
            other => prop_assert!(false, "expected ChainMismatch, got {:?}", other),
        }
    }
}
