//! Shamir secret sharing over the exponent field `GF(q)`.
//!
//! Every threshold scheme in this crate (signatures, coins, encryption)
//! deals its secret with a degree-`t` polynomial here, so a coalition of
//! `t` shares learns nothing and any `t+1` shares reconstruct.

use crate::field::Scalar;
use rand::RngCore;

/// One-based index of a share (node `i` holds the evaluation at `x = i+1`;
/// zero is reserved for the secret itself).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct ShareIndex(u16);

impl ShareIndex {
    /// Creates a share index. `x` must be non-zero (zero is the secret's
    /// evaluation point).
    ///
    /// # Errors
    ///
    /// Returns [`ShamirError::ZeroIndex`] for `x == 0`.
    pub fn new(x: u16) -> Result<Self, ShamirError> {
        if x == 0 {
            Err(ShamirError::ZeroIndex)
        } else {
            Ok(ShareIndex(x))
        }
    }

    /// The index for the node with zero-based id `node`.
    pub fn for_node(node: usize) -> Self {
        ShareIndex(node as u16 + 1)
    }

    /// The raw one-based value.
    pub fn value(&self) -> u16 {
        self.0
    }

    /// The index as a field element.
    pub fn to_scalar(&self) -> Scalar {
        Scalar::from_u64(self.0 as u64)
    }
}

/// Errors from dealing or reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShamirError {
    /// A share index of zero was supplied.
    ZeroIndex,
    /// The same index appeared twice in a reconstruction set.
    DuplicateIndex(u16),
    /// Fewer than `threshold + 1` shares were supplied.
    NotEnoughShares { got: usize, need: usize },
}

impl core::fmt::Display for ShamirError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShamirError::ZeroIndex => write!(f, "share index zero is reserved for the secret"),
            ShamirError::DuplicateIndex(i) => write!(f, "duplicate share index {i}"),
            ShamirError::NotEnoughShares { got, need } => {
                write!(f, "not enough shares: got {got}, need {need}")
            }
        }
    }
}

impl std::error::Error for ShamirError {}

/// A secret-sharing polynomial `a_0 + a_1 x + … + a_t x^t` with `a_0` the
/// secret.
#[derive(Clone, Debug)]
pub struct Polynomial {
    coeffs: Vec<Scalar>,
}

impl Polynomial {
    /// Samples a random polynomial of the given degree with the given
    /// constant term.
    pub fn random(secret: Scalar, degree: usize, rng: &mut impl RngCore) -> Self {
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(secret);
        for _ in 0..degree {
            coeffs.push(Scalar::random(rng));
        }
        Polynomial { coeffs }
    }

    /// The polynomial degree (= reconstruction threshold − 1 shares needed
    /// beyond one: `degree + 1` shares reconstruct).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The secret (constant term).
    pub fn secret(&self) -> Scalar {
        self.coeffs[0]
    }

    /// All coefficients, low degree first (`coeffs[0]` is the secret).
    /// Resharing publishes Feldman commitments `g^{coeffs[k]}` to these.
    pub fn coefficients(&self) -> &[Scalar] {
        &self.coeffs
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: &Scalar) -> Scalar {
        let mut acc = Scalar::ZERO;
        for c in self.coeffs.iter().rev() {
            acc = acc.mul(x).add(c);
        }
        acc
    }

    /// The share for a given index.
    pub fn share(&self, index: ShareIndex) -> Scalar {
        self.eval(&index.to_scalar())
    }
}

/// Inverts every element of a slice of non-zero scalars with a single field
/// inversion (Montgomery's batch-inversion trick): one 254-bit pow plus
/// `3(k−1)` multiplies instead of `k` pows.
fn batch_invert(vals: &[Scalar]) -> Vec<Scalar> {
    let mut prefix = Vec::with_capacity(vals.len());
    let mut acc = Scalar::ONE;
    for v in vals {
        prefix.push(acc);
        acc = acc.mul(v);
    }
    let mut inv = acc.invert().expect("batch_invert inputs are nonzero");
    let mut out = vec![Scalar::ZERO; vals.len()];
    for i in (0..vals.len()).rev() {
        out[i] = inv.mul(&prefix[i]);
        inv = inv.mul(&vals[i]);
    }
    out
}

thread_local! {
    /// Bounded memo for Lagrange coefficient vectors, keyed by the exact
    /// index sequence. Quorums repeat heavily inside a run (the same
    /// `f+1`/`2f+1` index sets combine over and over), and the coefficients
    /// are a pure function of the indices, so per-thread maps stay mutually
    /// consistent; thread-local storage keeps parallel sweep workers off a
    /// shared lock. Cleared wholesale when full.
    static LAGRANGE_MEMO: std::cell::RefCell<std::collections::BTreeMap<Vec<u16>, Vec<Scalar>>> =
        const { std::cell::RefCell::new(std::collections::BTreeMap::new()) };
}

/// Max index sets held by the Lagrange memo before it is cleared.
const LAGRANGE_MEMO_CAP: usize = 1024;

/// All Lagrange coefficients `λ_i(0)` for the given index set at once, in
/// index order: `coeffs[k]` belongs to `indices[k]`.
///
/// The shared denominators are inverted with one batched inversion, and the
/// whole vector is memoized per index sequence — repeated combinations over
/// the same quorum (the common case in every component) are a map lookup.
///
/// # Errors
///
/// Returns [`ShamirError::DuplicateIndex`] on repeated indices.
pub fn lagrange_coeffs_at_zero(indices: &[ShareIndex]) -> Result<Vec<Scalar>, ShamirError> {
    check_distinct(indices)?;
    let key: Vec<u16> = indices.iter().map(|i| i.value()).collect();
    if let Some(hit) = LAGRANGE_MEMO.with(|m| m.borrow().get(&key).cloned()) {
        return Ok(hit);
    }
    // num_i = Π_{j≠i} (0 − x_j),  den_i = Π_{j≠i} (x_i − x_j).
    let xs: Vec<Scalar> = indices.iter().map(|i| i.to_scalar()).collect();
    let mut nums = Vec::with_capacity(xs.len());
    let mut dens = Vec::with_capacity(xs.len());
    for (k, xi) in xs.iter().enumerate() {
        let mut num = Scalar::ONE;
        let mut den = Scalar::ONE;
        for (j, xj) in xs.iter().enumerate() {
            if j == k {
                continue;
            }
            num = num.mul(&xj.neg());
            den = den.mul(&xi.sub(xj));
        }
        nums.push(num);
        dens.push(den);
    }
    let inv_dens = batch_invert(&dens);
    let coeffs: Vec<Scalar> =
        nums.iter().zip(&inv_dens).map(|(n, d)| n.mul(d)).collect();
    LAGRANGE_MEMO.with(|m| {
        let mut memo = m.borrow_mut();
        if memo.len() >= LAGRANGE_MEMO_CAP {
            memo.clear();
        }
        memo.insert(key, coeffs.clone());
    });
    Ok(coeffs)
}

/// Lagrange coefficient `λ_i(0)` for interpolating at zero from the given
/// index set. `indices` must be distinct and contain `at`.
///
/// # Errors
///
/// Returns [`ShamirError::DuplicateIndex`] on repeated indices.
pub fn lagrange_at_zero(at: ShareIndex, indices: &[ShareIndex]) -> Result<Scalar, ShamirError> {
    check_distinct(indices)?;
    let xi = at.to_scalar();
    let mut num = Scalar::ONE;
    let mut den = Scalar::ONE;
    for &j in indices {
        if j == at {
            continue;
        }
        let xj = j.to_scalar();
        num = num.mul(&xj.neg()); // (0 - x_j)
        den = den.mul(&xi.sub(&xj)); // (x_i - x_j)
    }
    // `den` is a product of non-zero differences in a prime field.
    Ok(num.mul(&den.invert().expect("distinct indices give nonzero denominator")))
}

/// Reconstructs the secret from `threshold + 1` (or more) shares.
///
/// # Errors
///
/// Returns an error if shares are insufficient or indices repeat.
pub fn reconstruct_secret(
    shares: &[(ShareIndex, Scalar)],
    threshold: usize,
) -> Result<Scalar, ShamirError> {
    if shares.len() < threshold + 1 {
        return Err(ShamirError::NotEnoughShares { got: shares.len(), need: threshold + 1 });
    }
    let subset = &shares[..threshold + 1];
    let indices: Vec<ShareIndex> = subset.iter().map(|(i, _)| *i).collect();
    check_distinct(&indices)?;
    let mut secret = Scalar::ZERO;
    for (idx, value) in subset {
        let lambda = lagrange_at_zero(*idx, &indices)?;
        secret = secret.add(&lambda.mul(value));
    }
    Ok(secret)
}

fn check_distinct(indices: &[ShareIndex]) -> Result<(), ShamirError> {
    for (k, i) in indices.iter().enumerate() {
        if indices[..k].contains(i) {
            return Err(ShamirError::DuplicateIndex(i.value()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> impl RngCore {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn share_index_rejects_zero() {
        assert_eq!(ShareIndex::new(0), Err(ShamirError::ZeroIndex));
        assert!(ShareIndex::new(1).is_ok());
        assert_eq!(ShareIndex::for_node(0).value(), 1);
    }

    #[test]
    fn eval_constant_polynomial() {
        let p = Polynomial { coeffs: vec![Scalar::from_u64(7)] };
        assert_eq!(p.eval(&Scalar::from_u64(100)), Scalar::from_u64(7));
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn eval_matches_naive() {
        // p(x) = 3 + 2x + x²  at x=5 → 3 + 10 + 25 = 38
        let p = Polynomial {
            coeffs: vec![Scalar::from_u64(3), Scalar::from_u64(2), Scalar::from_u64(1)],
        };
        assert_eq!(p.eval(&Scalar::from_u64(5)), Scalar::from_u64(38));
    }

    #[test]
    fn reconstruct_from_exactly_threshold_plus_one() {
        let mut rng = rng();
        let secret = Scalar::from_u64(123_456_789);
        let t = 2; // degree-2 → 3 shares reconstruct (N=7, f=2 setting)
        let poly = Polynomial::random(secret, t, &mut rng);
        let shares: Vec<_> = (0..7)
            .map(|i| {
                let idx = ShareIndex::for_node(i);
                (idx, poly.share(idx))
            })
            .collect();
        // Any 3 shares reconstruct.
        let got = reconstruct_secret(&shares[2..5], t).unwrap();
        assert_eq!(got, secret);
        let got = reconstruct_secret(&[shares[0], shares[3], shares[6]], t).unwrap();
        assert_eq!(got, secret);
    }

    #[test]
    fn too_few_shares_fail() {
        let mut rng = rng();
        let poly = Polynomial::random(Scalar::from_u64(5), 2, &mut rng);
        let shares: Vec<_> = (0..2)
            .map(|i| {
                let idx = ShareIndex::for_node(i);
                (idx, poly.share(idx))
            })
            .collect();
        assert_eq!(
            reconstruct_secret(&shares, 2),
            Err(ShamirError::NotEnoughShares { got: 2, need: 3 })
        );
    }

    #[test]
    fn duplicate_indices_rejected() {
        let mut rng = rng();
        let poly = Polynomial::random(Scalar::from_u64(5), 1, &mut rng);
        let idx = ShareIndex::for_node(0);
        let s = poly.share(idx);
        assert_eq!(
            reconstruct_secret(&[(idx, s), (idx, s)], 1),
            Err(ShamirError::DuplicateIndex(1))
        );
    }

    #[test]
    fn wrong_share_changes_secret() {
        let mut rng = rng();
        let secret = Scalar::from_u64(777);
        let poly = Polynomial::random(secret, 1, &mut rng);
        let a = ShareIndex::for_node(0);
        let b = ShareIndex::for_node(1);
        let good = reconstruct_secret(&[(a, poly.share(a)), (b, poly.share(b))], 1).unwrap();
        assert_eq!(good, secret);
        let bad = reconstruct_secret(
            &[(a, poly.share(a).add(&Scalar::ONE)), (b, poly.share(b))],
            1,
        )
        .unwrap();
        assert_ne!(bad, secret);
    }

    #[test]
    fn coeff_vector_matches_per_index_lagrange() {
        let indices =
            [ShareIndex::for_node(0), ShareIndex::for_node(3), ShareIndex::for_node(5)];
        let coeffs = lagrange_coeffs_at_zero(&indices).unwrap();
        for (k, &i) in indices.iter().enumerate() {
            assert_eq!(coeffs[k], lagrange_at_zero(i, &indices).unwrap());
        }
        // Memoized second call returns the identical vector.
        assert_eq!(lagrange_coeffs_at_zero(&indices).unwrap(), coeffs);
        // Duplicates still rejected through the batched path.
        assert_eq!(
            lagrange_coeffs_at_zero(&[indices[0], indices[0]]),
            Err(ShamirError::DuplicateIndex(1))
        );
    }

    #[test]
    fn lagrange_coefficients_sum_to_one_on_constant() {
        // For a constant polynomial every share equals the secret, so the
        // lagrange weights must sum to 1.
        let indices = [ShareIndex::for_node(0), ShareIndex::for_node(2), ShareIndex::for_node(4)];
        let total: Scalar = indices
            .iter()
            .map(|&i| lagrange_at_zero(i, &indices).unwrap())
            .fold(Scalar::ZERO, |a, b| a.add(&b));
        assert_eq!(total, Scalar::ONE);
    }
}
