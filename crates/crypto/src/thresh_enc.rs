//! `(f, n)` threshold encryption — HoneyBadgerBFT's censorship-resilience
//! layer (§II of the paper: "practical implementation using threshold
//! encryption and ACS").
//!
//! Hybrid threshold ElGamal in the prime-order group: a ciphertext is
//! `(u = g^r, ct = pt ⊕ KS(H(vk^r)), tag)`. Node `i`'s decryption share is
//! `u^{s_i}`; `f+1` shares Lagrange-combine to `u^s = vk^r`, recovering the
//! keystream. The adversary's `f` shares reveal nothing about `vk^r`
//! (information-theoretically short of the DDH break), so a Byzantine member
//! cannot selectively censor transactions it can read — the property
//! HoneyBadgerBFT actually needs.
//!
//! Unlike the signature module, nothing here needs pairings, so this scheme
//! is the real construction (a CPA-secure TDH0-style scheme with a
//! ciphertext-integrity tag; no CCA proof intended).

use crate::field::Scalar;
use crate::group::GroupElem;
use crate::hash::{hash_to_scalar, keystream, Digest32};
use crate::profile::ThresholdCurve;
use crate::shamir::{lagrange_coeffs_at_zero, Polynomial, ShamirError, ShareIndex};
use rand::RngCore;

/// Errors from threshold decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreshEncError {
    /// A decryption share failed verification.
    InvalidShare { index: u16 },
    /// The integrity tag did not match after combination.
    IntegrityFailure,
    /// Underlying share-set error.
    Shamir(ShamirError),
}

impl core::fmt::Display for ThreshEncError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ThreshEncError::InvalidShare { index } => {
                write!(f, "invalid decryption share from index {index}")
            }
            ThreshEncError::IntegrityFailure => write!(f, "ciphertext integrity check failed"),
            ThreshEncError::Shamir(e) => write!(f, "decryption share set error: {e}"),
        }
    }
}

impl std::error::Error for ThreshEncError {}

impl From<ShamirError> for ThreshEncError {
    fn from(e: ShamirError) -> Self {
        ThreshEncError::Shamir(e)
    }
}

/// Public encryption key material.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EncPublicSet {
    curve: ThresholdCurve,
    threshold: usize,
    vk: GroupElem,
    vk_shares: Vec<GroupElem>,
}

/// One node's secret decryption key share.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct EncSecretShare {
    index: ShareIndex,
    secret: Scalar,
}

/// A hybrid threshold ciphertext.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Ciphertext {
    /// `g^r`.
    pub u: GroupElem,
    /// `pt ⊕ keystream`.
    pub body: Vec<u8>,
    /// Integrity tag binding `(u, body, label)` to the shared key.
    pub tag: Digest32,
}

impl Ciphertext {
    /// Total wire size in bytes (32-byte `u` + body + 32-byte tag).
    pub fn wire_len(&self) -> usize {
        32 + self.body.len() + 32
    }
}

/// A Chaum–Pedersen DLEQ proof that a decryption share was computed with
/// the same secret exponent as the prover's verification key: knowledge of
/// `s` with `vk_i = g^s` **and** `d = u^s` for the *specific* ciphertext
/// point `u`. This is what binds a share to its ciphertext — a share for
/// ciphertext A replays a proof over A's `u`, which cannot verify against
/// ciphertext B's.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DleqProof {
    /// Fiat–Shamir challenge `c = H(i, u, vk_i, d, g^k, u^k)`.
    pub c: Scalar,
    /// Response `z = k − c·s`.
    pub z: Scalar,
}

/// A decryption share `(i, u^{s_i}, π)` with its DLEQ proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DecShare {
    /// Producing share index.
    pub index: ShareIndex,
    /// The group element `u^{s_i}`.
    pub value: GroupElem,
    /// Proof that `value` is `u^{s_i}` for this ciphertext's `u`.
    pub proof: DleqProof,
}

/// The DLEQ Fiat–Shamir challenge.
fn dleq_challenge(
    index: ShareIndex,
    u: &GroupElem,
    vk_i: &GroupElem,
    d: &GroupElem,
    a1: &GroupElem,
    a2: &GroupElem,
) -> Scalar {
    hash_to_scalar(
        "wbft/thresh-enc/dleq",
        &[
            &index.value().to_le_bytes(),
            &u.to_bytes(),
            &vk_i.to_bytes(),
            &d.to_bytes(),
            &a1.to_bytes(),
            &a2.to_bytes(),
        ],
    )
}

/// Deals a `(threshold, n)` encryption key set; HoneyBadgerBFT uses
/// `threshold = f`.
pub fn deal_enc(
    n: usize,
    threshold: usize,
    curve: ThresholdCurve,
    rng: &mut impl RngCore,
) -> (EncPublicSet, Vec<EncSecretShare>) {
    assert!(threshold < n, "threshold {threshold} must be < n {n}");
    let poly = Polynomial::random(Scalar::random(rng), threshold, rng);
    let vk = GroupElem::from_exponent(&poly.secret());
    let mut vk_shares = Vec::with_capacity(n);
    let mut secrets = Vec::with_capacity(n);
    for i in 0..n {
        let index = ShareIndex::for_node(i);
        let s_i = poly.share(index);
        vk_shares.push(GroupElem::from_exponent(&s_i));
        secrets.push(EncSecretShare { index, secret: s_i });
    }
    (EncPublicSet { curve, threshold, vk, vk_shares }, secrets)
}

impl EncPublicSet {
    /// Assembles an encryption set from rolled parts (resharing ceremony);
    /// `vk` stays the genesis value, so ciphertexts encrypted before the
    /// roll remain decryptable by the new committee.
    pub fn from_parts(
        curve: ThresholdCurve,
        threshold: usize,
        vk: GroupElem,
        vk_shares: Vec<GroupElem>,
    ) -> Self {
        EncPublicSet { curve, threshold, vk, vk_shares }
    }

    /// The combined encryption key `g^s` — stable across resharing.
    pub fn group_key(&self) -> GroupElem {
        self.vk
    }

    /// Per-share verification keys, by zero-based node slot.
    pub fn share_keys(&self) -> &[GroupElem] {
        &self.vk_shares
    }

    /// Shares needed to decrypt.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of shares dealt.
    pub fn n(&self) -> usize {
        self.vk_shares.len()
    }

    /// The curve whose costs this key set charges.
    pub fn curve(&self) -> ThresholdCurve {
        self.curve
    }

    /// Encrypts `plaintext` under this key set, bound to `label`
    /// (HoneyBadgerBFT labels each ciphertext with `(epoch, proposer)`).
    pub fn encrypt(&self, label: &[u8], plaintext: &[u8], rng: &mut impl RngCore) -> Ciphertext {
        let r = Scalar::random(rng);
        let u = GroupElem::from_exponent(&r);
        let shared = self.vk.pow(&r);
        let key = shared.to_bytes();
        let ks = keystream(&key, label, plaintext.len());
        let body: Vec<u8> = plaintext.iter().zip(&ks).map(|(p, k)| p ^ k).collect();
        let tag = Digest32::of_parts("wbft/thresh-enc/tag", &[&key, &u.to_bytes(), &body, label]);
        Ciphertext { u, body, tag }
    }

    /// Verifies a peer's decryption share against a ciphertext by checking
    /// its Chaum–Pedersen DLEQ proof: recompute `A₁ = g^z·vk_i^c` and
    /// `A₂ = u^z·d^c` and require `c = H(i, u, vk_i, d, A₁, A₂)`. The
    /// ciphertext's `u` enters both the equation and the challenge hash, so
    /// a share produced for a different ciphertext cannot verify — and a
    /// bogus `d` is rejected *before* it can poison a combination.
    ///
    /// # Errors
    ///
    /// [`ThreshEncError::InvalidShare`] on a bad proof or an out-of-range
    /// index.
    pub fn verify_share(&self, ct: &Ciphertext, share: &DecShare) -> Result<(), ThreshEncError> {
        let i = share.index.value() as usize;
        if i == 0 || i > self.vk_shares.len() {
            return Err(ThreshEncError::InvalidShare { index: share.index.value() });
        }
        let vk_i = self.vk_shares[i - 1];
        let a1 = GroupElem::multi_pow(&[
            (GroupElem::generator(), share.proof.z),
            (vk_i, share.proof.c),
        ]);
        let a2 = GroupElem::multi_pow(&[(ct.u, share.proof.z), (share.value, share.proof.c)]);
        if dleq_challenge(share.index, &ct.u, &vk_i, &share.value, &a1, &a2) == share.proof.c {
            Ok(())
        } else {
            Err(ThreshEncError::InvalidShare { index: share.index.value() })
        }
    }

    /// Combines `threshold + 1` decryption shares and decrypts.
    ///
    /// # Errors
    ///
    /// [`ThreshEncError::IntegrityFailure`] if any combined share was bogus
    /// (the recovered keystream then fails the tag check); share-set errors
    /// otherwise.
    pub fn decrypt(
        &self,
        label: &[u8],
        ct: &Ciphertext,
        shares: &[DecShare],
    ) -> Result<Vec<u8>, ThreshEncError> {
        if shares.len() < self.threshold + 1 {
            return Err(ThreshEncError::Shamir(ShamirError::NotEnoughShares {
                got: shares.len(),
                need: self.threshold + 1,
            }));
        }
        let subset = &shares[..self.threshold + 1];
        let indices: Vec<ShareIndex> = subset.iter().map(|s| s.index).collect();
        let lambdas = lagrange_coeffs_at_zero(&indices)?;
        let pairs: Vec<(GroupElem, Scalar)> =
            subset.iter().zip(&lambdas).map(|(s, l)| (s.value, *l)).collect();
        let key = GroupElem::multi_pow(&pairs).to_bytes();
        let expect_tag =
            Digest32::of_parts("wbft/thresh-enc/tag", &[&key, &ct.u.to_bytes(), &ct.body, label]);
        if expect_tag != ct.tag {
            return Err(ThreshEncError::IntegrityFailure);
        }
        let ks = keystream(&key, label, ct.body.len());
        Ok(ct.body.iter().zip(&ks).map(|(c, k)| c ^ k).collect())
    }
}

impl EncSecretShare {
    /// Assembles a share from rolled parts (resharing combination).
    pub fn from_parts(index: ShareIndex, secret: Scalar) -> Self {
        EncSecretShare { index, secret }
    }

    /// The raw secret scalar, for acting as a resharing dealer.
    pub fn secret_scalar(&self) -> Scalar {
        self.secret
    }

    /// This share's index.
    pub fn index(&self) -> ShareIndex {
        self.index
    }

    /// Produces this node's decryption share for a ciphertext, with its
    /// DLEQ proof. The proof nonce is derived deterministically from the
    /// secret and the statement (RFC 6979 style), so signing needs no RNG
    /// and re-producing the share for retransmission is reproducible.
    pub fn dec_share(&self, ct: &Ciphertext) -> DecShare {
        let d = ct.u.pow(&self.secret);
        let vk_i = GroupElem::from_exponent(&self.secret);
        let k = hash_to_scalar(
            "wbft/thresh-enc/dleq-nonce",
            &[&self.secret.to_bytes(), &ct.u.to_bytes(), &d.to_bytes()],
        );
        let a1 = GroupElem::from_exponent(&k);
        let a2 = ct.u.pow(&k);
        let c = dleq_challenge(self.index, &ct.u, &vk_i, &d, &a1, &a2);
        let z = k.sub(&c.mul(&self.secret));
        DecShare { index: self.index, value: d, proof: DleqProof { c, z } }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (EncPublicSet, Vec<EncSecretShare>, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (p, s) = deal_enc(4, 1, ThresholdCurve::Bn158, &mut rng);
        (p, s, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (pks, sks, mut rng) = setup();
        let pt = b"batch: tx1|tx2|tx3".to_vec();
        let ct = pks.encrypt(b"epoch-0:node-2", &pt, &mut rng);
        assert_ne!(ct.body, pt, "ciphertext must differ from plaintext");
        let shares: Vec<_> = sks.iter().map(|s| s.dec_share(&ct)).collect();
        let out = pks.decrypt(b"epoch-0:node-2", &ct, &shares[1..3]).unwrap();
        assert_eq!(out, pt);
    }

    #[test]
    fn any_quorum_decrypts() {
        let (pks, sks, mut rng) = setup();
        let pt = b"payload".to_vec();
        let ct = pks.encrypt(b"l", &pt, &mut rng);
        let shares: Vec<_> = sks.iter().map(|s| s.dec_share(&ct)).collect();
        for a in 0..4 {
            for b in (a + 1)..4 {
                let out = pks.decrypt(b"l", &ct, &[shares[a], shares[b]]).unwrap();
                assert_eq!(out, pt);
            }
        }
    }

    #[test]
    fn wrong_label_fails_integrity() {
        let (pks, sks, mut rng) = setup();
        let ct = pks.encrypt(b"label-A", b"pt", &mut rng);
        let shares: Vec<_> = sks[..2].iter().map(|s| s.dec_share(&ct)).collect();
        assert_eq!(
            pks.decrypt(b"label-B", &ct, &shares),
            Err(ThreshEncError::IntegrityFailure)
        );
    }

    #[test]
    fn corrupted_share_fails_integrity() {
        let (pks, sks, mut rng) = setup();
        let ct = pks.encrypt(b"l", b"pt", &mut rng);
        let mut bad = sks[0].dec_share(&ct);
        bad.value = bad.value.mul(&GroupElem::generator());
        let good = sks[1].dec_share(&ct);
        assert_eq!(pks.decrypt(b"l", &ct, &[bad, good]), Err(ThreshEncError::IntegrityFailure));
    }

    #[test]
    fn corrupted_body_fails_integrity() {
        let (pks, sks, mut rng) = setup();
        let mut ct = pks.encrypt(b"l", b"some plaintext", &mut rng);
        ct.body[0] ^= 1;
        let shares: Vec<_> = sks[..2].iter().map(|s| s.dec_share(&ct)).collect();
        assert_eq!(pks.decrypt(b"l", &ct, &shares), Err(ThreshEncError::IntegrityFailure));
    }

    #[test]
    fn honest_shares_carry_valid_dleq_proofs() {
        let (pks, sks, mut rng) = setup();
        let ct = pks.encrypt(b"l", b"pt", &mut rng);
        for sk in &sks {
            pks.verify_share(&ct, &sk.dec_share(&ct)).unwrap();
        }
    }

    #[test]
    fn share_for_other_ciphertext_is_rejected() {
        // Regression: verify_share used to ignore its ciphertext argument,
        // so a share for ciphertext A verified against ciphertext B.
        let (pks, sks, mut rng) = setup();
        let ct_a = pks.encrypt(b"label-A", b"plaintext A", &mut rng);
        let ct_b = pks.encrypt(b"label-B", b"plaintext B", &mut rng);
        let share_for_a = sks[0].dec_share(&ct_a);
        pks.verify_share(&ct_a, &share_for_a).unwrap();
        assert_eq!(
            pks.verify_share(&ct_b, &share_for_a),
            Err(ThreshEncError::InvalidShare { index: 1 })
        );
    }

    #[test]
    fn tampered_share_value_fails_dleq() {
        let (pks, sks, mut rng) = setup();
        let ct = pks.encrypt(b"l", b"pt", &mut rng);
        let mut bad = sks[2].dec_share(&ct);
        bad.value = bad.value.mul(&GroupElem::generator());
        assert_eq!(
            pks.verify_share(&ct, &bad),
            Err(ThreshEncError::InvalidShare { index: 3 })
        );
        // A proof transplanted onto another index fails too.
        let mut wrong_index = sks[0].dec_share(&ct);
        wrong_index.index = sks[1].index();
        assert!(pks.verify_share(&ct, &wrong_index).is_err());
    }

    #[test]
    fn too_few_shares_rejected() {
        let (pks, sks, mut rng) = setup();
        let ct = pks.encrypt(b"l", b"pt", &mut rng);
        let shares = [sks[0].dec_share(&ct)];
        assert!(matches!(pks.decrypt(b"l", &ct, &shares), Err(ThreshEncError::Shamir(_))));
    }

    #[test]
    fn empty_plaintext_roundtrips() {
        let (pks, sks, mut rng) = setup();
        let ct = pks.encrypt(b"l", b"", &mut rng);
        let shares: Vec<_> = sks[..2].iter().map(|s| s.dec_share(&ct)).collect();
        assert_eq!(pks.decrypt(b"l", &ct, &shares).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn wire_len_accounts_for_all_parts() {
        let (pks, _, mut rng) = setup();
        let ct = pks.encrypt(b"l", &[0u8; 100], &mut rng);
        assert_eq!(ct.wire_len(), 32 + 100 + 32);
    }
}
