#![forbid(unsafe_code)]
//! # wbft-crypto — lightweight cryptography for wireless asynchronous BFT
//!
//! The cryptographic substrate of the ConsensusBatcher reproduction
//! (*"Asynchronous BFT Consensus Made Wireless"*, ICDCS 2025): threshold
//! signatures, threshold common coins, threshold encryption, and per-packet
//! digital signatures, all over one pairing-free discrete-log group, plus
//! the calibrated cost/size profiles of the paper's eleven curve
//! deployments.
//!
//! ## Example
//!
//! Deal a `(f, n)` threshold-signature key set and assemble a signature from
//! any quorum of shares:
//!
//! ```rust
//! use wbft_crypto::{thresh_sig, ThresholdCurve};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let (public, secrets) = thresh_sig::deal(4, 1, ThresholdCurve::Bn158, &mut rng);
//! let msg = b"PRBC done: instance 2";
//! let shares: Vec<_> = secrets.iter().map(|s| s.sign_share(msg)).collect();
//! let sig = public.combine(&shares[0..2])?;
//! public.verify(msg, &sig)?;
//! # Ok::<(), wbft_crypto::thresh_sig::ThreshSigError>(())
//! ```
//!
//! ## Security status — read this
//!
//! This crate is a **simulation substrate**, not production cryptography:
//!
//! * The group is the quadratic-residue subgroup of `Z_p^*` for a 255-bit
//!   safe prime — far below production sizes, and the arithmetic is not
//!   constant-time.
//! * The BLS-style threshold *signatures* hash to the group with a known
//!   discrete log, which makes verification pairing-free but shares
//!   forgeable by anyone (documented in [`thresh_sig`]). Agreement,
//!   uniqueness and the message flow are faithful; unforgeability is not.
//! * The Schnorr packet signatures and the threshold encryption are real
//!   constructions at toy parameters.
//!
//! Computation *cost* is decoupled from this implementation: the simulator
//! charges the per-operation virtual CPU times of the MIRACL / micro-ecc
//! deployments measured in the paper (see [`profile`]).
//!
//! ## Fast paths
//!
//! Real wall-clock (as opposed to the charged virtual cost) is dominated by
//! group exponentiation, so the crate ships a fast-path engine — fixed-base
//! window tables ([`group::PrecomputedBase`], plus a process-wide generator
//! table behind [`GroupElem::from_exponent`]), simultaneous
//! multi-exponentiation ([`GroupElem::multi_pow`]), batched share
//! verification (`verify_shares` on [`thresh_sig::PublicKeySet`] and
//! [`thresh_coin::CoinPublicSet`], random linear combination with
//! deterministic 64-bit coefficients and a per-share fallback), memoized
//! batch-inverted Lagrange coefficients
//! ([`shamir::lagrange_coeffs_at_zero`]), and a subgroup-membership decode
//! memo. None of it perturbs determinism: every cache is keyed purely by
//! its inputs. See the workspace README ("Crypto fast paths") for measured
//! numbers.

mod batch;
pub mod field;
pub mod group;
pub mod hash;
mod limbs;
pub mod merkle;
pub mod profile;
pub mod reshare;
pub mod schnorr;
pub mod shamir;
pub mod thresh_coin;
pub mod thresh_enc;
pub mod thresh_sig;

pub use field::{Fe, Scalar};
pub use group::{GroupElem, PrecomputedBase};
pub use hash::Digest32;
pub use profile::{
    CoinProfile, CryptoSuite, EcdsaCurve, EcdsaProfile, ThresholdCurve, ThresholdProfile,
};
pub use shamir::ShareIndex;
