//! Threshold common coin — the randomness source of shared-coin ABA.
//!
//! Two deployments share this module, differing only in cost profile and
//! share size (paper §VI-A):
//!
//! * **Threshold-signature coin** (Cachin's ABA / ABA-SC): the coin for name
//!   `Γ` is the low bit(s) of `H(h_Γ^s)` where `h_Γ^s` is the unique
//!   threshold signature on `Γ` — produced here by the same construction as
//!   [`crate::thresh_sig`] over a coin-dedicated key set.
//! * **Threshold coin flipping** (BEAT / ABA-CP): identical combinatorics
//!   with the cheaper [`crate::profile::CoinProfile`] costs and shares that
//!   carry extra verification data.
//!
//! A coin's value is unpredictable (at protocol level) until `threshold + 1`
//! distinct shares are released, and all honest nodes that combine any
//! quorum obtain the *same* value — the two properties shared-coin ABA
//! needs for termination.

use crate::field::Scalar;
use crate::group::{GroupElem, PrecompCache, PrecomputedBase};
use crate::hash::hash_to_scalar;
use crate::profile::{CoinProfile, ThresholdCurve};
use crate::shamir::{lagrange_coeffs_at_zero, Polynomial, ShamirError, ShareIndex};
use rand::RngCore;

/// Errors from coin operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoinError {
    /// A coin share failed verification.
    InvalidShare { index: u16 },
    /// Underlying share-set error.
    Shamir(ShamirError),
}

impl core::fmt::Display for CoinError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoinError::InvalidShare { index } => write!(f, "invalid coin share from index {index}"),
            CoinError::Shamir(e) => write!(f, "coin share set error: {e}"),
        }
    }
}

impl std::error::Error for CoinError {}

impl From<ShamirError> for CoinError {
    fn from(e: ShamirError) -> Self {
        CoinError::Shamir(e)
    }
}

/// The name that identifies one coin toss. Under ConsensusBatcher, *all
/// parallel ABA instances in the same round share one coin* (paper §IV-C2,
/// Technical Challenge III): the instance id is deliberately absent.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct CoinName {
    /// Consensus session (epoch) the coin belongs to.
    pub session: u64,
    /// ABA round number.
    pub round: u32,
    /// Distinguishes independent coin domains within a session (e.g. the
    /// serial-ABA sequence position in Dumbo). Parallel instances that are
    /// allowed to share a coin use the same domain.
    pub domain: u32,
}

impl CoinName {
    fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.session.to_le_bytes());
        out[8..12].copy_from_slice(&self.round.to_le_bytes());
        out[12..16].copy_from_slice(&self.domain.to_le_bytes());
        out
    }
}

/// A coin name pre-hashed for share operations: caches the exponent `e`
/// with `h_Γ = g^e`, so `n` shares of one coin hash once.
#[derive(Clone, Copy, Debug)]
pub struct PreparedCoin {
    e: Scalar,
}

impl PreparedCoin {
    /// Prepares a coin name for repeated share verification.
    pub fn new(name: CoinName) -> Self {
        PreparedCoin { e: coin_exponent(name) }
    }
}

/// Public coin-verification material.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CoinPublicSet {
    curve: ThresholdCurve,
    threshold: usize,
    vk_shares: Vec<GroupElem>,
    precomp: PrecompCache<Vec<PrecomputedBase>>,
}

/// One node's secret coin key share.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CoinSecretShare {
    index: ShareIndex,
    secret: Scalar,
}

/// A coin share: `(i, h_Γ^{s_i})`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CoinShare {
    /// Producing share index.
    pub index: ShareIndex,
    /// The group element.
    pub value: GroupElem,
}

/// Deals a coin key set with reconstruction threshold `threshold + 1`
/// (ABA uses `threshold = f`: the adversary's `f` shares reveal nothing).
pub fn deal_coin(
    n: usize,
    threshold: usize,
    curve: ThresholdCurve,
    rng: &mut impl RngCore,
) -> (CoinPublicSet, Vec<CoinSecretShare>) {
    assert!(threshold < n, "threshold {threshold} must be < n {n}");
    let poly = Polynomial::random(Scalar::random(rng), threshold, rng);
    let mut vk_shares = Vec::with_capacity(n);
    let mut secrets = Vec::with_capacity(n);
    for i in 0..n {
        let index = ShareIndex::for_node(i);
        let s_i = poly.share(index);
        vk_shares.push(GroupElem::from_exponent(&s_i));
        secrets.push(CoinSecretShare { index, secret: s_i });
    }
    (CoinPublicSet { curve, threshold, vk_shares, precomp: PrecompCache::default() }, secrets)
}

/// The known discrete log of the coin point `h_Γ = g^e`.
fn coin_exponent(name: CoinName) -> Scalar {
    hash_to_scalar("wbft/coin", &[&name.to_bytes()])
}

impl CoinPublicSet {
    /// Assembles a coin set from rolled parts (resharing ceremony). A coin
    /// set has no combined `vk`; coin *values* are preserved across a roll
    /// because they are a function of the shared secret, which resharing
    /// keeps fixed.
    pub fn from_parts(
        curve: ThresholdCurve,
        threshold: usize,
        vk_shares: Vec<GroupElem>,
    ) -> Self {
        CoinPublicSet { curve, threshold, vk_shares, precomp: PrecompCache::default() }
    }

    /// Per-share verification keys, by zero-based node slot.
    pub fn share_keys(&self) -> &[GroupElem] {
        &self.vk_shares
    }

    /// The curve deployment of this key set.
    pub fn curve(&self) -> ThresholdCurve {
        self.curve
    }

    /// Shares needed to reveal a coin.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of shares dealt.
    pub fn n(&self) -> usize {
        self.vk_shares.len()
    }

    /// Cost profile for the coin-flipping deployment of this key set.
    pub fn profile(&self) -> CoinProfile {
        self.curve.coin_profile()
    }

    /// Builds the fixed-base window tables for every coin verification key
    /// (opt-in; shared by all clones of this key set).
    pub fn precompute(&self) {
        self.precomp.0.get_or_init(|| self.vk_shares.iter().map(PrecomputedBase::new).collect());
    }

    fn tables(&self) -> Option<&Vec<PrecomputedBase>> {
        self.precomp.0.get()
    }

    /// `vk_shares[i]^e`, through the window table when built.
    fn vk_share_pow(&self, i: usize, e: &Scalar) -> GroupElem {
        match self.tables() {
            Some(t) => t[i].pow(e),
            None => self.vk_shares[i].pow(e),
        }
    }

    /// Pre-hashes a coin name for repeated share operations.
    pub fn prepare(&self, name: CoinName) -> PreparedCoin {
        PreparedCoin::new(name)
    }

    /// Verifies one coin share for `name`.
    ///
    /// # Errors
    ///
    /// [`CoinError::InvalidShare`] if the check fails.
    pub fn verify_share(&self, name: CoinName, share: &CoinShare) -> Result<(), CoinError> {
        self.verify_share_prepared(&PreparedCoin::new(name), share)
    }

    /// [`Self::verify_share`] against a pre-hashed coin name.
    ///
    /// # Errors
    ///
    /// [`CoinError::InvalidShare`] if the check fails.
    pub fn verify_share_prepared(
        &self,
        coin: &PreparedCoin,
        share: &CoinShare,
    ) -> Result<(), CoinError> {
        let i = share.index.value() as usize;
        if i == 0 || i > self.vk_shares.len() {
            return Err(CoinError::InvalidShare { index: share.index.value() });
        }
        if self.vk_share_pow(i - 1, &coin.e) == share.value {
            Ok(())
        } else {
            Err(CoinError::InvalidShare { index: share.index.value() })
        }
    }

    /// Verifies a batch of shares of the *same* coin with one random linear
    /// combination — the coin mirror of
    /// [`crate::thresh_sig::PublicKeySet::verify_shares`] (same soundness
    /// argument, same per-share fallback on batch failure).
    ///
    /// # Errors
    ///
    /// [`CoinError::InvalidShare`] naming the first invalid share.
    pub fn verify_shares(&self, name: CoinName, shares: &[CoinShare]) -> Result<(), CoinError> {
        self.verify_shares_prepared(&PreparedCoin::new(name), shares)
    }

    /// [`Self::verify_shares`] against a pre-hashed coin name.
    ///
    /// # Errors
    ///
    /// [`CoinError::InvalidShare`] naming the first invalid share.
    pub fn verify_shares_prepared(
        &self,
        coin: &PreparedCoin,
        shares: &[CoinShare],
    ) -> Result<(), CoinError> {
        match self.invalid_share_positions(coin, shares).first() {
            None => Ok(()),
            Some(&p) => Err(CoinError::InvalidShare { index: shares[p].index.value() }),
        }
    }

    /// The positions (into `shares`) of every share failing verification;
    /// empty when the whole batch is valid (decided by the batch fast path
    /// shared with `thresh_sig`, [`crate::batch`]).
    pub fn invalid_share_positions(
        &self,
        coin: &PreparedCoin,
        shares: &[CoinShare],
    ) -> Vec<usize> {
        let items: Vec<crate::batch::Item> =
            shares.iter().map(|s| (s.index.value(), s.value)).collect();
        crate::batch::invalid_share_positions(
            &self.vk_shares,
            self.tables().map(|t| t.as_slice()),
            &coin.e,
            "wbft/coin/batch",
            &items,
        )
    }

    /// Combines `threshold + 1` shares into the coin's boolean value.
    ///
    /// All quorums yield the same value (tested below); shared-coin ABA's
    /// agreement on the coin follows.
    ///
    /// # Errors
    ///
    /// Propagates share-set errors.
    pub fn combine(&self, name: CoinName, shares: &[CoinShare]) -> Result<bool, CoinError> {
        Ok(self.combine_value(name, shares)? & 1 == 1)
    }

    /// Combines into a 64-bit coin value (used to seed Dumbo's permutation π).
    ///
    /// # Errors
    ///
    /// Propagates share-set errors.
    pub fn combine_value(&self, name: CoinName, shares: &[CoinShare]) -> Result<u64, CoinError> {
        if shares.len() < self.threshold + 1 {
            return Err(CoinError::Shamir(ShamirError::NotEnoughShares {
                got: shares.len(),
                need: self.threshold + 1,
            }));
        }
        let subset = &shares[..self.threshold + 1];
        let indices: Vec<ShareIndex> = subset.iter().map(|s| s.index).collect();
        let lambdas = lagrange_coeffs_at_zero(&indices)?;
        let pairs: Vec<(GroupElem, Scalar)> =
            subset.iter().zip(&lambdas).map(|(s, l)| (s.value, *l)).collect();
        let digest = GroupElem::multi_pow(&pairs).digest("wbft/coin/value");
        let _ = name; // the name is already bound through the share values
        Ok(digest.to_u64())
    }
}

impl CoinSecretShare {
    /// Assembles a share from rolled parts (resharing combination).
    pub fn from_parts(index: ShareIndex, secret: Scalar) -> Self {
        CoinSecretShare { index, secret }
    }

    /// The raw secret scalar, for acting as a resharing dealer.
    pub fn secret_scalar(&self) -> Scalar {
        self.secret
    }

    /// This share's index.
    pub fn index(&self) -> ShareIndex {
        self.index
    }

    /// Produces this node's share of the coin `name` (`h_Γ^{s_i} =
    /// g^{e·s_i}`: one scalar multiply plus a fixed-base table pow).
    pub fn coin_share(&self, name: CoinName) -> CoinShare {
        let e = coin_exponent(name);
        CoinShare { index: self.index, value: GroupElem::from_exponent(&e.mul(&self.secret)) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (CoinPublicSet, Vec<CoinSecretShare>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        deal_coin(4, 1, ThresholdCurve::Bn158, &mut rng)
    }

    fn name(round: u32) -> CoinName {
        CoinName { session: 9, round, domain: 0 }
    }

    #[test]
    fn all_quorums_agree_on_coin_value() {
        let (pub_set, secrets) = setup();
        let n = name(1);
        let shares: Vec<_> = secrets.iter().map(|s| s.coin_share(n)).collect();
        let mut values = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                values.push(pub_set.combine(n, &[shares[a], shares[b]]).unwrap());
            }
        }
        assert!(values.windows(2).all(|w| w[0] == w[1]), "quorums disagreed: {values:?}");
    }

    #[test]
    fn coin_values_vary_across_rounds() {
        // With ~30 rounds the chance of all-equal coins is 2^-29; this also
        // catches accidentally-constant coins.
        let (pub_set, secrets) = setup();
        let mut seen_true = false;
        let mut seen_false = false;
        for round in 0..30 {
            let n = name(round);
            let shares: Vec<_> = secrets[..2].iter().map(|s| s.coin_share(n)).collect();
            if pub_set.combine(n, &shares).unwrap() {
                seen_true = true;
            } else {
                seen_false = true;
            }
        }
        assert!(seen_true && seen_false, "30 rounds of coins never flipped");
        // Stronger: at least two distinct u64 values across rounds.
        let v0 = {
            let n = name(100);
            let shares: Vec<_> = secrets[..2].iter().map(|s| s.coin_share(n)).collect();
            pub_set.combine_value(n, &shares).unwrap()
        };
        let v1 = {
            let n = name(101);
            let shares: Vec<_> = secrets[..2].iter().map(|s| s.coin_share(n)).collect();
            pub_set.combine_value(n, &shares).unwrap()
        };
        assert_ne!(v0, v1);
    }

    #[test]
    fn share_verification_rejects_wrong_name() {
        let (pub_set, secrets) = setup();
        let share = secrets[0].coin_share(name(1));
        assert!(pub_set.verify_share(name(2), &share).is_err());
        pub_set.verify_share(name(1), &share).unwrap();
    }

    #[test]
    fn tampered_share_rejected() {
        let (pub_set, secrets) = setup();
        let n = name(5);
        let mut share = secrets[1].coin_share(n);
        share.value = share.value.mul(&GroupElem::generator());
        assert_eq!(pub_set.verify_share(n, &share), Err(CoinError::InvalidShare { index: 2 }));
    }

    #[test]
    fn batch_share_verification_mirrors_per_share() {
        let (pub_set, secrets) = setup();
        let n = name(8);
        let shares: Vec<_> = secrets.iter().map(|s| s.coin_share(n)).collect();
        pub_set.verify_shares(n, &shares).unwrap();
        let mut mixed = shares.clone();
        mixed[1].value = mixed[1].value.mul(&GroupElem::generator());
        assert_eq!(
            pub_set.verify_shares(n, &mixed),
            Err(CoinError::InvalidShare { index: 2 })
        );
        let pc = pub_set.prepare(n);
        assert_eq!(pub_set.invalid_share_positions(&pc, &mixed), vec![1]);
        // Tables change nothing.
        pub_set.precompute();
        pub_set.verify_shares(n, &shares).unwrap();
        assert_eq!(pub_set.invalid_share_positions(&pc, &mixed), vec![1]);
        for s in &shares {
            pub_set.verify_share(n, s).unwrap();
        }
        // Wrong-name shares fail in batch as they do per-share.
        assert!(pub_set.verify_shares(name(9), &shares).is_err());
    }

    #[test]
    fn single_share_insufficient() {
        let (pub_set, secrets) = setup();
        let n = name(7);
        let shares = [secrets[0].coin_share(n)];
        assert!(matches!(pub_set.combine(n, &shares), Err(CoinError::Shamir(_))));
    }

    #[test]
    fn domains_are_independent() {
        let (pub_set, secrets) = setup();
        let a = CoinName { session: 1, round: 0, domain: 0 };
        let b = CoinName { session: 1, round: 0, domain: 1 };
        let sa: Vec<_> = secrets[..2].iter().map(|s| s.coin_share(a)).collect();
        let sb: Vec<_> = secrets[..2].iter().map(|s| s.coin_share(b)).collect();
        let va = pub_set.combine_value(a, &sa).unwrap();
        let vb = pub_set.combine_value(b, &sb).unwrap();
        assert_ne!(va, vb);
    }
}
