//! Threshold common coin — the randomness source of shared-coin ABA.
//!
//! Two deployments share this module, differing only in cost profile and
//! share size (paper §VI-A):
//!
//! * **Threshold-signature coin** (Cachin's ABA / ABA-SC): the coin for name
//!   `Γ` is the low bit(s) of `H(h_Γ^s)` where `h_Γ^s` is the unique
//!   threshold signature on `Γ` — produced here by the same construction as
//!   [`crate::thresh_sig`] over a coin-dedicated key set.
//! * **Threshold coin flipping** (BEAT / ABA-CP): identical combinatorics
//!   with the cheaper [`crate::profile::CoinProfile`] costs and shares that
//!   carry extra verification data.
//!
//! A coin's value is unpredictable (at protocol level) until `threshold + 1`
//! distinct shares are released, and all honest nodes that combine any
//! quorum obtain the *same* value — the two properties shared-coin ABA
//! needs for termination.

use crate::field::Scalar;
use crate::group::GroupElem;
use crate::profile::{CoinProfile, ThresholdCurve};
use crate::shamir::{lagrange_at_zero, Polynomial, ShamirError, ShareIndex};
use rand::RngCore;

/// Errors from coin operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoinError {
    /// A coin share failed verification.
    InvalidShare { index: u16 },
    /// Underlying share-set error.
    Shamir(ShamirError),
}

impl core::fmt::Display for CoinError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoinError::InvalidShare { index } => write!(f, "invalid coin share from index {index}"),
            CoinError::Shamir(e) => write!(f, "coin share set error: {e}"),
        }
    }
}

impl std::error::Error for CoinError {}

impl From<ShamirError> for CoinError {
    fn from(e: ShamirError) -> Self {
        CoinError::Shamir(e)
    }
}

/// The name that identifies one coin toss. Under ConsensusBatcher, *all
/// parallel ABA instances in the same round share one coin* (paper §IV-C2,
/// Technical Challenge III): the instance id is deliberately absent.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct CoinName {
    /// Consensus session (epoch) the coin belongs to.
    pub session: u64,
    /// ABA round number.
    pub round: u32,
    /// Distinguishes independent coin domains within a session (e.g. the
    /// serial-ABA sequence position in Dumbo). Parallel instances that are
    /// allowed to share a coin use the same domain.
    pub domain: u32,
}

impl CoinName {
    fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.session.to_le_bytes());
        out[8..12].copy_from_slice(&self.round.to_le_bytes());
        out[12..16].copy_from_slice(&self.domain.to_le_bytes());
        out
    }
}

/// Public coin-verification material.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CoinPublicSet {
    curve: ThresholdCurve,
    threshold: usize,
    vk_shares: Vec<GroupElem>,
}

/// One node's secret coin key share.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CoinSecretShare {
    index: ShareIndex,
    secret: Scalar,
}

/// A coin share: `(i, h_Γ^{s_i})`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CoinShare {
    /// Producing share index.
    pub index: ShareIndex,
    /// The group element.
    pub value: GroupElem,
}

/// Deals a coin key set with reconstruction threshold `threshold + 1`
/// (ABA uses `threshold = f`: the adversary's `f` shares reveal nothing).
pub fn deal_coin(
    n: usize,
    threshold: usize,
    curve: ThresholdCurve,
    rng: &mut impl RngCore,
) -> (CoinPublicSet, Vec<CoinSecretShare>) {
    assert!(threshold < n, "threshold {threshold} must be < n {n}");
    let poly = Polynomial::random(Scalar::random(rng), threshold, rng);
    let mut vk_shares = Vec::with_capacity(n);
    let mut secrets = Vec::with_capacity(n);
    for i in 0..n {
        let index = ShareIndex::for_node(i);
        let s_i = poly.share(index);
        vk_shares.push(GroupElem::from_exponent(&s_i));
        secrets.push(CoinSecretShare { index, secret: s_i });
    }
    (CoinPublicSet { curve, threshold, vk_shares }, secrets)
}

fn coin_point(name: CoinName) -> (GroupElem, Scalar) {
    GroupElem::hash_to_group("wbft/coin", &[&name.to_bytes()])
}

impl CoinPublicSet {
    /// Shares needed to reveal a coin.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of shares dealt.
    pub fn n(&self) -> usize {
        self.vk_shares.len()
    }

    /// Cost profile for the coin-flipping deployment of this key set.
    pub fn profile(&self) -> CoinProfile {
        self.curve.coin_profile()
    }

    /// Verifies one coin share for `name`.
    ///
    /// # Errors
    ///
    /// [`CoinError::InvalidShare`] if the check fails.
    pub fn verify_share(&self, name: CoinName, share: &CoinShare) -> Result<(), CoinError> {
        let i = share.index.value() as usize;
        if i == 0 || i > self.vk_shares.len() {
            return Err(CoinError::InvalidShare { index: share.index.value() });
        }
        let (_, e) = coin_point(name);
        if self.vk_shares[i - 1].pow(&e) == share.value {
            Ok(())
        } else {
            Err(CoinError::InvalidShare { index: share.index.value() })
        }
    }

    /// Combines `threshold + 1` shares into the coin's boolean value.
    ///
    /// All quorums yield the same value (tested below); shared-coin ABA's
    /// agreement on the coin follows.
    ///
    /// # Errors
    ///
    /// Propagates share-set errors.
    pub fn combine(&self, name: CoinName, shares: &[CoinShare]) -> Result<bool, CoinError> {
        Ok(self.combine_value(name, shares)? & 1 == 1)
    }

    /// Combines into a 64-bit coin value (used to seed Dumbo's permutation π).
    ///
    /// # Errors
    ///
    /// Propagates share-set errors.
    pub fn combine_value(&self, name: CoinName, shares: &[CoinShare]) -> Result<u64, CoinError> {
        if shares.len() < self.threshold + 1 {
            return Err(CoinError::Shamir(ShamirError::NotEnoughShares {
                got: shares.len(),
                need: self.threshold + 1,
            }));
        }
        let subset = &shares[..self.threshold + 1];
        let indices: Vec<ShareIndex> = subset.iter().map(|s| s.index).collect();
        let mut acc = GroupElem::identity();
        for share in subset {
            let lambda = lagrange_at_zero(share.index, &indices)?;
            acc = acc.mul(&share.value.pow(&lambda));
        }
        let digest = acc.digest("wbft/coin/value");
        let _ = name; // the name is already bound through the share values
        Ok(digest.to_u64())
    }
}

impl CoinSecretShare {
    /// This share's index.
    pub fn index(&self) -> ShareIndex {
        self.index
    }

    /// Produces this node's share of the coin `name`.
    pub fn coin_share(&self, name: CoinName) -> CoinShare {
        let (h, _) = coin_point(name);
        CoinShare { index: self.index, value: h.pow(&self.secret) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (CoinPublicSet, Vec<CoinSecretShare>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        deal_coin(4, 1, ThresholdCurve::Bn158, &mut rng)
    }

    fn name(round: u32) -> CoinName {
        CoinName { session: 9, round, domain: 0 }
    }

    #[test]
    fn all_quorums_agree_on_coin_value() {
        let (pub_set, secrets) = setup();
        let n = name(1);
        let shares: Vec<_> = secrets.iter().map(|s| s.coin_share(n)).collect();
        let mut values = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                values.push(pub_set.combine(n, &[shares[a], shares[b]]).unwrap());
            }
        }
        assert!(values.windows(2).all(|w| w[0] == w[1]), "quorums disagreed: {values:?}");
    }

    #[test]
    fn coin_values_vary_across_rounds() {
        // With ~30 rounds the chance of all-equal coins is 2^-29; this also
        // catches accidentally-constant coins.
        let (pub_set, secrets) = setup();
        let mut seen_true = false;
        let mut seen_false = false;
        for round in 0..30 {
            let n = name(round);
            let shares: Vec<_> = secrets[..2].iter().map(|s| s.coin_share(n)).collect();
            if pub_set.combine(n, &shares).unwrap() {
                seen_true = true;
            } else {
                seen_false = true;
            }
        }
        assert!(seen_true && seen_false, "30 rounds of coins never flipped");
        // Stronger: at least two distinct u64 values across rounds.
        let v0 = {
            let n = name(100);
            let shares: Vec<_> = secrets[..2].iter().map(|s| s.coin_share(n)).collect();
            pub_set.combine_value(n, &shares).unwrap()
        };
        let v1 = {
            let n = name(101);
            let shares: Vec<_> = secrets[..2].iter().map(|s| s.coin_share(n)).collect();
            pub_set.combine_value(n, &shares).unwrap()
        };
        assert_ne!(v0, v1);
    }

    #[test]
    fn share_verification_rejects_wrong_name() {
        let (pub_set, secrets) = setup();
        let share = secrets[0].coin_share(name(1));
        assert!(pub_set.verify_share(name(2), &share).is_err());
        pub_set.verify_share(name(1), &share).unwrap();
    }

    #[test]
    fn tampered_share_rejected() {
        let (pub_set, secrets) = setup();
        let n = name(5);
        let mut share = secrets[1].coin_share(n);
        share.value = share.value.mul(&GroupElem::generator());
        assert_eq!(pub_set.verify_share(n, &share), Err(CoinError::InvalidShare { index: 2 }));
    }

    #[test]
    fn single_share_insufficient() {
        let (pub_set, secrets) = setup();
        let n = name(7);
        let shares = [secrets[0].coin_share(n)];
        assert!(matches!(pub_set.combine(n, &shares), Err(CoinError::Shamir(_))));
    }

    #[test]
    fn domains_are_independent() {
        let (pub_set, secrets) = setup();
        let a = CoinName { session: 1, round: 0, domain: 0 };
        let b = CoinName { session: 1, round: 0, domain: 1 };
        let sa: Vec<_> = secrets[..2].iter().map(|s| s.coin_share(a)).collect();
        let sb: Vec<_> = secrets[..2].iter().map(|s| s.coin_share(b)).collect();
        let va = pub_set.combine_value(a, &sa).unwrap();
        let vb = pub_set.combine_value(b, &sb).unwrap();
        assert_ne!(va, vb);
    }
}
