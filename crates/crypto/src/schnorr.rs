//! Per-packet digital signatures (the `Signature` field every
//! ConsensusBatcher packet carries — paper §IV-B1).
//!
//! Deterministic Schnorr over the prime-order group: `R = g^k`,
//! `e = H(R ‖ pk ‖ m)`, `z = k + e·x`. Verification `g^z == R · pk^e` is the
//! genuine algebraic check — unlike the threshold module, this scheme is a
//! real signature (its security reduces to discrete log in the simulation
//! group; the group itself is undersized for production use, which is fine
//! for a testbed). The *charged* cost and wire size come from the selected
//! micro-ecc curve profile.

use crate::field::Scalar;
use crate::group::GroupElem;
use crate::hash::hash_to_scalar;
use crate::profile::EcdsaCurve;
use rand::RngCore;

/// A signing keypair for one node.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct KeyPair {
    sk: Scalar,
    pk: GroupElem,
    curve: EcdsaCurve,
}

/// A public verification key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PublicKey {
    point: GroupElem,
    curve: EcdsaCurve,
}

/// A Schnorr signature `(R, z)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Signature {
    /// Commitment `g^k`.
    pub r: GroupElem,
    /// Response `k + e·x`.
    pub z: Scalar,
}

/// Error returned when a signature fails verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSignature;

impl core::fmt::Display for InvalidSignature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid packet signature")
    }
}

impl std::error::Error for InvalidSignature {}

impl KeyPair {
    /// Generates a keypair; `curve` selects the cost/size profile charged
    /// for its operations.
    pub fn generate(curve: EcdsaCurve, rng: &mut impl RngCore) -> Self {
        let sk = Scalar::random(rng);
        let pk = GroupElem::from_exponent(&sk);
        KeyPair { sk, pk, curve }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        PublicKey { point: self.pk, curve: self.curve }
    }

    /// Signs a message (deterministic nonce, RFC-6979 style).
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let k = hash_to_scalar("wbft/schnorr/nonce", &[&self.sk.to_bytes(), msg]);
        let r = GroupElem::from_exponent(&k);
        let e = challenge(&r, &self.pk, msg);
        let z = k.add(&e.mul(&self.sk));
        Signature { r, z }
    }

    /// The curve profile this keypair charges.
    pub fn curve(&self) -> EcdsaCurve {
        self.curve
    }
}

impl PublicKey {
    /// Verifies `sig` over `msg`.
    ///
    /// # Errors
    ///
    /// [`InvalidSignature`] on mismatch.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), InvalidSignature> {
        let e = challenge(&sig.r, &self.point, msg);
        let lhs = GroupElem::from_exponent(&sig.z);
        let rhs = sig.r.mul(&self.point.pow(&e));
        if lhs == rhs {
            Ok(())
        } else {
            Err(InvalidSignature)
        }
    }

    /// The wire size charged for signatures under this key.
    pub fn signature_wire_bytes(&self) -> usize {
        self.curve.profile().signature_bytes
    }
}

fn challenge(r: &GroupElem, pk: &GroupElem, msg: &[u8]) -> Scalar {
    hash_to_scalar("wbft/schnorr/e", &[&r.to_bytes(), &pk.to_bytes(), msg])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn keypair() -> KeyPair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        KeyPair::generate(EcdsaCurve::Secp160r1, &mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair();
        let sig = kp.sign(b"packet bytes");
        kp.public().verify(b"packet bytes", &sig).unwrap();
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = keypair();
        let sig = kp.sign(b"m1");
        assert_eq!(kp.public().verify(b"m2", &sig), Err(InvalidSignature));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let kp1 = KeyPair::generate(EcdsaCurve::Secp160r1, &mut rng);
        let kp2 = KeyPair::generate(EcdsaCurve::Secp160r1, &mut rng);
        let sig = kp1.sign(b"m");
        assert_eq!(kp2.public().verify(b"m", &sig), Err(InvalidSignature));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = keypair();
        let mut sig = kp.sign(b"m");
        sig.z = sig.z.add(&Scalar::ONE);
        assert_eq!(kp.public().verify(b"m", &sig), Err(InvalidSignature));
    }

    #[test]
    fn signing_is_deterministic() {
        let kp = keypair();
        assert_eq!(kp.sign(b"m"), kp.sign(b"m"));
        assert_ne!(kp.sign(b"m"), kp.sign(b"n"));
    }

    #[test]
    fn wire_bytes_follow_curve_profile() {
        let kp = keypair();
        assert_eq!(kp.public().signature_wire_bytes(), 40);
    }
}
