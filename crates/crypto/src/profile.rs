//! Calibrated cost/size profiles for the cryptographic deployments evaluated
//! in the paper (§VI-A, Fig. 10).
//!
//! The paper benchmarks six MIRACL pairing-curve deployments of threshold
//! cryptography (BN158, BN254, BLS12383, BLS12381, FP256BN, FP512BN) and five
//! micro-ecc curves for packet signatures (secp160r1 … secp256k1) on an
//! STM32F767 (Cortex-M7 @ 216 MHz). We do not run MIRACL; instead each curve
//! is a *profile*: the byte sizes its signatures occupy in packets and the
//! virtual CPU time its operations charge inside the discrete-event
//! simulator. The numbers below are read off Fig. 10a–c (log-scale, ms) and
//! standard micro-ecc benchmarks for the Cortex-M7 class; EXPERIMENTS.md
//! records them as calibration assumptions. Shapes that matter downstream:
//! BN158 lightest, BN254 ≈ FP256BN mid, BLS12-class heavy, FP512BN heaviest;
//! threshold coin flipping strictly cheaper than threshold signatures; BN158
//! threshold signature = 21 bytes; secp160r1 packet signature = 40 bytes.

/// The six pairing-curve deployments for threshold cryptography.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum ThresholdCurve {
    /// 158-bit Barreto–Naehrig curve — the lightest deployment; the paper
    /// selects it (with secp160r1) for all consensus experiments.
    Bn158,
    /// 254-bit Barreto–Naehrig curve.
    Bn254,
    /// BLS12-383.
    Bls12383,
    /// BLS12-381.
    Bls12381,
    /// 256-bit BN curve in Fp.
    Fp256Bn,
    /// 512-bit BN curve in Fp — the heaviest deployment.
    Fp512Bn,
}

impl ThresholdCurve {
    /// All curves, in the order the paper's figures list them.
    pub const ALL: [ThresholdCurve; 6] = [
        ThresholdCurve::Bn158,
        ThresholdCurve::Bn254,
        ThresholdCurve::Bls12383,
        ThresholdCurve::Bls12381,
        ThresholdCurve::Fp256Bn,
        ThresholdCurve::Fp512Bn,
    ];

    /// Human-readable name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ThresholdCurve::Bn158 => "BN158",
            ThresholdCurve::Bn254 => "BN254",
            ThresholdCurve::Bls12383 => "BLS12383",
            ThresholdCurve::Bls12381 => "BLS12381",
            ThresholdCurve::Fp256Bn => "FP256BN",
            ThresholdCurve::Fp512Bn => "FP512BN",
        }
    }

    /// Cost/size profile for *threshold signatures* on this curve (Fig. 10a).
    pub fn signature_profile(&self) -> ThresholdProfile {
        // (dealer, sign_share, verify_share, combine, verify_sig) in µs;
        // sizes in bytes. Fig. 10a spans 10^0–10^3 ms.
        match self {
            ThresholdCurve::Bn158 => ThresholdProfile {
                curve: *self,
                dealer_us: 42_000,
                sign_share_us: 26_000,
                verify_share_us: 58_000,
                combine_us: 34_000,
                verify_signature_us: 52_000,
                signature_bytes: 21,
                share_bytes: 21,
            },
            ThresholdCurve::Bn254 => ThresholdProfile {
                curve: *self,
                dealer_us: 105_000,
                sign_share_us: 68_000,
                verify_share_us: 148_000,
                combine_us: 88_000,
                verify_signature_us: 135_000,
                signature_bytes: 33,
                share_bytes: 33,
            },
            ThresholdCurve::Bls12383 => ThresholdProfile {
                curve: *self,
                dealer_us: 265_000,
                sign_share_us: 162_000,
                verify_share_us: 355_000,
                combine_us: 205_000,
                verify_signature_us: 330_000,
                signature_bytes: 49,
                share_bytes: 49,
            },
            ThresholdCurve::Bls12381 => ThresholdProfile {
                curve: *self,
                dealer_us: 255_000,
                sign_share_us: 157_000,
                verify_share_us: 345_000,
                combine_us: 198_000,
                verify_signature_us: 318_000,
                signature_bytes: 49,
                share_bytes: 49,
            },
            ThresholdCurve::Fp256Bn => ThresholdProfile {
                curve: *self,
                dealer_us: 118_000,
                sign_share_us: 74_000,
                verify_share_us: 158_000,
                combine_us: 94_000,
                verify_signature_us: 146_000,
                signature_bytes: 33,
                share_bytes: 33,
            },
            ThresholdCurve::Fp512Bn => ThresholdProfile {
                curve: *self,
                dealer_us: 610_000,
                sign_share_us: 385_000,
                verify_share_us: 815_000,
                combine_us: 470_000,
                verify_signature_us: 760_000,
                signature_bytes: 65,
                share_bytes: 65,
            },
        }
    }

    /// Cost/size profile for *threshold coin flipping* on this curve
    /// (Fig. 10b) — BEAT's replacement for threshold signatures. Cheaper
    /// per-operation (no pairing in share verification) but shares carry
    /// extra verification data (paper §V-A).
    pub fn coin_profile(&self) -> CoinProfile {
        // Fig. 10b sits visibly below Fig. 10a on the shared log scale:
        // coin-flipping share operations avoid the pairing, costing roughly
        // a quarter of the signature ops; the share carries a small amount
        // of extra verification data (§V-A).
        let sig = self.signature_profile();
        CoinProfile {
            curve: *self,
            dealer_us: sig.dealer_us * 9 / 10,
            sign_share_us: sig.sign_share_us / 4,
            verify_share_us: sig.verify_share_us / 4,
            combine_us: sig.combine_us / 3,
            share_bytes: sig.share_bytes + 8, // extra verification data
        }
    }
}

/// Per-operation virtual CPU cost (µs) and wire sizes for threshold
/// signatures on one curve.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct ThresholdProfile {
    /// Which curve this profile describes.
    pub curve: ThresholdCurve,
    /// Trusted-dealer key generation (one-time, off the critical path).
    pub dealer_us: u64,
    /// Producing one signature/decryption share.
    pub sign_share_us: u64,
    /// Verifying one share from a peer.
    pub verify_share_us: u64,
    /// Lagrange combination of `f+1` (or `2f+1`) shares.
    pub combine_us: u64,
    /// Verifying a combined signature.
    pub verify_signature_us: u64,
    /// Wire size of a combined threshold signature.
    pub signature_bytes: usize,
    /// Wire size of one share.
    pub share_bytes: usize,
}

/// Per-operation virtual CPU cost (µs) and wire sizes for threshold coin
/// flipping on one curve.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct CoinProfile {
    /// Which curve this profile describes.
    pub curve: ThresholdCurve,
    /// Trusted-dealer setup.
    pub dealer_us: u64,
    /// Producing one coin share.
    pub sign_share_us: u64,
    /// Verifying one coin share.
    pub verify_share_us: u64,
    /// Combining shares into the coin value.
    pub combine_us: u64,
    /// Wire size of one coin share (includes verification data).
    pub share_bytes: usize,
}

/// The five micro-ecc curves for per-packet digital signatures (Fig. 10c).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum EcdsaCurve {
    /// 160-bit — smallest signatures (40 bytes); the paper's pick.
    Secp160r1,
    /// 192-bit.
    Secp192r1,
    /// 224-bit.
    Secp224r1,
    /// NIST P-256.
    Secp256r1,
    /// The Bitcoin curve.
    Secp256k1,
}

impl EcdsaCurve {
    /// All curves, in the paper's order.
    pub const ALL: [EcdsaCurve; 5] = [
        EcdsaCurve::Secp160r1,
        EcdsaCurve::Secp192r1,
        EcdsaCurve::Secp224r1,
        EcdsaCurve::Secp256r1,
        EcdsaCurve::Secp256k1,
    ];

    /// Human-readable name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            EcdsaCurve::Secp160r1 => "secp160r1",
            EcdsaCurve::Secp192r1 => "secp192r1",
            EcdsaCurve::Secp224r1 => "secp224r1",
            EcdsaCurve::Secp256r1 => "secp256r1",
            EcdsaCurve::Secp256k1 => "secp256k1",
        }
    }

    /// Cost/size profile for packet signatures on this curve.
    pub fn profile(&self) -> EcdsaProfile {
        match self {
            EcdsaCurve::Secp160r1 => EcdsaProfile {
                curve: *self,
                sign_us: 8_000,
                verify_us: 9_500,
                signature_bytes: 40,
            },
            EcdsaCurve::Secp192r1 => EcdsaProfile {
                curve: *self,
                sign_us: 12_000,
                verify_us: 14_000,
                signature_bytes: 48,
            },
            EcdsaCurve::Secp224r1 => EcdsaProfile {
                curve: *self,
                sign_us: 18_500,
                verify_us: 21_500,
                signature_bytes: 56,
            },
            EcdsaCurve::Secp256r1 => EcdsaProfile {
                curve: *self,
                sign_us: 26_000,
                verify_us: 30_500,
                signature_bytes: 64,
            },
            EcdsaCurve::Secp256k1 => EcdsaProfile {
                curve: *self,
                sign_us: 28_500,
                verify_us: 33_000,
                signature_bytes: 64,
            },
        }
    }
}

/// Per-operation virtual CPU cost (µs) and wire size for packet signatures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct EcdsaProfile {
    /// Which curve this profile describes.
    pub curve: EcdsaCurve,
    /// Signing one packet.
    pub sign_us: u64,
    /// Verifying one packet signature.
    pub verify_us: u64,
    /// Wire size of a signature.
    pub signature_bytes: usize,
}

/// The pair of curve deployments a node runs with — the paper pairs
/// secp160r1+BN158 and secp192r1+BN254 in Fig. 10d and adopts the former.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct CryptoSuite {
    /// Curve for per-packet digital signatures.
    pub ecdsa: EcdsaCurve,
    /// Curve for threshold signatures / coins / encryption.
    pub threshold: ThresholdCurve,
}

impl CryptoSuite {
    /// The paper's selected deployment: secp160r1 + BN158.
    pub fn light() -> Self {
        CryptoSuite { ecdsa: EcdsaCurve::Secp160r1, threshold: ThresholdCurve::Bn158 }
    }

    /// The heavier comparison point of Fig. 10d: secp192r1 + BN254.
    pub fn medium() -> Self {
        CryptoSuite { ecdsa: EcdsaCurve::Secp192r1, threshold: ThresholdCurve::Bn254 }
    }
}

impl Default for CryptoSuite {
    fn default() -> Self {
        Self::light()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bn158_is_lightest_threshold_curve() {
        let light = ThresholdCurve::Bn158.signature_profile();
        for curve in ThresholdCurve::ALL.iter().skip(1) {
            let p = curve.signature_profile();
            assert!(light.sign_share_us < p.sign_share_us, "{}", curve.name());
            assert!(light.verify_share_us < p.verify_share_us, "{}", curve.name());
            assert!(light.signature_bytes <= p.signature_bytes, "{}", curve.name());
        }
    }

    #[test]
    fn paper_headline_sizes() {
        // "BN158 produces the shortest threshold signature, measuring 21 bytes."
        assert_eq!(ThresholdCurve::Bn158.signature_profile().signature_bytes, 21);
        // "Secp160r1 generates the smallest digital signature, measuring 40 bytes."
        assert_eq!(EcdsaCurve::Secp160r1.profile().signature_bytes, 40);
    }

    #[test]
    fn coin_flipping_is_cheaper_than_threshold_signing() {
        for curve in ThresholdCurve::ALL {
            let sig = curve.signature_profile();
            let coin = curve.coin_profile();
            assert!(coin.sign_share_us < sig.sign_share_us);
            assert!(coin.verify_share_us < sig.verify_share_us);
            assert!(coin.combine_us < sig.combine_us);
        }
    }

    #[test]
    fn ecdsa_sizes_grow_with_curve_size() {
        let sizes: Vec<_> =
            EcdsaCurve::ALL.iter().map(|c| c.profile().signature_bytes).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn suites_match_fig10d_pairing() {
        let light = CryptoSuite::light();
        assert_eq!(light.ecdsa, EcdsaCurve::Secp160r1);
        assert_eq!(light.threshold, ThresholdCurve::Bn158);
        let medium = CryptoSuite::medium();
        assert_eq!(medium.ecdsa, EcdsaCurve::Secp192r1);
        assert_eq!(medium.threshold, ThresholdCurve::Bn254);
    }
}
