//! Binary Merkle trees over SHA-256.
//!
//! Available to the broadcast layer for committing to multi-fragment
//! proposals (per-fragment inclusion proofs against an agreed root). The
//! current RBC/CBC components commit with a whole-value digest instead —
//! fragments are verified after reassembly — so this module is the
//! upgrade path for very large proposals where per-fragment verification
//! pays off.

use crate::hash::Digest32;

/// A Merkle commitment over a sequence of leaves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, levels.last() = [root]
    levels: Vec<Vec<Digest32>>,
}

/// An inclusion proof for one leaf.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MerkleProof {
    /// Zero-based index of the proven leaf.
    pub index: usize,
    /// Sibling hashes from leaf level to just below the root.
    pub path: Vec<Digest32>,
}

fn hash_leaf(data: &[u8]) -> Digest32 {
    Digest32::of_parts("wbft/merkle/leaf", &[data])
}

fn hash_node(left: &Digest32, right: &Digest32) -> Digest32 {
    Digest32::of_parts("wbft/merkle/node", &[left.as_bytes(), right.as_bytes()])
}

impl MerkleTree {
    /// Builds a tree over the given leaves. Odd levels duplicate the last
    /// node (Bitcoin-style).
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty — an empty commitment is meaningless; the
    /// broadcast layer never produces one.
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        assert!(!leaves.is_empty(), "cannot build a Merkle tree over zero leaves");
        let mut levels = vec![leaves.iter().map(|l| hash_leaf(l.as_ref())).collect::<Vec<_>>()];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let right = pair.get(1).unwrap_or(&pair[0]);
                next.push(hash_node(&pair[0], right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root commitment.
    pub fn root(&self) -> Digest32 {
        *self.levels.last().unwrap().first().unwrap()
    }

    /// Number of leaves committed.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Produces the inclusion proof for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn proof(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut path = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if i.is_multiple_of(2) {
                *level.get(i + 1).unwrap_or(&level[i])
            } else {
                level[i - 1]
            };
            path.push(sibling);
            i /= 2;
        }
        MerkleProof { index, path }
    }
}

impl MerkleProof {
    /// Verifies that `leaf_data` is committed at `self.index` under `root`.
    pub fn verify(&self, root: &Digest32, leaf_data: &[u8]) -> bool {
        let mut acc = hash_leaf(leaf_data);
        let mut i = self.index;
        for sibling in &self.path {
            acc = if i.is_multiple_of(2) { hash_node(&acc, sibling) } else { hash_node(sibling, &acc) };
            i /= 2;
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("fragment-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::build(&leaves(1));
        assert_eq!(tree.leaf_count(), 1);
        let p = tree.proof(0);
        assert!(p.verify(&tree.root(), b"fragment-0"));
        assert!(p.path.is_empty());
    }

    #[test]
    fn proofs_verify_for_all_leaf_counts() {
        for n in 1..=9 {
            let data = leaves(n);
            let tree = MerkleTree::build(&data);
            for (i, leaf) in data.iter().enumerate() {
                let p = tree.proof(i);
                assert!(p.verify(&tree.root(), leaf), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let data = leaves(4);
        let tree = MerkleTree::build(&data);
        let p = tree.proof(2);
        assert!(!p.verify(&tree.root(), b"fragment-3"));
        assert!(!p.verify(&tree.root(), b"garbage"));
    }

    #[test]
    fn wrong_index_fails() {
        let data = leaves(4);
        let tree = MerkleTree::build(&data);
        let mut p = tree.proof(2);
        p.index = 1;
        assert!(!p.verify(&tree.root(), b"fragment-2"));
    }

    #[test]
    fn different_leaf_sets_have_different_roots() {
        let a = MerkleTree::build(&leaves(4));
        let b = MerkleTree::build(&leaves(5));
        assert_ne!(a.root(), b.root());
        let mut mutated = leaves(4);
        mutated[3][0] ^= 1;
        let c = MerkleTree::build(&mutated);
        assert_ne!(a.root(), c.root());
    }

    #[test]
    fn leaf_node_domains_differ() {
        // A leaf equal to the concatenation of two hashes must not collide
        // with an internal node (second-preimage resistance of the encoding).
        let d1 = hash_leaf(b"x");
        let d2 = hash_leaf(b"y");
        let mut concat = Vec::new();
        concat.extend_from_slice(d1.as_bytes());
        concat.extend_from_slice(d2.as_bytes());
        assert_ne!(hash_leaf(&concat), hash_node(&d1, &d2));
    }
}
