//! Low-level 4×64-bit limb arithmetic shared by the two field types.
//!
//! Values are little-endian limb arrays: `x = Σ limbs[i] · 2^(64·i)`. All
//! routines are branch-y and **not constant time** — this crate is a
//! simulation substrate, not production cryptography (see crate docs).

/// Compare two 4-limb values: `true` iff `a >= b`.
#[inline]
pub(crate) fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

/// `a + b`, returning the 4-limb wrapping sum and the carry-out bit.
#[inline]
pub(crate) fn add(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let mut out = [0u64; 4];
    let mut carry = 0u128;
    for i in 0..4 {
        let acc = a[i] as u128 + b[i] as u128 + carry;
        out[i] = acc as u64;
        carry = acc >> 64;
    }
    (out, carry as u64)
}

/// `a - b`, returning the 4-limb wrapping difference and the borrow-out bit.
#[inline]
pub(crate) fn sub(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let mut out = [0u64; 4];
    let mut borrow = 0i128;
    for i in 0..4 {
        let acc = a[i] as i128 - b[i] as i128 - borrow;
        if acc < 0 {
            out[i] = (acc + (1i128 << 64)) as u64;
            borrow = 1;
        } else {
            out[i] = acc as u64;
            borrow = 0;
        }
    }
    (out, borrow as u64)
}

/// Schoolbook 4×4 → 8 limb multiplication.
#[inline]
pub(crate) fn mul_wide(a: &[u64; 4], b: &[u64; 4]) -> [u64; 8] {
    let mut t = [0u64; 8];
    for i in 0..4 {
        let mut carry = 0u128;
        for j in 0..4 {
            let acc = t[i + j] as u128 + (a[i] as u128) * (b[j] as u128) + carry;
            t[i + j] = acc as u64;
            carry = acc >> 64;
        }
        t[i + 4] = carry as u64;
    }
    t
}

/// Fold a 512-bit product into 4 limbs using the identity `2^256 ≡ k (mod m)`,
/// where `k` fits in a `u64`. The result is `< 2^256` but not necessarily
/// `< m`; callers finish with [`canonicalize`].
#[inline]
pub(crate) fn fold_wide(t: &[u64; 8], k: u64) -> [u64; 4] {
    // r = lo + hi·k  (first fold; 5 limbs, top limb small).
    let mut r = [0u64; 4];
    let mut carry = 0u128;
    for i in 0..4 {
        let acc = t[i] as u128 + (t[i + 4] as u128) * (k as u128) + carry;
        r[i] = acc as u64;
        carry = acc >> 64;
    }
    // Repeatedly fold the overflow (carry · 2^256 ≡ carry · k) back in. The
    // overflow shrinks geometrically; two iterations always suffice, the loop
    // is belt-and-braces.
    while carry != 0 {
        let mut acc = r[0] as u128 + carry * (k as u128);
        r[0] = acc as u64;
        let mut c = acc >> 64;
        for limb in r.iter_mut().skip(1) {
            acc = *limb as u128 + c;
            *limb = acc as u64;
            c = acc >> 64;
        }
        carry = c;
    }
    r
}

/// Reduce a `< 2^256` value to the canonical representative `< m` by repeated
/// subtraction. For the moduli used here (`≈ 2^254 … 2^255`) at most four
/// subtractions occur.
#[inline]
pub(crate) fn canonicalize(mut r: [u64; 4], m: &[u64; 4]) -> [u64; 4] {
    while geq(&r, m) {
        let (d, _) = sub(&r, m);
        r = d;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geq_basics() {
        assert!(geq(&[1, 0, 0, 0], &[1, 0, 0, 0]));
        assert!(geq(&[0, 0, 0, 1], &[u64::MAX, u64::MAX, u64::MAX, 0]));
        assert!(!geq(&[u64::MAX, 0, 0, 0], &[0, 1, 0, 0]));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [0xdead_beef, 42, 7, 0x0123_4567];
        let b = [u64::MAX, 1, 0, 99];
        let (s, c) = add(&a, &b);
        assert_eq!(c, 0);
        let (d, bo) = sub(&s, &b);
        assert_eq!(bo, 0);
        assert_eq!(d, a);
    }

    #[test]
    fn sub_produces_borrow() {
        let (_, borrow) = sub(&[0, 0, 0, 0], &[1, 0, 0, 0]);
        assert_eq!(borrow, 1);
    }

    #[test]
    fn mul_wide_small_values() {
        let a = [3, 0, 0, 0];
        let b = [5, 0, 0, 0];
        let t = mul_wide(&a, &b);
        assert_eq!(t, [15, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn mul_wide_carries_across_limbs() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = [u64::MAX, 0, 0, 0];
        let t = mul_wide(&a, &a);
        assert_eq!(t[0], 1);
        assert_eq!(t[1], u64::MAX - 1);
        assert_eq!(t[2..], [0, 0, 0, 0, 0, 0]);
    }
}
