//! `(t, n)` threshold signatures — the PRBC DONE phase, CBC echoes, and the
//! ABA-SC common coin all build on these.
//!
//! BLS-style construction in the pairing-free group of [`crate::group`]:
//! a trusted dealer shares a secret `s` with a degree-`t` Shamir polynomial;
//! node `i` signs message `m` as `σ_i = h^{s_i}` with `h = H(m)` hashed into
//! the group; any `t+1` shares combine by Lagrange interpolation in the
//! exponent to `σ = h^s`.
//!
//! Because [`GroupElem::hash_to_group`] produces `h = g^{e}` with known
//! exponent `e = H(m)`, share verification is the *real* algebraic check
//! `σ_i == vk_i^{e}` using only public data (`vk_i = g^{s_i}`), and combined
//! verification is `σ == vk^{e}` — no pairings needed. The trade-off, stated
//! plainly: with a known-discrete-log `h`, anyone can *forge* shares by
//! computing `vk_i^{e}` themselves, so this scheme is **not secure against a
//! cryptographic adversary**. It is structurally faithful (same API, same
//! message flow, same combinatorics, agreement and uniqueness hold) and the
//! simulator charges the real pairing costs from
//! [`crate::profile::ThresholdProfile`]. See DESIGN.md §2.

use crate::field::Scalar;
use crate::group::{GroupElem, PrecompCache, PrecomputedBase};
use crate::hash::{hash_to_scalar, Digest32};
use crate::profile::{ThresholdCurve, ThresholdProfile};
use crate::shamir::{lagrange_coeffs_at_zero, Polynomial, ShamirError, ShareIndex};
use rand::RngCore;

/// Domain tag binding message hashes to this scheme.
const MSG_DOMAIN: &str = "wbft/thresh-sig/msg";

/// The known discrete log of `H(msg)` — see [`GroupElem::hash_to_group`].
fn msg_exponent(msg: &[u8]) -> Scalar {
    hash_to_scalar(MSG_DOMAIN, &[msg])
}

/// A message pre-hashed for share operations: caches the exponent `e` with
/// `H(msg) = g^e`, so verifying `n` shares of one message hashes once
/// instead of `n` times.
#[derive(Clone, Copy, Debug)]
pub struct PreparedMessage {
    e: Scalar,
}

impl PreparedMessage {
    /// Prepares a message for repeated share verification.
    pub fn new(msg: &[u8]) -> Self {
        PreparedMessage { e: msg_exponent(msg) }
    }
}

/// Opt-in fixed-base window tables for a key set's verification keys
/// (cached via the clone-shared [`PrecompCache`]).
struct KeyTables {
    vk: PrecomputedBase,
    shares: Vec<PrecomputedBase>,
}

/// Errors from threshold-signature operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreshSigError {
    /// A share failed its algebraic verification.
    InvalidShare { index: u16 },
    /// A combined signature failed verification.
    InvalidSignature,
    /// Underlying secret-sharing error (duplicates, too few shares).
    Shamir(ShamirError),
}

impl core::fmt::Display for ThreshSigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ThreshSigError::InvalidShare { index } => {
                write!(f, "invalid signature share from index {index}")
            }
            ThreshSigError::InvalidSignature => write!(f, "invalid combined threshold signature"),
            ThreshSigError::Shamir(e) => write!(f, "share set error: {e}"),
        }
    }
}

impl std::error::Error for ThreshSigError {}

impl From<ShamirError> for ThreshSigError {
    fn from(e: ShamirError) -> Self {
        ThreshSigError::Shamir(e)
    }
}

/// Public key material: the combined verification key plus one verification
/// key per share. Distributed to every node by the dealer.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PublicKeySet {
    curve: ThresholdCurve,
    threshold: usize,
    vk: GroupElem,
    vk_shares: Vec<GroupElem>,
    precomp: PrecompCache<KeyTables>,
}

/// One node's secret key share.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SecretKeyShare {
    index: ShareIndex,
    secret: Scalar,
    curve: ThresholdCurve,
}

/// A signature share: `(i, h^{s_i})`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SigShare {
    /// Which share produced this.
    pub index: ShareIndex,
    /// The group element `h^{s_i}`.
    pub value: GroupElem,
}

/// A combined threshold signature `h^s`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ThresholdSignature {
    /// The group element `h^s`.
    pub value: GroupElem,
}

impl ThresholdSignature {
    /// Canonical encoding (32 bytes internally; packets charge the curve's
    /// nominal size instead — see `wbft-net`).
    pub fn to_bytes(&self) -> [u8; 32] {
        self.value.to_bytes()
    }

    /// Decode (validating subgroup membership).
    pub fn from_bytes(bytes: &[u8; 32]) -> Option<Self> {
        GroupElem::from_bytes(bytes).ok().map(|value| ThresholdSignature { value })
    }

    /// Digest of the signature — used to derive coins and Dumbo's π.
    pub fn digest(&self) -> Digest32 {
        self.value.digest("wbft/thresh-sig")
    }
}

/// Deals a fresh `(threshold, n)` key set: any `threshold + 1` shares can
/// sign. For BFT use with `n = 3f + 1`, PRBC uses `threshold = f` ("at least
/// one honest signer") and CBC uses `threshold = 2f` ("a Byzantine quorum
/// cannot sign alone").
pub fn deal(
    n: usize,
    threshold: usize,
    curve: ThresholdCurve,
    rng: &mut impl RngCore,
) -> (PublicKeySet, Vec<SecretKeyShare>) {
    assert!(threshold < n, "threshold {threshold} must be < n {n}");
    let poly = Polynomial::random(Scalar::random(rng), threshold, rng);
    let vk = GroupElem::from_exponent(&poly.secret());
    let mut vk_shares = Vec::with_capacity(n);
    let mut secrets = Vec::with_capacity(n);
    for i in 0..n {
        let index = ShareIndex::for_node(i);
        let s_i = poly.share(index);
        vk_shares.push(GroupElem::from_exponent(&s_i));
        secrets.push(SecretKeyShare { index, secret: s_i, curve });
    }
    (PublicKeySet { curve, threshold, vk, vk_shares, precomp: PrecompCache::default() }, secrets)
}

impl PublicKeySet {
    /// Assembles a key set from rolled parts — the resharing ceremony
    /// derives `vk_shares` publicly from the dealings' commitment vectors
    /// while `vk` stays the genesis value (see [`crate::reshare`]).
    pub fn from_parts(
        curve: ThresholdCurve,
        threshold: usize,
        vk: GroupElem,
        vk_shares: Vec<GroupElem>,
    ) -> Self {
        PublicKeySet { curve, threshold, vk, vk_shares, precomp: PrecompCache::default() }
    }

    /// The combined verification key `g^s` — stable across resharing.
    pub fn group_key(&self) -> GroupElem {
        self.vk
    }

    /// Per-share verification keys, by zero-based node slot.
    pub fn share_keys(&self) -> &[GroupElem] {
        &self.vk_shares
    }

    /// The curve deployment of this key set.
    pub fn curve(&self) -> ThresholdCurve {
        self.curve
    }

    /// The reconstruction threshold: `threshold + 1` shares combine.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of shares dealt.
    pub fn n(&self) -> usize {
        self.vk_shares.len()
    }

    /// The curve profile costs associated with this key set.
    pub fn profile(&self) -> ThresholdProfile {
        self.curve.signature_profile()
    }

    /// Builds the fixed-base window tables for `vk` and every `vk_shares[i]`
    /// (opt-in: ~3 plain exponentiations of build cost per base, amortized
    /// across every verification afterwards). The tables are shared by all
    /// clones of this key set, so calling this from every node of a
    /// deployment still builds them once.
    pub fn precompute(&self) {
        self.precomp.0.get_or_init(|| KeyTables {
            vk: PrecomputedBase::new(&self.vk),
            shares: self.vk_shares.iter().map(PrecomputedBase::new).collect(),
        });
    }

    fn tables(&self) -> Option<&KeyTables> {
        self.precomp.0.get()
    }

    /// `vk_shares[i]^e`, through the window table when built.
    fn vk_share_pow(&self, i: usize, e: &Scalar) -> GroupElem {
        match self.tables() {
            Some(t) => t.shares[i].pow(e),
            None => self.vk_shares[i].pow(e),
        }
    }

    /// Pre-hashes a message for repeated share operations against this set.
    pub fn prepare(&self, msg: &[u8]) -> PreparedMessage {
        PreparedMessage::new(msg)
    }

    /// Verifies a single share against the message.
    ///
    /// # Errors
    ///
    /// [`ThreshSigError::InvalidShare`] if the algebraic check fails or the
    /// index is out of range.
    pub fn verify_share(&self, msg: &[u8], share: &SigShare) -> Result<(), ThreshSigError> {
        self.verify_share_prepared(&PreparedMessage::new(msg), share)
    }

    /// [`Self::verify_share`] against a pre-hashed message.
    ///
    /// # Errors
    ///
    /// [`ThreshSigError::InvalidShare`] as for `verify_share`.
    pub fn verify_share_prepared(
        &self,
        msg: &PreparedMessage,
        share: &SigShare,
    ) -> Result<(), ThreshSigError> {
        let i = share.index.value() as usize;
        if i == 0 || i > self.vk_shares.len() {
            return Err(ThreshSigError::InvalidShare { index: share.index.value() });
        }
        if self.vk_share_pow(i - 1, &msg.e) == share.value {
            Ok(())
        } else {
            Err(ThreshSigError::InvalidShare { index: share.index.value() })
        }
    }

    /// Verifies a batch of shares of the *same* message with one random
    /// linear combination: accepts iff `Π σ_i^{r_i} == (Π vk_i^{r_i})^e`
    /// for deterministic non-zero 64-bit coefficients `r_i` derived from
    /// the whole batch (see [`batch_coefficients`]). Sound up to a `2^-64`
    /// false-accept probability; on batch failure it falls back to
    /// per-share checks, so the reported error still names a Byzantine
    /// share. Accepts exactly the batches in which every share passes
    /// [`Self::verify_share`] (duplicates included).
    ///
    /// # Errors
    ///
    /// [`ThreshSigError::InvalidShare`] naming the first invalid share.
    pub fn verify_shares(&self, msg: &[u8], shares: &[SigShare]) -> Result<(), ThreshSigError> {
        self.verify_shares_prepared(&PreparedMessage::new(msg), shares)
    }

    /// [`Self::verify_shares`] against a pre-hashed message.
    ///
    /// # Errors
    ///
    /// [`ThreshSigError::InvalidShare`] naming the first invalid share.
    pub fn verify_shares_prepared(
        &self,
        msg: &PreparedMessage,
        shares: &[SigShare],
    ) -> Result<(), ThreshSigError> {
        match self.invalid_share_positions(msg, shares).first() {
            None => Ok(()),
            Some(&p) => {
                Err(ThreshSigError::InvalidShare { index: shares[p].index.value() })
            }
        }
    }

    /// The positions (into `shares`) of every share that fails
    /// verification — empty when the whole batch is valid, which the batch
    /// fast path decides with two multi-exponentiations (see
    /// [`crate::batch`]). Components use this to evict exactly the
    /// Byzantine shares from a buffered quorum.
    pub fn invalid_share_positions(
        &self,
        msg: &PreparedMessage,
        shares: &[SigShare],
    ) -> Vec<usize> {
        let items: Vec<crate::batch::Item> =
            shares.iter().map(|s| (s.index.value(), s.value)).collect();
        crate::batch::invalid_share_positions(
            &self.vk_shares,
            self.tables().map(|t| t.shares.as_slice()),
            &msg.e,
            "wbft/thresh-sig/batch",
            &items,
        )
    }

    /// Combines `threshold + 1` verified shares into a signature: one
    /// simultaneous multi-exponentiation over the (memoized, batch-inverted)
    /// Lagrange coefficients of the quorum's index set.
    ///
    /// # Errors
    ///
    /// Propagates share-set errors; the result verifies iff all shares were
    /// genuine.
    pub fn combine(&self, shares: &[SigShare]) -> Result<ThresholdSignature, ThreshSigError> {
        if shares.len() < self.threshold + 1 {
            return Err(ThreshSigError::Shamir(ShamirError::NotEnoughShares {
                got: shares.len(),
                need: self.threshold + 1,
            }));
        }
        let subset = &shares[..self.threshold + 1];
        let indices: Vec<ShareIndex> = subset.iter().map(|s| s.index).collect();
        let lambdas = lagrange_coeffs_at_zero(&indices)?;
        let pairs: Vec<(GroupElem, Scalar)> =
            subset.iter().zip(&lambdas).map(|(s, l)| (s.value, *l)).collect();
        Ok(ThresholdSignature { value: GroupElem::multi_pow(&pairs) })
    }

    /// Verifies a combined signature on `msg`.
    ///
    /// # Errors
    ///
    /// [`ThreshSigError::InvalidSignature`] on mismatch.
    pub fn verify(&self, msg: &[u8], sig: &ThresholdSignature) -> Result<(), ThreshSigError> {
        let e = msg_exponent(msg);
        let expect = match self.tables() {
            Some(t) => t.vk.pow(&e),
            None => self.vk.pow(&e),
        };
        if expect == sig.value {
            Ok(())
        } else {
            Err(ThreshSigError::InvalidSignature)
        }
    }
}

impl SecretKeyShare {
    /// Assembles a share from rolled parts (resharing combination).
    pub fn from_parts(index: ShareIndex, secret: Scalar, curve: ThresholdCurve) -> Self {
        SecretKeyShare { index, secret, curve }
    }

    /// The raw secret scalar — the resharing ceremony needs it to act as a
    /// dealer. Same security caveat as the whole crate: this is a
    /// simulation substrate, not production key management.
    pub fn secret_scalar(&self) -> Scalar {
        self.secret
    }

    /// This share's index.
    pub fn index(&self) -> ShareIndex {
        self.index
    }

    /// The curve deployment this share was dealt for (determines the
    /// virtual costs the simulator charges for its operations).
    pub fn curve(&self) -> ThresholdCurve {
        self.curve
    }

    /// Signs a message, producing this node's share.
    ///
    /// With `H(msg) = g^e`, the share `H(msg)^{s_i} = g^{e·s_i}` is one
    /// scalar multiplication plus a fixed-base table exponentiation —
    /// roughly 6× cheaper than exponentiating the fresh hash point.
    pub fn sign_share(&self, msg: &[u8]) -> SigShare {
        let e = msg_exponent(msg);
        SigShare { index: self.index, value: GroupElem::from_exponent(&e.mul(&self.secret)) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup(n: usize, t: usize) -> (PublicKeySet, Vec<SecretKeyShare>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        deal(n, t, ThresholdCurve::Bn158, &mut rng)
    }

    #[test]
    fn shares_verify_and_combine() {
        let (pks, sks) = setup(4, 1); // N=4, f=1, PRBC threshold f=1 → 2 shares
        let msg = b"proposal digest";
        let shares: Vec<_> = sks.iter().map(|sk| sk.sign_share(msg)).collect();
        for s in &shares {
            pks.verify_share(msg, s).unwrap();
        }
        let sig = pks.combine(&shares[1..3]).unwrap();
        pks.verify(msg, &sig).unwrap();
    }

    #[test]
    fn any_quorum_combines_to_the_same_signature() {
        // Uniqueness: the combined signature is h^s regardless of which
        // quorum produced it — this is what makes it usable as a common coin.
        let (pks, sks) = setup(4, 2);
        let msg = b"coin:epoch-3:round-1";
        let shares: Vec<_> = sks.iter().map(|sk| sk.sign_share(msg)).collect();
        let sig_a = pks.combine(&[shares[0], shares[1], shares[2]]).unwrap();
        let sig_b = pks.combine(&[shares[3], shares[1], shares[0]]).unwrap();
        let sig_c = pks.combine(&[shares[2], shares[3], shares[1]]).unwrap();
        assert_eq!(sig_a, sig_b);
        assert_eq!(sig_b, sig_c);
    }

    #[test]
    fn tampered_share_is_rejected() {
        let (pks, sks) = setup(4, 1);
        let msg = b"m";
        let mut share = sks[0].sign_share(msg);
        share.value = share.value.mul(&GroupElem::generator());
        assert_eq!(
            pks.verify_share(msg, &share),
            Err(ThreshSigError::InvalidShare { index: 1 })
        );
    }

    #[test]
    fn share_for_wrong_message_is_rejected() {
        let (pks, sks) = setup(4, 1);
        let share = sks[2].sign_share(b"message A");
        assert!(pks.verify_share(b"message B", &share).is_err());
    }

    #[test]
    fn combining_with_bad_share_fails_verification() {
        let (pks, sks) = setup(4, 1);
        let msg = b"m";
        let good = sks[0].sign_share(msg);
        let mut bad = sks[1].sign_share(msg);
        bad.value = bad.value.mul(&GroupElem::generator());
        let sig = pks.combine(&[good, bad]).unwrap();
        assert_eq!(pks.verify(msg, &sig), Err(ThreshSigError::InvalidSignature));
    }

    #[test]
    fn too_few_shares_cannot_combine() {
        let (pks, sks) = setup(7, 2); // need 3
        let msg = b"m";
        let shares: Vec<_> = sks[..2].iter().map(|sk| sk.sign_share(msg)).collect();
        assert!(matches!(
            pks.combine(&shares),
            Err(ThreshSigError::Shamir(ShamirError::NotEnoughShares { got: 2, need: 3 }))
        ));
    }

    #[test]
    fn batch_verification_accepts_iff_all_shares_valid() {
        let (pks, sks) = setup(7, 2);
        let msg = b"batched";
        let shares: Vec<_> = sks.iter().map(|sk| sk.sign_share(msg)).collect();
        pks.verify_shares(msg, &shares).unwrap();
        pks.verify_shares(msg, &[]).unwrap();
        // A single tampered share is localized by index.
        let mut mixed = shares.clone();
        mixed[3].value = mixed[3].value.mul(&GroupElem::generator());
        assert_eq!(
            pks.verify_shares(msg, &mixed),
            Err(ThreshSigError::InvalidShare { index: 4 })
        );
        // The good shares around it are still reported as valid.
        let pm = pks.prepare(msg);
        assert_eq!(pks.invalid_share_positions(&pm, &mixed), vec![3]);
        // Duplicate valid shares are accepted, matching per-share semantics.
        let dup = vec![shares[0], shares[0], shares[1]];
        pks.verify_shares(msg, &dup).unwrap();
        // Wrong-message shares fail.
        let wrong: Vec<_> = sks[..3].iter().map(|sk| sk.sign_share(b"other")).collect();
        assert!(pks.verify_shares(msg, &wrong).is_err());
        // Out-of-range index fails even alongside valid shares.
        let mut oor = shares.clone();
        oor[0].index = crate::shamir::ShareIndex::new(9).unwrap();
        assert_eq!(pks.invalid_share_positions(&pm, &oor), vec![0]);
    }

    #[test]
    fn precomputed_tables_do_not_change_results() {
        let (pks, sks) = setup(4, 1);
        let msg = b"tables";
        let shares: Vec<_> = sks.iter().map(|sk| sk.sign_share(msg)).collect();
        let plain_sig = pks.combine(&shares[..2]).unwrap();
        pks.precompute();
        for s in &shares {
            pks.verify_share(msg, s).unwrap();
        }
        pks.verify_shares(msg, &shares).unwrap();
        pks.verify(msg, &plain_sig).unwrap();
        assert_eq!(pks.combine(&shares[..2]).unwrap(), plain_sig);
        // A tampered share still fails through the table path.
        let mut bad = shares[0];
        bad.value = bad.value.mul(&GroupElem::generator());
        assert!(pks.verify_share(msg, &bad).is_err());
        assert!(pks.verify_shares(msg, &[shares[1], bad]).is_err());
    }

    #[test]
    fn prepared_message_matches_direct_calls() {
        let (pks, sks) = setup(4, 1);
        let msg = b"prepared";
        let pm = pks.prepare(msg);
        for sk in &sks {
            let s = sk.sign_share(msg);
            assert_eq!(pks.verify_share_prepared(&pm, &s), pks.verify_share(msg, &s));
        }
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let (pks, sks) = setup(4, 1);
        let msg = b"roundtrip";
        let shares: Vec<_> = sks[..2].iter().map(|sk| sk.sign_share(msg)).collect();
        let sig = pks.combine(&shares).unwrap();
        let decoded = ThresholdSignature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(decoded, sig);
        pks.verify(msg, &decoded).unwrap();
    }

    #[test]
    fn different_messages_have_different_signatures() {
        let (pks, sks) = setup(4, 1);
        let sa: Vec<_> = sks[..2].iter().map(|sk| sk.sign_share(b"a")).collect();
        let sb: Vec<_> = sks[..2].iter().map(|sk| sk.sign_share(b"b")).collect();
        let siga = pks.combine(&sa).unwrap();
        let sigb = pks.combine(&sb).unwrap();
        assert_ne!(siga, sigb);
        assert_ne!(siga.digest(), sigb.digest());
    }
}
