//! Shared core of batched share verification.
//!
//! `thresh_sig` and `thresh_coin` verify shares with the same algebra —
//! `σ_i == vk_i^e` per share, `Π σ_i^{r_i} == (Π vk_i^{r_i})^e` in batch —
//! differing only in domain tag and error type. Both route through this
//! module so the soundness-relevant pieces (coefficient transcript, batch
//! equation, per-share fallback ordering) have exactly one implementation.

use crate::field::Scalar;
use crate::group::{GroupElem, PrecomputedBase};
use crate::hash::batch_coefficients;

/// One share as the batch core sees it: `(one-based index, value)`.
pub(crate) type Item = (u16, GroupElem);

/// The single-share check: `value == vk_shares[i-1]^e`, through the window
/// table when built. Callers guarantee `index` is in range.
fn share_valid(
    vk_shares: &[GroupElem],
    tables: Option<&[PrecomputedBase]>,
    e: &Scalar,
    (index, value): &Item,
) -> bool {
    let i = *index as usize - 1;
    let expect = match tables {
        Some(t) => t[i].pow(e),
        None => vk_shares[i].pow(e),
    };
    expect == *value
}

/// The positions (into `shares`) of every share failing verification —
/// empty when the whole batch is valid, which the batch fast path decides
/// with two multi-exponentiations over deterministic non-zero 64-bit
/// coefficients (see [`batch_coefficients`] for the transcript argument).
/// On batch failure, per-share checks localize exactly the bad shares.
pub(crate) fn invalid_share_positions(
    vk_shares: &[GroupElem],
    tables: Option<&[PrecomputedBase]>,
    e: &Scalar,
    domain: &str,
    shares: &[Item],
) -> Vec<usize> {
    // Out-of-range indices can't take part in the algebraic batch.
    let mut bad: Vec<usize> = Vec::new();
    let mut candidates: Vec<usize> = Vec::with_capacity(shares.len());
    for (p, (index, _)) in shares.iter().enumerate() {
        let i = *index as usize;
        if i == 0 || i > vk_shares.len() {
            bad.push(p);
        } else {
            candidates.push(p);
        }
    }
    match candidates.len() {
        0 => return bad,
        1 => {
            // A singleton batch is just a per-share check.
            let p = candidates[0];
            if !share_valid(vk_shares, tables, e, &shares[p]) {
                bad.push(p);
                bad.sort_unstable();
            }
            return bad;
        }
        _ => {}
    }
    let coeffs = batch_coefficients(
        domain,
        &e.to_bytes(),
        candidates.iter().map(|&p| (shares[p].0, shares[p].1.to_bytes())),
    );
    let lhs = GroupElem::multi_pow(
        &candidates.iter().zip(&coeffs).map(|(&p, r)| (shares[p].1, *r)).collect::<Vec<_>>(),
    );
    // Π vk_i^{e·r_i} = (Π vk_i^{r_i})^e; the short-coefficient inner
    // product goes through the window tables when built.
    let inner = match tables {
        Some(t) => candidates
            .iter()
            .zip(&coeffs)
            .fold(GroupElem::identity(), |acc, (&p, r)| {
                acc.mul(&t[shares[p].0 as usize - 1].pow(r))
            }),
        None => GroupElem::multi_pow(
            &candidates
                .iter()
                .zip(&coeffs)
                .map(|(&p, r)| (vk_shares[shares[p].0 as usize - 1], *r))
                .collect::<Vec<_>>(),
        ),
    };
    if lhs == inner.pow(e) {
        return bad; // whole batch valid (minus range rejects)
    }
    // Batch failed: localize the Byzantine shares per-share.
    for &p in &candidates {
        if !share_valid(vk_shares, tables, e, &shares[p]) {
            bad.push(p);
        }
    }
    bad.sort_unstable();
    bad
}
