//! Hashing utilities: digests, domain-separated hashing, and hash-to-field.

// The `.into()` after every `finalize()` is redundant against the local
// sha2 shim (which returns plain arrays) but required by the real sha2
// crate (which returns a `GenericArray`); keeping it is what makes the
// registry swap a one-line Cargo.toml change.
#![allow(clippy::useless_conversion)]

use crate::field::{Fe, Scalar};
use sha2::{Digest as _, Sha256, Sha512};

/// A 32-byte SHA-256 digest.
///
/// Used throughout the packet layer to identify proposals: the batched
/// ECHO/READY packets of ConsensusBatcher carry one digest per instance
/// (the `Hash` part of the packet structures in Fig. 4 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct Digest32(pub [u8; 32]);

impl Digest32 {
    /// Digest of the empty string; used as a placeholder for "no proposal".
    pub fn zero() -> Self {
        Digest32([0u8; 32])
    }

    /// `true` iff this is the all-zero placeholder digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Hash arbitrary bytes.
    pub fn of(data: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(data);
        Digest32(h.finalize().into())
    }

    /// Hash under a domain-separation tag, then any number of parts.
    pub fn of_parts(domain: &str, parts: &[&[u8]]) -> Self {
        let mut h = Sha256::new();
        h.update((domain.len() as u64).to_le_bytes());
        h.update(domain.as_bytes());
        for p in parts {
            h.update((p.len() as u64).to_le_bytes());
            h.update(p);
        }
        Digest32(h.finalize().into())
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// First 8 bytes as a little-endian integer (convenient for seeding and
    /// for deriving the common-coin value / the Dumbo permutation π).
    pub fn to_u64(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.0[..8]);
        u64::from_le_bytes(b)
    }
}

impl core::fmt::Debug for Digest32 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Digest32({}…)", hex::encode(&self.0[..6]))
    }
}

impl AsRef<[u8]> for Digest32 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Hash arbitrary input to a near-uniform [`Scalar`] (wide reduction of
/// SHA-512 output), under a domain tag.
pub fn hash_to_scalar(domain: &str, parts: &[&[u8]]) -> Scalar {
    let mut h = Sha512::new();
    h.update((domain.len() as u64).to_le_bytes());
    h.update(domain.as_bytes());
    for p in parts {
        h.update((p.len() as u64).to_le_bytes());
        h.update(p);
    }
    let wide: [u8; 64] = h.finalize().into();
    Scalar::from_wide_bytes_reduced(&wide)
}

/// Hash arbitrary input to a near-uniform [`Fe`], under a domain tag.
pub fn hash_to_fe(domain: &str, parts: &[&[u8]]) -> Fe {
    let mut h = Sha512::new();
    h.update((domain.len() as u64).to_le_bytes());
    h.update(domain.as_bytes());
    for p in parts {
        h.update((p.len() as u64).to_le_bytes());
        h.update(p);
    }
    let wide: [u8; 64] = h.finalize().into();
    Fe::from_wide_bytes_reduced(&wide)
}

/// Derives the deterministic 64-bit random-linear-combination coefficients
/// for batched share verification.
///
/// The transcript commits to the verification context (`context`, e.g. the
/// message exponent) and to every `(index, value)` pair in the batch, so a
/// prover cannot choose shares *after* learning its coefficient: any change
/// to any share re-randomizes every coefficient. 64-bit coefficients bound
/// the false-accept probability of a rigged batch at `2^-64` — ample for a
/// simulation substrate (and each coefficient is forced non-zero so no
/// share can be silently dropped from the check).
pub fn batch_coefficients(
    domain: &str,
    context: &[u8],
    shares: impl Iterator<Item = (u16, [u8; 32])>,
) -> Vec<Scalar> {
    let mut h = Sha256::new();
    h.update((domain.len() as u64).to_le_bytes());
    h.update(domain.as_bytes());
    h.update((context.len() as u64).to_le_bytes());
    h.update(context);
    let mut count = 0u64;
    for (index, value) in shares {
        h.update(index.to_le_bytes());
        h.update(value);
        count += 1;
    }
    let transcript: [u8; 32] = h.finalize().into();
    // Counter-mode expansion: each 32-byte block yields four 64-bit
    // coefficients, so a quorum-sized batch needs only a couple of hashes.
    let mut out = Vec::with_capacity(count as usize);
    let mut block_idx = 0u64;
    while (out.len() as u64) < count {
        let block =
            Digest32::of_parts("wbft/batch-coeff", &[&transcript, &block_idx.to_le_bytes()]);
        for chunk in block.0.chunks_exact(8) {
            if (out.len() as u64) >= count {
                break;
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            out.push(Scalar::from_u64(u64::from_le_bytes(b).max(1)));
        }
        block_idx += 1;
    }
    out
}

/// Expandable-output keystream for the threshold-encryption hybrid layer:
/// SHA-256 in counter mode keyed by `key` and `label`.
pub fn keystream(key: &[u8], label: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u64;
    while out.len() < len {
        let block = Digest32::of_parts(
            "wbft/keystream",
            &[key, label, &counter.to_le_bytes()],
        );
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&block.0[..take]);
        counter += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_distinct() {
        assert_eq!(Digest32::of(b"abc"), Digest32::of(b"abc"));
        assert_ne!(Digest32::of(b"abc"), Digest32::of(b"abd"));
    }

    #[test]
    fn domain_separation_changes_digest() {
        let a = Digest32::of_parts("domain-a", &[b"x"]);
        let b = Digest32::of_parts("domain-b", &[b"x"]);
        assert_ne!(a, b);
    }

    #[test]
    fn part_boundaries_are_unambiguous() {
        // ("ab","c") must differ from ("a","bc") — length prefixing.
        let a = Digest32::of_parts("d", &[b"ab", b"c"]);
        let b = Digest32::of_parts("d", &[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn hash_to_scalar_is_deterministic() {
        let s1 = hash_to_scalar("coin", &[b"round-1"]);
        let s2 = hash_to_scalar("coin", &[b"round-1"]);
        let s3 = hash_to_scalar("coin", &[b"round-2"]);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert!(!s1.is_zero());
    }

    #[test]
    fn keystream_has_requested_length_and_periodicity() {
        let ks = keystream(b"key", b"label", 100);
        assert_eq!(ks.len(), 100);
        let ks2 = keystream(b"key", b"label", 100);
        assert_eq!(ks, ks2);
        let ks3 = keystream(b"key2", b"label", 100);
        assert_ne!(ks, ks3);
    }

    #[test]
    fn xor_with_keystream_roundtrips() {
        let pt = b"attack at dawn".to_vec();
        let ks = keystream(b"k", b"l", pt.len());
        let ct: Vec<u8> = pt.iter().zip(&ks).map(|(a, b)| a ^ b).collect();
        let back: Vec<u8> = ct.iter().zip(&ks).map(|(a, b)| a ^ b).collect();
        assert_eq!(back, pt);
        assert_ne!(ct, pt);
    }
}
