//! Dealerless proactive resharing of Shamir-shared secrets.
//!
//! A committee holding a `(t_old, n_old)` sharing of a secret `s` hands the
//! *same* secret to a new committee under a fresh `(t_new, n_new)` sharing,
//! with no trusted dealer: each dealer `d` (an old-committee member)
//! reshares its own share `s_d` with a fresh degree-`t_new` polynomial
//! `P_d` (`P_d(0) = s_d`) and publishes Feldman commitments
//! `g^{coeff_k(P_d)}` plus the subshare `P_d(x_j)` for every new index
//! `x_j`. Any set of `t_old + 1` (or more) verified dealings then
//! interpolates to the new share of index `j`:
//!
//! ```text
//! s'_j = Σ_d λ_d · P_d(x_j)      (λ_d: Lagrange coeffs of the dealer
//!                                  index set at zero)
//! ```
//!
//! which is a degree-`t_new` sharing of `Σ_d λ_d·s_d = s`. The group key
//! `vk = g^s` is therefore *unchanged* across the roll — combined
//! signatures and coins from the new committee verify under the old `vk` —
//! while every per-node verification key moves: `vk'_j` is publicly
//! computable from the commitment vectors alone, so even a node that holds
//! no share can derive the new public set.
//!
//! Verification is pure Feldman: a subshare for index `x` is valid iff
//! `g^{P_d(x)} == Π_k C_{d,k}^{x^k}`, and a dealing is *bound to the
//! dealer's registered old share* by requiring `C_{d,0} == vk_d` (the
//! dealer's published old verification key share). A dealer cannot reshare
//! a different secret without being caught by every verifier.
//!
//! Same caveat as the rest of this crate (see the crate docs): subshares
//! here travel in the clear, which leaks shares to a passive observer.
//! The *structure* (commitments, binding, interpolation, key-epoch roll)
//! is faithful; confidentiality of dealings is out of scope for the
//! simulation substrate.

use crate::field::Scalar;
use crate::group::GroupElem;
use crate::shamir::{lagrange_coeffs_at_zero, Polynomial, ShamirError, ShareIndex};
use rand::RngCore;

/// Errors from resharing verification and combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshareError {
    /// The dealing's zeroth commitment does not equal the dealer's
    /// registered old verification key share.
    WrongDealerCommitment {
        /// Old index of the offending dealer.
        dealer: u16,
    },
    /// A subshare failed its Feldman check.
    InvalidSubshare {
        /// Old index of the dealer.
        dealer: u16,
        /// New index the subshare was meant for.
        index: u16,
    },
    /// A dealing carries no subshare for the requested new index.
    MissingSubshare {
        /// Old index of the dealer.
        dealer: u16,
        /// New index that was requested.
        index: u16,
    },
    /// The dealing's commitment vector is empty.
    EmptyDealing {
        /// Old index of the dealer.
        dealer: u16,
    },
    /// Underlying share-set error (duplicate dealers, too few dealings).
    Shamir(ShamirError),
}

impl core::fmt::Display for ReshareError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReshareError::WrongDealerCommitment { dealer } => {
                write!(f, "dealer {dealer} committed to a value other than its old share")
            }
            ReshareError::InvalidSubshare { dealer, index } => {
                write!(f, "dealer {dealer} dealt an invalid subshare for new index {index}")
            }
            ReshareError::MissingSubshare { dealer, index } => {
                write!(f, "dealer {dealer} dealt no subshare for new index {index}")
            }
            ReshareError::EmptyDealing { dealer } => {
                write!(f, "dealer {dealer} published an empty commitment vector")
            }
            ReshareError::Shamir(e) => write!(f, "reshare dealer set error: {e}"),
        }
    }
}

impl std::error::Error for ReshareError {}

impl From<ShamirError> for ReshareError {
    fn from(e: ShamirError) -> Self {
        ReshareError::Shamir(e)
    }
}

/// One dealer's resharing of its own old share: Feldman commitments to the
/// fresh polynomial plus one subshare per new-committee index. Broadcast
/// in the clear (see the module docs for the confidentiality caveat).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ReshareDealing {
    /// The dealer's index in the *old* sharing.
    pub dealer: ShareIndex,
    /// `g^{coeff_k}` for the fresh polynomial, low degree first;
    /// `commitments[0]` must equal the dealer's old `vk_share`.
    pub commitments: Vec<GroupElem>,
    /// `(new index, P_d(new index))`, one per new-committee member, in the
    /// order the dealer was given the new index set.
    pub subshares: Vec<(ShareIndex, Scalar)>,
}

/// `Π_k commitments[k]^{x^k}` — the public image `g^{P(x)}` of the dealt
/// polynomial at `x`, from commitments alone.
pub fn eval_commitments(commitments: &[GroupElem], at: ShareIndex) -> GroupElem {
    let x = at.to_scalar();
    let mut pow = Scalar::ONE;
    let mut pairs = Vec::with_capacity(commitments.len());
    for c in commitments {
        pairs.push((*c, pow));
        pow = pow.mul(&x);
    }
    GroupElem::multi_pow(&pairs)
}

impl ReshareDealing {
    /// Produces this dealer's dealing: a fresh degree-`new_threshold`
    /// polynomial with constant term `old_share`, evaluated at every new
    /// index, with Feldman commitments to all coefficients.
    pub fn deal(
        old_share: Scalar,
        dealer: ShareIndex,
        new_indices: &[ShareIndex],
        new_threshold: usize,
        rng: &mut impl RngCore,
    ) -> Self {
        let poly = Polynomial::random(old_share, new_threshold, rng);
        let commitments =
            poly.coefficients().iter().map(GroupElem::from_exponent).collect();
        let subshares = new_indices.iter().map(|&j| (j, poly.share(j))).collect();
        ReshareDealing { dealer, commitments, subshares }
    }

    /// Verifies the whole dealing against the dealer's registered old
    /// verification key share: commitment binding plus the Feldman check on
    /// every subshare.
    ///
    /// # Errors
    ///
    /// [`ReshareError::WrongDealerCommitment`] if `commitments[0] != vk_d`,
    /// [`ReshareError::InvalidSubshare`] naming the first bad subshare.
    pub fn verify(&self, dealer_old_vk_share: &GroupElem) -> Result<(), ReshareError> {
        let Some(head) = self.commitments.first() else {
            return Err(ReshareError::EmptyDealing { dealer: self.dealer.value() });
        };
        if head != dealer_old_vk_share {
            return Err(ReshareError::WrongDealerCommitment { dealer: self.dealer.value() });
        }
        for (index, sub) in &self.subshares {
            if GroupElem::from_exponent(sub) != eval_commitments(&self.commitments, *index) {
                return Err(ReshareError::InvalidSubshare {
                    dealer: self.dealer.value(),
                    index: index.value(),
                });
            }
        }
        Ok(())
    }

    /// The subshare this dealing carries for `index`, if any.
    pub fn subshare_for(&self, index: ShareIndex) -> Option<Scalar> {
        self.subshares.iter().find(|(i, _)| *i == index).map(|(_, s)| *s)
    }
}

/// Interpolates new index `target`'s share of the *original* secret from
/// one verified dealing per dealer. Works with any number of distinct
/// dealers `≥ t_old + 1` — interpolating a degree-`t_old` polynomial
/// through more than `t_old + 1` points is still exact, which is what lets
/// one canonical dealer set serve key sets of different thresholds.
///
/// # Errors
///
/// Share-set errors on duplicate dealers, [`ReshareError::MissingSubshare`]
/// if a dealing lacks `target`.
pub fn combine_subshares(
    dealings: &[&ReshareDealing],
    target: ShareIndex,
) -> Result<Scalar, ReshareError> {
    let indices: Vec<ShareIndex> = dealings.iter().map(|d| d.dealer).collect();
    let lambdas = lagrange_coeffs_at_zero(&indices)?;
    let mut acc = Scalar::ZERO;
    for (d, lambda) in dealings.iter().zip(&lambdas) {
        let sub = d.subshare_for(target).ok_or(ReshareError::MissingSubshare {
            dealer: d.dealer.value(),
            index: target.value(),
        })?;
        acc = acc.add(&lambda.mul(&sub));
    }
    Ok(acc)
}

/// Publicly derives the *new* verification key share of `target` from the
/// commitment vectors alone: `vk'_j = Π_d (g^{P_d(x_j)})^{λ_d}`. Every
/// node — including one that holds no share — computes the same value.
///
/// # Errors
///
/// Share-set errors on duplicate dealers,
/// [`ReshareError::EmptyDealing`] on an empty commitment vector.
pub fn derive_vk_share(
    dealings: &[&ReshareDealing],
    target: ShareIndex,
) -> Result<GroupElem, ReshareError> {
    let indices: Vec<ShareIndex> = dealings.iter().map(|d| d.dealer).collect();
    let lambdas = lagrange_coeffs_at_zero(&indices)?;
    let mut acc = GroupElem::identity();
    for (d, lambda) in dealings.iter().zip(&lambdas) {
        if d.commitments.is_empty() {
            return Err(ReshareError::EmptyDealing { dealer: d.dealer.value() });
        }
        acc = acc.mul(&eval_commitments(&d.commitments, target).pow(lambda));
    }
    Ok(acc)
}

/// Publicly derives the (unchanged) group key from the dealings:
/// `Π_d C_{d,0}^{λ_d} = g^{Σ λ_d s_d} = g^s`. Verifiers compare this
/// against the registered `vk` as a whole-ceremony sanity check.
///
/// # Errors
///
/// Share-set errors on duplicate dealers,
/// [`ReshareError::EmptyDealing`] on an empty commitment vector.
pub fn derive_group_key(dealings: &[&ReshareDealing]) -> Result<GroupElem, ReshareError> {
    let indices: Vec<ShareIndex> = dealings.iter().map(|d| d.dealer).collect();
    let lambdas = lagrange_coeffs_at_zero(&indices)?;
    let mut acc = GroupElem::identity();
    for (d, lambda) in dealings.iter().zip(&lambdas) {
        let Some(head) = d.commitments.first() else {
            return Err(ReshareError::EmptyDealing { dealer: d.dealer.value() });
        };
        acc = acc.mul(&head.pow(lambda));
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shamir::reconstruct_secret;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Deals an old sharing, reshare it to a new index set, and returns
    /// (secret, new shares indexed by position in `new_indices`).
    fn roll(
        seed: u64,
        n_old: usize,
        t_old: usize,
        dealer_ids: &[usize],
        new_indices: &[ShareIndex],
        t_new: usize,
    ) -> (Scalar, Vec<Scalar>) {
        let mut r = rng(seed);
        let secret = Scalar::random(&mut r);
        let poly = Polynomial::random(secret, t_old, &mut r);
        let old: Vec<(ShareIndex, Scalar)> = (0..n_old)
            .map(|i| {
                let idx = ShareIndex::for_node(i);
                (idx, poly.share(idx))
            })
            .collect();
        let dealings: Vec<ReshareDealing> = dealer_ids
            .iter()
            .map(|&d| {
                ReshareDealing::deal(old[d].1, old[d].0, new_indices, t_new, &mut r)
            })
            .collect();
        // Every dealing verifies against the dealer's old vk share.
        for (k, &d) in dealer_ids.iter().enumerate() {
            dealings[k].verify(&GroupElem::from_exponent(&old[d].1)).unwrap();
        }
        let refs: Vec<&ReshareDealing> = dealings.iter().collect();
        let new_shares = new_indices
            .iter()
            .map(|&j| combine_subshares(&refs, j).unwrap())
            .collect();
        (secret, new_shares)
    }

    #[test]
    fn reshared_shares_reconstruct_the_same_secret() {
        let new_indices: Vec<ShareIndex> = (0..4).map(ShareIndex::for_node).collect();
        let (secret, shares) = roll(7, 4, 1, &[0, 2], &new_indices, 1);
        let pairs: Vec<(ShareIndex, Scalar)> =
            new_indices.iter().copied().zip(shares).collect();
        assert_eq!(reconstruct_secret(&pairs[1..3], 1).unwrap(), secret);
        assert_eq!(reconstruct_secret(&[pairs[0], pairs[3]], 1).unwrap(), secret);
    }

    #[test]
    fn oversized_dealer_set_is_still_exact() {
        // 2f+1 = 3 dealers resharing a threshold-f (=1) sharing: more
        // points than the degree needs, interpolation must stay exact.
        let new_indices: Vec<ShareIndex> = (0..4).map(ShareIndex::for_node).collect();
        let (secret, shares) = roll(11, 4, 1, &[0, 1, 3], &new_indices, 1);
        let pairs: Vec<(ShareIndex, Scalar)> =
            new_indices.iter().copied().zip(shares).collect();
        assert_eq!(reconstruct_secret(&pairs[..2], 1).unwrap(), secret);
    }

    #[test]
    fn group_key_is_preserved_and_vk_shares_derivable() {
        let mut r = rng(3);
        let secret = Scalar::random(&mut r);
        let poly = Polynomial::random(secret, 2, &mut r);
        let old: Vec<(ShareIndex, Scalar)> = (0..7)
            .map(|i| {
                let idx = ShareIndex::for_node(i);
                (idx, poly.share(idx))
            })
            .collect();
        let new_indices: Vec<ShareIndex> = (0..7).map(ShareIndex::for_node).collect();
        let dealings: Vec<ReshareDealing> = [1usize, 2, 4, 5, 6]
            .iter()
            .map(|&d| ReshareDealing::deal(old[d].1, old[d].0, &new_indices, 2, &mut r))
            .collect();
        let refs: Vec<&ReshareDealing> = dealings.iter().collect();
        assert_eq!(derive_group_key(&refs).unwrap(), GroupElem::from_exponent(&secret));
        for &j in &new_indices {
            let s = combine_subshares(&refs, j).unwrap();
            assert_eq!(derive_vk_share(&refs, j).unwrap(), GroupElem::from_exponent(&s));
        }
    }

    #[test]
    fn wrong_dealer_commitment_is_rejected() {
        let mut r = rng(5);
        let new_indices: Vec<ShareIndex> = (0..4).map(ShareIndex::for_node).collect();
        let share = Scalar::random(&mut r);
        let dealing =
            ReshareDealing::deal(share, ShareIndex::for_node(1), &new_indices, 1, &mut r);
        // Verifying against a different registered vk share fails.
        let other = GroupElem::from_exponent(&share.add(&Scalar::ONE));
        assert_eq!(
            dealing.verify(&other),
            Err(ReshareError::WrongDealerCommitment { dealer: 2 })
        );
    }

    #[test]
    fn tampered_subshare_is_localized() {
        let mut r = rng(9);
        let new_indices: Vec<ShareIndex> = (0..4).map(ShareIndex::for_node).collect();
        let share = Scalar::random(&mut r);
        let mut dealing =
            ReshareDealing::deal(share, ShareIndex::for_node(0), &new_indices, 1, &mut r);
        dealing.subshares[2].1 = dealing.subshares[2].1.add(&Scalar::ONE);
        assert_eq!(
            dealing.verify(&GroupElem::from_exponent(&share)),
            Err(ReshareError::InvalidSubshare { dealer: 1, index: 3 })
        );
    }

    #[test]
    fn missing_subshare_and_duplicate_dealer_are_rejected() {
        let mut r = rng(13);
        let new_indices = [ShareIndex::for_node(0)];
        let share = Scalar::random(&mut r);
        let dealing =
            ReshareDealing::deal(share, ShareIndex::for_node(0), &new_indices, 1, &mut r);
        let other =
            ReshareDealing::deal(share, ShareIndex::for_node(1), &new_indices, 1, &mut r);
        assert_eq!(
            combine_subshares(&[&dealing, &other], ShareIndex::for_node(3)),
            Err(ReshareError::MissingSubshare { dealer: 1, index: 4 })
        );
        assert!(matches!(
            combine_subshares(&[&dealing, &dealing], ShareIndex::for_node(0)),
            Err(ReshareError::Shamir(ShamirError::DuplicateIndex(1)))
        ));
    }

    #[test]
    fn empty_dealing_is_rejected() {
        let d = ReshareDealing {
            dealer: ShareIndex::for_node(0),
            commitments: vec![],
            subshares: vec![],
        };
        assert_eq!(
            d.verify(&GroupElem::generator()),
            Err(ReshareError::EmptyDealing { dealer: 1 })
        );
        assert_eq!(derive_group_key(&[&d]), Err(ReshareError::EmptyDealing { dealer: 1 }));
    }
}
