//! Property-based tests for the algebraic core: field axioms, Shamir
//! reconstruction, signature soundness, encryption roundtrips.

use proptest::prelude::*;
use rand::SeedableRng;
use wbft_crypto::field::{Fe, Scalar};
use wbft_crypto::group::GroupElem;
use wbft_crypto::merkle::MerkleTree;
use wbft_crypto::shamir::{reconstruct_secret, Polynomial, ShareIndex};
use wbft_crypto::{reshare, thresh_coin, thresh_enc, thresh_sig, ThresholdCurve};

fn arb_fe() -> impl Strategy<Value = Fe> {
    any::<[u8; 32]>().prop_map(|b| Fe::from_bytes_reduced(&b))
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    any::<[u8; 32]>().prop_map(|b| Scalar::from_bytes_reduced(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fe_addition_commutes(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn fe_addition_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn fe_multiplication_commutes(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn fe_multiplication_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn fe_distributive_law(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn fe_sub_is_add_inverse(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!((a - b) + b, a);
    }

    #[test]
    fn fe_inverse_roundtrip(a in arb_fe()) {
        if let Some(inv) = a.invert() {
            prop_assert_eq!(a * inv, Fe::ONE);
        } else {
            prop_assert!(a.is_zero());
        }
    }

    #[test]
    fn fe_bytes_roundtrip(a in arb_fe()) {
        prop_assert_eq!(Fe::from_bytes_reduced(&a.to_bytes()), a);
    }

    #[test]
    fn scalar_field_axioms(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!((a - b) + b, a);
        if let Some(inv) = a.invert() {
            prop_assert_eq!(a * inv, Scalar::ONE);
        }
    }

    #[test]
    fn square_matches_mul(a in arb_fe()) {
        prop_assert_eq!(a.square(), a * a);
    }

    #[test]
    fn group_exponent_homomorphism(a in arb_scalar(), b in arb_scalar()) {
        let g = GroupElem::generator();
        prop_assert_eq!(g.pow(&a).mul(&g.pow(&b)), g.pow(&a.add(&b)));
    }

    #[test]
    fn shamir_reconstructs_from_any_quorum(
        secret_seed in any::<u64>(),
        degree in 1usize..4,
        seed in any::<u64>(),
        pick in any::<[u8; 8]>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 3 * degree + 1;
        let secret = Scalar::from_u64(secret_seed);
        let poly = Polynomial::random(secret, degree, &mut rng);
        let mut shares: Vec<_> = (0..n)
            .map(|i| {
                let idx = ShareIndex::for_node(i);
                (idx, poly.share(idx))
            })
            .collect();
        // Rotate deterministically from `pick` to choose an arbitrary quorum.
        let rot = (u64::from_le_bytes(pick) as usize) % n;
        shares.rotate_left(rot);
        let got = reconstruct_secret(&shares[..degree + 1], degree).unwrap();
        prop_assert_eq!(got, secret);
    }

    #[test]
    fn threshold_signature_quorum_independence(seed in any::<u64>(), msg in any::<Vec<u8>>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (public, secrets) = thresh_sig::deal(4, 1, ThresholdCurve::Bn158, &mut rng);
        let shares: Vec<_> = secrets.iter().map(|s| s.sign_share(&msg)).collect();
        let s1 = public.combine(&[shares[0], shares[1]]).unwrap();
        let s2 = public.combine(&[shares[2], shares[3]]).unwrap();
        prop_assert_eq!(s1, s2);
        prop_assert!(public.verify(&msg, &s1).is_ok());
    }

    #[test]
    fn coin_agreement_across_quorums(seed in any::<u64>(), round in any::<u32>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (public, secrets) = thresh_coin::deal_coin(4, 1, ThresholdCurve::Bn158, &mut rng);
        let name = thresh_coin::CoinName { session: seed, round, domain: 0 };
        let shares: Vec<_> = secrets.iter().map(|s| s.coin_share(name)).collect();
        let v1 = public.combine_value(name, &[shares[0], shares[3]]).unwrap();
        let v2 = public.combine_value(name, &[shares[1], shares[2]]).unwrap();
        prop_assert_eq!(v1, v2);
    }

    #[test]
    fn threshold_encryption_roundtrip(seed in any::<u64>(), pt in any::<Vec<u8>>(), label in any::<Vec<u8>>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (public, secrets) = thresh_enc::deal_enc(4, 1, ThresholdCurve::Bn158, &mut rng);
        let ct = public.encrypt(&label, &pt, &mut rng);
        let shares: Vec<_> = secrets[1..3].iter().map(|s| s.dec_share(&ct)).collect();
        prop_assert_eq!(public.decrypt(&label, &ct, &shares).unwrap(), pt);
    }

    #[test]
    fn merkle_proofs_verify(leaf_count in 1usize..12, data in any::<Vec<u8>>()) {
        let leaves: Vec<Vec<u8>> = (0..leaf_count)
            .map(|i| {
                let mut l = data.clone();
                l.push(i as u8);
                l
            })
            .collect();
        let tree = MerkleTree::build(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            prop_assert!(tree.proof(i).verify(&tree.root(), leaf));
        }
    }

    #[test]
    fn schnorr_never_verifies_cross_message(seed in any::<u64>(), m1 in any::<Vec<u8>>(), m2 in any::<Vec<u8>>()) {
        prop_assume!(m1 != m2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let kp = wbft_crypto::schnorr::KeyPair::generate(wbft_crypto::EcdsaCurve::Secp160r1, &mut rng);
        let sig = kp.sign(&m1);
        prop_assert!(kp.public().verify(&m1, &sig).is_ok());
        prop_assert!(kp.public().verify(&m2, &sig).is_err());
    }

    // ---------------------------------------------------------- fast paths

    #[test]
    fn multi_pow_equals_naive_product(seed in any::<u64>(), k in 1usize..=32) {
        // Covers both the Straus (< 16 bases) and Pippenger (>= 16) paths.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pairs: Vec<(GroupElem, Scalar)> = (0..k)
            .map(|_| {
                (GroupElem::from_exponent(&Scalar::random(&mut rng)), Scalar::random(&mut rng))
            })
            .collect();
        let naive = pairs
            .iter()
            .fold(GroupElem::identity(), |acc, (b, e)| acc.mul(&b.pow(e)));
        prop_assert_eq!(GroupElem::multi_pow(&pairs), naive);
    }

    #[test]
    fn multi_pow_equals_naive_with_small_exponents(seed in any::<u64>(), k in 1usize..=20, exps in prop::collection::vec(any::<u64>(), 20)) {
        // Short exponents exercise the leading-zero-window skip.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pairs: Vec<(GroupElem, Scalar)> = exps[..k]
            .iter()
            .map(|e| {
                (GroupElem::from_exponent(&Scalar::random(&mut rng)), Scalar::from_u64(*e))
            })
            .collect();
        let naive = pairs
            .iter()
            .fold(GroupElem::identity(), |acc, (b, e)| acc.mul(&b.pow(e)));
        prop_assert_eq!(GroupElem::multi_pow(&pairs), naive);
    }

    #[test]
    fn batch_verify_accepts_iff_every_share_verifies(
        seed in any::<u64>(),
        // For each of the 7 dealt shares: keep / tamper / wrong message /
        // drop, plus optional duplication of the first kept share.
        ops in prop::collection::vec(0u8..4, 7),
        dup in any::<bool>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (pks, sks) = thresh_sig::deal(7, 2, ThresholdCurve::Bn158, &mut rng);
        let msg = b"prop-batch";
        let mut batch = Vec::new();
        for (sk, op) in sks.iter().zip(&ops) {
            let mut share = sk.sign_share(msg);
            match op {
                0 => {}
                1 => share.value = share.value.mul(&GroupElem::generator()),
                2 => share = sk.sign_share(b"prop-batch-other"),
                _ => continue, // dropped from the batch
            }
            batch.push(share);
        }
        if dup {
            if let Some(first) = batch.first().copied() {
                batch.push(first); // duplicate index, same value
            }
        }
        let per_share_ok = batch.iter().all(|s| pks.verify_share(msg, s).is_ok());
        prop_assert_eq!(pks.verify_shares(msg, &batch).is_ok(), per_share_ok);
        // The positions reported invalid are exactly the per-share failures.
        let pm = pks.prepare(msg);
        let expected: Vec<usize> = batch
            .iter()
            .enumerate()
            .filter(|(_, s)| pks.verify_share(msg, s).is_err())
            .map(|(p, _)| p)
            .collect();
        prop_assert_eq!(pks.invalid_share_positions(&pm, &batch), expected);
    }

    #[test]
    fn coin_batch_verify_matches_per_share(seed in any::<u64>(), tamper in prop::collection::vec(any::<bool>(), 4)) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (cpub, csec) = thresh_coin::deal_coin(4, 1, ThresholdCurve::Bn158, &mut rng);
        let name = thresh_coin::CoinName { session: seed, round: 1, domain: 0 };
        let batch: Vec<_> = csec
            .iter()
            .zip(&tamper)
            .map(|(s, t)| {
                let mut share = s.coin_share(name);
                if *t {
                    share.value = share.value.mul(&GroupElem::generator());
                }
                share
            })
            .collect();
        let per_share_ok = batch.iter().all(|s| cpub.verify_share(name, s).is_ok());
        prop_assert_eq!(cpub.verify_shares(name, &batch).is_ok(), per_share_ok);
    }

    #[test]
    fn memoized_decode_agrees_with_direct(bytes in any::<[u8; 32]>()) {
        prop_assert_eq!(GroupElem::from_bytes(&bytes), GroupElem::from_bytes_uncached(&bytes));
    }

    #[test]
    fn memoized_decode_agrees_on_valid_encodings(e in arb_scalar()) {
        let x = GroupElem::from_exponent(&e);
        let b = x.to_bytes();
        // First call may populate the memo, second reads it back.
        prop_assert_eq!(GroupElem::from_bytes(&b), GroupElem::from_bytes_uncached(&b));
        prop_assert_eq!(GroupElem::from_bytes(&b), Ok(x));
    }

    // ---------------------------------------------------------- resharing

    #[test]
    fn resharing_preserves_the_secret_for_random_shapes(
        seed in any::<u64>(),
        t_old in 1usize..4,
        t_new in 1usize..4,
        extra_dealers in 0usize..3,
        rot in any::<u8>(),
    ) {
        // Random old/new thresholds, a rotated dealer subset of size
        // t_old + 1 + extra, and a shifted new index set: the interpolated
        // shares must reconstruct the original secret.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n_old = 3 * t_old + 1;
        let secret = Scalar::random(&mut rng);
        let poly = Polynomial::random(secret, t_old, &mut rng);
        let mut old: Vec<(ShareIndex, Scalar)> = (0..n_old)
            .map(|i| {
                let idx = ShareIndex::for_node(i);
                (idx, poly.share(idx))
            })
            .collect();
        old.rotate_left((rot as usize) % n_old);
        let dealer_count = (t_old + 1 + extra_dealers).min(n_old);
        let n_new = 3 * t_new + 1;
        let new_indices: Vec<ShareIndex> = (0..n_new).map(ShareIndex::for_node).collect();
        let dealings: Vec<reshare::ReshareDealing> = old[..dealer_count]
            .iter()
            .map(|(idx, s)| {
                let d = reshare::ReshareDealing::deal(*s, *idx, &new_indices, t_new, &mut rng);
                d.verify(&GroupElem::from_exponent(s)).unwrap();
                d
            })
            .collect();
        let refs: Vec<&reshare::ReshareDealing> = dealings.iter().collect();
        prop_assert_eq!(
            reshare::derive_group_key(&refs).unwrap(),
            GroupElem::from_exponent(&secret)
        );
        let new_shares: Vec<(ShareIndex, Scalar)> = new_indices
            .iter()
            .map(|&j| (j, reshare::combine_subshares(&refs, j).unwrap()))
            .collect();
        let got = reconstruct_secret(&new_shares[..t_new + 1], t_new).unwrap();
        prop_assert_eq!(got, secret);
        // Publicly derived vk shares match the interpolated secrets.
        for (j, s) in &new_shares {
            prop_assert_eq!(
                reshare::derive_vk_share(&refs, *j).unwrap(),
                GroupElem::from_exponent(s)
            );
        }
    }

    #[test]
    fn post_reshare_signatures_verify_under_the_genesis_vk(seed in any::<u64>(), msg in any::<Vec<u8>>()) {
        // Roll a (f, n) signature key set to a fresh committee and combine
        // a signature from the *new* shares: the genesis PublicKeySet must
        // accept it unchanged.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (genesis, old_secrets) = thresh_sig::deal(4, 1, ThresholdCurve::Bn158, &mut rng);
        let new_indices: Vec<ShareIndex> = (0..4).map(ShareIndex::for_node).collect();
        let dealings: Vec<reshare::ReshareDealing> = old_secrets[1..4]
            .iter()
            .map(|sk| {
                reshare::ReshareDealing::deal(
                    sk.secret_scalar(),
                    sk.index(),
                    &new_indices,
                    1,
                    &mut rng,
                )
            })
            .collect();
        let refs: Vec<&reshare::ReshareDealing> = dealings.iter().collect();
        let new_sks: Vec<_> = new_indices
            .iter()
            .map(|&j| {
                thresh_sig::SecretKeyShare::from_parts(
                    j,
                    reshare::combine_subshares(&refs, j).unwrap(),
                    ThresholdCurve::Bn158,
                )
            })
            .collect();
        let new_vk_shares: Vec<GroupElem> = new_indices
            .iter()
            .map(|&j| reshare::derive_vk_share(&refs, j).unwrap())
            .collect();
        let rolled = thresh_sig::PublicKeySet::from_parts(
            ThresholdCurve::Bn158,
            1,
            genesis.group_key(),
            new_vk_shares,
        );
        let shares: Vec<_> = new_sks.iter().map(|sk| sk.sign_share(&msg)).collect();
        for s in &shares {
            prop_assert!(rolled.verify_share(&msg, s).is_ok());
        }
        let sig = rolled.combine(&shares[2..4]).unwrap();
        prop_assert!(genesis.verify(&msg, &sig).is_ok());
        // An old share combined under the rolled set is caught.
        let stale = old_secrets[0].sign_share(&msg);
        prop_assert!(rolled.verify_share(&msg, &stale).is_err());
    }

    #[test]
    fn post_reshare_coins_keep_their_values(seed in any::<u64>(), round in any::<u32>()) {
        // Coin values are a pure function of the shared secret, so a rolled
        // committee must flip exactly the same coins.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (genesis, old_secrets) = thresh_coin::deal_coin(4, 1, ThresholdCurve::Bn158, &mut rng);
        let name = thresh_coin::CoinName { session: seed, round, domain: 0 };
        let before = genesis
            .combine_value(name, &[old_secrets[0].coin_share(name), old_secrets[1].coin_share(name)])
            .unwrap();
        let new_indices: Vec<ShareIndex> = (0..4).map(ShareIndex::for_node).collect();
        let dealings: Vec<reshare::ReshareDealing> = old_secrets[..2]
            .iter()
            .map(|sk| {
                reshare::ReshareDealing::deal(
                    sk.secret_scalar(),
                    sk.index(),
                    &new_indices,
                    1,
                    &mut rng,
                )
            })
            .collect();
        let refs: Vec<&reshare::ReshareDealing> = dealings.iter().collect();
        let rolled_pub = thresh_coin::CoinPublicSet::from_parts(
            ThresholdCurve::Bn158,
            1,
            new_indices.iter().map(|&j| reshare::derive_vk_share(&refs, j).unwrap()).collect(),
        );
        let rolled_secs: Vec<_> = new_indices
            .iter()
            .map(|&j| {
                thresh_coin::CoinSecretShare::from_parts(
                    j,
                    reshare::combine_subshares(&refs, j).unwrap(),
                )
            })
            .collect();
        let after = rolled_pub
            .combine_value(name, &[rolled_secs[2].coin_share(name), rolled_secs[3].coin_share(name)])
            .unwrap();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn dec_share_binds_to_its_ciphertext(seed in any::<u64>(), pt in any::<Vec<u8>>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (public, secrets) = thresh_enc::deal_enc(4, 1, ThresholdCurve::Bn158, &mut rng);
        let ct_a = public.encrypt(b"A", &pt, &mut rng);
        let ct_b = public.encrypt(b"B", &pt, &mut rng);
        let share = secrets[0].dec_share(&ct_a);
        prop_assert!(public.verify_share(&ct_a, &share).is_ok());
        prop_assert!(public.verify_share(&ct_b, &share).is_err());
    }
}
