#![forbid(unsafe_code)]
//! # wbft-consensus — wireless asynchronous BFT consensus
//!
//! The consensus layer and testbed of the ConsensusBatcher reproduction
//! (*"Asynchronous BFT Consensus Made Wireless"*, ICDCS 2025): wireless
//! HoneyBadgerBFT (LC/SC), BEAT and Dumbo (LC/SC) built from the batched
//! components of `wbft-components`, their three unbatched baselines,
//! single-hop and clustered multi-hop deployments, Byzantine node
//! behaviours, and a [`testbed`] that runs any of it on the deterministic
//! wireless simulator and reports latency / throughput / channel-access
//! statistics.
//!
//! ## Example
//!
//! ```rust,no_run
//! use wbft_consensus::protocol::Protocol;
//! use wbft_consensus::testbed::{run, TestbedConfig};
//!
//! let report = run(&TestbedConfig::single_hop(Protocol::Beat));
//! println!("latency {:.1}s, throughput {:.0} TPM",
//!     report.mean_latency_s, report.throughput_tpm);
//! ```

pub mod byzantine;
pub mod driver;
pub mod dumbo;
pub mod fuzz;
pub mod honeybadger;
pub mod membership;
pub mod multihop;
pub mod netrun;
pub mod protocol;
pub mod recovery;
pub mod report;
pub mod service;
pub mod sweep;
pub mod testbed;
pub mod workload;

pub use byzantine::{ByzantineEngine, ByzantineMode};
pub use driver::{Block, Engine, EngineOut, ProtocolNode, Tx};
pub use membership::{CeremonyKickoff, MembershipCtl};
pub use fuzz::{
    build_scheduler, campaign, replay_fixture, FuzzCase, FuzzConfig, FuzzOutcome, FuzzReport,
    FuzzVerdict,
};
pub use netrun::{run_udp_node, run_udp_service_node, ServiceNodeOpts, UdpNodeOutcome};
pub use protocol::Protocol;
pub use recovery::{chain_digests, BlockJournal};
pub use service::{
    AdmitOutcome, ArrivalSpec, ConsensusHandle, LatencySummary, Mempool, ServiceConfig,
    ServiceReport, ServiceStats, StopCondition,
};
pub use sweep::{
    parallel_map, resolve_threads, run_scenarios, run_sweep, sweep_threads, Scenario, SweepRun,
    SweepSpec,
};
pub use testbed::{run, CrashEvent, CrashPlan, RunReport, TestbedConfig};
pub use workload::{BatchSource, Workload};
