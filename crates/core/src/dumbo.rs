//! Wireless Dumbo (Dumbo2) — paper §V-A, Fig. 7b.
//!
//! Per epoch: N batched PRBC instances spread proposals and produce
//! `(f,n)`-threshold *delivery proofs*; after `2f+1` proofs a node
//! CBC-broadcasts its proof vector `W_i` (`CBC_value`); after `2f+1`
//! `CBC_value` deliveries it CBC-broadcasts the id-set `S_i` of completed
//! `CBC_value` instances (`CBC_commit`, small values → CBC-small packets);
//! after `2f+1` commits, a common coin fixes a random permutation π and the
//! nodes run **serial** ABA over candidates in π order — input 1 iff the
//! candidate's commit was delivered — until one ABA outputs 1. The block is
//! the union of the PRBC proposals referenced by the elected candidate's
//! `W` vector. Serial activation also prevents premature coin-share release
//! for later instances (§V-A).

use crate::driver::{sessions, Block, Engine, EngineOut, Tx};
use crate::service::StopCondition;
use crate::workload::{decode_batch, encode_batch, BatchSource};
#[cfg(test)]
use crate::workload::Workload;
use bytes::Bytes;
use rand::SeedableRng;
use std::collections::VecDeque;
use wbft_components::aba_lc::AbaLcBatch;
use wbft_components::aba_sc::AbaScBatch;
use wbft_components::baseline::{BaselineAbaSet, BaselineCbcSet, BaselinePrbcSet};
use wbft_components::cbc::{CbcBatch, CbcSmallBatch};
use wbft_components::prbc::PrbcBatch;
use wbft_components::{Actions, BinaryAgreement, Broadcaster, NodeCrypto, Params};
use wbft_crypto::hash::Digest32;
use wbft_crypto::thresh_coin::{CoinName, CoinShare};
use wbft_crypto::thresh_sig::ThresholdSignature;
use wbft_net::{Bitmap, Body, CoinFlavor, RetransmitPolicy};

const TIMER_PI_RETX: u32 = 0;

// ------------------------------------------------------------------
// W-vector encoding: (instance, root, proof) triples.

fn encode_w(entries: &[(u8, Digest32, ThresholdSignature)]) -> Bytes {
    let mut out = Vec::with_capacity(1 + entries.len() * 65);
    out.push(entries.len() as u8);
    for (id, root, proof) in entries {
        out.push(*id);
        out.extend_from_slice(root.as_bytes());
        out.extend_from_slice(&proof.to_bytes());
    }
    Bytes::from(out)
}

fn decode_w(data: &[u8]) -> Option<Vec<(u8, Digest32, ThresholdSignature)>> {
    let count = *data.first()? as usize;
    if data.len() != 1 + count * 65 {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for k in 0..count {
        let base = 1 + k * 65;
        let id = data[base];
        let root = Digest32(data[base + 1..base + 33].try_into().ok()?);
        let sig = ThresholdSignature::from_bytes(&data[base + 33..base + 65].try_into().ok()?)?;
        out.push((id, root, sig));
    }
    Some(out)
}

/// Commit-set (bitmap) encoding for the baseline CBC path.
fn encode_commit(s: &Bitmap) -> Bytes {
    let mut out = Vec::with_capacity(9);
    out.push(s.len() as u8);
    out.extend_from_slice(&s.to_raw().to_le_bytes());
    Bytes::from(out)
}

fn decode_commit(data: &[u8]) -> Option<Bitmap> {
    if data.len() != 9 || data[0] > 64 {
        return None;
    }
    Some(Bitmap::from_raw(u64::from_le_bytes(data[1..9].try_into().ok()?), data[0] as usize))
}

// ------------------------------------------------------------------
// Deployment-style wrappers.

/// PRBC in batched or baseline form.
enum Prbc {
    Batched(PrbcBatch),
    Baseline(BaselinePrbcSet),
}

impl Prbc {
    fn start(&mut self, v: Bytes, acts: &mut Actions) {
        match self {
            Prbc::Batched(x) => x.start(v, acts),
            Prbc::Baseline(x) => x.start(v, acts),
        }
    }
    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        match self {
            Prbc::Batched(x) => x.handle(from, body, acts),
            Prbc::Baseline(x) => x.handle(from, body, acts),
        }
    }
    fn on_timer(&mut self, local: u32, acts: &mut Actions) {
        match self {
            Prbc::Batched(x) => x.on_timer(local, acts),
            Prbc::Baseline(x) => x.on_timer(local, acts),
        }
    }
    fn delivered(&self, j: usize) -> Option<&Bytes> {
        match self {
            Prbc::Batched(x) => x.delivered(j),
            Prbc::Baseline(x) => x.delivered(j),
        }
    }
    fn proof(&self, j: usize) -> Option<&ThresholdSignature> {
        match self {
            Prbc::Batched(x) => x.proof(j),
            Prbc::Baseline(x) => x.proof(j),
        }
    }
    fn proven_count(&self) -> usize {
        match self {
            Prbc::Batched(x) => x.proven_count(),
            Prbc::Baseline(x) => x.proven_count(),
        }
    }
}

/// CBC for the (large) W vectors.
enum ValueCbc {
    Batched(CbcBatch),
    Baseline(BaselineCbcSet),
}

impl ValueCbc {
    fn start(&mut self, v: Bytes, acts: &mut Actions) {
        match self {
            ValueCbc::Batched(x) => x.start(v, acts),
            ValueCbc::Baseline(x) => x.start(v, acts),
        }
    }
    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        match self {
            ValueCbc::Batched(x) => x.handle(from, body, acts),
            ValueCbc::Baseline(x) => x.handle(from, body, acts),
        }
    }
    fn on_timer(&mut self, local: u32, acts: &mut Actions) {
        match self {
            ValueCbc::Batched(x) => x.on_timer(local, acts),
            ValueCbc::Baseline(x) => x.on_timer(local, acts),
        }
    }
    fn delivered(&self, j: usize) -> Option<&Bytes> {
        match self {
            ValueCbc::Batched(x) => x.delivered(j),
            ValueCbc::Baseline(x) => x.delivered(j),
        }
    }
    fn delivered_count(&self) -> usize {
        match self {
            ValueCbc::Batched(x) => x.delivered_count(),
            ValueCbc::Baseline(x) => x.delivered_count(),
        }
    }
}

/// CBC for the (small) commit sets.
enum CommitCbc {
    Small(CbcSmallBatch),
    Baseline(BaselineCbcSet),
}

impl CommitCbc {
    fn start(&mut self, s: Bitmap, acts: &mut Actions) {
        match self {
            CommitCbc::Small(x) => x.start(s, acts),
            CommitCbc::Baseline(x) => x.start(encode_commit(&s), acts),
        }
    }
    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        match self {
            CommitCbc::Small(x) => x.handle(from, body, acts),
            CommitCbc::Baseline(x) => x.handle(from, body, acts),
        }
    }
    fn on_timer(&mut self, local: u32, acts: &mut Actions) {
        match self {
            CommitCbc::Small(x) => x.on_timer(local, acts),
            CommitCbc::Baseline(x) => x.on_timer(local, acts),
        }
    }
    fn delivered_set(&self, j: usize) -> Option<Bitmap> {
        match self {
            CommitCbc::Small(x) => x.delivered_value(j),
            CommitCbc::Baseline(x) => x.delivered(j).and_then(|b| decode_commit(b)),
        }
    }
    fn delivered_count(&self) -> usize {
        match self {
            CommitCbc::Small(x) => x.delivered_count(),
            CommitCbc::Baseline(x) => x.delivered_count(),
        }
    }
}

// ------------------------------------------------------------------
// π coin: one common-coin round fixing the candidate permutation.

struct PiCoin {
    p: Params,
    released: bool,
    /// Buffered coin shares, batch-verified at quorum (see
    /// `wbft_components::share_buf`).
    shares: wbft_components::CoinShareBuf,
    value: Option<u64>,
    timer_armed: bool,
    retx: wbft_components::context::RetxState,
}

impl PiCoin {
    fn new(p: Params) -> Self {
        PiCoin {
            released: false,
            shares: wbft_components::CoinShareBuf::default(),
            value: None,
            timer_armed: false,
            retx: wbft_components::context::RetxState::new(RetransmitPolicy::lora_class(), &p),
            p,
        }
    }

    fn name(&self) -> CoinName {
        CoinName { session: self.p.session, round: 0, domain: 0 }
    }

    fn activate(&mut self, crypto: &NodeCrypto, acts: &mut Actions) {
        if self.released {
            return;
        }
        self.released = true;
        acts.charge(crypto.suite.threshold.coin_profile().sign_share_us);
        let share = crypto.coin_sec.coin_share(self.name());
        self.record(share, crypto, acts, true);
        self.emit(crypto, acts);
        if !self.timer_armed {
            self.timer_armed = true;
            let d = self.retx.next_delay();
            acts.timer(d, TIMER_PI_RETX);
        }
    }

    fn record(&mut self, share: CoinShare, crypto: &NodeCrypto, acts: &mut Actions, own: bool) {
        if self.value.is_some() {
            return;
        }
        if !self.shares.insert(share, self.p.n) {
            return;
        }
        if !own {
            acts.charge(crypto.suite.threshold.coin_profile().verify_share_us);
        }
        let need = crypto.coin_pub.threshold() + 1;
        if self.shares.settle(&crypto.coin_pub, self.name(), need) {
            acts.charge(crypto.suite.threshold.coin_profile().combine_us);
            if let Ok(v) = crypto.coin_pub.combine_value(self.name(), self.shares.shares()) {
                self.value = Some(v);
            }
        }
    }

    fn emit(&mut self, crypto: &NodeCrypto, acts: &mut Actions) {
        if !self.released {
            return;
        }
        let share = crypto.coin_sec.coin_share(self.name());
        let mut share_nack = Bitmap::new(self.p.n);
        if self.value.is_none() {
            for node in 0..self.p.n {
                if self.shares.reporters() & (1 << node) == 0 {
                    share_nack.set(node, true);
                }
            }
        }
        acts.send(Body::AbaSc {
            flavor: CoinFlavor::ThreshSig,
            insts: vec![],
            coin_shares: vec![(0, share)],
            share_nack,
        });
    }

    fn handle(&mut self, body: &Body, crypto: &NodeCrypto, acts: &mut Actions) {
        let Body::AbaSc { coin_shares, share_nack, .. } = body else { return };
        for (_, share) in coin_shares {
            self.record(*share, crypto, acts, false);
        }
        if share_nack.len() == self.p.n && share_nack.get(self.p.me) && self.released {
            self.retx.peer_behind = true;
        }
    }

    fn on_timer(&mut self, local: u32, crypto: &NodeCrypto, acts: &mut Actions) {
        if local != TIMER_PI_RETX {
            return;
        }
        if self.released && self.retx.should_send(self.value.is_some()) {
            self.emit(crypto, acts);
            self.retx.peer_behind = false;
        }
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_PI_RETX);
    }
}

/// Fisher–Yates permutation of `0..n` from a coin value.
fn permutation(n: usize, coin: u64) -> Vec<usize> {
    use rand::Rng;
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(coin);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    order
}

// ------------------------------------------------------------------
// The engine.

struct EpochState {
    epoch: u64,
    prbc: Prbc,
    value_cbc: ValueCbc,
    commit_cbc: CommitCbc,
    pi: PiCoin,
    aba: Box<dyn BinaryAgreement + Send>,
    value_started: bool,
    commit_started: bool,
    order: Option<Vec<usize>>,
    /// Position in π currently being voted.
    cursor: usize,
    elected: Option<usize>,
    /// Decided block awaiting in-order finalization (pipelined epochs may
    /// decide out of order; the chain commits strictly by epoch).
    decided: Option<Block>,
    committed: bool,
}

/// Which deployment style and coin a Dumbo engine runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DumboVariant {
    /// Batched components, shared-coin serial ABA (threshold signatures).
    Sc,
    /// Batched components, local-coin (Bracha) serial ABA.
    Lc,
    /// Unbatched components, shared-coin serial ABA.
    ScBaseline,
}

/// Wireless Dumbo engine.
pub struct DumboEngine {
    crypto: NodeCrypto,
    variant: DumboVariant,
    n: usize,
    f: usize,
    me: usize,
    source: BatchSource,
    stop: StopCondition,
    /// Epochs opened so far (`is_done` compares against committed blocks).
    started: u64,
    /// Pipeline depth `W`: epochs allowed in flight past the committed
    /// chain. `W = 1` is the strictly sequential behavior.
    depth: u64,
    epochs: VecDeque<EpochState>,
    blocks: Vec<Block>,
}

impl DumboEngine {
    /// Creates a Dumbo engine of the given variant.
    pub fn new(
        crypto: NodeCrypto,
        variant: DumboVariant,
        source: impl Into<BatchSource>,
        stop: StopCondition,
    ) -> Self {
        let n = crypto.peer_keys.len();
        let f = (n - 1) / 3;
        let me = crypto.me;
        DumboEngine {
            crypto,
            variant,
            n,
            f,
            me,
            source: source.into(),
            stop,
            started: 0,
            depth: 1,
            epochs: VecDeque::new(),
            blocks: Vec::new(),
        }
    }

    /// Mutable access to the proposal source.
    pub fn source_mut(&mut self) -> &mut BatchSource {
        &mut self.source
    }

    /// Sets the pipeline depth `W` (clamped to at least 1). Call before
    /// `start`; `W = 1` reproduces the sequential engine byte for byte.
    /// Dumbo pipelines the dissemination lane (PRBC/CBC for future epochs
    /// run while earlier epochs elect); the serial election itself is
    /// inherently per-epoch.
    pub fn with_depth(mut self, depth: u64) -> Self {
        self.depth = depth.max(1);
        self
    }

    fn begin_epoch(&mut self, epoch: u64, out: &mut EngineOut) {
        self.started = self.started.max(epoch + 1);
        let p_prbc = Params::new(self.n, self.me, sessions::of(epoch, sessions::BROADCAST));
        let p_val = Params::new(self.n, self.me, sessions::of(epoch, sessions::CBC_VALUE));
        let p_com = Params::new(self.n, self.me, sessions::of(epoch, sessions::CBC_COMMIT));
        let p_pi = Params::new(self.n, self.me, sessions::of(epoch, sessions::PI_COIN));
        let p_aba = Params::new(self.n, self.me, sessions::of(epoch, sessions::ABA));
        let c = &self.crypto;
        let (prbc, value_cbc, commit_cbc, aba): (
            Prbc,
            ValueCbc,
            CommitCbc,
            Box<dyn BinaryAgreement + Send>,
        ) = match self.variant {
            DumboVariant::Sc => (
                Prbc::Batched(PrbcBatch::new(p_prbc, c.prbc_pub.clone(), c.prbc_sec.clone())),
                ValueCbc::Batched(CbcBatch::new(p_val, c.cbc_pub.clone(), c.cbc_sec.clone())),
                CommitCbc::Small(CbcSmallBatch::new(p_com, c.cbc_pub.clone(), c.cbc_sec.clone())),
                Box::new(AbaScBatch::new_serial(
                    p_aba,
                    CoinFlavor::ThreshSig,
                    c.coin_pub.clone(),
                    c.coin_sec.clone(),
                )),
            ),
            DumboVariant::Lc => (
                Prbc::Batched(PrbcBatch::new(p_prbc, c.prbc_pub.clone(), c.prbc_sec.clone())),
                ValueCbc::Batched(CbcBatch::new(p_val, c.cbc_pub.clone(), c.cbc_sec.clone())),
                CommitCbc::Small(CbcSmallBatch::new(p_com, c.cbc_pub.clone(), c.cbc_sec.clone())),
                Box::new(AbaLcBatch::new(p_aba)),
            ),
            DumboVariant::ScBaseline => (
                Prbc::Baseline(BaselinePrbcSet::new(
                    p_prbc,
                    c.prbc_pub.clone(),
                    c.prbc_sec.clone(),
                )),
                ValueCbc::Baseline(BaselineCbcSet::new(
                    p_val,
                    c.cbc_pub.clone(),
                    c.cbc_sec.clone(),
                )),
                CommitCbc::Baseline(BaselineCbcSet::new(
                    p_com,
                    c.cbc_pub.clone(),
                    c.cbc_sec.clone(),
                )),
                Box::new(BaselineAbaSet::new(
                    p_aba,
                    CoinFlavor::ThreshSig,
                    c.coin_pub.clone(),
                    c.coin_sec.clone(),
                )),
            ),
        };
        let mut st = EpochState {
            epoch,
            prbc,
            value_cbc,
            commit_cbc,
            pi: PiCoin::new(p_pi),
            aba,
            value_started: false,
            commit_started: false,
            order: None,
            cursor: 0,
            elected: None,
            decided: None,
            committed: false,
        };
        let txs = self.source.batch(epoch, self.me);
        let mut acts = Actions::new();
        st.prbc.start(encode_batch(&txs), &mut acts);
        out.absorb(p_prbc.session, &mut acts);
        self.epochs.push_back(st);
        // Keep one finalized epoch beyond the pipeline window alive as a
        // NACK responder for lagging peers.
        let keep = self.depth as usize + 1;
        while self.epochs.len() > keep {
            self.epochs.pop_front();
        }
    }

    /// Opens dissemination for new epochs until `depth` are in flight past
    /// the committed chain (or the stop condition refuses). As in the
    /// HoneyBadger engine, the epoch right past the chain head always
    /// opens (the sequential cadence) while *extra* pipelined epochs open
    /// only when the source has work — eager opens on an idle mempool
    /// would burn whole epochs on empty proposals.
    fn open_epochs(&mut self, out: &mut EngineOut) {
        while self.started < self.blocks.len() as u64 + self.depth && self.stop.allows(self.started)
        {
            if self.started > self.blocks.len() as u64 && !self.source.has_work() {
                break;
            }
            let next = self.started;
            self.begin_epoch(next, out);
        }
    }

    fn poll(&mut self, epoch: u64, out: &mut EngineOut) {
        let quorum = 2 * self.f + 1;
        let Some(idx) = self.epochs.iter().position(|e| e.epoch == epoch) else { return };

        // Stage 2: CBC_value after 2f+1 PRBC proofs. At pipelined depths a
        // *future* epoch's agreement lane (CBC → coin → election) stays
        // parked until the epoch reaches the chain head — only its PRBC
        // dissemination overlaps the head's agreement. Starting the CBC
        // early would exclude proposals still in flight behind pipelined
        // traffic from the W vector and drop whole batches into requeue.
        let at_head = self.epochs[idx].epoch == self.blocks.len() as u64;
        {
            let st = &mut self.epochs[idx];
            if !st.value_started
                && st.prbc.proven_count() >= quorum
                && (self.depth == 1 || at_head)
            {
                st.value_started = true;
                let mut entries = Vec::new();
                for j in 0..self.n {
                    if let (Some(proof), Some(v)) = (st.prbc.proof(j), st.prbc.delivered(j)) {
                        entries.push((j as u8, Digest32::of(v), *proof));
                    }
                }
                let mut acts = Actions::new();
                st.value_cbc.start(encode_w(&entries), &mut acts);
                out.absorb(sessions::of(epoch, sessions::CBC_VALUE), &mut acts);
            }
        }
        // Stage 3: CBC_commit after 2f+1 CBC_value deliveries.
        {
            let st = &mut self.epochs[idx];
            if st.value_started && !st.commit_started && st.value_cbc.delivered_count() >= quorum
            {
                st.commit_started = true;
                let mut s = Bitmap::new(self.n);
                for j in 0..self.n {
                    if st.value_cbc.delivered(j).is_some() {
                        s.set(j, true);
                    }
                }
                let mut acts = Actions::new();
                st.commit_cbc.start(s, &mut acts);
                out.absorb(sessions::of(epoch, sessions::CBC_COMMIT), &mut acts);
            }
        }
        // Stage 4: π coin after 2f+1 commits.
        {
            let st = &mut self.epochs[idx];
            if st.commit_started
                && st.order.is_none()
                && st.commit_cbc.delivered_count() >= quorum
                && !st.pi.released
            {
                let mut acts = Actions::new();
                st.pi.activate(&self.crypto, &mut acts);
                out.absorb(sessions::of(epoch, sessions::PI_COIN), &mut acts);
            }
            if st.order.is_none() {
                if let Some(coin) = st.pi.value {
                    st.order = Some(permutation(self.n, coin));
                }
            }
        }
        // Stage 5: serial ABA over π.
        {
            let st = &mut self.epochs[idx];
            if let Some(order) = st.order.clone() {
                while st.elected.is_none() && st.cursor < order.len() {
                    let candidate = order[st.cursor];
                    match st.aba.decided(candidate) {
                        Some(true) => st.elected = Some(candidate),
                        Some(false) => st.cursor += 1,
                        None => {
                            // Activate (idempotent) and wait. Vote 1 only if
                            // we hold everything stage 6 needs from this
                            // candidate: its commit set AND its CBC_value. A
                            // Byzantine candidate can complete the commit CBC
                            // (a small bitmap) while its CBC_value is
                            // permanently unrecoverable (init data corrupted
                            // under an honest root, so no honest node ever
                            // echoes); voting on the commit CBC alone then
                            // elects a candidate whose W no one can fetch and
                            // the epoch deadlocks waiting on NACK
                            // retransmissions that cannot help. Requiring the
                            // value locally means a 1-decision implies some
                            // honest node holds the W and can serve NACKs.
                            let input = st.commit_cbc.delivered_set(candidate).is_some()
                                && st.value_cbc.delivered(candidate).is_some();
                            let mut acts = Actions::new();
                            st.aba.set_input(candidate, input, &mut acts);
                            out.absorb(sessions::of(epoch, sessions::ABA), &mut acts);
                            break;
                        }
                    }
                }
            }
        }
        // Stage 6: assemble the block from the elected candidate's W.
        {
            let st = &mut self.epochs[idx];
            if st.committed || st.decided.is_some() {
                // Already decided; waiting (if at all) on finalization.
            } else if let Some(c) = st.elected {
                if let Some(wbytes) = st.value_cbc.delivered(c) {
                    if let Some(entries) = decode_w(wbytes) {
                        // Verify the candidate's proofs (charged per entry).
                        out.charge_us += self.crypto.suite.threshold.signature_profile()
                            .verify_signature_us
                            * entries.len() as u64;
                        let session = sessions::of(epoch, sessions::BROADCAST);
                        let all_valid = entries.iter().all(|(id, root, proof)| {
                            PrbcBatch::verify_proof(
                                session,
                                &self.crypto.prbc_pub,
                                *id as usize,
                                root,
                                proof,
                            )
                        });
                        let all_present = entries
                            .iter()
                            .all(|(id, _, _)| st.prbc.delivered(*id as usize).is_some());
                        if all_valid && all_present {
                            let mut txs: Vec<Tx> = Vec::new();
                            for (id, root, _) in &entries {
                                let Some(v) = st.prbc.delivered(*id as usize) else { continue };
                                if Digest32::of(v) == *root {
                                    if let Some(batch) = decode_batch(v) {
                                        for tx in batch {
                                            if !txs.contains(&tx) {
                                                txs.push(tx);
                                            }
                                        }
                                    }
                                }
                            }
                            st.decided = Some(Block { epoch, txs });
                        } else if !all_valid {
                            // Forged W vector — cannot happen for an elected
                            // honest candidate; fall back to the next one.
                            st.elected = None;
                            st.cursor += 1;
                        }
                        // else: waiting on PRBC values via NACK
                    } else {
                        // Malformed W: skip candidate.
                        st.elected = None;
                        st.cursor += 1;
                    }
                }
                // else: waiting on the candidate's CBC_value via NACK
            }
        }
        self.finalize_in_order(out);
    }

    /// Appends decided epochs to the chain strictly in epoch order — the
    /// committed digest chain stays a common prefix even when a later
    /// pipelined epoch decides before an earlier one — then refills the
    /// dissemination pipeline.
    fn finalize_in_order(&mut self, out: &mut EngineOut) {
        let mut advanced = false;
        loop {
            let next = self.blocks.len() as u64;
            let Some(i) = self.epochs.iter().position(|e| e.epoch == next) else { break };
            let Some(block) = self.epochs[i].decided.take() else { break };
            self.epochs[i].committed = true;
            // Service mode: resolve before the next epoch pulls its batch
            // (see honeybadger.rs).
            if let BatchSource::Service { handle, .. } = &self.source {
                handle.resolve_commit(&block);
            }
            self.blocks.push(block);
            advanced = true;
        }
        if advanced {
            self.open_epochs(out);
            // The next epoch just became the chain head: release its
            // parked agreement lane (no-op when its PRBC quorum is not in
            // yet or at depth 1, where the head is the only open epoch).
            let head = self.blocks.len() as u64;
            self.poll(head, out);
        }
    }
}

impl Engine for DumboEngine {
    fn start(&mut self, out: &mut EngineOut) {
        self.open_epochs(out);
    }

    fn on_work_available(&mut self, out: &mut EngineOut) {
        // Fill the pipeline window on fresh local submissions (no-op at
        // the sequential depth, which never has window slack here).
        self.open_epochs(out);
    }

    fn restore_chain(&mut self, blocks: Vec<Block>) {
        // Adopt the recovered prefix as committed history; `start` opens
        // the first live epoch right past it (see honeybadger.rs).
        self.started = self.started.max(blocks.len() as u64);
        self.blocks = blocks;
    }

    fn adopt_chain(&mut self, blocks: Vec<Block>, out: &mut EngineOut) {
        let mut advanced = false;
        for block in blocks {
            if block.epoch != self.blocks.len() as u64 {
                continue;
            }
            // The live instance of an adopted epoch is moot — drop it so
            // its election cannot commit a second copy.
            if let Some(i) = self.epochs.iter().position(|e| e.epoch == block.epoch) {
                self.epochs.remove(i);
            }
            if let BatchSource::Service { handle, .. } = &self.source {
                handle.resolve_commit(&block);
            }
            self.blocks.push(block);
            advanced = true;
        }
        if advanced {
            self.started = self.started.max(self.blocks.len() as u64);
            self.open_epochs(out);
            let head = self.blocks.len() as u64;
            self.poll(head, out);
        }
    }

    fn handle(&mut self, session: u64, from: usize, body: &Body, out: &mut EngineOut) {
        let (epoch, role) = sessions::split(session);
        let Some(idx) = self.epochs.iter().position(|e| e.epoch == epoch) else { return };
        let mut acts = Actions::new();
        {
            let st = &mut self.epochs[idx];
            match role {
                sessions::BROADCAST => st.prbc.handle(from, body, &mut acts),
                sessions::CBC_VALUE => st.value_cbc.handle(from, body, &mut acts),
                sessions::CBC_COMMIT => st.commit_cbc.handle(from, body, &mut acts),
                sessions::PI_COIN => st.pi.handle(body, &self.crypto, &mut acts),
                sessions::ABA => st.aba.handle(from, body, &mut acts),
                _ => {}
            }
        }
        out.absorb(session, &mut acts);
        self.poll(epoch, out);
    }

    fn on_timer(&mut self, session: u64, local: u32, out: &mut EngineOut) {
        let (epoch, role) = sessions::split(session);
        let Some(idx) = self.epochs.iter().position(|e| e.epoch == epoch) else { return };
        let mut acts = Actions::new();
        {
            let st = &mut self.epochs[idx];
            match role {
                sessions::BROADCAST => st.prbc.on_timer(local, &mut acts),
                sessions::CBC_VALUE => st.value_cbc.on_timer(local, &mut acts),
                sessions::CBC_COMMIT => st.commit_cbc.on_timer(local, &mut acts),
                sessions::PI_COIN => st.pi.on_timer(local, &self.crypto, &mut acts),
                sessions::ABA => st.aba.on_timer(local, &mut acts),
                _ => {}
            }
        }
        out.absorb(session, &mut acts);
        self.poll(epoch, out);
    }

    fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    fn is_done(&self) -> bool {
        self.stop.is_done(self.started, self.blocks.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ProtocolNode;
    use wbft_components::deal_node_crypto;
    use wbft_crypto::CryptoSuite;
    use wbft_wireless::{ChannelId, SimConfig, SimTime, Simulator, Topology};

    fn run_dumbo(variant: DumboVariant, seed: u64, epochs: u64) -> Vec<Vec<Block>> {
        run_dumbo_at_depth(variant, seed, epochs, 1)
    }

    fn run_dumbo_at_depth(
        variant: DumboVariant,
        seed: u64,
        epochs: u64,
        depth: u64,
    ) -> Vec<Vec<Block>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let crypto = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        let workload = Workload::small();
        let behaviors: Vec<_> = crypto
            .into_iter()
            .map(|c| {
                let engine =
                    DumboEngine::new(c.clone(), variant, workload.clone(), StopCondition::Epochs(epochs))
                        .with_depth(depth);
                ProtocolNode::new(engine, c, ChannelId(0))
            })
            .collect();
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let mut sim = Simulator::new(cfg, Topology::single_hop(4), behaviors);
        let ok = sim.run_until_pred(SimTime::from_micros(3_600_000_000), |s| {
            s.behaviors().all(|(_, b)| b.is_done())
        });
        assert!(ok, "Dumbo({variant:?}) did not complete in a simulated hour");
        sim.behaviors().map(|(_, b)| b.blocks().to_vec()).collect()
    }

    #[test]
    fn dumbo_sc_agreement() {
        let blocks = run_dumbo(DumboVariant::Sc, 3, 1);
        let first = &blocks[0];
        assert_eq!(first.len(), 1);
        assert!(!first[0].txs.is_empty());
        for b in &blocks {
            assert_eq!(b, first);
        }
    }

    #[test]
    fn dumbo_lc_agreement() {
        let blocks = run_dumbo(DumboVariant::Lc, 4, 1);
        let first = &blocks[0];
        for b in &blocks {
            assert_eq!(b, first);
        }
    }

    #[test]
    fn dumbo_sc_pipelined_depths_agree_and_commit_in_order() {
        for depth in [2u64, 4] {
            let all_blocks = run_dumbo_at_depth(DumboVariant::Sc, 5, 3, depth);
            let first = &all_blocks[0];
            assert_eq!(first.len(), 3, "depth {depth}: all epochs commit");
            for (e, b) in first.iter().enumerate() {
                assert_eq!(b.epoch, e as u64, "depth {depth}: chain is in epoch order");
            }
            for blocks in &all_blocks {
                assert_eq!(blocks, first, "depth {depth}: all nodes agree");
            }
        }
    }

    #[test]
    fn w_vector_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (pks, sks) =
            wbft_crypto::thresh_sig::deal(4, 1, wbft_crypto::ThresholdCurve::Bn158, &mut rng);
        let shares: Vec<_> = sks[..2].iter().map(|s| s.sign_share(b"m")).collect();
        let sig = pks.combine(&shares).unwrap();
        let entries =
            vec![(0u8, Digest32::of(b"a"), sig), (3u8, Digest32::of(b"b"), sig)];
        let enc = encode_w(&entries);
        assert_eq!(decode_w(&enc), Some(entries));
        assert_eq!(decode_w(&enc[..10]), None);
    }

    #[test]
    fn commit_set_roundtrip() {
        let s = Bitmap::from_raw(0b1011, 4);
        assert_eq!(decode_commit(&encode_commit(&s)), Some(s));
        assert_eq!(decode_commit(&[9]), None);
    }

    #[test]
    fn permutation_is_deterministic_and_complete() {
        let p1 = permutation(7, 42);
        let p2 = permutation(7, 42);
        assert_eq!(p1, p2);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        assert_ne!(permutation(7, 42), permutation(7, 43));
    }
}
