//! The asynchronous wireless BFT consensus testbed (paper §V-C).
//!
//! One configuration struct describes an experiment — protocol, node count,
//! workload, radio/CSMA/DMA parameters, loss, adversary, crypto suite,
//! single-hop or clustered multi-hop — and [`run`] executes it on the
//! discrete-event simulator, returning the quantities the paper's figures
//! plot: per-epoch latency, throughput in transactions per minute (TPM),
//! channel accesses per node, bytes on air, collisions and CPU time.

use crate::byzantine::{ByzantineEngine, ByzantineMode};
use crate::driver::{Engine, ProtocolNode};
use crate::membership::MembershipCtl;
use crate::multihop::ClusterNode;
use crate::protocol::Protocol;
use crate::recovery::BlockJournal;
use crate::service::{ConsensusHandle, ServiceConfig, ServiceReport, ServiceStats};
use crate::workload::Workload;
use wbft_components::deal_node_crypto;
use wbft_crypto::CryptoSuite;
use wbft_membership::{MembershipOp, ACTIVATION_DELAY};
use wbft_journal::SharedMem;
use wbft_transport::SYNC_CHANNEL;
use wbft_wireless::{
    AdversaryConfig, ChannelId, CsmaParams, DmaParams, LossModel, Metrics, NodeId, RadioParams,
    SchedConfig, SimConfig, SimDuration, SimTime, Simulator, Topology,
};

/// One crash-restart event on the churn timeline: the node's process dies
/// at `at_us` (losing all volatile state, cutting its in-flight frames)
/// and a fresh incarnation boots at `restart_us`, recovering its committed
/// prefix from the durable journal and catching the rest up through the
/// anti-entropy sync channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// Node to crash (must be honest).
    pub node: usize,
    /// Simulated microseconds from start at which the node dies.
    pub at_us: u64,
    /// Simulated microseconds at which it restarts (`> at_us`).
    pub restart_us: u64,
}

/// A seed-deterministic crash/churn schedule: crash/restart is a fault
/// axis like loss or Byzantine behaviour, not a separate harness. With a
/// plan installed every node journals its commits to an in-memory durable
/// store and listens on the reserved sync channel, so restarted nodes
/// recover their prefix and converge with the survivors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    /// Crash events; at most one per node, nodes disjoint from `byzantine`.
    pub crashes: Vec<CrashEvent>,
}

/// A consensus-ordered membership change: from `from_epoch` on, the
/// genesis members inject the listed join/leave ops into their proposals
/// as reserved-class transactions. Whatever epoch `e` the ops commit in,
/// the change activates at `e + ACTIVATION_DELAY`, after the old
/// committee's canonical dealers have reshared the threshold keys to the
/// new committee — so the simulated nodes cover the genesis committee
/// *and* every joiner, and the run only completes once all of them hold
/// the agreed chain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Epoch from which the ops enter proposals. They commit together as
    /// one configuration change.
    pub from_epoch: u64,
    /// The membership operations of the change.
    pub ops: Vec<MembershipOp>,
}

/// Full description of one testbed experiment.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Protocol deployment under test.
    pub protocol: Protocol,
    /// Nodes in a single-hop run; nodes *per cluster* in multi-hop.
    pub n: usize,
    /// Epochs to run.
    pub epochs: u64,
    /// Transaction workload.
    pub workload: Workload,
    /// Curve deployments.
    pub suite: CryptoSuite,
    /// Simulation seed.
    pub seed: u64,
    /// Frame-loss model.
    pub loss: LossModel,
    /// Radio parameters.
    pub radio: RadioParams,
    /// Medium-access parameters.
    pub csma: CsmaParams,
    /// DMA delivery model.
    pub dma: DmaParams,
    /// Adversarial delivery scheduling.
    pub adversary: AdversaryConfig,
    /// `Some` = worst-case delivery scheduler: an active adversary that
    /// inspects each deliverable frame and holds it back within a hard
    /// per-delivery budget (see [`wbft_wireless::sched`]). Built by
    /// [`crate::fuzz::build_scheduler`], which also handles the
    /// protocol-aware policies the wireless layer cannot decode.
    pub sched: Option<SchedConfig>,
    /// Byzantine nodes: `(node id, behaviour)`. Single-hop only.
    pub byzantine: Vec<(usize, ByzantineMode)>,
    /// Simulated-time budget.
    pub deadline: SimDuration,
    /// `Some(m)` = multi-hop with `m` clusters of `n` nodes each.
    pub clusters: Option<usize>,
    /// `Some` = live-service run: epochs pull proposals from client-fed
    /// mempools under an open-loop arrival schedule instead of the
    /// pre-seeded workload, and the report gains a [`ServiceReport`]
    /// (single-hop only; `epochs` is ignored in favour of the service's
    /// `max_epochs`).
    pub service: Option<ServiceConfig>,
    /// Pipeline depth `W`: how many epochs keep their dissemination in
    /// flight while earlier epochs finish agreement. `1` (the default) is
    /// the strictly sequential engine; absent from the JSON encoding at 1
    /// so pre-pipelining configs keep their exact bytes. Single-hop only.
    pub pipeline_depth: u64,
    /// `Some` = crash/churn schedule: nodes journal commits durably, the
    /// listed nodes are killed and restarted at the scheduled times, and
    /// the run only completes once the restarted nodes have recovered and
    /// caught up. Absent from the JSON encoding when `None` so pre-churn
    /// configs keep their exact bytes. Single-hop, non-service only.
    pub crash: Option<CrashPlan>,
    /// `Some` = dynamic-membership schedule: join/leave ops ride the
    /// ordered transaction path, quorum math follows the chain-derived
    /// committee view, and threshold keys are reshared to the new
    /// committee before activation. Absent from the JSON encoding when
    /// `None` so pre-membership configs keep their exact bytes.
    /// Single-hop, non-service, depth-1, HoneyBadger-family only.
    pub churn: Option<ChurnPlan>,
}

impl TestbedConfig {
    /// The paper's single-hop setting: 4 nodes, LoRa radio, light suite.
    pub fn single_hop(protocol: Protocol) -> Self {
        TestbedConfig {
            protocol,
            n: 4,
            epochs: 2,
            workload: Workload { batch_size: 32, tx_bytes: 16, seed: 1 },
            suite: CryptoSuite::light(),
            seed: 7,
            loss: LossModel::None,
            radio: RadioParams::lora_sf7(),
            csma: CsmaParams::lora_class(),
            dma: DmaParams::aligned(),
            adversary: AdversaryConfig::benign(),
            sched: None,
            byzantine: Vec::new(),
            deadline: SimDuration::from_secs(3_600),
            clusters: None,
            service: None,
            pipeline_depth: 1,
            crash: None,
            churn: None,
        }
    }

    /// The paper's multi-hop setting: 16 nodes in 4 clusters of 4.
    pub fn multi_hop(protocol: Protocol) -> Self {
        TestbedConfig { clusters: Some(4), ..Self::single_hop(protocol) }
    }
}

/// Measured outcome of one run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// All honest nodes finished every epoch before the deadline.
    pub completed: bool,
    /// Simulated time at completion (or deadline).
    pub elapsed: SimDuration,
    /// Per-epoch latency: slowest honest node's decision time for the
    /// epoch, minus the previous epoch's.
    pub epoch_latencies: Vec<SimDuration>,
    /// Mean of `epoch_latencies` in seconds.
    pub mean_latency_s: f64,
    /// Committed transactions per minute of simulated time.
    pub throughput_tpm: f64,
    /// Total transactions committed (node 0's chain; multi-hop: global).
    pub total_txs: u64,
    /// Mean channel accesses per node — the Table I statistic.
    pub channel_accesses_per_node: f64,
    /// Nominal bytes transmitted.
    pub bytes_on_air: u64,
    /// Medium collision events.
    pub collisions: u64,
    /// Full per-node simulator counters (airtime, losses, CPU time) for
    /// scriptable figure regeneration from the JSON reports.
    pub metrics: Metrics,
    /// Service-mode statistics: submission/backpressure counters and
    /// per-transaction commit-latency percentiles. `None` on fixed-epoch
    /// runs (and absent from their JSON, keeping them byte-identical to
    /// pre-service reports).
    pub service: Option<ServiceReport>,
}

// Pure aggregation step shared by the single- and multi-hop simulator
// paths and the UDP runner (`netrun`).
pub(crate) fn finish_report(
    completed: bool,
    elapsed: SimDuration,
    decision_times: Vec<Vec<SimTime>>,
    total_txs: u64,
    metrics: Metrics,
    epochs: u64,
) -> RunReport {
    // Per-epoch latency: max over honest nodes, differenced between epochs.
    let mut epoch_latencies = Vec::new();
    let mut prev = SimTime::ZERO;
    for e in 0..epochs as usize {
        let slowest = decision_times
            .iter()
            .filter_map(|times| times.get(e))
            .max()
            .copied();
        match slowest {
            Some(t) => {
                epoch_latencies.push(t.saturating_since(prev));
                prev = t;
            }
            None => break,
        }
    }
    let mean_latency_s = if epoch_latencies.is_empty() {
        f64::NAN
    } else {
        epoch_latencies.iter().map(|d| d.as_secs_f64()).sum::<f64>()
            / epoch_latencies.len() as f64
    };
    let minutes = elapsed.as_secs_f64() / 60.0;
    let throughput_tpm = if minutes > 0.0 { total_txs as f64 / minutes } else { 0.0 };
    RunReport {
        completed,
        elapsed,
        epoch_latencies,
        mean_latency_s,
        throughput_tpm,
        total_txs,
        channel_accesses_per_node: metrics.mean_channel_accesses(),
        bytes_on_air: metrics.total_bytes_sent(),
        collisions: metrics.collisions,
        metrics,
        service: None,
    }
}

/// Checks a config describes a simulable scenario: the loss model must
/// leave eventual delivery intact, the adversary must be honest about its
/// delay bound, and any scheduler config must be well-formed. Panics
/// loudly — a scenario that breaks the model's standing assumptions would
/// produce a report whose correctness claims are vacuous.
pub fn validate(cfg: &TestbedConfig) {
    if let Err(e) = cfg.loss.validate() {
        panic!("invalid loss config: {e}");
    }
    if let Err(e) = cfg.adversary.validate() {
        panic!("invalid adversary config: {e}");
    }
    if let Some(sched) = &cfg.sched {
        if let Err(e) = sched.validate() {
            panic!("invalid scheduler config: {e}");
        }
    }
    if cfg.pipeline_depth == 0 {
        panic!("invalid pipeline depth: 0 (W >= 1; W = 1 is sequential)");
    }
    if cfg.clusters.is_some() && cfg.pipeline_depth != 1 {
        panic!("pipelined epochs are single-hop only (clustered pipelining is a follow-on)");
    }
    if let Some(plan) = &cfg.crash {
        if cfg.clusters.is_some() {
            panic!("crash plans are single-hop only");
        }
        if cfg.service.is_some() {
            panic!("crash plans do not compose with service mode (follow-on)");
        }
        if plan.crashes.is_empty() {
            panic!("crash plan has no events (use crash: None for no churn)");
        }
        let deadline_us = cfg.deadline.as_micros();
        let mut seen: Vec<usize> = Vec::new();
        for ev in &plan.crashes {
            if ev.node >= cfg.n {
                panic!("crash event names node {} but n = {}", ev.node, cfg.n);
            }
            if ev.restart_us <= ev.at_us {
                panic!("crash of node {} restarts at {}us, not after {}us", ev.node, ev.restart_us, ev.at_us);
            }
            if ev.restart_us >= deadline_us {
                panic!("crash of node {} restarts after the {}us deadline", ev.node, deadline_us);
            }
            if cfg.byzantine.iter().any(|(b, _)| *b == ev.node) {
                panic!("node {} is both Byzantine and crash-scheduled", ev.node);
            }
            if seen.contains(&ev.node) {
                panic!("node {} crashes more than once (one event per node)", ev.node);
            }
            seen.push(ev.node);
        }
        // A down node is indistinguishable from a silent faulty one, so
        // crashed + Byzantine together must stay within the f the quorum
        // sizes tolerate or the liveness claim is vacuous.
        let f = cfg.n.saturating_sub(1) / 3;
        if seen.len() + cfg.byzantine.len() > f {
            panic!(
                "{} crashed + {} Byzantine nodes exceed f = {} for n = {}",
                seen.len(),
                cfg.byzantine.len(),
                f,
                cfg.n
            );
        }
    }
    if let Some(plan) = &cfg.churn {
        if cfg.clusters.is_some() {
            panic!("churn plans are single-hop only (clustered churn is a follow-on)");
        }
        if cfg.service.is_some() {
            panic!("churn plans do not compose with service mode (follow-on)");
        }
        if cfg.pipeline_depth != 1 {
            panic!("churn plans require pipeline depth 1 (pipelined churn is a follow-on)");
        }
        if !cfg.byzantine.is_empty() {
            panic!("churn plans do not compose with Byzantine nodes (follow-on)");
        }
        if cfg.crash.is_some() {
            panic!("churn plans do not compose with crash plans (follow-on)");
        }
        if !cfg.protocol.supports_churn() {
            panic!(
                "dynamic membership is HoneyBadger-family only for now \
                 (Dumbo churn is a follow-on)"
            );
        }
        if plan.ops.is_empty() {
            panic!("churn plan has no ops (use churn: None for a static committee)");
        }
        for (i, op) in plan.ops.iter().enumerate() {
            if plan.ops[..i].contains(op) {
                panic!("churn plan repeats {op}");
            }
        }
        let mut join_ids: Vec<usize> = Vec::new();
        let mut leaves = 0usize;
        for op in &plan.ops {
            match op {
                MembershipOp::Join(id) => {
                    if (*id as usize) < cfg.n {
                        panic!("churn {op} names a genesis member (ids below n = {})", cfg.n);
                    }
                    join_ids.push(*id as usize);
                }
                MembershipOp::Leave(id) => {
                    if (*id as usize) >= cfg.n {
                        panic!("churn {op} names a node outside the genesis committee (n = {})", cfg.n);
                    }
                    leaves += 1;
                }
            }
        }
        // Joins must use contiguous fresh ids: every simulated node has to
        // end up a member eventually, or the run can never complete (a
        // dealt-but-never-joining node would idle at the stop forever).
        join_ids.sort_unstable();
        for (k, id) in join_ids.iter().enumerate() {
            if *id != cfg.n + k {
                panic!(
                    "churn joins must use contiguous fresh ids from n = {} (got join({id}))",
                    cfg.n
                );
            }
        }
        let new_n = cfg.n + join_ids.len() - leaves;
        if new_n < 4 || !(new_n - 1).is_multiple_of(3) {
            panic!("churn plan leaves an invalid committee size {new_n} (need 3f+1 >= 4)");
        }
        // The change commits no earlier than `from_epoch` and activates
        // ACTIVATION_DELAY epochs later; at least one epoch must run under
        // the new committee or the plan is dead weight.
        if plan.from_epoch + ACTIVATION_DELAY >= cfg.epochs {
            panic!(
                "churn from epoch {} cannot activate within {} epochs \
                 (activation = commit + {ACTIVATION_DELAY})",
                plan.from_epoch, cfg.epochs
            );
        }
    }
}

/// Executes one experiment.
pub fn run(cfg: &TestbedConfig) -> RunReport {
    assert!(
        cfg.service.is_none() || cfg.clusters.is_none(),
        "service runs are single-hop only (clustered service is a follow-on)"
    );
    validate(cfg);
    match (cfg.clusters, &cfg.service) {
        (Some(m), _) => run_multi_hop(cfg, m),
        (None, Some(svc)) => run_service_single_hop(cfg, svc),
        (None, None) if cfg.churn.is_some() => run_single_hop_with_churn(cfg),
        (None, None) if cfg.crash.is_some() => run_single_hop_with_crashes(cfg),
        (None, None) => run_single_hop(cfg),
    }
}

/// Installs the configured delivery scheduler, if any.
fn install_scheduler<B: wbft_wireless::NodeBehavior>(cfg: &TestbedConfig, sim: &mut Simulator<B>) {
    if let Some(sched) = &cfg.sched {
        sim.set_scheduler(crate::fuzz::build_scheduler(sched));
    }
}

fn sim_config(cfg: &TestbedConfig) -> SimConfig {
    SimConfig {
        radio: cfg.radio,
        csma: cfg.csma,
        dma: cfg.dma,
        loss: cfg.loss.clone(),
        adversary: cfg.adversary.clone(),
        seed: cfg.seed,
    }
}

/// Deals the cryptographic identities of a churn run. Node *identity* is
/// static — all `n_total` nodes (genesis members and future joiners alike)
/// hold a packet keypair and everyone's verification keys from the start;
/// *committee membership* is what changes at runtime. The threshold deals
/// are sized to the `n_genesis`-node genesis committee: genesis members
/// get real secret shares, while joiners (ids `n_genesis..`) get the
/// genesis *public* sets — they need them to verify certificates on the
/// chain they bootstrap — plus placeholder zero secret shares at their own
/// index. A placeholder share used before the resharing ceremony hands the
/// joiner real shares produces shares that fail verification loudly
/// instead of silently combining into garbage.
pub fn deal_churn_crypto(
    n_genesis: usize,
    n_total: usize,
    suite: CryptoSuite,
    rng: &mut impl rand::RngCore,
) -> Vec<wbft_components::NodeCrypto> {
    use wbft_crypto::schnorr::{KeyPair, PublicKey};
    use wbft_crypto::{Scalar, ShareIndex};
    assert!(
        n_genesis >= 4 && (n_genesis - 1).is_multiple_of(3),
        "need genesis n = 3f+1 >= 4, got {n_genesis}"
    );
    assert!(n_total >= n_genesis, "total node count below the genesis committee");
    let f = (n_genesis - 1) / 3;
    let keypairs: Vec<KeyPair> =
        (0..n_total).map(|_| KeyPair::generate(suite.ecdsa, rng)).collect();
    let peer_keys: Vec<PublicKey> = keypairs.iter().map(|k| k.public()).collect();
    let (prbc_pub, prbc_secs) = wbft_crypto::thresh_sig::deal(n_genesis, f, suite.threshold, rng);
    let (cbc_pub, cbc_secs) =
        wbft_crypto::thresh_sig::deal(n_genesis, 2 * f, suite.threshold, rng);
    let (coin_pub, coin_secs) =
        wbft_crypto::thresh_coin::deal_coin(n_genesis, f, suite.threshold, rng);
    let (enc_pub, enc_secs) = wbft_crypto::thresh_enc::deal_enc(n_genesis, f, suite.threshold, rng);
    (0..n_total)
        .map(|me| {
            let idx = ShareIndex::for_node(me);
            let (prbc_sec, cbc_sec, coin_sec, enc_sec) = if me < n_genesis {
                (
                    prbc_secs[me].clone(),
                    cbc_secs[me].clone(),
                    coin_secs[me].clone(),
                    enc_secs[me].clone(),
                )
            } else {
                (
                    wbft_crypto::thresh_sig::SecretKeyShare::from_parts(
                        idx,
                        Scalar::ZERO,
                        suite.threshold,
                    ),
                    wbft_crypto::thresh_sig::SecretKeyShare::from_parts(
                        idx,
                        Scalar::ZERO,
                        suite.threshold,
                    ),
                    wbft_crypto::thresh_coin::CoinSecretShare::from_parts(idx, Scalar::ZERO),
                    wbft_crypto::thresh_enc::EncSecretShare::from_parts(idx, Scalar::ZERO),
                )
            };
            wbft_components::NodeCrypto {
                me,
                suite,
                keypair: keypairs[me].clone(),
                peer_keys: peer_keys.clone(),
                key_epoch: 0,
                prbc_pub: prbc_pub.clone(),
                prbc_sec,
                cbc_pub: cbc_pub.clone(),
                cbc_sec,
                coin_pub: coin_pub.clone(),
                coin_sec,
                enc_pub: enc_pub.clone(),
                enc_sec,
            }
        })
        .collect()
}

/// Builds the single-hop simulator and honesty mask shared by the standard
/// run path and the fuzz harness's observed runs.
pub(crate) fn build_single_hop(
    cfg: &TestbedConfig,
) -> (Simulator<ProtocolNode<Box<dyn Engine>>>, Vec<bool>) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xdea1);
    let crypto = deal_node_crypto(cfg.n, cfg.suite, &mut rng);
    let honest: Vec<bool> = (0..cfg.n)
        .map(|i| !cfg.byzantine.iter().any(|(b, _)| *b == i))
        .collect();
    let behaviors: Vec<_> = crypto
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            let engine = cfg.protocol.engine_at_depth(
                c.clone(),
                cfg.workload.clone(),
                cfg.epochs,
                cfg.pipeline_depth,
            );
            let engine: Box<dyn Engine> =
                match cfg.byzantine.iter().find(|(b, _)| *b == i) {
                    Some((_, mode)) => Box::new(ByzantineEngine::new(engine, *mode)),
                    None => engine,
                };
            ProtocolNode::new(engine, c, ChannelId(0))
        })
        .collect();
    let mut sim = Simulator::new(sim_config(cfg), Topology::single_hop(cfg.n), behaviors);
    install_scheduler(cfg, &mut sim);
    (sim, honest)
}

fn run_single_hop(cfg: &TestbedConfig) -> RunReport {
    let (mut sim, honest) = build_single_hop(cfg);
    let deadline = SimTime::ZERO + cfg.deadline;
    let completed = sim.run_until_pred(deadline, |s| {
        s.behaviors().all(|(id, b)| !honest[id.index()] || b.is_done())
    });
    let elapsed = sim.now().saturating_since(SimTime::ZERO);
    let decision_times: Vec<Vec<SimTime>> = sim
        .behaviors()
        .filter(|(id, _)| honest[id.index()])
        .map(|(_, b)| b.clock().completed.clone())
        .collect();
    let reference = sim
        .behaviors()
        .find(|(id, _)| honest[id.index()])
        .map(|(_, b)| b.blocks().to_vec())
        .unwrap_or_default();
    let total_txs: u64 = reference.iter().map(|b| b.txs.len() as u64).sum();
    // Cross-node agreement is a hard invariant — check it on every run.
    for (id, b) in sim.behaviors() {
        if honest[id.index()] && completed {
            assert_eq!(b.blocks(), &reference[..], "agreement violated at {id}");
        }
    }
    finish_report(completed, elapsed, decision_times, total_txs, sim.metrics().clone(), cfg.epochs)
}

/// Builds one journaled, sync-capable node for a crash run. `recover`
/// replays whatever the durable store holds before the engine starts, so
/// the same constructor serves both cold boot (empty store) and restart.
fn build_crash_node(
    cfg: &TestbedConfig,
    i: usize,
    crypto: wbft_components::NodeCrypto,
    store: &SharedMem,
) -> ProtocolNode<Box<dyn Engine>> {
    let (journal, blocks) = BlockJournal::open(Box::new(store.clone()))
        .expect("durable journal recovery failed");
    let recovered = blocks.len();
    let mut engine = cfg.protocol.engine_at_depth(
        crypto.clone(),
        cfg.workload.clone(),
        cfg.epochs,
        cfg.pipeline_depth,
    );
    engine.restore_chain(blocks);
    let engine: Box<dyn Engine> = match cfg.byzantine.iter().find(|(b, _)| *b == i) {
        Some((_, mode)) => Box::new(ByzantineEngine::new(engine, *mode)),
        None => engine,
    };
    ProtocolNode::new(engine, crypto, ChannelId(0))
        .with_recovered(recovered)
        .with_journal(journal)
        .with_sync(ChannelId(SYNC_CHANNEL))
}

/// Everything a crash run's restart actions need beyond the simulator
/// itself: the honest mask, the durable per-node stores, and the dealt
/// crypto (restarts re-instantiate a node with its original identity).
pub(crate) type CrashSetup = (
    Simulator<ProtocolNode<Box<dyn Engine>>>,
    Vec<bool>,
    Vec<SharedMem>,
    Vec<wbft_components::NodeCrypto>,
);

/// Builds the journaled, sync-capable single-hop simulator for a crash
/// run, plus the durable stores and dealt crypto the restart actions need.
/// Shared by the standard crash path and the fuzz harness.
pub(crate) fn build_crash_single_hop(cfg: &TestbedConfig) -> CrashSetup {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xdea1);
    let crypto = deal_node_crypto(cfg.n, cfg.suite, &mut rng);
    let honest: Vec<bool> = (0..cfg.n)
        .map(|i| !cfg.byzantine.iter().any(|(b, _)| *b == i))
        .collect();
    // The durable stores outlive the crashed incarnations — they are the
    // sim's stand-in for each node's disk.
    let stores: Vec<SharedMem> = (0..cfg.n).map(|_| SharedMem::new()).collect();
    let behaviors: Vec<_> = crypto
        .iter()
        .enumerate()
        .map(|(i, c)| build_crash_node(cfg, i, c.clone(), &stores[i]))
        .collect();
    let mut topo = Topology::single_hop(cfg.n);
    for i in 0..cfg.n {
        topo.join_channel(NodeId(i as u16), ChannelId(SYNC_CHANNEL));
    }
    let mut sim = Simulator::new(sim_config(cfg), topo, behaviors);
    install_scheduler(cfg, &mut sim);
    (sim, honest, stores, crypto)
}

/// Phased execution of the crash plan: advances simulated time to each
/// crash/restart in order and performs the action. On return every node is
/// up again and the caller runs the sim to completion.
pub(crate) fn apply_crash_timeline(
    cfg: &TestbedConfig,
    sim: &mut Simulator<ProtocolNode<Box<dyn Engine>>>,
    crypto: &[wbft_components::NodeCrypto],
    stores: &[SharedMem],
) {
    enum Action {
        Crash(usize),
        Restart(usize),
    }
    let Some(plan) = &cfg.crash else { return };
    let mut actions: Vec<(u64, Action)> = Vec::new();
    for ev in &plan.crashes {
        actions.push((ev.at_us, Action::Crash(ev.node)));
        actions.push((ev.restart_us, Action::Restart(ev.node)));
    }
    actions.sort_by_key(|(t, _)| *t);
    for (t, action) in actions {
        sim.run_until(SimTime::ZERO + SimDuration::from_micros(t));
        match action {
            Action::Crash(i) => sim.crash_node(NodeId(i as u16)),
            Action::Restart(i) => {
                let node = build_crash_node(cfg, i, crypto[i].clone(), &stores[i]);
                sim.restart_node(NodeId(i as u16), node);
            }
        }
    }
}

/// [`run_single_hop`] with the crash/churn axis engaged: every node
/// journals commits to an in-memory durable store and listens on the
/// reserved sync channel; the plan's nodes are crashed (volatile state
/// dropped, in-flight frames cut) and restarted (journal replayed, chain
/// caught up via anti-entropy) at their scheduled times.
fn run_single_hop_with_crashes(cfg: &TestbedConfig) -> RunReport {
    let plan = cfg.crash.clone().expect("crash path requires a plan");
    let (mut sim, honest, stores, crypto) = build_crash_single_hop(cfg);
    let deadline = SimTime::ZERO + cfg.deadline;
    apply_crash_timeline(cfg, &mut sim, &crypto, &stores);
    // Completion demands the restarted nodes too: a node that recovered
    // its journal but never caught up keeps the run from completing.
    let completed = sim.run_until_pred(deadline, |s| {
        s.behaviors().all(|(id, b)| !honest[id.index()] || b.is_done())
    });
    let elapsed = sim.now().saturating_since(SimTime::ZERO);
    let decision_times: Vec<Vec<SimTime>> = sim
        .behaviors()
        .filter(|(id, _)| honest[id.index()])
        .map(|(_, b)| b.clock().completed.clone())
        .collect();
    let never_crashed_honest = |i: usize| -> bool {
        honest[i] && !plan.crashes.iter().any(|ev| ev.node == i)
    };
    let reference = sim
        .behaviors()
        .find(|(id, _)| never_crashed_honest(id.index()))
        .map(|(_, b)| b.blocks().to_vec())
        .unwrap_or_default();
    let total_txs: u64 = reference.iter().map(|b| b.txs.len() as u64).sum();
    for (id, b) in sim.behaviors() {
        if honest[id.index()] {
            // Prefix agreement always; level chains once completed — a
            // restarted node must have converged with the survivors.
            let common = b.blocks().len().min(reference.len());
            assert_eq!(&b.blocks()[..common], &reference[..common], "agreement violated at {id}");
            if completed {
                assert_eq!(b.blocks().len(), reference.len(), "chains not level at {id}");
            }
        }
    }
    // The durable stores must themselves replay to the agreed chain — the
    // journal is the recovery story, so check it, not just the engines.
    for ev in &plan.crashes {
        let (_, blocks) = BlockJournal::open(Box::new(stores[ev.node].clone()))
            .expect("post-run journal replay failed");
        let common = blocks.len().min(reference.len());
        assert_eq!(
            crate::recovery::chain_digests(&blocks[..common]),
            crate::recovery::chain_digests(&reference[..common]),
            "journal of node {} diverged from the agreed chain",
            ev.node
        );
    }
    finish_report(completed, elapsed, decision_times, total_txs, sim.metrics().clone(), cfg.epochs)
}

/// Builds the single-hop simulator for a dynamic-membership run: all
/// `n_total` nodes (genesis members plus scheduled joiners) from the
/// start, every one sync-capable and membership-aware. The honesty mask is
/// all-true (churn plans are honest-only). Shared by the standard churn
/// path and the fuzz harness.
pub(crate) fn build_churn_single_hop(
    cfg: &TestbedConfig,
) -> (Simulator<ProtocolNode<Box<dyn Engine>>>, Vec<bool>) {
    use rand::SeedableRng;
    let plan = cfg.churn.clone().expect("churn path requires a plan");
    let n_total = plan
        .ops
        .iter()
        .filter_map(|op| match op {
            MembershipOp::Join(id) => Some(*id as usize + 1),
            MembershipOp::Leave(_) => None,
        })
        .max()
        .unwrap_or(cfg.n)
        .max(cfg.n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xdea1);
    let crypto = deal_churn_crypto(cfg.n, n_total, cfg.suite, &mut rng);
    let behaviors: Vec<_> = crypto
        .into_iter()
        .map(|c| {
            let mut ctl = MembershipCtl::new(c.clone(), cfg.n);
            // Genesis members sponsor the change; joiners cannot propose
            // until they are members, so they schedule nothing.
            if c.me < cfg.n {
                for op in &plan.ops {
                    ctl.schedule_op(plan.from_epoch, *op);
                }
            }
            let engine =
                cfg.protocol.churn_engine(c.clone(), ctl, cfg.workload.clone(), cfg.epochs);
            ProtocolNode::new(engine, c, ChannelId(0)).with_sync(ChannelId(SYNC_CHANNEL))
        })
        .collect();
    let mut topo = Topology::single_hop(n_total);
    for i in 0..n_total {
        topo.join_channel(NodeId(i as u16), ChannelId(SYNC_CHANNEL));
    }
    let mut sim = Simulator::new(sim_config(cfg), topo, behaviors);
    install_scheduler(cfg, &mut sim);
    let honest = vec![true; n_total];
    (sim, honest)
}

/// [`run_single_hop`] with the dynamic-membership axis engaged. All
/// `n_total` nodes (genesis members plus scheduled joiners) are simulated
/// from the start: joiners idle until they bootstrap the chain over the
/// anti-entropy sync channel, genesis members inject the plan's ops into
/// their proposals, and once the ops commit the old committee reshare's
/// canonical dealers hand the threshold keys to the new committee before
/// it activates. Completion requires every node — leavers and joiners
/// included — to hold the full agreed chain.
fn run_single_hop_with_churn(cfg: &TestbedConfig) -> RunReport {
    let plan = cfg.churn.clone().expect("churn path requires a plan");
    let (mut sim, _) = build_churn_single_hop(cfg);
    let deadline = SimTime::ZERO + cfg.deadline;
    // Every node gates completion: leavers and joiners finish by adopting
    // the agreed chain over the sync channel.
    let completed = sim.run_until_pred(deadline, |s| s.behaviors().all(|(_, b)| b.is_done()));
    let elapsed = sim.now().saturating_since(SimTime::ZERO);
    let decision_times: Vec<Vec<SimTime>> =
        sim.behaviors().map(|(_, b)| b.clock().completed.clone()).collect();
    // Reference chain: a genesis member that never leaves — it follows the
    // whole run natively, before and after activation.
    let survives = |i: usize| -> bool {
        i < cfg.n && !plan.ops.contains(&MembershipOp::Leave(i as u16))
    };
    let reference = sim
        .behaviors()
        .find(|(id, _)| survives(id.index()))
        .map(|(_, b)| b.blocks().to_vec())
        .unwrap_or_default();
    let total_txs: u64 = reference.iter().map(|b| b.txs.len() as u64).sum();
    for (id, b) in sim.behaviors() {
        // Prefix agreement always; level chains once completed — the
        // honest digest chains of old and new members alike must agree as
        // a common prefix of the same ledger.
        let common = b.blocks().len().min(reference.len());
        assert_eq!(&b.blocks()[..common], &reference[..common], "agreement violated at {id}");
        if completed {
            assert_eq!(b.blocks().len(), reference.len(), "chains not level at {id}");
        }
    }
    if completed {
        // The plan must actually have bitten inside the run: every
        // scheduled op sits committed in the agreed chain.
        let committed: Vec<MembershipOp> = reference
            .iter()
            .flat_map(|b| b.txs.iter().filter_map(|tx| wbft_membership::decode_op(tx.as_ref())))
            .collect();
        for op in &plan.ops {
            assert!(committed.contains(op), "churn op {op} never committed");
        }
    }
    finish_report(completed, elapsed, decision_times, total_txs, sim.metrics().clone(), cfg.epochs)
}

/// The live-service counterpart of [`run_single_hop`]: every node owns a
/// [`ConsensusHandle`] whose mempool is fed by the deterministic open-loop
/// arrival schedule (injected through driver timers), epochs pull
/// proposals from the pool, and the run completes when every honest node's
/// submissions are resolved and all honest chains are level. The report
/// carries the standard figures plus a [`ServiceReport`] with per-tx
/// commit-latency percentiles and backpressure counters.
fn run_service_single_hop(cfg: &TestbedConfig, svc: &ServiceConfig) -> RunReport {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xdea1);
    let crypto = deal_node_crypto(cfg.n, cfg.suite, &mut rng);
    let honest: Vec<bool> = (0..cfg.n)
        .map(|i| !cfg.byzantine.iter().any(|(b, _)| *b == i))
        .collect();
    let handles: Vec<ConsensusHandle> =
        (0..cfg.n).map(|_| ConsensusHandle::new(svc.mempool_capacity)).collect();
    let behaviors: Vec<_> = crypto
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            let engine = cfg.protocol.service_engine_at_depth(
                c.clone(),
                handles[i].clone(),
                cfg.workload.batch_size,
                svc.max_epochs,
                cfg.pipeline_depth,
            );
            let engine: Box<dyn Engine> =
                match cfg.byzantine.iter().find(|(b, _)| *b == i) {
                    Some((_, mode)) => Box::new(ByzantineEngine::new(engine, *mode)),
                    None => engine,
                };
            ProtocolNode::new(engine, c, ChannelId(0))
                .with_service(handles[i].clone(), svc.arrivals.schedule(i))
        })
        .collect();
    let mut sim = Simulator::new(sim_config(cfg), Topology::single_hop(cfg.n), behaviors);
    install_scheduler(cfg, &mut sim);
    let deadline = SimTime::ZERO + cfg.deadline;
    let expected = svc.arrivals.per_node;
    let completed = sim.run_until_pred(deadline, |s| {
        // Every honest node saw its full arrival schedule and resolved
        // every admitted transaction into a block...
        let drained = handles
            .iter()
            .enumerate()
            .filter(|(i, _)| honest[*i])
            .all(|(_, h)| h.submissions() == expected && h.drained());
        // ...and the honest chains are level (no node still waiting on the
        // final commit), so the agreement check below sees whole chains.
        drained && {
            let mut lens =
                s.behaviors().filter(|(id, _)| honest[id.index()]).map(|(_, b)| b.blocks().len());
            let first = lens.next().unwrap_or(0);
            lens.all(|l| l == first)
        }
    });
    let elapsed = sim.now().saturating_since(SimTime::ZERO);
    let decision_times: Vec<Vec<SimTime>> = sim
        .behaviors()
        .filter(|(id, _)| honest[id.index()])
        .map(|(_, b)| b.clock().completed.clone())
        .collect();
    let reference = sim
        .behaviors()
        .find(|(id, _)| honest[id.index()])
        .map(|(_, b)| b.blocks().to_vec())
        .unwrap_or_default();
    let total_txs: u64 = reference.iter().map(|b| b.txs.len() as u64).sum();
    // Prefix agreement is the BFT invariant; when the run completed the
    // predicate already levelled the chains, so prefixes are whole chains.
    for (id, b) in sim.behaviors() {
        if honest[id.index()] {
            let common = b.blocks().len().min(reference.len());
            assert_eq!(
                &b.blocks()[..common],
                &reference[..common],
                "agreement violated at {id}"
            );
            if completed {
                assert_eq!(b.blocks().len(), reference.len(), "chains not level at {id}");
            }
        }
    }
    let stats: Vec<ServiceStats> = handles
        .iter()
        .enumerate()
        .filter(|(i, _)| honest[*i])
        .map(|(_, h)| h.stats())
        .collect();
    let mut report = finish_report(
        completed,
        elapsed,
        decision_times,
        total_txs,
        sim.metrics().clone(),
        reference.len() as u64,
    );
    report.service = Some(ServiceReport::aggregate(&stats));
    report
}

fn run_multi_hop(cfg: &TestbedConfig, m: usize) -> RunReport {
    use rand::SeedableRng;
    assert!(m >= 4, "global tier needs at least 4 clusters (3f+1)");
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xc1u64);
    // Per-cluster key sets plus one global set among cluster slots.
    let global_crypto = deal_node_crypto(m, cfg.suite, &mut rng);
    let mut behaviors = Vec::with_capacity(m * cfg.n);
    for (cluster, global) in global_crypto.into_iter().enumerate() {
        let local_crypto = deal_node_crypto(cfg.n, cfg.suite, &mut rng);
        for (member, c) in local_crypto.into_iter().enumerate() {
            behaviors.push(ClusterNode::new(
                cluster,
                member,
                cfg.n,
                cfg.protocol,
                cfg.workload.clone(),
                cfg.epochs,
                c,
                global.clone(),
            ));
        }
    }
    let topo = Topology::clustered(m, cfg.n);
    let mut sim = Simulator::new(sim_config(cfg), topo, behaviors);
    install_scheduler(cfg, &mut sim);
    let deadline = SimTime::ZERO + cfg.deadline;
    let completed = sim.run_until_pred(deadline, |s| s.behaviors().all(|(_, b)| b.is_done()));
    let elapsed = sim.now().saturating_since(SimTime::ZERO);
    let decision_times: Vec<Vec<SimTime>> =
        sim.behaviors().map(|(_, b)| b.decided_at.clone()).collect();
    let total_txs = sim.behavior(NodeId(0)).global_tx_total();
    finish_report(completed, elapsed, decision_times, total_txs, sim.metrics().clone(), cfg.epochs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hop_beat_reports_sane_numbers() {
        let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
        cfg.epochs = 1;
        cfg.workload.batch_size = 8;
        let report = run(&cfg);
        assert!(report.completed, "BEAT must finish");
        assert_eq!(report.epoch_latencies.len(), 1);
        assert!(report.mean_latency_s > 1.0, "LoRa consensus cannot be sub-second");
        assert!(report.mean_latency_s < 600.0);
        assert!(report.total_txs > 0);
        assert!(report.throughput_tpm > 0.0);
        assert!(report.channel_accesses_per_node > 0.0);
    }

    #[test]
    fn crash_restart_converges() {
        let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
        cfg.epochs = 2;
        cfg.workload.batch_size = 8;
        cfg.crash = Some(CrashPlan {
            crashes: vec![CrashEvent {
                node: 2,
                at_us: 5_000_000,
                restart_us: 30_000_000,
            }],
        });
        let report = run(&cfg);
        assert!(report.completed, "crash-restart run must converge");
        assert_eq!(report.epoch_latencies.len(), 2);
        assert!(report.total_txs > 0);
    }

    #[test]
    #[should_panic(expected = "exceed f")]
    fn crash_plan_beyond_f_is_rejected() {
        let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
        cfg.crash = Some(CrashPlan {
            crashes: vec![
                CrashEvent { node: 0, at_us: 1, restart_us: 2 },
                CrashEvent { node: 1, at_us: 1, restart_us: 2 },
            ],
        });
        validate(&cfg);
    }

    #[test]
    fn membership_swap_commits_under_new_committee() {
        // The issue's headline scenario: node n joins and node 0 leaves
        // mid-run; the run keeps committing epochs under the new
        // committee's quorum math and every node — the leaver and the
        // joiner included — converges on the same chain.
        let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
        cfg.epochs = 5;
        cfg.workload.batch_size = 8;
        cfg.churn = Some(ChurnPlan {
            from_epoch: 1,
            ops: vec![MembershipOp::Join(4), MembershipOp::Leave(0)],
        });
        let report = run(&cfg);
        assert!(report.completed, "churn run must converge");
        assert_eq!(report.epoch_latencies.len(), 5);
        assert!(report.total_txs > 0);
    }

    #[test]
    #[should_panic(expected = "cannot activate")]
    fn churn_without_activation_room_is_rejected() {
        let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
        // Default epochs = 2: a change from epoch 0 activates at 2 at the
        // earliest, past the stop.
        cfg.churn = Some(ChurnPlan {
            from_epoch: 0,
            ops: vec![MembershipOp::Join(4), MembershipOp::Leave(0)],
        });
        validate(&cfg);
    }

    #[test]
    #[should_panic(expected = "invalid committee size")]
    fn churn_to_invalid_size_is_rejected() {
        let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
        cfg.epochs = 8;
        cfg.churn = Some(ChurnPlan { from_epoch: 1, ops: vec![MembershipOp::Leave(0)] });
        validate(&cfg);
    }

    #[test]
    #[should_panic(expected = "HoneyBadger-family only")]
    fn dumbo_churn_is_rejected() {
        let mut cfg = TestbedConfig::single_hop(Protocol::DumboSc);
        cfg.epochs = 8;
        cfg.churn = Some(ChurnPlan {
            from_epoch: 1,
            ops: vec![MembershipOp::Join(4), MembershipOp::Leave(0)],
        });
        validate(&cfg);
    }

    #[test]
    #[should_panic(expected = "do not compose with crash plans")]
    fn churn_and_crash_together_are_rejected() {
        let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
        cfg.epochs = 8;
        cfg.churn = Some(ChurnPlan {
            from_epoch: 1,
            ops: vec![MembershipOp::Join(4), MembershipOp::Leave(0)],
        });
        cfg.crash = Some(CrashPlan {
            crashes: vec![CrashEvent { node: 1, at_us: 1_000, restart_us: 2_000 }],
        });
        validate(&cfg);
    }

    #[test]
    fn multi_hop_hb_sc_completes() {
        let mut cfg = TestbedConfig::multi_hop(Protocol::HoneyBadgerSc);
        cfg.epochs = 1;
        cfg.workload.batch_size = 8;
        let report = run(&cfg);
        assert!(report.completed, "multi-hop HB-SC must finish");
        // Four clusters contribute: global tx count covers all clusters.
        assert!(report.total_txs >= 4 * 8, "got {}", report.total_txs);
    }
}
