//! JSON serialization of testbed configs and run reports, and the
//! `target/reports/` file layout.
//!
//! Every sweep scenario serializes to one self-contained document —
//! `{"label", "config", "report"}` — so a figure script (or a later
//! session) can regenerate tables without re-running simulations, and the
//! determinism battery can compare serial and parallel executions
//! byte-for-byte. Encoding is deterministic: member order is fixed by the
//! `ToJson` impls and numbers are written exactly (see `wbft_report::json`).

use crate::byzantine::ByzantineMode;
use crate::protocol::Protocol;
use crate::service::{ArrivalSpec, LatencySummary, ServiceConfig, ServiceReport};
use crate::sweep::SweepRun;
use crate::testbed::{ChurnPlan, CrashEvent, CrashPlan, RunReport, TestbedConfig};
use crate::workload::Workload;
use std::io;
use std::path::{Path, PathBuf};
use wbft_membership::MembershipOp;
use wbft_report::{field, member, FromJson, Json, JsonError, ToJson};

/// Decodes an *optional trailing* member: absent means `None`. Service
/// members are encoded only when present, which keeps fixed-epoch
/// documents byte-identical to their pre-service encoding.
fn opt_field<T: FromJson>(j: &Json, key: &str) -> Result<Option<T>, JsonError> {
    match j.get(key) {
        None => Ok(None),
        Some(v) => Ok(Some(T::from_json(v)?)),
    }
}

impl ToJson for Protocol {
    fn to_json(&self) -> Json {
        Json::str(self.slug())
    }
}

impl FromJson for Protocol {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let slug = j.as_str().ok_or_else(|| JsonError("expected protocol slug".into()))?;
        Protocol::from_slug(slug)
            .ok_or_else(|| JsonError(format!("unknown protocol \"{slug}\"")))
    }
}

impl ToJson for ByzantineMode {
    fn to_json(&self) -> Json {
        match self {
            ByzantineMode::Silent => Json::obj([("mode", Json::str("silent"))]),
            ByzantineMode::Crash { after_epoch } => Json::obj([
                ("mode", Json::str("crash")),
                ("after_epoch", Json::u64(*after_epoch)),
            ]),
            ByzantineMode::FlipVotes => Json::obj([("mode", Json::str("flip-votes"))]),
            ByzantineMode::CorruptProposals => {
                Json::obj([("mode", Json::str("corrupt-proposals"))])
            }
        }
    }
}

impl FromJson for ByzantineMode {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match member(j, "mode")?.as_str() {
            Some("silent") => Ok(ByzantineMode::Silent),
            Some("crash") => Ok(ByzantineMode::Crash { after_epoch: field(j, "after_epoch")? }),
            Some("flip-votes") => Ok(ByzantineMode::FlipVotes),
            Some("corrupt-proposals") => Ok(ByzantineMode::CorruptProposals),
            _ => Err(JsonError("unknown byzantine mode".into())),
        }
    }
}

impl ToJson for Workload {
    fn to_json(&self) -> Json {
        Json::obj([
            ("batch_size", self.batch_size.to_json()),
            ("tx_bytes", self.tx_bytes.to_json()),
            ("seed", Json::u64(self.seed)),
        ])
    }
}

impl FromJson for Workload {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Workload {
            batch_size: field(j, "batch_size")?,
            tx_bytes: field(j, "tx_bytes")?,
            seed: field(j, "seed")?,
        })
    }
}

impl ToJson for ArrivalSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("per_node", Json::u64(self.per_node)),
            ("interval_us", Json::u64(self.interval_us)),
            ("tx_bytes", self.tx_bytes.to_json()),
            ("seed", Json::u64(self.seed)),
        ])
    }
}

impl FromJson for ArrivalSpec {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ArrivalSpec {
            per_node: field(j, "per_node")?,
            interval_us: field(j, "interval_us")?,
            tx_bytes: field(j, "tx_bytes")?,
            seed: field(j, "seed")?,
        })
    }
}

impl ToJson for ServiceConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("arrivals", self.arrivals.to_json()),
            ("mempool_capacity", self.mempool_capacity.to_json()),
            ("max_epochs", Json::u64(self.max_epochs)),
        ])
    }
}

impl FromJson for ServiceConfig {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ServiceConfig {
            arrivals: field(j, "arrivals")?,
            mempool_capacity: field(j, "mempool_capacity")?,
            max_epochs: field(j, "max_epochs")?,
        })
    }
}

impl ToJson for LatencySummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::u64(self.count)),
            ("mean_us", Json::f64(self.mean_us)),
            ("p50_us", Json::u64(self.p50_us)),
            ("p90_us", Json::u64(self.p90_us)),
            ("p99_us", Json::u64(self.p99_us)),
            ("max_us", Json::u64(self.max_us)),
        ])
    }
}

impl FromJson for LatencySummary {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(LatencySummary {
            count: field(j, "count")?,
            mean_us: field(j, "mean_us")?,
            p50_us: field(j, "p50_us")?,
            p90_us: field(j, "p90_us")?,
            p99_us: field(j, "p99_us")?,
            max_us: field(j, "max_us")?,
        })
    }
}

impl ToJson for ServiceReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("submitted", Json::u64(self.submitted)),
            ("admitted", Json::u64(self.admitted)),
            ("rejected_dup", Json::u64(self.rejected_dup)),
            ("rejected_full", Json::u64(self.rejected_full)),
            ("requeued", Json::u64(self.requeued)),
            ("peak_occupancy", Json::u64(self.peak_occupancy)),
            ("pending_at_stop", Json::u64(self.pending_at_stop)),
            ("committed_client_txs", Json::u64(self.committed_client_txs)),
            ("latency", self.latency.to_json()),
        ])
    }
}

impl FromJson for ServiceReport {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ServiceReport {
            submitted: field(j, "submitted")?,
            admitted: field(j, "admitted")?,
            rejected_dup: field(j, "rejected_dup")?,
            rejected_full: field(j, "rejected_full")?,
            requeued: field(j, "requeued")?,
            peak_occupancy: field(j, "peak_occupancy")?,
            pending_at_stop: field(j, "pending_at_stop")?,
            committed_client_txs: field(j, "committed_client_txs")?,
            latency: field(j, "latency")?,
        })
    }
}

impl ToJson for CrashEvent {
    fn to_json(&self) -> Json {
        Json::obj([
            ("node", self.node.to_json()),
            ("at_us", Json::u64(self.at_us)),
            ("restart_us", Json::u64(self.restart_us)),
        ])
    }
}

impl FromJson for CrashEvent {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CrashEvent {
            node: field(j, "node")?,
            at_us: field(j, "at_us")?,
            restart_us: field(j, "restart_us")?,
        })
    }
}

impl ToJson for CrashPlan {
    fn to_json(&self) -> Json {
        Json::obj([("crashes", self.crashes.to_json())])
    }
}

impl FromJson for CrashPlan {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CrashPlan { crashes: field(j, "crashes")? })
    }
}

// `MembershipOp` and the codec traits are both foreign to this crate, so
// the op encoding lives in free helpers used by the `ChurnPlan` impls.
fn membership_op_to_json(op: &MembershipOp) -> Json {
    let (kind, node) = match op {
        MembershipOp::Join(n) => ("join", *n),
        MembershipOp::Leave(n) => ("leave", *n),
    };
    Json::obj([("op", Json::str(kind)), ("node", Json::u64(node as u64))])
}

fn membership_op_from_json(j: &Json) -> Result<MembershipOp, JsonError> {
    let node: u64 = field(j, "node")?;
    let node: u16 =
        node.try_into().map_err(|_| JsonError("membership node id out of range".into()))?;
    match member(j, "op")?.as_str() {
        Some("join") => Ok(MembershipOp::Join(node)),
        Some("leave") => Ok(MembershipOp::Leave(node)),
        _ => Err(JsonError("unknown membership op".into())),
    }
}

impl ToJson for ChurnPlan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("from_epoch", Json::u64(self.from_epoch)),
            ("ops", Json::arr(self.ops.iter().map(membership_op_to_json))),
        ])
    }
}

impl FromJson for ChurnPlan {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let ops = member(j, "ops")?
            .as_arr()
            .ok_or_else(|| JsonError("expected ops array".into()))?
            .iter()
            .map(membership_op_from_json)
            .collect::<Result<_, _>>()?;
        Ok(ChurnPlan { from_epoch: field(j, "from_epoch")?, ops })
    }
}

impl ToJson for TestbedConfig {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("protocol", self.protocol.to_json()),
            ("n", self.n.to_json()),
            ("epochs", Json::u64(self.epochs)),
            ("workload", self.workload.to_json()),
            ("suite", self.suite.to_json()),
            ("seed", Json::u64(self.seed)),
            ("loss", self.loss.to_json()),
            ("radio", self.radio.to_json()),
            ("csma", self.csma.to_json()),
            ("dma", self.dma.to_json()),
            ("adversary", self.adversary.to_json()),
            ("byzantine", self.byzantine.to_json()),
            ("deadline_us", self.deadline.to_json()),
            ("clusters", self.clusters.to_json()),
        ];
        // Trailing optional members: absent when unset so configs predating
        // each feature keep their exact byte encoding.
        if let Some(service) = &self.service {
            members.push(("service", service.to_json()));
        }
        if let Some(sched) = &self.sched {
            members.push(("sched", sched.to_json()));
        }
        if self.pipeline_depth != 1 {
            members.push(("pipeline_depth", Json::u64(self.pipeline_depth)));
        }
        if let Some(crash) = &self.crash {
            members.push(("crash", crash.to_json()));
        }
        if let Some(churn) = &self.churn {
            members.push(("churn", churn.to_json()));
        }
        Json::obj(members)
    }
}

impl FromJson for TestbedConfig {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(TestbedConfig {
            protocol: field(j, "protocol")?,
            n: field(j, "n")?,
            epochs: field(j, "epochs")?,
            workload: field(j, "workload")?,
            suite: field(j, "suite")?,
            seed: field(j, "seed")?,
            loss: field(j, "loss")?,
            radio: field(j, "radio")?,
            csma: field(j, "csma")?,
            dma: field(j, "dma")?,
            adversary: field(j, "adversary")?,
            byzantine: field(j, "byzantine")?,
            deadline: field(j, "deadline_us")?,
            clusters: field(j, "clusters")?,
            service: opt_field(j, "service")?,
            sched: opt_field(j, "sched")?,
            pipeline_depth: opt_field::<u64>(j, "pipeline_depth")?.unwrap_or(1),
            crash: opt_field(j, "crash")?,
            churn: opt_field(j, "churn")?,
        })
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("completed", Json::Bool(self.completed)),
            ("elapsed_us", self.elapsed.to_json()),
            ("epoch_latencies_us", self.epoch_latencies.to_json()),
            ("mean_latency_s", Json::f64(self.mean_latency_s)),
            ("throughput_tpm", Json::f64(self.throughput_tpm)),
            ("total_txs", Json::u64(self.total_txs)),
            ("channel_accesses_per_node", Json::f64(self.channel_accesses_per_node)),
            ("bytes_on_air", Json::u64(self.bytes_on_air)),
            ("collisions", Json::u64(self.collisions)),
            ("metrics", self.metrics.to_json()),
        ];
        // Trailing optional member, as in `TestbedConfig`.
        if let Some(service) = &self.service {
            members.push(("service", service.to_json()));
        }
        Json::obj(members)
    }
}

impl FromJson for RunReport {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(RunReport {
            completed: field(j, "completed")?,
            elapsed: field(j, "elapsed_us")?,
            epoch_latencies: field(j, "epoch_latencies_us")?,
            mean_latency_s: field(j, "mean_latency_s")?,
            throughput_tpm: field(j, "throughput_tpm")?,
            total_txs: field(j, "total_txs")?,
            channel_accesses_per_node: field(j, "channel_accesses_per_node")?,
            bytes_on_air: field(j, "bytes_on_air")?,
            collisions: field(j, "collisions")?,
            metrics: field(j, "metrics")?,
            service: opt_field(j, "service")?,
        })
    }
}

/// The self-contained document for one sweep scenario.
pub fn scenario_json(label: &str, cfg: &TestbedConfig, report: &RunReport) -> Json {
    Json::obj([
        ("label", Json::str(label)),
        ("config", cfg.to_json()),
        ("report", report.to_json()),
    ])
}

/// Canonical on-disk encoding of one scenario document (see
/// [`wbft_report::to_file_string`]). Byte-identity of two runs is defined
/// on this string.
pub fn scenario_string(label: &str, cfg: &TestbedConfig, report: &RunReport) -> String {
    wbft_report::to_file_string(&scenario_json(label, cfg, report))
}

/// Inverse of [`scenario_string`]/[`scenario_json`].
pub fn decode_scenario(text: &str) -> Result<(String, TestbedConfig, RunReport), JsonError> {
    let j = wbft_report::parse(text)?;
    Ok((field(&j, "label")?, field(&j, "config")?, field(&j, "report")?))
}

/// The report root: `<target dir>/reports`.
///
/// `$CARGO_TARGET_DIR` wins when set; otherwise the workspace `target/` is
/// found by walking up from the current directory to the nearest
/// `Cargo.lock` (bench and test binaries run with the *package* directory
/// as cwd — which has no lock file of its own — so a plain relative
/// `target` would scatter reports per crate; the nearest lock file above
/// is the workspace root).
pub fn report_root() -> PathBuf {
    if let Some(target) = std::env::var_os("CARGO_TARGET_DIR") {
        return Path::new(&target).join("reports");
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let workspace = cwd
        .ancestors()
        .find(|dir| dir.join("Cargo.lock").is_file())
        .map(Path::to_path_buf)
        .unwrap_or(cwd);
    workspace.join("target").join("reports")
}

/// Writes one `<label>.json` per run under `dir`, creating it as needed.
/// Returns the written paths in run order.
pub fn write_reports(dir: &Path, runs: &[SweepRun]) -> io::Result<Vec<PathBuf>> {
    let mut paths = Vec::with_capacity(runs.len());
    for run in runs {
        let path = dir.join(format!("{}.json", run.scenario.label));
        let doc = scenario_json(&run.scenario.label, &run.scenario.cfg, &run.report);
        wbft_report::write_file(&path, &doc)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Reads and decodes one scenario report file.
pub fn read_report(path: &Path) -> io::Result<(String, TestbedConfig, RunReport)> {
    let j = wbft_report::read_file(path)?;
    (|| Ok((field(&j, "label")?, field(&j, "config")?, field(&j, "report")?)))().map_err(
        |e: JsonError| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbft_wireless::SimDuration;

    #[test]
    fn config_encoding_is_a_fixpoint() {
        let mut cfg = TestbedConfig::multi_hop(Protocol::DumboSc);
        cfg.byzantine = vec![(1, ByzantineMode::Crash { after_epoch: 2 })];
        cfg.loss = wbft_wireless::LossModel::Uniform { p: 0.05 };
        let once = cfg.to_json().pretty();
        let decoded = TestbedConfig::from_json(&wbft_report::parse(&once).unwrap()).unwrap();
        assert_eq!(decoded.to_json().pretty(), once);
    }

    #[test]
    fn report_with_nan_mean_survives() {
        let report = RunReport {
            completed: false,
            elapsed: SimDuration::from_secs(10),
            epoch_latencies: vec![],
            mean_latency_s: f64::NAN,
            throughput_tpm: 0.0,
            total_txs: 0,
            channel_accesses_per_node: 1.5,
            bytes_on_air: 7,
            collisions: 0,
            metrics: wbft_wireless::Metrics::new(4),
            service: None,
        };
        let text = report.to_json().pretty();
        let decoded = RunReport::from_json(&wbft_report::parse(&text).unwrap()).unwrap();
        assert!(decoded.mean_latency_s.is_nan());
        assert_eq!(decoded.to_json().pretty(), text);
    }

    #[test]
    fn service_members_are_optional_and_round_trip() {
        use crate::service::{ArrivalSpec, LatencySummary, ServiceConfig, ServiceReport};
        let mut cfg = TestbedConfig::single_hop(Protocol::HoneyBadgerSc);
        // Without a service member the encoding must not mention it at all
        // (fixed-epoch byte-identity).
        assert!(!cfg.to_json().pretty().contains("service"));
        cfg.service = Some(ServiceConfig {
            arrivals: ArrivalSpec { per_node: 5, interval_us: 750_000, tx_bytes: 48, seed: 3 },
            mempool_capacity: 64,
            max_epochs: 9,
        });
        let text = cfg.to_json().pretty();
        let decoded = TestbedConfig::from_json(&wbft_report::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded.service, cfg.service);
        assert_eq!(decoded.to_json().pretty(), text);
        let report = RunReport {
            completed: true,
            elapsed: SimDuration::from_secs(90),
            epoch_latencies: vec![SimDuration::from_secs(30)],
            mean_latency_s: 30.0,
            throughput_tpm: 10.0,
            total_txs: 15,
            channel_accesses_per_node: 4.0,
            bytes_on_air: 900,
            collisions: 0,
            metrics: wbft_wireless::Metrics::new(4),
            service: Some(ServiceReport {
                submitted: 20,
                admitted: 18,
                rejected_dup: 1,
                rejected_full: 1,
                requeued: 2,
                peak_occupancy: 7,
                pending_at_stop: 0,
                committed_client_txs: 18,
                latency: LatencySummary {
                    count: 18,
                    mean_us: 31_000_000.0,
                    p50_us: 29_000_000,
                    p90_us: 44_000_000,
                    p99_us: 51_000_000,
                    max_us: 52_000_000,
                },
            }),
        };
        let text = report.to_json().pretty();
        assert!(text.contains("p50_us") && text.contains("rejected_full"));
        let decoded = RunReport::from_json(&wbft_report::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded.service, report.service);
        assert_eq!(decoded.to_json().pretty(), text);
    }

    #[test]
    fn sched_member_is_optional_and_round_trips() {
        use wbft_wireless::{SchedConfig, SchedPolicy};
        let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
        assert!(!cfg.to_json().pretty().contains("sched"), "absent when unset");
        cfg.sched = Some(SchedConfig {
            seed: 3,
            budget: SimDuration::from_secs(8),
            policy: SchedPolicy::CoinStarve { pass: 1 },
        });
        let text = cfg.to_json().pretty();
        let decoded = TestbedConfig::from_json(&wbft_report::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded.sched, cfg.sched);
        assert_eq!(decoded.to_json().pretty(), text);
    }

    #[test]
    fn pipeline_depth_member_is_optional_and_round_trips() {
        let mut cfg = TestbedConfig::single_hop(Protocol::HoneyBadgerSc);
        assert_eq!(cfg.pipeline_depth, 1);
        assert!(
            !cfg.to_json().pretty().contains("pipeline_depth"),
            "absent at the sequential default so pre-pipelining configs keep their bytes"
        );
        cfg.pipeline_depth = 4;
        let text = cfg.to_json().pretty();
        assert!(text.contains("pipeline_depth"));
        let decoded = TestbedConfig::from_json(&wbft_report::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded.pipeline_depth, 4);
        assert_eq!(decoded.to_json().pretty(), text);
    }

    #[test]
    fn crash_member_is_optional_and_round_trips() {
        let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
        assert!(
            !cfg.to_json().pretty().contains("crash"),
            "absent when unset so pre-churn configs keep their bytes"
        );
        cfg.crash = Some(CrashPlan {
            crashes: vec![CrashEvent { node: 2, at_us: 5_000_000, restart_us: 30_000_000 }],
        });
        let text = cfg.to_json().pretty();
        assert!(text.contains("restart_us"));
        let decoded = TestbedConfig::from_json(&wbft_report::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded.crash, cfg.crash);
        assert_eq!(decoded.to_json().pretty(), text);
    }

    #[test]
    fn churn_member_is_optional_and_round_trips() {
        let mut cfg = TestbedConfig::single_hop(Protocol::Beat);
        assert!(
            !cfg.to_json().pretty().contains("churn"),
            "absent when unset so pre-membership configs keep their bytes"
        );
        cfg.churn = Some(ChurnPlan {
            from_epoch: 1,
            ops: vec![MembershipOp::Join(4), MembershipOp::Leave(0)],
        });
        let text = cfg.to_json().pretty();
        assert!(text.contains("from_epoch"));
        let decoded = TestbedConfig::from_json(&wbft_report::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded.churn, cfg.churn);
        assert_eq!(decoded.to_json().pretty(), text);
    }

    #[test]
    fn scenario_document_round_trips() {
        let cfg = TestbedConfig::single_hop(Protocol::Beat);
        let report = RunReport {
            completed: true,
            elapsed: SimDuration::from_secs(60),
            epoch_latencies: vec![SimDuration::from_secs(30)],
            mean_latency_s: 30.0,
            throughput_tpm: 32.0,
            total_txs: 32,
            channel_accesses_per_node: 10.0,
            bytes_on_air: 4_096,
            collisions: 2,
            metrics: wbft_wireless::Metrics::new(4),
            service: None,
        };
        let text = scenario_string("beat.sh.seed7", &cfg, &report);
        let (label, cfg2, report2) = decode_scenario(&text).unwrap();
        assert_eq!(label, "beat.sh.seed7");
        assert_eq!(scenario_string(&label, &cfg2, &report2), text);
    }
}
