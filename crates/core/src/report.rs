//! JSON serialization of testbed configs and run reports, and the
//! `target/reports/` file layout.
//!
//! Every sweep scenario serializes to one self-contained document —
//! `{"label", "config", "report"}` — so a figure script (or a later
//! session) can regenerate tables without re-running simulations, and the
//! determinism battery can compare serial and parallel executions
//! byte-for-byte. Encoding is deterministic: member order is fixed by the
//! `ToJson` impls and numbers are written exactly (see `wbft_report::json`).

use crate::byzantine::ByzantineMode;
use crate::protocol::Protocol;
use crate::sweep::SweepRun;
use crate::testbed::{RunReport, TestbedConfig};
use crate::workload::Workload;
use std::io;
use std::path::{Path, PathBuf};
use wbft_report::{field, member, FromJson, Json, JsonError, ToJson};

impl ToJson for Protocol {
    fn to_json(&self) -> Json {
        Json::str(self.slug())
    }
}

impl FromJson for Protocol {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let slug = j.as_str().ok_or_else(|| JsonError("expected protocol slug".into()))?;
        Protocol::from_slug(slug)
            .ok_or_else(|| JsonError(format!("unknown protocol \"{slug}\"")))
    }
}

impl ToJson for ByzantineMode {
    fn to_json(&self) -> Json {
        match self {
            ByzantineMode::Silent => Json::obj([("mode", Json::str("silent"))]),
            ByzantineMode::Crash { after_epoch } => Json::obj([
                ("mode", Json::str("crash")),
                ("after_epoch", Json::u64(*after_epoch)),
            ]),
            ByzantineMode::FlipVotes => Json::obj([("mode", Json::str("flip-votes"))]),
            ByzantineMode::CorruptProposals => {
                Json::obj([("mode", Json::str("corrupt-proposals"))])
            }
        }
    }
}

impl FromJson for ByzantineMode {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match member(j, "mode")?.as_str() {
            Some("silent") => Ok(ByzantineMode::Silent),
            Some("crash") => Ok(ByzantineMode::Crash { after_epoch: field(j, "after_epoch")? }),
            Some("flip-votes") => Ok(ByzantineMode::FlipVotes),
            Some("corrupt-proposals") => Ok(ByzantineMode::CorruptProposals),
            _ => Err(JsonError("unknown byzantine mode".into())),
        }
    }
}

impl ToJson for Workload {
    fn to_json(&self) -> Json {
        Json::obj([
            ("batch_size", self.batch_size.to_json()),
            ("tx_bytes", self.tx_bytes.to_json()),
            ("seed", Json::u64(self.seed)),
        ])
    }
}

impl FromJson for Workload {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Workload {
            batch_size: field(j, "batch_size")?,
            tx_bytes: field(j, "tx_bytes")?,
            seed: field(j, "seed")?,
        })
    }
}

impl ToJson for TestbedConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", self.protocol.to_json()),
            ("n", self.n.to_json()),
            ("epochs", Json::u64(self.epochs)),
            ("workload", self.workload.to_json()),
            ("suite", self.suite.to_json()),
            ("seed", Json::u64(self.seed)),
            ("loss", self.loss.to_json()),
            ("radio", self.radio.to_json()),
            ("csma", self.csma.to_json()),
            ("dma", self.dma.to_json()),
            ("adversary", self.adversary.to_json()),
            ("byzantine", self.byzantine.to_json()),
            ("deadline_us", self.deadline.to_json()),
            ("clusters", self.clusters.to_json()),
        ])
    }
}

impl FromJson for TestbedConfig {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(TestbedConfig {
            protocol: field(j, "protocol")?,
            n: field(j, "n")?,
            epochs: field(j, "epochs")?,
            workload: field(j, "workload")?,
            suite: field(j, "suite")?,
            seed: field(j, "seed")?,
            loss: field(j, "loss")?,
            radio: field(j, "radio")?,
            csma: field(j, "csma")?,
            dma: field(j, "dma")?,
            adversary: field(j, "adversary")?,
            byzantine: field(j, "byzantine")?,
            deadline: field(j, "deadline_us")?,
            clusters: field(j, "clusters")?,
        })
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("completed", Json::Bool(self.completed)),
            ("elapsed_us", self.elapsed.to_json()),
            ("epoch_latencies_us", self.epoch_latencies.to_json()),
            ("mean_latency_s", Json::f64(self.mean_latency_s)),
            ("throughput_tpm", Json::f64(self.throughput_tpm)),
            ("total_txs", Json::u64(self.total_txs)),
            ("channel_accesses_per_node", Json::f64(self.channel_accesses_per_node)),
            ("bytes_on_air", Json::u64(self.bytes_on_air)),
            ("collisions", Json::u64(self.collisions)),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

impl FromJson for RunReport {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(RunReport {
            completed: field(j, "completed")?,
            elapsed: field(j, "elapsed_us")?,
            epoch_latencies: field(j, "epoch_latencies_us")?,
            mean_latency_s: field(j, "mean_latency_s")?,
            throughput_tpm: field(j, "throughput_tpm")?,
            total_txs: field(j, "total_txs")?,
            channel_accesses_per_node: field(j, "channel_accesses_per_node")?,
            bytes_on_air: field(j, "bytes_on_air")?,
            collisions: field(j, "collisions")?,
            metrics: field(j, "metrics")?,
        })
    }
}

/// The self-contained document for one sweep scenario.
pub fn scenario_json(label: &str, cfg: &TestbedConfig, report: &RunReport) -> Json {
    Json::obj([
        ("label", Json::str(label)),
        ("config", cfg.to_json()),
        ("report", report.to_json()),
    ])
}

/// Canonical on-disk encoding of one scenario document (see
/// [`wbft_report::to_file_string`]). Byte-identity of two runs is defined
/// on this string.
pub fn scenario_string(label: &str, cfg: &TestbedConfig, report: &RunReport) -> String {
    wbft_report::to_file_string(&scenario_json(label, cfg, report))
}

/// Inverse of [`scenario_string`]/[`scenario_json`].
pub fn decode_scenario(text: &str) -> Result<(String, TestbedConfig, RunReport), JsonError> {
    let j = wbft_report::parse(text)?;
    Ok((field(&j, "label")?, field(&j, "config")?, field(&j, "report")?))
}

/// The report root: `<target dir>/reports`.
///
/// `$CARGO_TARGET_DIR` wins when set; otherwise the workspace `target/` is
/// found by walking up from the current directory to the nearest
/// `Cargo.lock` (bench and test binaries run with the *package* directory
/// as cwd — which has no lock file of its own — so a plain relative
/// `target` would scatter reports per crate; the nearest lock file above
/// is the workspace root).
pub fn report_root() -> PathBuf {
    if let Some(target) = std::env::var_os("CARGO_TARGET_DIR") {
        return Path::new(&target).join("reports");
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let workspace = cwd
        .ancestors()
        .find(|dir| dir.join("Cargo.lock").is_file())
        .map(Path::to_path_buf)
        .unwrap_or(cwd);
    workspace.join("target").join("reports")
}

/// Writes one `<label>.json` per run under `dir`, creating it as needed.
/// Returns the written paths in run order.
pub fn write_reports(dir: &Path, runs: &[SweepRun]) -> io::Result<Vec<PathBuf>> {
    let mut paths = Vec::with_capacity(runs.len());
    for run in runs {
        let path = dir.join(format!("{}.json", run.scenario.label));
        let doc = scenario_json(&run.scenario.label, &run.scenario.cfg, &run.report);
        wbft_report::write_file(&path, &doc)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Reads and decodes one scenario report file.
pub fn read_report(path: &Path) -> io::Result<(String, TestbedConfig, RunReport)> {
    let j = wbft_report::read_file(path)?;
    (|| Ok((field(&j, "label")?, field(&j, "config")?, field(&j, "report")?)))().map_err(
        |e: JsonError| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbft_wireless::SimDuration;

    #[test]
    fn config_encoding_is_a_fixpoint() {
        let mut cfg = TestbedConfig::multi_hop(Protocol::DumboSc);
        cfg.byzantine = vec![(1, ByzantineMode::Crash { after_epoch: 2 })];
        cfg.loss = wbft_wireless::LossModel::Uniform { p: 0.05 };
        let once = cfg.to_json().pretty();
        let decoded = TestbedConfig::from_json(&wbft_report::parse(&once).unwrap()).unwrap();
        assert_eq!(decoded.to_json().pretty(), once);
    }

    #[test]
    fn report_with_nan_mean_survives() {
        let report = RunReport {
            completed: false,
            elapsed: SimDuration::from_secs(10),
            epoch_latencies: vec![],
            mean_latency_s: f64::NAN,
            throughput_tpm: 0.0,
            total_txs: 0,
            channel_accesses_per_node: 1.5,
            bytes_on_air: 7,
            collisions: 0,
            metrics: wbft_wireless::Metrics::new(4),
        };
        let text = report.to_json().pretty();
        let decoded = RunReport::from_json(&wbft_report::parse(&text).unwrap()).unwrap();
        assert!(decoded.mean_latency_s.is_nan());
        assert_eq!(decoded.to_json().pretty(), text);
    }

    #[test]
    fn scenario_document_round_trips() {
        let cfg = TestbedConfig::single_hop(Protocol::Beat);
        let report = RunReport {
            completed: true,
            elapsed: SimDuration::from_secs(60),
            epoch_latencies: vec![SimDuration::from_secs(30)],
            mean_latency_s: 30.0,
            throughput_tpm: 32.0,
            total_txs: 32,
            channel_accesses_per_node: 10.0,
            bytes_on_air: 4_096,
            collisions: 2,
            metrics: wbft_wireless::Metrics::new(4),
        };
        let text = scenario_string("beat.sh.seed7", &cfg, &report);
        let (label, cfg2, report2) = decode_scenario(&text).unwrap();
        assert_eq!(label, "beat.sh.seed7");
        assert_eq!(scenario_string(&label, &cfg2, &report2), text);
    }
}
