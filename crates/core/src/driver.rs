//! Glue between protocol engines and the wireless simulator.
//!
//! An [`Engine`] is the protocol brain of one node: it owns the consensus
//! components of the current (and recent) epochs, routes packet bodies to
//! them by session id, and reports decided blocks. [`ProtocolNode`] adapts
//! an engine to [`wbft_wireless::NodeBehavior`]: it seals outgoing bodies
//! into signed envelopes (charging the micro-ecc sign cost), verifies and
//! opens incoming frames (charging the verify cost, dropping bad
//! signatures), translates component timers, and applies the transmit-queue
//! slot discipline that lets a newer combined packet supersede a stale one.

use bytes::Bytes;
use wbft_components::NodeCrypto;
use wbft_net::{Body, Envelope, Sizing};
use wbft_wireless::{ChannelId, Frame, NodeBehavior, NodeCtx, SimDuration, SimTime};

/// A transaction committed in a block.
pub type Tx = Bytes;

/// One decided consensus output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Epoch number.
    pub epoch: u64,
    /// Committed transactions, in canonical order.
    pub txs: Vec<Tx>,
}

/// Collected engine outputs for one event.
#[derive(Debug, Default)]
pub struct EngineOut {
    /// `(session, body)` broadcasts.
    pub sends: Vec<(u64, Body)>,
    /// `(session, local id, delay)` timer requests.
    pub timers: Vec<(u64, u32, SimDuration)>,
    /// Virtual CPU to charge (µs).
    pub charge_us: u64,
}

impl EngineOut {
    /// Fresh sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs a component's [`wbft_components::Actions`] under a session.
    pub fn absorb(&mut self, session: u64, acts: &mut wbft_components::Actions) {
        let (sends, timers, charge) = acts.drain();
        for body in sends {
            self.sends.push((session, body));
        }
        for (delay, local) in timers {
            self.timers.push((session, local, delay));
        }
        self.charge_us += charge;
    }
}

/// The protocol brain of one node. Implementations: HoneyBadger (and BEAT),
/// Dumbo, their baselines, and the multi-hop cluster engine.
pub trait Engine {
    /// Called once at simulation start.
    fn start(&mut self, out: &mut EngineOut);

    /// Routes a verified packet body.
    fn handle(&mut self, session: u64, from: usize, body: &Body, out: &mut EngineOut);

    /// Handles a component timer.
    fn on_timer(&mut self, session: u64, local: u32, out: &mut EngineOut);

    /// Notifies the engine that new client work may be available (a local
    /// submission was just admitted to the mempool). Pipelined engines
    /// open an extra dissemination epoch mid-agreement here; the default
    /// — and every strictly sequential engine — does nothing, so the
    /// sequential event stream is untouched.
    fn on_work_available(&mut self, _out: &mut EngineOut) {}

    /// Seeds the engine with a committed chain prefix recovered from the
    /// durable journal. Called *before* [`Engine::start`]: the engine
    /// adopts the blocks as already-committed history and `start` opens
    /// its first live epoch right past them. No sends, timers or service
    /// interaction happen here — pre-start output has nowhere to go. The
    /// default (and any engine without chain state) ignores the prefix.
    fn restore_chain(&mut self, _blocks: Vec<Block>) {}

    /// Adopts verified peer blocks extending the local chain *mid-run*
    /// (the anti-entropy catch-up path). `blocks` must be contiguous from
    /// the current chain head and already digest-verified by the caller;
    /// non-contiguous entries are ignored. Engines drop any live instance
    /// of an adopted epoch and move their pipeline past the new head. The
    /// default does nothing (catch-up simply has no effect on engines
    /// without chain state).
    fn adopt_chain(&mut self, _blocks: Vec<Block>, _out: &mut EngineOut) {}

    /// The key epoch whose threshold keys cover traffic of `session` —
    /// sealed into the session's outgoing envelopes as a wire tag and
    /// required of incoming ones (a mismatched frame carries shares the
    /// receiver could only mis-combine, so the driver drops it before the
    /// engine sees it). Engines without dynamic membership run at key
    /// epoch 0 forever; tag 0 encodes to nothing, keeping their wire
    /// format byte-identical to pre-membership builds.
    fn key_epoch(&self, _session: u64) -> u64 {
        0
    }

    /// Blocks decided so far, in epoch order.
    fn blocks(&self) -> &[Block];

    /// `true` once the engine's [`StopCondition`](crate::service::StopCondition)
    /// is satisfied: every opened epoch decided and no further epoch will
    /// open (all target epochs ran, or a requested service stop landed).
    fn is_done(&self) -> bool;
}

impl Engine for Box<dyn Engine> {
    fn start(&mut self, out: &mut EngineOut) {
        (**self).start(out)
    }
    fn handle(&mut self, session: u64, from: usize, body: &Body, out: &mut EngineOut) {
        (**self).handle(session, from, body, out)
    }
    fn on_timer(&mut self, session: u64, local: u32, out: &mut EngineOut) {
        (**self).on_timer(session, local, out)
    }
    fn on_work_available(&mut self, out: &mut EngineOut) {
        (**self).on_work_available(out)
    }
    fn restore_chain(&mut self, blocks: Vec<Block>) {
        (**self).restore_chain(blocks)
    }
    fn adopt_chain(&mut self, blocks: Vec<Block>, out: &mut EngineOut) {
        (**self).adopt_chain(blocks, out)
    }
    fn key_epoch(&self, session: u64) -> u64 {
        (**self).key_epoch(session)
    }
    fn blocks(&self) -> &[Block] {
        (**self).blocks()
    }
    fn is_done(&self) -> bool {
        (**self).is_done()
    }
}

/// Session-id arithmetic: each epoch owns a block of session ids, one per
/// component role.
pub mod sessions {
    /// Sessions per epoch.
    pub const PER_EPOCH: u64 = 16;
    /// RBC / PRBC batch.
    pub const BROADCAST: u64 = 1;
    /// ABA batch.
    pub const ABA: u64 = 2;
    /// Threshold-decryption stage.
    pub const DEC: u64 = 3;
    /// Dumbo CBC-value batch.
    pub const CBC_VALUE: u64 = 4;
    /// Dumbo CBC-commit batch.
    pub const CBC_COMMIT: u64 = 5;
    /// Dumbo π coin.
    pub const PI_COIN: u64 = 6;
    /// Membership resharing-ceremony deals (session epoch = the change's
    /// activation epoch; traffic is signed under the *old* key epoch).
    pub const RESHARE: u64 = 7;
    /// Multi-hop global consensus offset (added to everything global).
    pub const GLOBAL_BASE: u64 = 1 << 40;

    /// The session id of `role` in `epoch`.
    pub fn of(epoch: u64, role: u64) -> u64 {
        epoch * PER_EPOCH + role
    }

    /// Inverse of [`of`]: `(epoch, role)`.
    pub fn split(session: u64) -> (u64, u64) {
        let local = session % GLOBAL_BASE;
        (local / PER_EPOCH, local % PER_EPOCH)
    }
}

/// How a node records the completion time of each epoch (read by the
/// testbed for latency statistics).
#[derive(Clone, Debug, Default)]
pub struct EpochClock {
    /// `completed[e]` = simulated time epoch `e`'s block was decided here.
    pub completed: Vec<SimTime>,
}

/// The service-side attachments of one node: the shared handle that
/// receives committed blocks (with commit timestamps for latency
/// accounting) and the deterministic client-arrival schedule injected via
/// driver-level timers.
struct ServiceBinding {
    handle: crate::service::ConsensusHandle,
    /// `(delay from start, transaction)` in schedule order.
    arrivals: Vec<(SimDuration, Tx)>,
}

/// Anti-entropy state of one node: the reserved channel it announces on
/// and the cumulative journal chain digests it verifies chunks against
/// (see `wbft_transport::sync` for the wire protocol).
struct SyncState {
    channel: ChannelId,
    /// Chain digest after each committed block, grown lazily with the
    /// chain (index == epoch).
    digests: Vec<[u8; 32]>,
    /// Head announcements answered with a block chunk.
    served: u64,
    /// Blocks shipped inside chunks.
    shipped: u64,
    /// Blocks that did not fit a chunk's datagram budget (the peer's next
    /// announcement round pulls them).
    dropped: u64,
}

/// Adapts an [`Engine`] to the simulator's [`NodeBehavior`].
pub struct ProtocolNode<E: Engine> {
    engine: E,
    crypto: NodeCrypto,
    sizing: Sizing,
    channel: ChannelId,
    clock: EpochClock,
    service: Option<ServiceBinding>,
    /// Durable block journal: every commit is appended before the event
    /// that produced it returns, so a crash at any instant loses at most
    /// the in-flight epoch.
    journal: Option<crate::recovery::BlockJournal>,
    sync: Option<SyncState>,
    /// Reusable engine-output sink: `apply` drains it, so one allocation's
    /// capacity serves every event instead of fresh `Vec`s per frame/timer
    /// — the driver sits on the simulator's hot path.
    scratch: EngineOut,
    /// Timer-id translation: global id = session * 2^10 + local.
    _private: (),
}

/// Timer-id packing: 10 bits of component-local id.
const TIMER_LOCAL_BITS: u64 = 10;

/// Driver-level timer lane for client arrivals (sessions stay far below
/// bit 53, so `session << TIMER_LOCAL_BITS` never reaches this bit).
const ARRIVAL_TIMER_BIT: u64 = 1 << 63;

/// Driver-level timer lane for periodic anti-entropy head announcements.
const SYNC_TIMER_BIT: u64 = 1 << 62;

/// Cadence of head announcements on the sync channel.
const SYNC_ANNOUNCE_INTERVAL: SimDuration = SimDuration::from_millis(500);

/// Transmit-queue slot for head announcements: a newer height supersedes a
/// stale queued one instead of wasting airtime behind it.
const SYNC_ANNOUNCE_SLOT: u64 = u64::MAX;

/// Most block chunks one head announcement may trigger — bounds the
/// airtime burst while letting a far-behind peer pull several chunks per
/// announce interval instead of lock-stepping at one.
const SYNC_CHUNKS_PER_ANNOUNCE: usize = 4;

impl<E: Engine> ProtocolNode<E> {
    /// Binds an engine to a node's crypto identity and radio channel.
    pub fn new(engine: E, crypto: NodeCrypto, channel: ChannelId) -> Self {
        let sizing = Sizing { n: crypto.peer_keys.len(), suite: crypto.suite };
        ProtocolNode {
            engine,
            crypto,
            sizing,
            channel,
            clock: EpochClock::default(),
            service: None,
            journal: None,
            sync: None,
            scratch: EngineOut::new(),
            _private: (),
        }
    }

    /// Attaches a durable block journal: every committed block is appended
    /// (payload = the proposal batch codec) in the same event that decided
    /// it. Open the journal first and feed its recovered prefix through
    /// [`Engine::restore_chain`] + [`ProtocolNode::with_recovered`].
    pub fn with_journal(mut self, journal: crate::recovery::BlockJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Marks the first `n` blocks of the engine's chain as recovered
    /// history rather than fresh commits: their completion clocks pre-fill
    /// with time zero, so the driver neither re-records them into the
    /// service stream (a restart seeds that via
    /// [`ConsensusHandle::recover_chain`](crate::service::ConsensusHandle::recover_chain))
    /// nor re-appends them to the journal.
    pub fn with_recovered(mut self, n: usize) -> Self {
        self.clock.completed = vec![SimTime::ZERO; n];
        self
    }

    /// Enables anti-entropy catch-up on `channel` (reserved for sync
    /// traffic): the node periodically announces its chain height, answers
    /// shorter peers with digest-chained block chunks, and adopts verified
    /// chunks that extend its own chain. Messages on this channel are
    /// unsigned — adoption is gated on the journal digest chain instead.
    pub fn with_sync(mut self, channel: ChannelId) -> Self {
        self.sync = Some(SyncState {
            channel,
            digests: Vec::new(),
            served: 0,
            shipped: 0,
            dropped: 0,
        });
        self
    }

    /// Anti-entropy counters `(requests served, blocks shipped, blocks
    /// dropped to chunk budgets)`, when sync is enabled.
    pub fn sync_counters(&self) -> Option<(u64, u64, u64)> {
        self.sync.as_ref().map(|s| (s.served, s.shipped, s.dropped))
    }

    /// Attaches a consensus service: committed blocks are recorded into
    /// `handle` (with commit times, feeding the block stream and latency
    /// percentiles) and `arrivals` are submitted at their scheduled delays
    /// from start. Pass an empty schedule when submissions arrive some
    /// other way (e.g. the UDP client gateway).
    pub fn with_service(
        mut self,
        handle: crate::service::ConsensusHandle,
        arrivals: Vec<(SimDuration, Tx)>,
    ) -> Self {
        self.service = Some(ServiceBinding { handle, arrivals });
        self
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Epoch completion times at this node.
    pub fn clock(&self) -> &EpochClock {
        &self.clock
    }

    /// Decided blocks (convenience passthrough).
    pub fn blocks(&self) -> &[Block] {
        self.engine.blocks()
    }

    /// `true` once the engine ran all its epochs.
    pub fn is_done(&self) -> bool {
        self.engine.is_done()
    }

    fn apply(&mut self, out: &mut EngineOut, ctx: &mut NodeCtx) {
        // Record newly completed epochs (and stream them to the service).
        while self.clock.completed.len() < self.engine.blocks().len() {
            let idx = self.clock.completed.len();
            if let Some(svc) = &self.service {
                svc.handle.record_commit(&self.engine.blocks()[idx], ctx.now());
            }
            // Journal the block in the same event that decided it: a crash
            // at any instant loses at most the epoch still in flight. An
            // append failure (store I/O) must not take down consensus — the
            // node keeps running unjournaled.
            let journal_failed = match self.journal.as_mut() {
                Some(j) => j.append(&self.engine.blocks()[idx]).is_err(),
                None => false,
            };
            if journal_failed {
                self.journal = None;
            }
            self.clock.completed.push(ctx.now());
        }
        if out.charge_us > 0 {
            ctx.charge_cpu(SimDuration::from_micros(out.charge_us));
        }
        let sign_cost = self.crypto.suite.ecdsa.profile().sign_us;
        for (session, body) in out.sends.drain(..) {
            let tag = self.engine.key_epoch(session);
            let env = Envelope { src: self.crypto.me as u16, session, body };
            ctx.charge_cpu(SimDuration::from_micros(sign_cost));
            // An unencodable (oversized) body is dropped, never a panic: a
            // hostile or runaway message must not abort the node.
            let Ok((bytes, nominal)) = env.seal_tagged(&self.crypto.keypair, &self.sizing, tag)
            else {
                continue;
            };
            // Slot: combined packets supersede stale queued versions; the
            // session disambiguates components.
            let slot = session
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(env.body.slot_key());
            ctx.broadcast_slot(self.channel, bytes, nominal, slot);
        }
        for (session, local, delay) in out.timers.drain(..) {
            ctx.set_timer(delay, (session << TIMER_LOCAL_BITS) | local as u64);
        }
        out.charge_us = 0;
    }

    /// Extends the cached cumulative chain digests to cover every committed
    /// block (index == epoch).
    fn refresh_sync_digests(&mut self) {
        let Some(sync) = &mut self.sync else { return };
        let blocks = self.engine.blocks();
        while sync.digests.len() < blocks.len() {
            let b = &blocks[sync.digests.len()];
            let prev = sync
                .digests
                .last()
                .copied()
                .unwrap_or(wbft_journal::GENESIS_DIGEST);
            sync.digests.push(wbft_journal::chain_digest(
                &prev,
                b.epoch,
                &crate::recovery::encode_block_payload(&b.txs),
            ));
        }
    }

    /// Broadcasts a periodic chain-height announcement on the sync channel.
    fn announce_head(&mut self, ctx: &mut NodeCtx) {
        let Some(sync) = &self.sync else { return };
        let msg = wbft_transport::SyncMsg::HeadAnnounce {
            height: self.engine.blocks().len() as u64,
        };
        if let Ok(bytes) = msg.encode() {
            let nominal = bytes.len();
            ctx.broadcast_slot(sync.channel, bytes, nominal, SYNC_ANNOUNCE_SLOT);
        }
        ctx.set_timer(SYNC_ANNOUNCE_INTERVAL, SYNC_TIMER_BIT);
    }

    /// Handles one unsigned datagram on the sync channel: answer a shorter
    /// peer's announcement with a budgeted chunk, or verify and adopt a
    /// chunk that extends the local chain.
    fn on_sync_frame(&mut self, payload: &[u8], ctx: &mut NodeCtx) {
        use wbft_transport::sync::{SyncBlock, SyncMsg, MAX_CHUNK_BLOCKS, SYNC_CHUNK_BUDGET};
        let Some(msg) = SyncMsg::decode(payload) else { return };
        self.refresh_sync_digests();
        match msg {
            SyncMsg::HeadAnnounce { height } => {
                let ours = self.engine.blocks().len() as u64;
                if height >= ours {
                    return;
                }
                let Some(sync) = &mut self.sync else { return };
                let blocks = self.engine.blocks();
                // Serve several budgeted chunks per announcement instead of
                // one: a single chunk per 500 ms announce interval caps
                // catch-up at MAX_CHUNK_BLOCKS per interval, which turns a
                // long-lagging peer (a fresh joiner bootstrapping from
                // epoch 0) into a lock-step crawl. A burst cap still bounds
                // the airtime one announcement can trigger.
                let mut served_any = false;
                let mut e = height as usize;
                for _ in 0..SYNC_CHUNKS_PER_ANNOUNCE {
                    let mut chunk = Vec::new();
                    let mut used = 0usize;
                    let start = e;
                    while e < blocks.len() {
                        let payload =
                            Bytes::from(crate::recovery::encode_block_payload(&blocks[e].txs));
                        let sb = SyncBlock { payload, digest: sync.digests[e] };
                        if chunk.len() >= MAX_CHUNK_BLOCKS
                            || used + sb.wire_len() > SYNC_CHUNK_BUDGET
                        {
                            break;
                        }
                        used += sb.wire_len();
                        chunk.push(sb);
                        e += 1;
                    }
                    if chunk.is_empty() {
                        break;
                    }
                    sync.shipped += chunk.len() as u64;
                    let reply =
                        SyncMsg::BlockChunk { start_epoch: start as u64, blocks: chunk };
                    if let Ok(bytes) = reply.encode() {
                        let nominal = bytes.len();
                        ctx.broadcast(sync.channel, bytes, nominal);
                        served_any = true;
                    }
                }
                if e < blocks.len() {
                    sync.dropped += (blocks.len() - e) as u64;
                }
                if served_any {
                    sync.served += 1;
                }
            }
            SyncMsg::BlockChunk { start_epoch, blocks } => {
                if start_epoch != self.engine.blocks().len() as u64 {
                    return; // Stale (already have it) or gapped (can't verify).
                }
                let Some(sync) = &self.sync else { return };
                // Chunks are unsigned: adopt only the prefix whose digests
                // extend our own chain — a forged or corrupted block breaks
                // the chain right there and everything after it is refused.
                let mut prev = sync
                    .digests
                    .last()
                    .copied()
                    .unwrap_or(wbft_journal::GENESIS_DIGEST);
                let mut adopted = Vec::new();
                for (i, sb) in blocks.iter().enumerate() {
                    let epoch = start_epoch + i as u64;
                    if wbft_journal::chain_digest(&prev, epoch, &sb.payload) != sb.digest {
                        break;
                    }
                    let Some(txs) = crate::recovery::decode_block_payload(&sb.payload) else {
                        break;
                    };
                    prev = sb.digest;
                    adopted.push(Block { epoch, txs });
                }
                if adopted.is_empty() {
                    return;
                }
                let mut out = std::mem::take(&mut self.scratch);
                self.engine.adopt_chain(adopted, &mut out);
                self.apply(&mut out, ctx);
                self.scratch = out;
            }
        }
    }
}

impl<E: Engine> NodeBehavior for ProtocolNode<E> {
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        // Arm one timer per scheduled client arrival; delays are relative
        // to start, so the same schedule means the same thing under the
        // simulator's virtual clock and a transport's wall clock.
        if let Some(svc) = &self.service {
            for (i, (delay, _)) in svc.arrivals.iter().enumerate() {
                ctx.set_timer(*delay, ARRIVAL_TIMER_BIT | i as u64);
            }
        }
        if self.sync.is_some() {
            ctx.set_timer(SYNC_ANNOUNCE_INTERVAL, SYNC_TIMER_BIT);
        }
        let mut out = std::mem::take(&mut self.scratch);
        self.engine.start(&mut out);
        self.apply(&mut out, ctx);
        self.scratch = out;
    }

    fn on_frame(&mut self, frame: &Frame, ctx: &mut NodeCtx) {
        // Sync traffic is not enveloped: it rides its own reserved channel
        // unsigned (forged blocks die on the digest-chain check instead),
        // so it branches off before the signature-verify charge.
        if let Some(sync) = &self.sync {
            if frame.channel == sync.channel {
                let payload = frame.payload.clone();
                self.on_sync_frame(&payload, ctx);
                return;
            }
        }
        // Verify the packet signature (cost charged whether it passes or
        // not — the radio delivered it, the CPU must check it).
        ctx.charge_cpu(SimDuration::from_micros(self.crypto.suite.ecdsa.profile().verify_us));
        let peer_keys = &self.crypto.peer_keys;
        let opened = Envelope::open_tagged(&frame.payload, |src| {
            peer_keys.get(src as usize).copied()
        });
        let Ok((env, tag, sig_ok)) = opened else { return };
        if !sig_ok {
            return;
        }
        // Key-epoch fencing: a frame tagged for another threshold-key
        // generation carries shares this node could only mis-combine (or,
        // pre-roll, cannot verify at all) — drop it; the sender's
        // retransmission cadence re-serves it once the epochs line up.
        if tag != self.engine.key_epoch(env.session) {
            return;
        }
        let mut out = std::mem::take(&mut self.scratch);
        self.engine.handle(env.session, env.src as usize, &env.body, &mut out);
        self.apply(&mut out, ctx);
        self.scratch = out;
    }

    fn on_timer(&mut self, id: u64, ctx: &mut NodeCtx) {
        if id & ARRIVAL_TIMER_BIT != 0 {
            // A scheduled client arrival: submit into the mempool; the
            // engine pulls it when it opens its next epoch. Pipelined
            // engines may open that epoch right now, overlapping its
            // dissemination with the agreement already in flight.
            if let Some(svc) = &self.service {
                let idx = (id & !ARRIVAL_TIMER_BIT) as usize;
                if let Some((_, tx)) = svc.arrivals.get(idx) {
                    svc.handle.submit(tx.clone(), ctx.now());
                }
            }
            let mut out = std::mem::take(&mut self.scratch);
            self.engine.on_work_available(&mut out);
            self.apply(&mut out, ctx);
            self.scratch = out;
            return;
        }
        if id & SYNC_TIMER_BIT != 0 {
            self.announce_head(ctx);
            return;
        }
        let session = id >> TIMER_LOCAL_BITS;
        let local = (id & ((1 << TIMER_LOCAL_BITS) - 1)) as u32;
        let mut out = std::mem::take(&mut self.scratch);
        self.engine.on_timer(session, local, &mut out);
        self.apply(&mut out, ctx);
        self.scratch = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_arithmetic_roundtrips() {
        for epoch in [0u64, 1, 7, 1000] {
            for role in [sessions::BROADCAST, sessions::ABA, sessions::DEC] {
                let s = sessions::of(epoch, role);
                assert_eq!(sessions::split(s), (epoch, role));
            }
        }
    }

    #[test]
    fn engine_out_absorbs_actions() {
        let mut out = EngineOut::new();
        let mut acts = wbft_components::Actions::new();
        acts.charge(50);
        acts.timer(SimDuration::from_millis(5), 2);
        out.absorb(9, &mut acts);
        assert_eq!(out.charge_us, 50);
        assert_eq!(out.timers, vec![(9, 2, SimDuration::from_millis(5))]);
    }
}
