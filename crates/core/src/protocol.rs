//! The eight consensus deployments of the paper's evaluation (Fig. 13) and
//! a factory that builds engines for them.

use crate::driver::Engine;
use crate::dumbo::{DumboEngine, DumboVariant};
use crate::honeybadger;
use crate::membership::MembershipCtl;
use crate::service::{ConsensusHandle, StopCondition};
use crate::workload::{BatchSource, Workload};
use wbft_components::NodeCrypto;

/// A consensus protocol deployment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum Protocol {
    /// ConsensusBatcher HoneyBadgerBFT, local-coin (Bracha) ABA.
    HoneyBadgerLc,
    /// ConsensusBatcher HoneyBadgerBFT, shared-coin ABA.
    HoneyBadgerSc,
    /// ConsensusBatcher BEAT (BEAT0, threshold coin flipping).
    Beat,
    /// ConsensusBatcher Dumbo (Dumbo2), local-coin serial ABA.
    DumboLc,
    /// ConsensusBatcher Dumbo (Dumbo2), shared-coin serial ABA.
    DumboSc,
    /// Unbatched HoneyBadgerBFT-SC baseline.
    HoneyBadgerScBaseline,
    /// Unbatched BEAT baseline.
    BeatBaseline,
    /// Unbatched Dumbo-SC baseline.
    DumboScBaseline,
}

impl Protocol {
    /// All eight deployments in the order of Fig. 13's legend.
    pub const ALL: [Protocol; 8] = [
        Protocol::HoneyBadgerScBaseline,
        Protocol::DumboScBaseline,
        Protocol::BeatBaseline,
        Protocol::HoneyBadgerSc,
        Protocol::DumboSc,
        Protocol::Beat,
        Protocol::HoneyBadgerLc,
        Protocol::DumboLc,
    ];

    /// The five ConsensusBatcher deployments.
    pub const BATCHED: [Protocol; 5] = [
        Protocol::HoneyBadgerLc,
        Protocol::HoneyBadgerSc,
        Protocol::Beat,
        Protocol::DumboLc,
        Protocol::DumboSc,
    ];

    /// The three baselines.
    pub const BASELINES: [Protocol; 3] = [
        Protocol::HoneyBadgerScBaseline,
        Protocol::BeatBaseline,
        Protocol::DumboScBaseline,
    ];

    /// Name as printed in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::HoneyBadgerLc => "HoneyBadgerBFT-LC",
            Protocol::HoneyBadgerSc => "HoneyBadgerBFT-SC",
            Protocol::Beat => "BEAT",
            Protocol::DumboLc => "Dumbo-LC",
            Protocol::DumboSc => "Dumbo-SC",
            Protocol::HoneyBadgerScBaseline => "HoneyBadgerBFT-SC-baseline",
            Protocol::BeatBaseline => "BEAT-baseline",
            Protocol::DumboScBaseline => "Dumbo-SC-baseline",
        }
    }

    /// Short filesystem- and CLI-safe identifier (used in report file
    /// names, sweep labels and the command-line front-ends).
    pub fn slug(&self) -> &'static str {
        match self {
            Protocol::HoneyBadgerLc => "hb-lc",
            Protocol::HoneyBadgerSc => "hb-sc",
            Protocol::Beat => "beat",
            Protocol::DumboLc => "dumbo-lc",
            Protocol::DumboSc => "dumbo-sc",
            Protocol::HoneyBadgerScBaseline => "hb-sc-baseline",
            Protocol::BeatBaseline => "beat-baseline",
            Protocol::DumboScBaseline => "dumbo-sc-baseline",
        }
    }

    /// Inverse of [`Protocol::slug`].
    pub fn from_slug(slug: &str) -> Option<Protocol> {
        Protocol::ALL.into_iter().find(|p| p.slug() == slug)
    }

    /// Whether this deployment uses ConsensusBatcher.
    pub fn is_batched(&self) -> bool {
        !matches!(
            self,
            Protocol::HoneyBadgerScBaseline
                | Protocol::BeatBaseline
                | Protocol::DumboScBaseline
        )
    }

    /// Builds the fixed-epoch engine for one node (the pre-redesign
    /// benchmark shape, kept as the compatibility entry point).
    pub fn engine(
        &self,
        crypto: NodeCrypto,
        workload: Workload,
        epochs: u64,
    ) -> Box<dyn Engine> {
        self.build_engine(crypto, workload.into(), StopCondition::Epochs(epochs))
    }

    /// Fixed-epoch engine with a pipeline depth: up to `depth` epochs keep
    /// their dissemination in flight while earlier ones finish agreement.
    /// `depth = 1` is exactly [`Protocol::engine`].
    pub fn engine_at_depth(
        &self,
        crypto: NodeCrypto,
        workload: Workload,
        epochs: u64,
        depth: u64,
    ) -> Box<dyn Engine> {
        self.build_engine_at_depth(crypto, workload.into(), StopCondition::Epochs(epochs), depth)
    }

    /// Builds a live-service engine: proposals pull FIFO from the handle's
    /// mempool (at most `max_batch` per epoch) and the engine runs until
    /// the handle requests a stop, bounded by `max_epochs`.
    pub fn service_engine(
        &self,
        crypto: NodeCrypto,
        handle: ConsensusHandle,
        max_batch: usize,
        max_epochs: u64,
    ) -> Box<dyn Engine> {
        self.service_engine_at_depth(crypto, handle, max_batch, max_epochs, 1)
    }

    /// Live-service engine with a pipeline depth (see
    /// [`Protocol::engine_at_depth`]).
    pub fn service_engine_at_depth(
        &self,
        crypto: NodeCrypto,
        handle: ConsensusHandle,
        max_batch: usize,
        max_epochs: u64,
        depth: u64,
    ) -> Box<dyn Engine> {
        self.build_engine_at_depth(
            crypto,
            BatchSource::Service { handle: handle.clone(), max_batch },
            StopCondition::Service { handle, max_epochs },
            depth,
        )
    }

    /// Builds a dynamic-membership engine: quorum math, committee slots
    /// and threshold keys follow the chain-derived committee view in `ctl`
    /// instead of the fixed genesis deal. HoneyBadger-family deployments
    /// only.
    ///
    /// # Panics
    ///
    /// Panics for the Dumbo deployments — their CBC/leader-election lanes
    /// are not membership-plumbed yet (tracked as a follow-on).
    /// `true` iff [`Protocol::churn_engine`] can build this deployment —
    /// the HoneyBadger-family engines whose quorum lanes consult the
    /// chain-derived committee view.
    pub fn supports_churn(&self) -> bool {
        matches!(
            self,
            Protocol::HoneyBadgerLc
                | Protocol::HoneyBadgerSc
                | Protocol::Beat
                | Protocol::HoneyBadgerScBaseline
                | Protocol::BeatBaseline
        )
    }

    pub fn churn_engine(
        &self,
        crypto: NodeCrypto,
        ctl: MembershipCtl,
        workload: Workload,
        epochs: u64,
    ) -> Box<dyn Engine> {
        let source: BatchSource = workload.into();
        let stop = StopCondition::Epochs(epochs);
        match self {
            Protocol::HoneyBadgerLc => {
                Box::new(honeybadger::hb_lc(crypto, source, stop).with_membership(ctl))
            }
            Protocol::HoneyBadgerSc => {
                Box::new(honeybadger::hb_sc(crypto, source, stop).with_membership(ctl))
            }
            Protocol::Beat => {
                Box::new(honeybadger::beat(crypto, source, stop).with_membership(ctl))
            }
            Protocol::HoneyBadgerScBaseline => {
                Box::new(honeybadger::hb_sc_baseline(crypto, source, stop).with_membership(ctl))
            }
            Protocol::BeatBaseline => {
                Box::new(honeybadger::beat_baseline(crypto, source, stop).with_membership(ctl))
            }
            // wbft-lint: allow(totality) — harness misuse guard: testbed validate rejects churn for non-supports_churn protocols first
            Protocol::DumboLc | Protocol::DumboSc | Protocol::DumboScBaseline => panic!(
                "dynamic membership is HoneyBadger-family only for now \
                 (Dumbo churn is a follow-on)"
            ),
        }
    }

    /// Builds the engine for one node from any proposal source and stop
    /// condition — the general form behind [`Protocol::engine`] and
    /// [`Protocol::service_engine`].
    pub fn build_engine(
        &self,
        crypto: NodeCrypto,
        source: BatchSource,
        stop: StopCondition,
    ) -> Box<dyn Engine> {
        self.build_engine_at_depth(crypto, source, stop, 1)
    }

    /// The general form with a pipeline depth `W ≥ 1` (`W = 1` reproduces
    /// the sequential engines byte for byte).
    pub fn build_engine_at_depth(
        &self,
        crypto: NodeCrypto,
        source: BatchSource,
        stop: StopCondition,
        depth: u64,
    ) -> Box<dyn Engine> {
        match self {
            Protocol::HoneyBadgerLc => {
                Box::new(honeybadger::hb_lc(crypto, source, stop).with_depth(depth))
            }
            Protocol::HoneyBadgerSc => {
                Box::new(honeybadger::hb_sc(crypto, source, stop).with_depth(depth))
            }
            Protocol::Beat => Box::new(honeybadger::beat(crypto, source, stop).with_depth(depth)),
            Protocol::DumboLc => {
                Box::new(DumboEngine::new(crypto, DumboVariant::Lc, source, stop).with_depth(depth))
            }
            Protocol::DumboSc => {
                Box::new(DumboEngine::new(crypto, DumboVariant::Sc, source, stop).with_depth(depth))
            }
            Protocol::HoneyBadgerScBaseline => {
                Box::new(honeybadger::hb_sc_baseline(crypto, source, stop).with_depth(depth))
            }
            Protocol::BeatBaseline => {
                Box::new(honeybadger::beat_baseline(crypto, source, stop).with_depth(depth))
            }
            Protocol::DumboScBaseline => Box::new(
                DumboEngine::new(crypto, DumboVariant::ScBaseline, source, stop).with_depth(depth),
            ),
        }
    }
}

impl core::fmt::Display for Protocol {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_partitions() {
        assert_eq!(Protocol::ALL.len(), 8);
        assert_eq!(Protocol::BATCHED.len(), 5);
        assert_eq!(Protocol::BASELINES.len(), 3);
        for p in Protocol::BATCHED {
            assert!(p.is_batched(), "{p}");
        }
        for p in Protocol::BASELINES {
            assert!(!p.is_batched(), "{p}");
            assert!(p.name().ends_with("baseline"));
        }
    }

    #[test]
    fn slugs_are_unique_and_invertible() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::from_slug(p.slug()), Some(p));
            assert!(p.slug().chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
        }
        assert_eq!(Protocol::from_slug("pbft"), None);
    }
}
