//! Running one testbed node over real UDP (`wbft-transport`).
//!
//! [`run_udp_node`] is the socket counterpart of
//! [`testbed::run`](crate::testbed::run)'s single-hop path: it deals the
//! same deterministic key material from the config seed (so `n` separate
//! processes sharing a [`TestbedConfig`] agree on every key without any
//! exchange), wraps the protocol engine in the *same unmodified*
//! [`ProtocolNode`] driver the simulator uses, and drives it with a
//! [`UdpRuntime`] until the engine decides all its epochs or the wall
//! deadline passes. The outcome is folded through the same aggregation as
//! simulator runs, so real-network results land in the identical
//! [`RunReport`] JSON schema — only this process's row of the per-node
//! metrics is populated (each process owns one node).
//!
//! Fidelity caveat: UDP (and especially loopback) has no CSMA contention,
//! collisions, airtime, or modelled loss, and wall-clock time replaces
//! virtual time, so latency numbers are *not* comparable with simulator
//! reports; channel accesses, bytes on air (nominal) and commit counts are.

use crate::driver::{Engine, ProtocolNode};
use crate::testbed::{finish_report, RunReport, TestbedConfig};
use std::io;
use std::time::Duration;
use wbft_components::deal_node_crypto;
use wbft_transport::{PeerTable, TransportStats, UdpRuntime};
use wbft_wireless::{ChannelId, SimTime};

/// Outcome of one UDP node run: the standard report plus transport counters.
#[derive(Clone, Debug)]
pub struct UdpNodeOutcome {
    /// The run report, in the same schema as simulator runs.
    pub report: RunReport,
    /// Datagram-level drop/send counters.
    pub stats: TransportStats,
}

/// Runs node `me` of a single-hop `cfg` deployment over UDP.
///
/// `linger` keeps the node answering peers' NACK retransmissions after its
/// own epochs decide (exiting immediately would crash-fault the node for
/// its slower peers — tolerable for `f` nodes, fatal beyond).
///
/// # Errors
///
/// * `InvalidInput` — multi-hop configs (clustered deployments still need
///   the simulator), Byzantine placements (UDP runs are honest-only for
///   now), a peer table whose size disagrees with `cfg.n`, or an invalid
///   table;
/// * socket errors from bind/receive.
pub fn run_udp_node(
    cfg: &TestbedConfig,
    peers: PeerTable,
    me: usize,
    wall_deadline: Duration,
    linger: Duration,
) -> io::Result<UdpNodeOutcome> {
    if cfg.clusters.is_some() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "multi-hop deployments run on the simulator only",
        ));
    }
    if !cfg.byzantine.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "UDP runs are honest-only; drop the byzantine placement",
        ));
    }
    if peers.len() != cfg.n || me >= cfg.n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("peer table has {} nodes, config wants n={}, me={me}", peers.len(), cfg.n),
        ));
    }
    // Same seed derivation as the simulator's single-hop path: every
    // process deals the identical key vectors and takes its own slot.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xdea1);
    let crypto = deal_node_crypto(cfg.n, cfg.suite, &mut rng)
        .into_iter()
        .nth(me)
        .expect("me < n checked above");
    let engine: Box<dyn Engine> = cfg.protocol.engine(crypto.clone(), cfg.workload.clone(), cfg.epochs);
    let node = ProtocolNode::new(engine, crypto, ChannelId(0));
    // Per-node rng stream: the ctx rng is not part of consensus state, but
    // distinct streams avoid accidental cross-node correlation.
    let rng_seed = cfg.seed ^ ((me as u64) << 32) ^ 0x11d9;
    let mut runtime = UdpRuntime::new(peers, me as u16, node, rng_seed)?;
    let completed = runtime.run_until(wall_deadline, linger, |node| node.is_done())?;
    // Elapsed measures up to the decision, not the post-completion linger
    // spent answering stragglers' NACKs (which would deflate throughput).
    let elapsed = runtime
        .completed_at()
        .unwrap_or_else(|| runtime.now())
        .saturating_since(SimTime::ZERO);
    let node = runtime.behavior();
    let decision_times = vec![node.clock().completed.clone()];
    let total_txs: u64 = node.blocks().iter().map(|b| b.txs.len() as u64).sum();
    let mut report = finish_report(
        completed,
        elapsed,
        decision_times,
        total_txs,
        runtime.metrics().clone(),
        cfg.epochs,
    );
    // Only this process's metrics row is populated, so the cluster mean
    // would understate by n×; "per node" in a UDP report means *this* node.
    report.channel_accesses_per_node =
        report.metrics.node(wbft_wireless::NodeId(me as u16)).channel_accesses as f64;
    Ok(UdpNodeOutcome { report, stats: runtime.stats().clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;

    fn small_cfg() -> TestbedConfig {
        let mut cfg = TestbedConfig::single_hop(Protocol::HoneyBadgerSc);
        cfg.epochs = 1;
        cfg.workload.batch_size = 4;
        cfg
    }

    #[test]
    fn rejects_multihop_byzantine_and_size_mismatch() {
        let table = PeerTable::loopback(&[47101, 47102, 47103, 47104]);
        let mut cfg = small_cfg();
        cfg.clusters = Some(4);
        assert!(run_udp_node(&cfg, table.clone(), 0, Duration::ZERO, Duration::ZERO).is_err());
        let mut cfg = small_cfg();
        cfg.byzantine = vec![(1, crate::ByzantineMode::Silent)];
        assert!(run_udp_node(&cfg, table.clone(), 0, Duration::ZERO, Duration::ZERO).is_err());
        let cfg = small_cfg();
        assert!(run_udp_node(&cfg, PeerTable::loopback(&[1, 2]), 0, Duration::ZERO, Duration::ZERO)
            .is_err());
        assert!(run_udp_node(&cfg, table, 9, Duration::ZERO, Duration::ZERO).is_err());
    }

    /// Full in-process integration: four UDP runtimes on loopback threads
    /// commit a HoneyBadger epoch with unmodified protocol code.
    #[test]
    fn four_threads_commit_an_epoch_over_loopback() {
        let cfg = small_cfg();
        let sockets: Vec<std::net::UdpSocket> =
            (0..4).map(|_| std::net::UdpSocket::bind("127.0.0.1:0").unwrap()).collect();
        let ports: Vec<u16> =
            sockets.iter().map(|s| s.local_addr().unwrap().port()).collect();
        drop(sockets);
        let table = PeerTable::loopback(&ports);
        let handles: Vec<_> = (0..4)
            .map(|me| {
                let cfg = cfg.clone();
                let table = table.clone();
                std::thread::spawn(move || {
                    run_udp_node(
                        &cfg,
                        table,
                        me,
                        Duration::from_secs(120),
                        Duration::from_secs(3),
                    )
                    .unwrap()
                })
            })
            .collect();
        let outcomes: Vec<UdpNodeOutcome> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (me, out) in outcomes.iter().enumerate() {
            assert!(out.report.completed, "node {me} did not complete");
            assert!(out.report.total_txs > 0, "node {me} committed nothing");
        }
        // Agreement: every node committed the same transaction count.
        let txs: Vec<u64> = outcomes.iter().map(|o| o.report.total_txs).collect();
        assert!(txs.windows(2).all(|w| w[0] == w[1]), "disagreement: {txs:?}");
    }
}
