//! Running one testbed node over real UDP (`wbft-transport`).
//!
//! [`run_udp_node`] is the socket counterpart of
//! [`testbed::run`](crate::testbed::run)'s single-hop path: it deals the
//! same deterministic key material from the config seed (so `n` separate
//! processes sharing a [`TestbedConfig`] agree on every key without any
//! exchange), wraps the protocol engine in the *same unmodified*
//! [`ProtocolNode`] driver the simulator uses, and drives it with a
//! [`UdpRuntime`] until the engine decides all its epochs or the wall
//! deadline passes. The outcome is folded through the same aggregation as
//! simulator runs, so real-network results land in the identical
//! [`RunReport`] JSON schema — only this process's row of the per-node
//! metrics is populated (each process owns one node).
//!
//! Fidelity caveat: UDP (and especially loopback) has no CSMA contention,
//! collisions, airtime, or modelled loss, and wall-clock time replaces
//! virtual time, so latency numbers are *not* comparable with simulator
//! reports; channel accesses, bytes on air (nominal) and commit counts are.

use crate::driver::{Engine, ProtocolNode};
use crate::recovery::BlockJournal;
use crate::service::{block_digests, AdmitOutcome, ConsensusHandle, ServiceReport};
use crate::testbed::{finish_report, RunReport, TestbedConfig};
use std::io;
use std::net::SocketAddr;
use std::time::Duration;
use wbft_components::deal_node_crypto;
use wbft_crypto::hash::Digest32;
use wbft_transport::{
    ClientGateway, ClientMsg, PeerTable, SubmitVerdict, TransportStats, UdpRuntime,
};
use wbft_wireless::{ChannelId, SimTime};

/// Outcome of one UDP node run: the standard report plus transport counters.
#[derive(Clone, Debug)]
pub struct UdpNodeOutcome {
    /// The run report, in the same schema as simulator runs.
    pub report: RunReport,
    /// Datagram-level drop/send counters.
    pub stats: TransportStats,
    /// Per-block content digests of this node's committed chain, for
    /// cross-process agreement checks on block *contents* (equal tx counts
    /// alone would accept divergent commits).
    pub block_digests: Vec<Digest32>,
}

/// Runs node `me` of a single-hop `cfg` deployment over UDP.
///
/// `linger` keeps the node answering peers' NACK retransmissions after its
/// own epochs decide (exiting immediately would crash-fault the node for
/// its slower peers — tolerable for `f` nodes, fatal beyond).
///
/// # Errors
///
/// * `InvalidInput` — multi-hop configs (clustered deployments still need
///   the simulator), Byzantine placements (UDP runs are honest-only for
///   now), a peer table whose size disagrees with `cfg.n`, or an invalid
///   table;
/// * socket errors from bind/receive.
pub fn run_udp_node(
    cfg: &TestbedConfig,
    peers: PeerTable,
    me: usize,
    wall_deadline: Duration,
    linger: Duration,
) -> io::Result<UdpNodeOutcome> {
    if cfg.clusters.is_some() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "multi-hop deployments run on the simulator only",
        ));
    }
    if !cfg.byzantine.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "UDP runs are honest-only; drop the byzantine placement",
        ));
    }
    if peers.len() != cfg.n || me >= cfg.n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("peer table has {} nodes, config wants n={}, me={me}", peers.len(), cfg.n),
        ));
    }
    // Same seed derivation as the simulator's single-hop path: every
    // process deals the identical key vectors and takes its own slot.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xdea1);
    let crypto = deal_node_crypto(cfg.n, cfg.suite, &mut rng)
        .into_iter()
        .nth(me)
        .expect("me < n checked above");
    let engine: Box<dyn Engine> = cfg.protocol.engine_at_depth(
        crypto.clone(),
        cfg.workload.clone(),
        cfg.epochs,
        cfg.pipeline_depth,
    );
    let node = ProtocolNode::new(engine, crypto, ChannelId(0));
    // Per-node rng stream: the ctx rng is not part of consensus state, but
    // distinct streams avoid accidental cross-node correlation.
    let rng_seed = cfg.seed ^ ((me as u64) << 32) ^ 0x11d9;
    let mut runtime = UdpRuntime::new(peers, me as u16, node, rng_seed)?;
    let completed = runtime.run_until(wall_deadline, linger, |node| node.is_done())?;
    // Elapsed measures up to the decision, not the post-completion linger
    // spent answering stragglers' NACKs (which would deflate throughput).
    let elapsed = runtime
        .completed_at()
        .unwrap_or_else(|| runtime.now())
        .saturating_since(SimTime::ZERO);
    let node = runtime.behavior();
    let decision_times = vec![node.clock().completed.clone()];
    let total_txs: u64 = node.blocks().iter().map(|b| b.txs.len() as u64).sum();
    let mut report = finish_report(
        completed,
        elapsed,
        decision_times,
        total_txs,
        runtime.metrics().clone(),
        cfg.epochs,
    );
    // Only this process's metrics row is populated, so the cluster mean
    // would understate by n×; "per node" in a UDP report means *this* node.
    report.channel_accesses_per_node =
        report.metrics.node(wbft_wireless::NodeId(me as u16)).channel_accesses as f64;
    let digests = block_digests(node.blocks());
    Ok(UdpNodeOutcome { report, stats: runtime.stats().clone(), block_digests: digests })
}

// ------------------------------------------------------------------
// Live-service node: client submissions over UDP, streaming commits.

/// The UDP gateway between external clients and one node's
/// [`ConsensusHandle`]: submissions are admitted into the mempool (with an
/// explicit verdict reply), subscribers receive every committed block as a
/// digest summary, and a `Stop` message requests the graceful shutdown.
///
/// Client traffic is unauthenticated UDP, so the gateway bounds what a
/// spoofed source can cost: the subscriber list is capped, and the
/// from-the-start catch-up replay runs only when an address is *newly*
/// subscribed — repeated `Subscribe` datagrams are acks, not replays.
///
/// Subscribers are *evicted*, not kept forever: an address whose sends
/// keep failing ([`SUBSCRIBER_FAILURE_LIMIT`] failures since its last
/// `Subscribe`) is dropped, and a `Subscribe` arriving at a full table displaces the
/// oldest subscriber instead of being refused — otherwise 64 stale
/// addresses would permanently block every new subscriber while the node
/// re-sends each block to dead peers forever. A repeated `Subscribe` from
/// a live subscriber resets its failure count (it is plainly reachable).
pub struct ServiceGateway {
    handle: ConsensusHandle,
    /// Subscribed addresses with their failed-send counts (reset by a
    /// repeated `Subscribe`), in subscription order (front = oldest =
    /// first LRU victim).
    subscribers: Vec<(SocketAddr, u32)>,
    /// How many committed blocks have been pushed to subscribers.
    cursor: usize,
    /// Addresses evicted so far (failure- or LRU-triggered), mirrored
    /// into [`TransportStats::client_evictions`].
    evicted: u64,
}

/// Most subscriber addresses one gateway serves. A `Subscribe` past the
/// cap evicts the oldest subscriber — an unauthenticated spoofing flood
/// still cannot grow node memory or turn the commit stream into an
/// amplification vector, but it can no longer pin the table full either.
pub const MAX_SUBSCRIBERS: usize = 64;

/// Failed sends (since the address's last `Subscribe`) after which a
/// subscriber is evicted.
pub const SUBSCRIBER_FAILURE_LIMIT: u32 = 3;

impl ServiceGateway {
    /// Wraps a handle.
    pub fn new(handle: ConsensusHandle) -> Self {
        ServiceGateway { handle, subscribers: Vec::new(), cursor: 0, evicted: 0 }
    }

    /// Current subscriber addresses, oldest first (test hook).
    pub fn subscriber_addrs(&self) -> Vec<SocketAddr> {
        self.subscribers.iter().map(|(addr, _)| *addr).collect()
    }

    /// Encodes one block summary as chunked `Block` messages (a block with
    /// more digests than one datagram carries is split, same epoch).
    fn block_msgs(summary: &crate::service::BlockSummary) -> Vec<bytes::Bytes> {
        let digests: Vec<[u8; 32]> = summary.digests.iter().map(|d| d.0).collect();
        let chunks: Vec<&[[u8; 32]]> = if digests.is_empty() {
            vec![&digests[..]]
        } else {
            digests.chunks(wbft_transport::client::MAX_BLOCK_DIGESTS).collect()
        };
        chunks
            .into_iter()
            .filter_map(|chunk| {
                ClientMsg::Block { epoch: summary.epoch, digests: chunk.to_vec() }
                    .encode()
                    .ok()
            })
            .collect()
    }
}

impl ClientGateway for ServiceGateway {
    fn on_datagram(
        &mut self,
        from: SocketAddr,
        payload: &bytes::Bytes,
        now: SimTime,
        out: &mut Vec<(SocketAddr, bytes::Bytes)>,
    ) {
        // Malformed client payloads are dropped silently — clients are
        // untrusted and UDP is lossy by contract.
        let Some(msg) = ClientMsg::decode(payload) else { return };
        match msg {
            ClientMsg::Submit { tx } => {
                let digest = crate::service::tx_digest(&tx);
                let verdict = match self.handle.submit(tx, now) {
                    AdmitOutcome::Admitted => SubmitVerdict::Admitted,
                    AdmitOutcome::Duplicate => SubmitVerdict::Duplicate,
                    AdmitOutcome::Full => SubmitVerdict::Full,
                };
                let reply = ClientMsg::SubmitReply { verdict, digest: digest.0 };
                if let Ok(bytes) = reply.encode() {
                    out.push((from, bytes));
                }
            }
            ClientMsg::Subscribe => {
                if let Some(entry) =
                    self.subscribers.iter_mut().find(|(addr, _)| *addr == from)
                {
                    // Already subscribed: the stream is flowing; treating a
                    // repeat as a fresh catch-up would let one spoofed
                    // address request O(chain) datagrams per probe. It does
                    // prove the address alive, so forgive past failures.
                    entry.1 = 0;
                    return;
                }
                if self.subscribers.len() >= MAX_SUBSCRIBERS {
                    // Full table: displace the oldest subscriber rather
                    // than refusing — a cap of stale addresses must not
                    // lock new clients out forever.
                    self.subscribers.remove(0);
                    self.evicted += 1;
                }
                self.subscribers.push((from, 0));
                // A late subscriber catches up from the stream start.
                for summary in self.handle.block_summaries(0) {
                    for bytes in Self::block_msgs(&summary) {
                        out.push((from, bytes));
                    }
                }
            }
            ClientMsg::Stop => self.handle.stop(),
            // Node→client messages arriving here are client bugs; ignore.
            ClientMsg::SubmitReply { .. } | ClientMsg::Block { .. } => {}
        }
    }

    fn on_tick(&mut self, _now: SimTime, out: &mut Vec<(SocketAddr, bytes::Bytes)>) {
        let fresh = self.handle.block_summaries(self.cursor);
        self.cursor += fresh.len();
        for summary in fresh {
            for bytes in Self::block_msgs(&summary) {
                for &(addr, _) in &self.subscribers {
                    out.push((addr, bytes.clone()));
                }
            }
        }
    }

    fn on_send_failed(&mut self, addr: SocketAddr) {
        let Some(i) = self.subscribers.iter().position(|(a, _)| *a == addr) else {
            // Failures toward non-subscribers (submit replies) carry no
            // state to clean up.
            return;
        };
        self.subscribers[i].1 += 1;
        if self.subscribers[i].1 >= SUBSCRIBER_FAILURE_LIMIT {
            self.subscribers.remove(i);
            self.evicted += 1;
        }
    }

    fn evictions(&self) -> u64 {
        self.evicted
    }
}

/// Bounds and sizing of one UDP service node.
#[derive(Clone, Debug)]
pub struct ServiceNodeOpts {
    /// Wall-clock budget — the hard duration guard: the node exits when it
    /// passes even if the mempool never drains or the stop never arrives.
    pub wall: Duration,
    /// Post-completion linger serving peers' NACKs, anti-entropy digest
    /// requests, and late subscribers.
    pub linger: Duration,
    /// Hard epoch bound (the other half of the CI guard).
    pub max_epochs: u64,
    /// Mempool capacity.
    pub mempool_capacity: usize,
    /// Durable block journal path. When set, every committed block is
    /// appended before the run reports it, and a restart replays the
    /// journal: recovered blocks re-enter the block stream and the mempool
    /// dedup set, and the engine resumes from the recovered epoch.
    pub journal: Option<std::path::PathBuf>,
    /// Node ids the startup barrier must not wait for: designated late
    /// joiners whose processes start mid-run and catch up over the
    /// anti-entropy sync channel. Empty for an ordinary node.
    pub late_peers: Vec<u16>,
}

/// Runs node `me` of a single-hop `cfg` deployment as a live consensus
/// service over UDP: proposals pull from a client-fed mempool (submissions
/// arrive on the reserved client channel), committed blocks stream to
/// subscribers, and the run ends on a client `Stop`, `opts.max_epochs`, or
/// `opts.wall` — whichever comes first. The report carries a
/// [`ServiceReport`] with this node's commit-latency percentiles and
/// backpressure counters.
///
/// # Errors
///
/// As [`run_udp_node`], plus socket errors.
pub fn run_udp_service_node(
    cfg: &TestbedConfig,
    peers: PeerTable,
    me: usize,
    opts: &ServiceNodeOpts,
) -> io::Result<UdpNodeOutcome> {
    if cfg.clusters.is_some() || !cfg.byzantine.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "UDP service nodes are single-hop and honest-only",
        ));
    }
    if peers.len() != cfg.n || me >= cfg.n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("peer table has {} nodes, config wants n={}, me={me}", peers.len(), cfg.n),
        ));
    }
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xdea1);
    let crypto = deal_node_crypto(cfg.n, cfg.suite, &mut rng)
        .into_iter()
        .nth(me)
        .expect("me < n checked above");
    let handle = ConsensusHandle::new(opts.mempool_capacity);
    let mut engine: Box<dyn Engine> = cfg.protocol.service_engine_at_depth(
        crypto.clone(),
        handle.clone(),
        cfg.workload.batch_size,
        opts.max_epochs,
        cfg.pipeline_depth,
    );
    // Open the durable journal (if configured) before the engine starts:
    // the recovered prefix re-enters the block stream and mempool dedup
    // set via the handle, and the engine resumes from the next epoch.
    let mut journal = None;
    let mut recovered_len = 0usize;
    if let Some(path) = &opts.journal {
        let store = wbft_journal::FileStore::open(path)?;
        let (j, blocks) = BlockJournal::open(Box::new(store)).map_err(|e| match e {
            wbft_journal::JournalError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })?;
        handle.recover_chain(&blocks);
        recovered_len = blocks.len();
        engine.restore_chain(blocks);
        journal = Some(j);
    }
    // No local arrival schedule: submissions come over the client channel.
    let mut node = ProtocolNode::new(engine, crypto, ChannelId(0))
        .with_service(handle.clone(), Vec::new())
        .with_recovered(recovered_len)
        .with_sync(ChannelId(wbft_transport::SYNC_CHANNEL));
    if let Some(j) = journal {
        node = node.with_journal(j);
    }
    let rng_seed = cfg.seed ^ ((me as u64) << 32) ^ 0x11d9;
    let mut runtime = UdpRuntime::new(peers, me as u16, node, rng_seed)?;
    runtime.set_late_peers(opts.late_peers.iter().copied());
    runtime.set_client_gateway(Box::new(ServiceGateway::new(handle.clone())));
    let completed = runtime.run_until(opts.wall, opts.linger, |node| node.is_done())?;
    if let Some((served, shipped, dropped)) = runtime.behavior().sync_counters() {
        let stats = runtime.stats_mut();
        stats.sync_requests_served = served;
        stats.sync_blocks_shipped = shipped;
        stats.sync_chunks_dropped = dropped;
    }
    let elapsed = runtime
        .completed_at()
        .unwrap_or_else(|| runtime.now())
        .saturating_since(SimTime::ZERO);
    let node = runtime.behavior();
    let decision_times = vec![node.clock().completed.clone()];
    let total_txs: u64 = node.blocks().iter().map(|b| b.txs.len() as u64).sum();
    let epochs_run = node.blocks().len() as u64;
    let mut report = finish_report(
        completed,
        elapsed,
        decision_times,
        total_txs,
        runtime.metrics().clone(),
        epochs_run,
    );
    report.channel_accesses_per_node =
        report.metrics.node(wbft_wireless::NodeId(me as u16)).channel_accesses as f64;
    report.service = Some(ServiceReport::aggregate(&[handle.stats()]));
    let digests = block_digests(node.blocks());
    Ok(UdpNodeOutcome { report, stats: runtime.stats().clone(), block_digests: digests })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;

    fn small_cfg() -> TestbedConfig {
        let mut cfg = TestbedConfig::single_hop(Protocol::HoneyBadgerSc);
        cfg.epochs = 1;
        cfg.workload.batch_size = 4;
        cfg
    }

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn subscribe(gw: &mut ServiceGateway, port: u16) {
        let msg = ClientMsg::Subscribe.encode().unwrap();
        let mut out = Vec::new();
        gw.on_datagram(addr(port), &msg, SimTime::ZERO, &mut out);
    }

    #[test]
    fn full_subscriber_table_evicts_the_oldest_not_the_newcomer() {
        // The bug this guards against: the table silently dropped every
        // Subscribe past the cap, so 64 stale addresses blocked new
        // subscribers permanently.
        let mut gw = ServiceGateway::new(ConsensusHandle::new(8));
        for i in 0..MAX_SUBSCRIBERS as u16 {
            subscribe(&mut gw, 40_000 + i);
        }
        assert_eq!(gw.subscriber_addrs().len(), MAX_SUBSCRIBERS);
        assert_eq!(gw.evictions(), 0);
        subscribe(&mut gw, 41_000);
        let addrs = gw.subscriber_addrs();
        assert_eq!(addrs.len(), MAX_SUBSCRIBERS, "cap still holds");
        assert!(!addrs.contains(&addr(40_000)), "oldest subscriber displaced");
        assert!(addrs.contains(&addr(41_000)), "newcomer admitted");
        assert_eq!(gw.evictions(), 1);
    }

    #[test]
    fn repeated_send_failures_evict_a_subscriber() {
        // The bug this guards against: a dead subscriber was re-sent every
        // committed block forever — no failure count, no eviction.
        let handle = ConsensusHandle::new(8);
        let mut gw = ServiceGateway::new(handle.clone());
        subscribe(&mut gw, 42_000);
        subscribe(&mut gw, 42_001);
        for _ in 0..SUBSCRIBER_FAILURE_LIMIT - 1 {
            gw.on_send_failed(addr(42_000));
        }
        assert_eq!(gw.subscriber_addrs().len(), 2, "below the limit: kept");
        // A re-Subscribe proves the address alive and forgives failures.
        subscribe(&mut gw, 42_000);
        for _ in 0..SUBSCRIBER_FAILURE_LIMIT - 1 {
            gw.on_send_failed(addr(42_000));
        }
        assert_eq!(gw.subscriber_addrs().len(), 2, "count was reset");
        gw.on_send_failed(addr(42_000));
        assert_eq!(gw.subscriber_addrs(), vec![addr(42_001)], "limit reached: evicted");
        assert_eq!(gw.evictions(), 1);
        // Failures toward non-subscribers (submit replies) are no-ops.
        gw.on_send_failed(addr(49_999));
        assert_eq!(gw.evictions(), 1);
    }

    #[test]
    fn rejects_multihop_byzantine_and_size_mismatch() {
        let table = PeerTable::loopback(&[47101, 47102, 47103, 47104]);
        let mut cfg = small_cfg();
        cfg.clusters = Some(4);
        assert!(run_udp_node(&cfg, table.clone(), 0, Duration::ZERO, Duration::ZERO).is_err());
        let mut cfg = small_cfg();
        cfg.byzantine = vec![(1, crate::ByzantineMode::Silent)];
        assert!(run_udp_node(&cfg, table.clone(), 0, Duration::ZERO, Duration::ZERO).is_err());
        let cfg = small_cfg();
        assert!(run_udp_node(&cfg, PeerTable::loopback(&[1, 2]), 0, Duration::ZERO, Duration::ZERO)
            .is_err());
        assert!(run_udp_node(&cfg, table, 9, Duration::ZERO, Duration::ZERO).is_err());
    }

    /// Full in-process integration: four UDP runtimes on loopback threads
    /// commit a HoneyBadger epoch with unmodified protocol code.
    #[test]
    fn four_threads_commit_an_epoch_over_loopback() {
        let cfg = small_cfg();
        let sockets: Vec<std::net::UdpSocket> =
            (0..4).map(|_| std::net::UdpSocket::bind("127.0.0.1:0").unwrap()).collect();
        let ports: Vec<u16> =
            sockets.iter().map(|s| s.local_addr().unwrap().port()).collect();
        drop(sockets);
        let table = PeerTable::loopback(&ports);
        let handles: Vec<_> = (0..4)
            .map(|me| {
                let cfg = cfg.clone();
                let table = table.clone();
                std::thread::spawn(move || {
                    run_udp_node(
                        &cfg,
                        table,
                        me,
                        Duration::from_secs(120),
                        Duration::from_secs(3),
                    )
                    .unwrap()
                })
            })
            .collect();
        let outcomes: Vec<UdpNodeOutcome> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (me, out) in outcomes.iter().enumerate() {
            assert!(out.report.completed, "node {me} did not complete");
            assert!(out.report.total_txs > 0, "node {me} committed nothing");
        }
        // Agreement: every node committed the same transaction count.
        let txs: Vec<u64> = outcomes.iter().map(|o| o.report.total_txs).collect();
        assert!(txs.windows(2).all(|w| w[0] == w[1]), "disagreement: {txs:?}");
    }
}
